// Clean data-parallel kernel: each thread touches only its own element.
__global__ void saxpy(float *x, float *y, float a, int n) {
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)i < n) {
    y[i] = a * x[i] + y[i];
  }
}
