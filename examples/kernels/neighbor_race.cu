// The paper's §II-style shared-memory race: thread t writes v[t] while
// reading its neighbour v[(t+1) % blockDim.x] in the same barrier
// interval — threads 0 and blockDim.x-1 collide on v[0].
__shared__ int v[64];
__global__ void neighbor_race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}
