// Input-dependent scatter: the taint analysis keeps `idx` symbolic
// (its contents flow into an access address), and two threads may be
// handed the same destination slot — a write/write race.
__global__ void scatter(int *idx, float *out) {
  out[idx[threadIdx.x] & 63] = (float)threadIdx.x;
}
