#!/usr/bin/env python3
"""Which inputs must be symbolic? The §V taint analysis as an advisor.

For each kernel in the bundled suite this prints the verdict per input:
whether its contents flow into access addresses (must stay symbolic),
only into guard conditions (advisory), only into loop bounds
(concretise, §III-C), or nowhere relevant (safe to concretise).

Run:  python examples/taint_advisor.py [kernel ...]
"""
import sys

from repro.core import SESA
from repro.kernels import ALL_KERNELS


def advise(name: str) -> None:
    kernel = ALL_KERNELS[name]
    tool = SESA.from_source(kernel.source, kernel.kernel_name)
    inferred = tool.inferred_symbolic_inputs()
    print(f"=== {name} ({kernel.table}) — {tool.taint.summary()}")
    for pname, v in tool.taint.verdicts.items():
        if pname in inferred:
            decision = "SYMBOLIC"
        elif v.flows_into_address:
            decision = "concrete*"   # address flow, but scalar/loop-bound
        elif v.flows_into_loop_bound:
            decision = "concrete (loop bound)"
        else:
            decision = "concrete"
        kind = "ptr" if v.is_pointer else "scalar"
        print(f"    {pname:16s} [{kind:6s}] {decision:24s} {v.reason}")
    print()


def main() -> None:
    names = sys.argv[1:] or [
        "vectorAdd", "matrixMul", "histogram64", "histo_final",
        "binning", "bfs_ls", "reduction",
    ]
    for name in names:
        if name not in ALL_KERNELS:
            print(f"unknown kernel {name}; available: "
                  f"{', '.join(sorted(ALL_KERNELS))}")
            return
        advise(name)
    print("* = the strict §V verdict found an address flow, but the "
          "Table-I policy concretises dimension scalars / loop bounds; "
          "pass symbolic_inputs explicitly to override.")


if __name__ == "__main__":
    main()
