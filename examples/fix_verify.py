#!/usr/bin/env python3
"""The developer loop the paper motivates: find a race, fix it, verify.

The kernel is the classic buggy parallel reduction (barrier hoisted out
of the loop — a real bug class the paper's reduction example is built
around). SESA pinpoints the race with a concrete witness; after the fix
the same configuration verifies race-free, and scaling the block up
costs nothing extra (parametric execution).

Run:  python examples/fix_verify.py
"""
from repro.core import SESA, LaunchConfig

BUGGY = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
    // BUG: missing __syncthreads() here
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""

FIXED = BUGGY.replace(
    "    // BUG: missing __syncthreads() here",
    "    __syncthreads();")


def analyse(tag: str, source: str, block: int = 64):
    report = SESA.from_source(source).check(
        LaunchConfig(block_dim=block, check_oob=False))
    status = "RACY" if report.has_races else "race-free"
    print(f"[{tag}] blockDim={block}: {status} "
          f"({report.elapsed_seconds:.2f}s, "
          f"{report.check_stats.queries} queries)")
    for race in report.races[:2]:
        print(f"    {race.describe()}")
    return report


def main() -> None:
    print("Step 1: check the kernel as written")
    buggy = analyse("buggy", BUGGY)
    assert buggy.has_races

    race = buggy.races[0]
    print()
    print("Step 2: read the witness — two threads in the same interval,")
    print(f"        one reading sdata[tid+s] the other updating it:")
    print(f"        {race.witness}")
    print()

    print("Step 3: add the missing __syncthreads() and re-check")
    fixed = analyse("fixed", FIXED)
    assert not fixed.has_races
    print()

    print("Step 4: the fix holds at every block size (one parametric run")
    print("        each — no thread-count blow-up):")
    for block in (128, 256, 512):
        report = analyse("fixed", FIXED, block)
        assert not report.has_races


if __name__ == "__main__":
    main()
