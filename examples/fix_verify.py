#!/usr/bin/env python3
"""The developer loop the paper motivates: find a race, fix it, verify —
then let the repair engine do the fixing.

The kernel is the classic buggy parallel reduction (barrier hoisted out
of the loop — a real bug class the paper's reduction example is built
around). SESA pinpoints the race with a concrete witness; the CEGIS
repair engine synthesizes the same one-barrier fix a developer would
write, renders it as a source diff, and re-verifies the patched kernel
at the same launch configuration.

Run:  python examples/fix_verify.py
"""
from repro.core import SESA, LaunchConfig, repair_source

BUGGY = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
    // BUG: missing __syncthreads() here
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""

# the fix a developer writes by hand, kept for contrast with the
# synthesized one
FIXED = BUGGY.replace(
    "    // BUG: missing __syncthreads() here",
    "    __syncthreads();")


def analyse(tag: str, source: str, block: int = 64):
    report = SESA.from_source(source).check(
        LaunchConfig(block_dim=block, check_oob=False))
    status = "RACY" if report.has_races else "race-free"
    print(f"[{tag}] blockDim={block}: {status} "
          f"({report.elapsed_seconds:.2f}s, "
          f"{report.check_stats.queries} queries)")
    for race in report.races[:2]:
        print(f"    {race.describe()}")
    return report


def main() -> None:
    config = LaunchConfig(block_dim=64, check_oob=False)

    print("Step 1: check the kernel as written")
    buggy = analyse("buggy", BUGGY)
    assert buggy.has_races

    race = buggy.races[0]
    print()
    print("Step 2: read the witness — two threads in the same interval,")
    print("        one reading sdata[tid+s] the other updating it:")
    print(f"        {race.witness}")
    print()

    print("Step 3: synthesize the fix (CEGIS barrier repair)")
    repair = repair_source(BUGGY, config=config)
    print(repair.summary())
    assert repair.converged and repair.verified and repair.minimal
    assert len(repair.edits) == 1, "one missing barrier, one edit"
    print()
    print(repair.diff)

    print("Step 4: the synthesized fix verifies race-free at the same")
    print("        configuration as the hand-written one:")
    synthesized = analyse("synthesized", repair.patched_source)
    assert not synthesized.has_races
    manual = analyse("hand-written", FIXED)
    assert not manual.has_races
    print()

    print("Step 5: both fixes hold at every block size (one parametric")
    print("        run each — no thread-count blow-up):")
    for block in (128, 256, 512):
        report = analyse("synthesized", repair.patched_source, block)
        assert not report.has_races


if __name__ == "__main__":
    main()
