#!/usr/bin/env python3
"""Figure 4 reproduced: the parametric flow tree of the reduction kernel.

Runs the reduction kernel under both engines and prints how many flows
each explores per barrier interval — GKLEEp's tree grows (F0 → F1/F2 →
F3..F5 → ...) while SESA's flow combining keeps exactly one flow.

Run:  python examples/reduction_flows.py
"""
from repro.core import GKLEEp, SESA, LaunchConfig
from repro.kernels.paper_examples import REDUCTION
from repro.sym import render_flow_tree


def run(engine_name: str, tool, config: LaunchConfig, tree: bool = False):
    report = tool.check(config)
    ex = report.execution
    print(f"{engine_name:8s} flows(max)={ex.max_flows:3d} "
          f"splits={ex.num_splits:3d} barriers={ex.num_barriers} "
          f"time={report.elapsed_seconds:6.2f}s "
          f"races={'yes' if report.has_races else 'no'}")
    if tree:
        print()
        print(f"{engine_name} flow tree (cf. the paper's Fig. 4):")
        print(render_flow_tree(ex))
        print()


def main() -> None:
    print("Reduction kernel (Fig. 1 / Fig. 4), blockDim.x = 64")
    print("=" * 60)

    config = LaunchConfig(block_dim=64, check_oob=False)
    sesa = SESA.from_source(REDUCTION.source)
    print("taint:", sesa.taint.summary(),
          "->", sorted(sesa.inferred_symbolic_inputs()) or "all concrete")
    run("SESA", sesa, config, tree=True)
    run("GKLEEp", GKLEEp.from_source(REDUCTION.source),
        LaunchConfig(block_dim=8, check_oob=False), tree=True)

    print()
    print("The paper's Fig. 4: GKLEEp splits threads at every "
          "tid % (2s) == 0 branch (F1/F2, then F3..F5, ...). SESA's "
          "static analysis proves the branch-written values never reach "
          "a sensitive sink, so the flows are combined: one flow per "
          "barrier interval, at any block size.")

    print()
    print("Scaling (SESA, flow count must stay 1):")
    for bdim in (16, 64, 256):
        config = LaunchConfig(block_dim=bdim, check_oob=False)
        report = SESA.from_source(REDUCTION.source).check(config)
        print(f"  blockDim={bdim:4d}: flows={report.max_flows} "
              f"({report.elapsed_seconds:.2f}s)")


if __name__ == "__main__":
    main()
