#!/usr/bin/env python3
"""Quickstart: find the two data races in the paper's §II example.

Run:  python examples/quickstart.py
"""
from repro.core import SESA, LaunchConfig

KERNEL = """
__shared__ int v[64];
__global__ void race() {
  // Barrier interval 1: thread tid writes v[tid] while reading
  // v[(tid+1) % bdim] — threads 0 and bdim-1 collide on v[0].
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
  __syncthreads();
  // Barrier interval 2: divergent halves; a thread in the `then` part
  // reads v[tid] while a thread in the `else` part writes v[tid >> 2].
  if (threadIdx.x % 2 == 0) {
    int x = v[threadIdx.x];
    x = x + 1;
  } else {
    v[threadIdx.x >> 2] = 1;
  }
}
"""


def main() -> None:
    # 1. Compile the kernel and run the static (taint) analysis.
    tool = SESA.from_source(KERNEL)
    print("Symbolic inputs inferred:",
          tool.inferred_symbolic_inputs() or "none (all concretisable)")

    # 2. Check one launch configuration. Thread IDs are symbolic: this
    #    one run covers *all* 64 threads parametrically.
    report = tool.check(LaunchConfig(block_dim=64, check_oob=False))

    # 3. Inspect the report.
    print()
    print(report.summary())
    print()
    for race in report.races:
        a1, a2 = race.access1, race.access2
        print(f"* {race.kind} race on {race.obj_name} "
              f"(barrier interval {a1.bi_index}):")
        print(f"    {a1.describe()}")
        print(f"    {a2.describe()}")
        print(f"    witness: {race.witness}")
        if race.benign:
            print("    note: both writes store the same value (benign)")
        print()

    assert report.has_races, "expected to find the paper's races!"
    print(f"analysis took {report.elapsed_seconds:.2f}s, "
          f"{report.check_stats.queries} solver queries, "
          f"{report.max_flows} parametric flow(s)")


if __name__ == "__main__":
    main()
