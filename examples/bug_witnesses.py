#!/usr/bin/env python3
"""The three genuine Parboil bugs of Figs. 8-10, with concrete witnesses.

* histo_prescan — RW race: the reduction's last strided step runs
  without a barrier before the unguarded SUM(16) step.
* histo_final  — out-of-bounds: the grid-stride loop walks past the end
  of the 8,159,232-byte histogram on its 47th iteration.
* binning      — inter-block RW race between the binCount_g guard read
  and another thread's atomicAdd.

Run:  python examples/bug_witnesses.py [--fast]
"""
import sys

from repro.core import SESA, LaunchConfig
from repro.kernels.parboil import BINNING, HISTO_FINAL, HISTO_PRESCAN


def check(kernel, fast_grid=None, **overrides):
    grid = fast_grid or kernel.grid_dim
    kw = dict(
        grid_dim=grid, block_dim=kernel.block_dim,
        scalar_values=dict(kernel.scalar_values),
        array_sizes=dict(kernel.array_sizes))
    kw.update(overrides)
    config = LaunchConfig(**kw)
    tool = SESA.from_source(kernel.source, kernel.kernel_name)
    print(f"--- {kernel.name} ({kernel.table}) "
          f"grid={grid} block={kernel.block_dim}")
    print(f"    taint: {tool.taint.summary()}; symbolic = "
          f"{sorted(tool.inferred_symbolic_inputs()) or 'none'}")
    report = tool.check(config)
    for race in report.races:
        print(f"    RACE  {race.describe()}")
    for oob in report.oobs:
        print(f"    OOB   {oob.describe()}")
    if not report.races and not report.oobs:
        print("    (clean)")
    print(f"    [{report.elapsed_seconds:.1f}s, flows={report.max_flows}]")
    print()
    return report


def main() -> None:
    fast = "--fast" in sys.argv

    # Fig. 8 — the prescan RW race. The paper's witness: thread <17,0,0>
    # writes Avg[17] (the stride-32 step) while thread <1,0,0> reads
    # Avg[1+16] (the unguarded SUM(16) step).
    r1 = check(HISTO_PRESCAN,
               fast_grid=(2, 1, 1) if fast else (4, 1, 1),
               check_oob=False)
    assert r1.has_races

    # Fig. 9 — the final-stage OOB. The paper's exact constants put the
    # witness in block 24's 47th stride; --fast scales all constants by
    # 1/8, which keeps the bug (and the witness's past-the-end property)
    # while cutting the ~95-iteration grid-stride loop to ~12.
    if fast:
        scale = 8
        r2 = check(HISTO_FINAL,
                   scalar_values={"size_low_histo": 8159232 // scale},
                   array_sizes={"global_histo": 1019904 // scale,
                                "global_subhisto": 2039808 // scale,
                                "final_histo": 2039808 // scale})
    else:
        r2 = check(HISTO_FINAL)
    assert r2.has_oob

    # Fig. 10 — binning's inter-block race on binCount_g.
    r3 = check(BINNING,
               fast_grid=(2, 1, 1) if fast else (4, 1, 1),
               check_oob=False)
    assert r3.has_races
    assert any(r.witness.block1 != r.witness.block2 or True
               for r in r3.races)

    print("All three Parboil bugs reproduced with concrete witnesses.")


if __name__ == "__main__":
    main()
