"""mem2reg preserves semantics: the symbolic executor produces the same
observable writes (offset, value) with and without promotion.

The executor handles both forms — allocas become thread-local memory —
so the recorded shared/global access sets, evaluated under concrete
thread ids, must match exactly.
"""
import pytest

from repro.core import LaunchConfig
from repro.frontend import compile_source
from repro.passes import mem2reg, remove_unreachable_blocks
from repro.smt import evaluate
from repro.smt.subst import EvaluationError
from repro.sym import AccessKind, Executor


def observable_writes(source: str, promote: bool, tid_values):
    module = compile_source(source)
    fn = module.get_kernel()
    remove_unreachable_blocks(fn)
    if promote:
        mem2reg(fn)
        fn.verify()
    config = LaunchConfig(block_dim=(8, 1, 1), symbolic_inputs=set())
    result = Executor(module, fn, config).run()
    out = []
    for tid in tid_values:
        env = {"tid.x": tid}
        for bi, access_set in enumerate(result.bi_access_sets):
            for a in access_set:
                if a.kind != AccessKind.WRITE:
                    continue
                try:
                    if not evaluate(a.cond, env):
                        continue
                    offset = evaluate(a.offset, env)
                    value = evaluate(a.value, env) \
                        if a.value is not None else None
                except EvaluationError:
                    value = "havoc"
                    offset = evaluate(a.offset, env)
                out.append((tid, bi, a.obj.name, offset, value))
    return sorted(out)


KERNELS = [
    # straight-line with locals
    """
__shared__ int s[64];
__global__ void k() {
  int a = 3;
  int b = a * 2;
  s[threadIdx.x] = a + b;
}""",
    # diamond writing a local merged at the join
    """
__shared__ int s[64];
__global__ void k() {
  int v = 0;
  if (threadIdx.x % 2 == 0) { v = 10; } else { v = 20; }
  s[threadIdx.x] = v;
}""",
    # loop-carried local
    """
__shared__ int s[64];
__global__ void k() {
  int acc = 0;
  for (int i = 0; i < 4; i++) { acc = acc + i; }
  s[threadIdx.x] = acc;
}""",
    # local updated across a barrier
    """
__shared__ int s[64];
__global__ void k() {
  int x = (int)threadIdx.x;
  s[x] = x;
  __syncthreads();
  x = x + 1;
  s[threadIdx.x] = x;
}""",
    # nested control flow
    """
__shared__ int s[64];
__global__ void k() {
  int v = 1;
  if (threadIdx.x < 4) {
    if (threadIdx.x < 2) { v = 2; }
    v = v * 3;
  }
  s[threadIdx.x] = v;
}""",
]


@pytest.mark.parametrize("idx", range(len(KERNELS)))
def test_promotion_preserves_observable_writes(idx):
    source = KERNELS[idx]
    tids = range(8)
    before = observable_writes(source, promote=False, tid_values=tids)
    after = observable_writes(source, promote=True, tid_values=tids)
    assert before == after
