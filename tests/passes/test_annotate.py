"""Flow-merging annotation pass (§V Example 1's 'skip' flags)."""
import pytest

from repro import ir
from repro.frontend import compile_source
from repro.passes import annotate_flow_merging, standard_pipeline


def annotated(source):
    module = compile_source(source)
    standard_pipeline().run(module)
    fn = module.get_kernel()
    counts = annotate_flow_merging(fn)
    return fn, counts


def branch_tags(fn):
    out = {}
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, ir.Br):
            tags = [t for t in ("combine", "combine_ite", "split")
                    if term.meta.get(t)]
            out[block.name] = tags[0]
    return out


class TestAnnotation:
    def test_generic_example_combines(self):
        """§V Ex. 1: both branches of Generic get the skip flag."""
        fn, counts = annotated("""
__shared__ int A[64];
__global__ void generic(int a, int b, int c) {
  int v = 0;
  if (threadIdx.x < 32) { v = a; } else { v = b; }
  int u = 0;
  if (c > 3) { u = threadIdx.x * 2; }
  A[threadIdx.x] = v + u;
}""")
        assert counts["combine"] == 2
        assert counts["split"] == 0

    def test_sink_feeding_merge_gets_ite_tag(self):
        fn, counts = annotated("""
__shared__ int s[64];
__global__ void k() {
  unsigned idx;
  if (threadIdx.x % 2 == 0) { idx = threadIdx.x; }
  else { idx = threadIdx.x / 4; }
  s[idx] = 1;
}""")
        assert counts["combine_ite"] == 1

    def test_loop_branch_splits(self):
        fn, counts = annotated("""
__shared__ int s[64];
__global__ void k(int n) {
  for (int i = 0; i < n; i++) { s[threadIdx.x] = i; }
}""")
        assert counts["split"] >= 1

    def test_barrier_in_arm_splits(self):
        fn, counts = annotated("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x < 4) {
    __syncthreads();
  }
  s[threadIdx.x] = 1;
}""")
        tags = branch_tags(fn)
        entry_tag = next(t for name, t in tags.items()
                         if name.startswith("entry"))
        assert entry_tag == "split"

    def test_tags_visible_in_ir_dump(self):
        fn, _ = annotated("""
__shared__ int s[64];
__global__ void k() {
  int v = 0;
  if (threadIdx.x % 2 == 0) { v = 1; }
  s[threadIdx.x] = v;
}""")
        text = ir.function_to_str(fn)
        assert "combine" in text
