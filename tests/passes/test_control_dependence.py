"""Control-dependence computation (used by the taint pass's case 2)."""
import pytest

from repro import ir
from repro.frontend import compile_source
from repro.passes import remove_unreachable_blocks
from repro.passes.taint import ControlDependence


def cd_of(body: str, params: str = "int *a, unsigned n"):
    module = compile_source(f"__global__ void k({params}) {{ {body} }}")
    fn = module.get_kernel("k")
    remove_unreachable_blocks(fn)
    cfg = ir.CFG(fn)
    return fn, cfg, ControlDependence(cfg)


def block(fn, prefix):
    return next(b for b in fn.blocks if b.name.startswith(prefix))


class TestControlDependence:
    def test_then_block_depends_on_branch(self):
        fn, cfg, cd = cd_of("if (n > 2) { a[0] = 1; } a[1] = 2;")
        then_b = block(fn, "if.then")
        deps = cd.of(then_b)
        assert len(deps) == 1
        assert isinstance(deps[0], ir.Br)

    def test_join_not_dependent(self):
        fn, cfg, cd = cd_of("if (n > 2) { a[0] = 1; } a[1] = 2;")
        join = block(fn, "if.end")
        assert cd.of(join) == []

    def test_both_arms_depend(self):
        fn, cfg, cd = cd_of(
            "if (n > 2) { a[0] = 1; } else { a[1] = 2; } a[2] = 3;")
        assert cd.of(block(fn, "if.then"))
        assert cd.of(block(fn, "if.else"))

    def test_nested_dependence_accumulates(self):
        fn, cfg, cd = cd_of("""
            if (n > 2) {
              if (n > 4) { a[0] = 1; }
            }
        """)
        inner_thens = [b for b in fn.blocks if b.name.startswith("if.then")]
        # the innermost then-block depends on both branches
        deepest = max(inner_thens, key=lambda b: len(cd.of(b)))
        assert len(cd.of(deepest)) == 2

    def test_loop_body_depends_on_loop_branch(self):
        fn, cfg, cd = cd_of("for (unsigned i = 0; i < n; i++) { a[i] = 1; }")
        body = block(fn, "for.body")
        deps = cd.of(body)
        assert any(d.meta.get("loop_branch") for d in deps)

    def test_entry_free_of_dependence(self):
        fn, cfg, cd = cd_of("if (n > 2) { a[0] = 1; }")
        assert cd.of(fn.entry) == []
