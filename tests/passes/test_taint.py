"""Taint analysis tests — reproduces the paper's §V examples exactly."""
import pytest

from repro import ir
from repro.core import SESA
from repro.frontend import compile_source
from repro.passes import analyze_taint, standard_pipeline


def taint_of(source: str, kernel: str = None):
    module = compile_source(source)
    standard_pipeline().run(module)
    return analyze_taint(module.get_kernel(kernel))


class TestPaperExampleOne:
    """§V Example 1: the Generic kernel — all inputs concretisable."""

    SOURCE = """
__shared__ int A[64];
__global__ void generic(int a, int b, int c) {
  int u = 0;
  int v = 0;
  int w = threadIdx.x;
  int z = 1;
  if (threadIdx.x < 32) { v = a; } else { v = b; }
  if (c > 3) { u = threadIdx.x * 2; }
  A[w] = v + z;
}
"""

    def test_all_inputs_concretisable(self):
        report = taint_of(self.SOURCE)
        assert report.symbolic_inputs == []
        assert sorted(report.concrete_inputs) == ["a", "b", "c"]

    def test_stored_value_feeds_no_sink(self):
        # a and b flow into A[w]'s *value*, never its address
        report = taint_of(self.SOURCE)
        assert not report.verdicts["a"].must_be_symbolic
        assert not report.verdicts["b"].must_be_symbolic


class TestPaperExampleTwo:
    """§V Example 2: reduction — all inputs concretisable, fixpoint."""

    SOURCE = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
    __syncthreads();
  }
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""

    def test_no_inputs_symbolic(self):
        report = taint_of(self.SOURCE)
        assert report.symbolic_inputs == []

    def test_sinks_counted(self):
        report = taint_of(self.SOURCE)
        assert report.num_sinks >= 5  # sdata r/w + idata/odata accesses


class TestAddressFlow:
    def test_indirect_index_flags_input(self):
        report = taint_of("""
__global__ void scatter(int *idx, float *out) {
  out[idx[threadIdx.x]] = 1.0f;
}""")
        assert report.verdicts["idx"].must_be_symbolic
        assert report.verdicts["idx"].flows_into_address
        assert not report.verdicts["out"].must_be_symbolic

    def test_scalar_offset_flags_input(self):
        report = taint_of("""
__global__ void shift(float *out, int base) {
  out[base + threadIdx.x] = 0.0f;
}""")
        assert report.verdicts["base"].must_be_symbolic

    def test_chained_flow_through_locals(self):
        report = taint_of("""
__global__ void chain(float *out, int base) {
  int x = base * 2;
  int y = x + 1;
  unsigned idx = y + threadIdx.x;
  out[idx] = 0.0f;
}""")
        assert report.verdicts["base"].must_be_symbolic

    def test_flow_through_shared_memory(self):
        # input lands in shared memory and is read back into an address
        report = taint_of("""
__shared__ int stage[64];
__global__ void via_shared(int *data, float *out) {
  stage[threadIdx.x] = data[threadIdx.x];
  __syncthreads();
  out[stage[threadIdx.x]] = 1.0f;
}""")
        assert report.verdicts["data"].must_be_symbolic


class TestConditionFlow:
    def test_guarding_condition_recorded_as_advisory(self):
        report = taint_of("""
__shared__ int s[64];
__global__ void guarded(int *flags) {
  if (flags[threadIdx.x] > 0) {
    s[threadIdx.x >> 1] = 1;
  }
}""")
        verdict = report.verdicts["flags"]
        # condition flow is recorded (§V case 2) but the Table-I policy
        # does not force symbolisation for it
        assert verdict.flows_into_condition
        assert not verdict.flows_into_address

    def test_value_only_flow_is_not_flagged(self):
        report = taint_of("""
__shared__ int s[64];
__global__ void valonly(int *data) {
  s[threadIdx.x] = data[threadIdx.x] * 3;
}""")
        assert not report.verdicts["data"].must_be_symbolic


class TestLoopBounds:
    def test_loop_bound_input_classified(self):
        report = taint_of("""
__shared__ int s[64];
__global__ void loopy(int n) {
  for (int i = 0; i < n; i++) {
    s[threadIdx.x] = i;
  }
}""")
        verdict = report.verdicts["n"]
        assert verdict.flows_into_loop_bound

    def test_loop_bound_excluded_from_symbolisation(self):
        tool = SESA.from_source("""
__shared__ int s[64];
__global__ void loopy(int n) {
  for (int i = 0; i < n; i++) {
    s[threadIdx.x] = i;
  }
}""")
        assert "n" not in tool.inferred_symbolic_inputs()

    def test_address_flow_wins_over_loop_bound(self):
        # bounds[] feeds the loop bound AND the address: stays symbolic
        tool = SESA.from_source("""
__shared__ int s[256];
__global__ void both(int *bounds) {
  int n = bounds[0];
  for (int i = 0; i < n; i++) {
    s[threadIdx.x + n] = i;
  }
}""")
        assert "bounds" in tool.inferred_symbolic_inputs()

    def test_scalar_address_flow_is_advisory_only(self):
        tool = SESA.from_source("""
__global__ void shift(float *out, int base) {
  out[base + threadIdx.x] = 0.0f;
}""")
        verdict = tool.taint.verdicts["base"]
        assert verdict.flows_into_address           # the strict verdict
        assert "base" not in tool.inferred_symbolic_inputs()  # the policy


class TestSinkValueSet:
    def test_address_registers_are_sink_values(self):
        module = compile_source("""
__shared__ int s[64];
__global__ void k(int x) {
  unsigned idx = threadIdx.x * 2;
  s[idx] = 5;
}""")
        standard_pipeline().run(module)
        fn = module.get_kernel()
        report = analyze_taint(fn)
        # the idx computation must be in the sink set
        mul_regs = [i.result for i in fn.instructions()
                    if isinstance(i, ir.BinOp) and i.op in ("mul", "shl")]
        assert any(id(r) in report.sink_value_ids for r in mul_regs)

    def test_unrelated_values_not_in_sink_set(self):
        module = compile_source("""
__shared__ int s[64];
__global__ void k(int x) {
  int dead = x * 17;
  s[threadIdx.x] = 1;
}""")
        standard_pipeline().run(module)
        fn = module.get_kernel()
        report = analyze_taint(fn)
        mul_regs = [i.result for i in fn.instructions()
                    if isinstance(i, ir.BinOp) and i.op == "mul"]
        assert all(id(r) not in report.sink_value_ids for r in mul_regs)


class TestTableOneInputCounts:
    """Table I: SESA infers 0 symbolic inputs for the SDK kernels."""

    @pytest.mark.parametrize("name", [
        "vectorAdd", "clock", "matrixMul", "scan_short", "scan_large",
        "scalarProd", "transpose", "fastWalsh",
    ])
    def test_zero_symbolic_inputs(self, name):
        from repro.kernels import ALL_KERNELS
        k = ALL_KERNELS[name]
        tool = SESA.from_source(k.source, k.kernel_name)
        assert tool.inferred_symbolic_inputs() == set(), \
            f"{name}: {tool.inferred_symbolic_inputs()}"
