"""Use-def, liveness, and alias (pointer-root) analysis tests."""
import pytest

from repro import ir
from repro.frontend import compile_source
from repro.passes import (
    Liveness, UseDef, address_space, index_values, is_shared_or_global,
    mem2reg, remove_unreachable_blocks, root_object,
)


def compiled(source: str) -> ir.Function:
    module = compile_source(source)
    fn = module.get_kernel()
    remove_unreachable_blocks(fn)
    mem2reg(fn)
    return fn


REDUCTION = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
    __syncthreads();
  }
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""


class TestUseDef:
    def test_definitions_found(self):
        fn = compiled(REDUCTION)
        ud = UseDef(fn)
        for instr in fn.instructions():
            if instr.result is not None:
                assert ud.definition(instr.result) is instr

    def test_users_inverse_of_operands(self):
        fn = compiled(REDUCTION)
        ud = UseDef(fn)
        for instr in fn.instructions():
            for op in instr.operands():
                assert instr in ud.users(op)

    def test_dead_register_detected(self):
        fn = compiled("""
__global__ void k(int *a, int n) {
  int dead = n * 17;
  a[threadIdx.x] = 1;
}""")
        ud = UseDef(fn)
        dead = [i.result for i in fn.instructions()
                if isinstance(i, ir.BinOp) and i.op == "mul"]
        assert dead and ud.is_dead(dead[0])


class TestLiveness:
    def test_loop_counter_live_through_body(self):
        fn = compiled(REDUCTION)
        live = Liveness(fn)
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        s_reg = phis[0].result
        # s is live at the exit of the loop body (feeds the step)
        body = next(b for b in fn.blocks if b.name.startswith("for.body"))
        assert live.is_live_out(s_reg, body)

    def test_value_dead_after_last_use(self):
        fn = compiled("""
__global__ void k(int *a, unsigned n) {
  unsigned x = n + 1;
  a[x] = 0;
  a[0] = 1;
  if (n > 2) { a[1] = 2; }
}""")
        live = Liveness(fn)
        adds = [i.result for i in fn.instructions()
                if isinstance(i, ir.BinOp) and i.op == "add"]
        # x's computation is not live out of the entry block's successors
        last = fn.blocks[-1]
        for add in adds:
            assert not live.is_live_out(add, last)

    def test_phi_incomings_live_out_of_predecessors(self):
        fn = compiled("""
__global__ void k(int *a, unsigned n) {
  unsigned v;
  if (n > 4) { v = n + 1; } else { v = n + 2; }
  a[v] = 0;
}""")
        live = Liveness(fn)
        phi = next(i for i in fn.instructions() if isinstance(i, ir.Phi))
        for pred, value in phi.incoming:
            if isinstance(value, ir.Register):
                assert live.is_live_out(value, pred)


class TestAlias:
    def test_shared_global_root(self):
        fn = compiled(REDUCTION)
        geps = [i for i in fn.instructions() if isinstance(i, ir.GEP)]
        roots = {root_object(g.result).name if hasattr(
            root_object(g.result), "name") else None for g in geps}
        assert "sdata" in roots

    def test_argument_root(self):
        fn = compiled(REDUCTION)
        geps = [i for i in fn.instructions() if isinstance(i, ir.GEP)]
        arg_roots = [root_object(g.result) for g in geps
                     if isinstance(root_object(g.result), ir.Argument)]
        assert {r.name for r in arg_roots} == {"idata", "odata"}

    def test_address_space(self):
        fn = compiled(REDUCTION)
        geps = [i for i in fn.instructions() if isinstance(i, ir.GEP)]
        spaces = {address_space(g.result) for g in geps}
        assert ir.MemSpace.SHARED in spaces
        assert ir.MemSpace.GLOBAL in spaces

    def test_local_array_root_is_alloca(self):
        fn = compiled("""
__global__ void k(int *a) {
  int t[8];
  t[threadIdx.x & 7] = 1;
  a[0] = t[0];
}""")
        geps = [i for i in fn.instructions() if isinstance(i, ir.GEP)]
        local = [g for g in geps
                 if address_space(g.result) == ir.MemSpace.LOCAL]
        assert local
        assert not is_shared_or_global(local[0].result)

    def test_gep_chain_indices(self):
        fn = compiled("""
__global__ void k(int *a) {
  int *p = a + 4;
  p[threadIdx.x] = 1;
}""")
        geps = [i for i in fn.instructions() if isinstance(i, ir.GEP)]
        final = geps[-1]
        idx = index_values(final.result)
        assert len(idx) == 2  # tid and the +4

    def test_phi_of_same_root_resolves(self):
        fn = compiled("""
__global__ void k(int *a, unsigned n) {
  int *p;
  if (n > 4) { p = a + 1; } else { p = a + 2; }
  p[0] = 1;
}""")
        stores = [i for i in fn.instructions() if isinstance(i, ir.Store)
                  and is_shared_or_global(i.pointer)]
        assert stores
        root = root_object(stores[0].pointer)
        assert isinstance(root, ir.Argument) and root.name == "a"

    def test_distinct_roots_unresolved(self):
        fn = compiled("""
__global__ void k(int *a, int *b, unsigned n) {
  int *p;
  if (n > 4) { p = a; } else { p = b; }
  p[0] = 1;
}""")
        stores = [i for i in fn.instructions() if isinstance(i, ir.Store)]
        ptr_stores = [s for s in stores
                      if isinstance(s.pointer, ir.Register)]
        assert any(root_object(s.pointer) is None for s in ptr_stores)
