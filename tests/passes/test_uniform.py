"""Tid-uniformity analysis and the barrier-divergence audit."""
from repro import ir
from repro.frontend.codegen import compile_source
from repro.passes import (
    UniformityAnalysis, check_barrier_uniformity, standard_pipeline,
)


def build(source, name):
    mod = compile_source(source, name)
    standard_pipeline().run(mod)
    return mod.get_kernel(name)


def branch_conds(fn):
    return [i for b in fn.blocks for i in b.instrs if isinstance(i, ir.Br)]


class TestUniformity:
    def test_tid_branch_is_nonuniform(self):
        fn = build("""
        __global__ void k(int *v) {
            if (threadIdx.x < 4)
                v[threadIdx.x] = 1;
        }
        """, "k")
        ua = UniformityAnalysis(fn)
        (br,) = branch_conds(fn)
        assert not ua.branch_is_uniform(br)
        guarded = [b for b in fn.blocks if ua.nonuniform_guards(b)]
        assert guarded, "the then-block must be flagged non-uniform"

    def test_uniform_loop_bound_is_uniform(self):
        fn = build("""
        __global__ void k(int *v) {
            for (unsigned int s = 1; s < blockDim.x; s *= 2)
                v[threadIdx.x] = v[threadIdx.x] + 1;
        }
        """, "k")
        ua = UniformityAnalysis(fn)
        loop_brs = [br for br in branch_conds(fn)
                    if br.meta.get("loop_branch")]
        assert loop_brs
        assert all(ua.branch_is_uniform(br) for br in loop_brs)
        # the loop body is a legal barrier insertion point
        body = [b for b in fn.blocks if "for.body" in b.name]
        assert body and all(ua.block_is_uniform(b) for b in body)

    def test_shared_load_feeds_nonuniform_branch(self):
        fn = build("""
        __shared__ int flag[32];
        __global__ void k(int *v) {
            if (flag[0] > 3)
                v[threadIdx.x] = 1;
        }
        """, "k")
        ua = UniformityAnalysis(fn)
        (br,) = branch_conds(fn)
        # conservative: another thread may have written flag[0]
        assert not ua.branch_is_uniform(br)

    def test_argument_guard_is_uniform(self):
        fn = build("""
        __global__ void k(int *v, int n) {
            if (n > 3)
                v[threadIdx.x] = 1;
        }
        """, "k")
        ua = UniformityAnalysis(fn)
        (br,) = branch_conds(fn)
        assert ua.branch_is_uniform(br)


class TestBarrierAudit:
    def test_clean_kernel_has_no_warnings(self):
        fn = build("""
        __shared__ int s[64];
        __global__ void k(int *v) {
            s[threadIdx.x] = v[threadIdx.x];
            __syncthreads();
            v[threadIdx.x] = s[0];
        }
        """, "k")
        assert check_barrier_uniformity(fn) == []

    def test_tid_guarded_barrier_is_flagged(self):
        fn = build("""
        __shared__ int s[64];
        __global__ void k(int *v) {
            if (threadIdx.x < 16) {
                s[threadIdx.x] = v[threadIdx.x];
                __syncthreads();
            }
            v[threadIdx.x] = s[0];
        }
        """, "k")
        warnings = check_barrier_uniformity(fn)
        assert warnings
        assert "barrier divergence" in warnings[0]

    def test_uniformly_guarded_barrier_is_clean(self):
        fn = build("""
        __shared__ int s[64];
        __global__ void k(int *v, int n) {
            if (n > 0) {
                s[threadIdx.x] = v[threadIdx.x];
                __syncthreads();
            }
            v[threadIdx.x] = s[0];
        }
        """, "k")
        assert check_barrier_uniformity(fn) == []
