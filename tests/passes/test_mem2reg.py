"""mem2reg: SSA construction tests."""
import pytest

from repro import ir
from repro.frontend import compile_source
from repro.passes import mem2reg, remove_unreachable_blocks


def compiled(body: str, params: str = "int *a, unsigned n") -> ir.Function:
    module = compile_source(f"__global__ void k({params}) {{ {body} }}")
    fn = module.get_kernel("k")
    remove_unreachable_blocks(fn)
    mem2reg(fn)
    fn.verify()
    return fn


def count(fn: ir.Function, cls) -> int:
    return sum(1 for i in fn.instructions() if isinstance(i, cls))


class TestPromotion:
    def test_scalar_allocas_removed(self):
        fn = compiled("unsigned x = n + 1; a[x] = 2;")
        # only the two parameter spill slots could remain — but they are
        # scalars too, so no allocas at all
        assert count(fn, ir.Alloca) == 0

    def test_loads_of_promoted_slots_removed(self):
        fn = compiled("unsigned x = 1; unsigned y = x + x; a[y] = 0;")
        # remaining loads must all be through GEPs (real memory)
        for instr in fn.instructions():
            if isinstance(instr, ir.Load):
                assert isinstance(instr.pointer.defining, ir.GEP)

    def test_local_array_not_promoted(self):
        fn = compiled("int t[4]; t[0] = 1; a[t[0]] = 2;")
        assert count(fn, ir.Alloca) == 1

    def test_address_taken_slot_not_promoted(self):
        fn = compiled("int x = 1; int *p = &x; *p = 2; a[x] = 0;")
        allocas = [i for i in fn.instructions() if isinstance(i, ir.Alloca)]
        assert len(allocas) == 1  # x stays in memory; p itself is promoted


class TestPhiPlacement:
    def test_if_else_join_gets_phi(self):
        fn = compiled(
            "unsigned v; if (n > 4) { v = 1; } else { v = 2; } a[v] = 0;")
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        assert len(phis[0].incoming) == 2

    def test_loop_header_gets_phi(self):
        fn = compiled("for (unsigned s = 1; s < n; s *= 2) { a[s] = s; }")
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        values = {type(v).__name__ for _, v in phis[0].incoming}
        assert "Constant" in values  # initial s = 1

    def test_no_phi_when_value_unchanged(self):
        fn = compiled("unsigned v = 7; if (n > 4) { a[0] = v; } a[v] = 0;")
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        # v is never redefined: trivial phis must have been pruned
        assert len(phis) == 0

    def test_nested_loops(self):
        fn = compiled(
            "for (unsigned i = 0; i < n; i++) "
            "  for (unsigned j = 0; j < n; j++) "
            "    a[i * n + j] = i + j;")
        fn.verify()
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) >= 2   # i and j counters (plus any j re-inits)
        assert sum(1 for i in fn.instructions()
                   if isinstance(i, ir.Alloca)) == 0

    def test_uninitialised_use_gets_zero(self):
        fn = compiled("unsigned v; if (n > 4) { v = 1; } a[v] = 0;")
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        consts = [v for _, v in phis[0].incoming
                  if isinstance(v, ir.Constant)]
        assert consts and consts[0].value == 0


class TestSemanticsPreserved:
    """Compare symbolic execution before/after — via the executor, the
    reduction example's barrier-interval structure must be identical."""

    def test_reduction_example_matches_paper_bytecode(self):
        src = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
    __syncthreads();
  }
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""
        module = compile_source(src)
        fn = module.get_kernel()
        remove_unreachable_blocks(fn)
        mem2reg(fn)
        fn.verify()
        # the paper's Example 2: loop counter s becomes a single phi
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        # no allocas survive (all scalars promoted)
        assert sum(1 for i in fn.instructions()
                   if isinstance(i, ir.Alloca)) == 0

    def test_unreachable_block_removal(self):
        module = compile_source(
            "__global__ void k(int *a) { return; a[0] = 1; }")
        fn = module.get_kernel("k")
        removed = remove_unreachable_blocks(fn)
        assert removed >= 1
        fn.verify()
