"""Inferred symbolic-input counts for the Table III/IV kernels.

Pins the exact counts this implementation's policy produces (see
EXPERIMENTS.md for the per-row comparison against the paper's columns).
"""
import pytest

from repro.core import SESA
from repro.kernels import ALL_KERNELS

# kernel -> (inferred symbolic count, total params)
EXPECTED = {
    # Table IV
    "parboil_bfs": (5, 11),        # paper: 4/11 (close; the worklist
                                   # scatter taints one extra array here)
    "histo_prescan": (0, 3),       # paper: 1/3 (its port differs)
    "histo_intermediates": (0, 5),  # paper: 0/5 ✓
    "histo_main": (1, 9),          # paper: 2/9
    "histo_final": (0, 8),         # paper: 0/8 ✓
    "binning": (1, 7),             # paper: ⟨2,1⟩/7 — the ⟨·,1⟩ is the
                                   # *actual needed* count, which we match
    "reorder": (1, 4),             # paper: ⟨1,0⟩/4 ✓
    "spmv_jds": (2, 7),            # paper: ⟨2,0⟩/7 ✓
    "stencil": (0, 7),             # paper: 0/7 ✓
    # Table III (data arrays feeding addresses; row also via loop inits)
    "bfs_ls": (2, 6),
    "sssp_ls": (2, 6),
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_inferred_input_count(name):
    kernel = ALL_KERNELS[name]
    tool = SESA.from_source(kernel.source, kernel.kernel_name)
    inferred = tool.inferred_symbolic_inputs()
    expected_sym, expected_total = EXPECTED[name]
    assert len(tool.taint.verdicts) == expected_total, \
        f"{name}: params {sorted(tool.taint.verdicts)}"
    assert len(inferred) == expected_sym, \
        f"{name}: inferred {sorted(inferred)}"


def test_binning_symbolises_the_sample_array():
    kernel = ALL_KERNELS["binning"]
    tool = SESA.from_source(kernel.source, kernel.kernel_name)
    assert "sample_g" in tool.inferred_symbolic_inputs()


def test_bfs_symbolises_the_column_array():
    kernel = ALL_KERNELS["bfs_ls"]
    tool = SESA.from_source(kernel.source, kernel.kernel_name)
    inferred = tool.inferred_symbolic_inputs()
    assert "col" in inferred
    # dist feeds only guard conditions: concretised under the policy
    assert "dist" not in inferred
    # row feeds both a loop bound and (via the edge index) addresses;
    # address flow wins (§III-C exclusion only covers bound-only inputs)
    assert tool.taint.verdicts["row"].flows_into_loop_bound
