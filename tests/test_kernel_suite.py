"""Suite-wide verification: every bundled kernel produces the expected
verdicts (issues found / clean, resolvability) at a downscaled but
structure-preserving configuration. Heavier full-config runs live in the
benchmarks; the three genuine Parboil bugs get dedicated exact tests in
test_parboil_bugs.py.
"""
import pytest

from repro.core import SESA
from repro.kernels import ALL_KERNELS
from repro.kernels.lonestar import attach_concrete_graph


def _scaled_config(k, max_grid=2, max_block=64):
    grid = tuple(min(g, max_grid) for g in k.grid_dim)
    block = tuple(min(b, max_block) for b in k.block_dim)
    cfg = k.launch_config(grid_dim=grid, block_dim=block)
    if k.table.startswith("Table III") or k.name == "parboil_bfs":
        attach_concrete_graph(cfg)
    return cfg


# kernels whose verdict needs the full-size configuration (exercised in
# test_parboil_bugs.py and the benchmarks instead)
FULL_CONFIG_ONLY = {"histo_final", "stencil", "matrixMul", "transpose",
                    "reorder", "spmv_jds"}
SLOW = {"bitonic_fig1", "bitonic2.0", "bitonic4.3"}


@pytest.mark.parametrize("name", sorted(
    n for n in ALL_KERNELS if n not in FULL_CONFIG_ONLY and n not in SLOW))
def test_kernel_verdict(name):
    k = ALL_KERNELS[name]
    cfg = _scaled_config(k)
    report = SESA.from_source(k.source, k.kernel_name).check(cfg)

    found = set(report.race_kinds()) | ({"OOB"} if report.oobs else set())
    expected = set(k.expected_issues)
    if expected:
        assert found & _kind_closure(expected), \
            f"{name}: expected one of {expected}, found {found}\n" + \
            report.summary()
    else:
        non_benign = {f for f in found if "Benign" not in f}
        assert not non_benign, \
            f"{name}: expected clean, found {found}\n" + report.summary()


def _kind_closure(kinds):
    """Accept standard aliases: RW covers WR; benign annotations match
    their base kind."""
    out = set()
    for k in kinds:
        out.add(k)
        out.add(k.replace(" (Benign)", ""))
        if k == "RW":
            out.add("WR")
    return out


@pytest.mark.parametrize("name", sorted(
    n for n, k in ALL_KERNELS.items()
    if k.paper_resolvable is not None
    and n not in FULL_CONFIG_ONLY and n not in SLOW))
def test_resolvability_verdict(name):
    k = ALL_KERNELS[name]
    report = SESA.from_source(k.source, k.kernel_name).check(
        _scaled_config(k))
    assert report.resolvable == k.paper_resolvable, \
        f"{name}: paper says RSLV={k.paper_resolvable}, " \
        f"tool says {report.resolvable}"


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_kernel_compiles_and_taints(name):
    k = ALL_KERNELS[name]
    tool = SESA.from_source(k.source, k.kernel_name)
    assert tool.taint.verdicts is not None
    if k.paper_inputs is not None:
        _, total = k.paper_inputs
        assert len(tool.taint.verdicts) == total, \
            f"{name}: expected {total} params, " \
            f"have {len(tool.taint.verdicts)}"
