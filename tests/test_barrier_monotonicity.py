"""Metamorphic property: barrier insertion is monotone.

Adding ``__syncthreads()`` between statements orders more accesses and
can only *remove* races — if the barrier-saturated variant still races,
the original must race. (The converse direction is the reduction_racy
story: removing a barrier introduced the race.)
"""
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import SESA, LaunchConfig

STMTS = [
    "s[threadIdx.x] = (int)threadIdx.x;",
    "s[(threadIdx.x + 1) % 8] = 1;",
    "s[threadIdx.x / 2] = 2;",
    "tmp = s[threadIdx.x] + tmp;",
    "s[threadIdx.x * 2] = tmp;",
    "tmp = s[7 - threadIdx.x] + 1;",
]


def kernel_with(statements, barriers: bool) -> str:
    sep = "\n  __syncthreads();\n  " if barriers else "\n  "
    body = sep.join(statements)
    return f"""
__shared__ int s[64];
__global__ void k() {{
  int tmp = 0;
  {body}
}}
"""


def has_races(source: str) -> bool:
    report = SESA.from_source(source).check(
        LaunchConfig(block_dim=8, check_oob=False))
    return report.has_races


@settings(max_examples=20, deadline=None)
@given(chosen=st.lists(st.sampled_from(STMTS), min_size=2, max_size=4))
def test_barriers_only_remove_races(chosen):
    racy_saturated = has_races(kernel_with(chosen, barriers=True))
    racy_plain = has_races(kernel_with(chosen, barriers=False))
    if racy_saturated:
        assert racy_plain, "\n".join(chosen)


def test_known_pair():
    stmts = ["s[threadIdx.x] = 1;",
             "tmp = s[(threadIdx.x + 1) % 8] + 1;",
             "s[threadIdx.x] = tmp;"]
    assert has_races(kernel_with(stmts, barriers=False))
    assert not has_races(kernel_with(stmts, barriers=True))
