"""Atomic access semantics across engines and pruning modes.

The race definition (paper §II) exempts atomic-atomic pairs: two
atomics on the same cell serialise in hardware, so they never race
with *each other* — but an atomic against a plain access is a real
race. These must hold identically in every engine and with the
pruning pipeline on or off; pruning is a performance layer, never a
semantics layer.
"""
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import GKLEEp, SESA, LaunchConfig

ENGINES = [SESA, GKLEEp]


def _config(engine_cls, pruning, block=8):
    kwargs = dict(block_dim=block, check_oob=False,
                  pair_pruning=pruning)
    if engine_cls is not SESA:
        kwargs["symbolic_inputs"] = set()
    return LaunchConfig(**kwargs)


def _real_races(report):
    return [r for r in report.races if not r.benign]


ATOMIC_VS_ATOMIC = """
__global__ void k(int *c) {
  atomicAdd(&c[0], 1);
}
"""

ATOMIC_VS_ATOMIC_TWO_SITES = """
__global__ void k(int *c) {
  if (threadIdx.x % 2 == 0) { atomicAdd(&c[0], 1); }
  else { atomicAdd(&c[0], 2); }
}
"""

ATOMIC_VS_PLAIN_WRITE = """
__global__ void k(int *c) {
  if (threadIdx.x == 0u) { c[0] = 0; }
  else { atomicAdd(&c[0], 1); }
}
"""

ATOMIC_VS_PLAIN_READ = """
__global__ void k(int *c, int *out) {
  if (threadIdx.x == 0u) { out[0] = c[0]; }
  else { atomicAdd(&c[0], 1); }
}
"""

DISJOINT_ATOMIC_AND_PLAIN = """
__global__ void k(int *c) {
  if (threadIdx.x == 0u) { c[1] = 7; }
  else { atomicAdd(&c[0], 1); }
}
"""


@pytest.mark.parametrize("engine_cls", ENGINES,
                         ids=lambda e: e.__name__)
@pytest.mark.parametrize("pruning", [True, False],
                         ids=["pruned", "unpruned"])
class TestAtomicSemantics:
    def test_atomic_vs_atomic_never_races(self, engine_cls, pruning):
        report = engine_cls.from_source(ATOMIC_VS_ATOMIC).check(
            _config(engine_cls, pruning))
        assert not _real_races(report), report.summary()

    def test_atomic_vs_atomic_across_sites_never_races(
            self, engine_cls, pruning):
        report = engine_cls.from_source(
            ATOMIC_VS_ATOMIC_TWO_SITES).check(
            _config(engine_cls, pruning))
        assert not _real_races(report), report.summary()

    def test_atomic_vs_plain_write_races(self, engine_cls, pruning):
        report = engine_cls.from_source(ATOMIC_VS_PLAIN_WRITE).check(
            _config(engine_cls, pruning))
        races = _real_races(report)
        assert races, report.summary()

    def test_atomic_vs_plain_read_races(self, engine_cls, pruning):
        report = engine_cls.from_source(ATOMIC_VS_PLAIN_READ).check(
            _config(engine_cls, pruning))
        assert _real_races(report), report.summary()

    def test_disjoint_atomic_and_plain_safe(self, engine_cls, pruning):
        report = engine_cls.from_source(
            DISJOINT_ATOMIC_AND_PLAIN).check(
            _config(engine_cls, pruning))
        assert not _real_races(report), report.summary()


# ----------------------------------------------------------------------
# property: generated mixed atomic/plain kernels agree across engines
# and across pruning modes on the racy/safe verdict
# ----------------------------------------------------------------------

ACCESSES = [
    ("atomic", "atomicAdd(&c[{idx}], 1);"),
    ("write", "c[{idx}] = {v};"),
]
INDICES = ["0", "threadIdx.x % 4"]


@st.composite
def atomic_kernels(draw):
    """Two-armed kernels where each arm is an atomic or a plain write
    to either a shared cell or a tid-strided slot."""
    kinds = []
    arms = []
    for i, cond in enumerate(("threadIdx.x % 2 == 0", "else")):
        kind, template = draw(st.sampled_from(ACCESSES))
        idx = draw(st.sampled_from(INDICES))
        kinds.append((kind, idx))
        body = template.format(idx=idx, v=i + 1)
        arms.append(body)
    source = ("__global__ void k(int *c) {\n"
              f"  if (threadIdx.x % 2 == 0) {{ {arms[0]} }}\n"
              f"  else {{ {arms[1]} }}\n"
              "}\n")
    return source, kinds


@given(atomic_kernels())
@settings(max_examples=20, deadline=None)
def test_property_engines_and_pruning_agree(case):
    source, kinds = case
    verdicts = {}
    for engine_cls in ENGINES:
        for pruning in (True, False):
            report = engine_cls.from_source(source).check(
                _config(engine_cls, pruning))
            verdicts[(engine_cls.__name__, pruning)] = \
                bool(_real_races(report))
    assert len(set(verdicts.values())) == 1, (source, verdicts)
    # and the exemption itself: two atomics only, same cell -> safe
    if all(kind == "atomic" for kind, _ in kinds):
        assert not any(verdicts.values()), source
