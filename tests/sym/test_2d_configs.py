"""Multi-dimensional launch configurations (2D/3D tids and bids)."""
import pytest

from repro.core import SESA, LaunchConfig, check_source


def check(source, grid=(1, 1, 1), block=(8, 8, 1), **kw):
    return check_source(source, LaunchConfig(grid_dim=grid,
                                             block_dim=block, **kw))


class TestTwoDimensionalBlocks:
    def test_disjoint_2d_writes_clean(self):
        report = check("""
__shared__ float tile[64];
__global__ void k() {
  tile[threadIdx.y * 8 + threadIdx.x] = 1.0f;
}""")
        assert not report.races

    def test_row_collision_found(self):
        # all threads of a row write the same cell
        report = check("""
__shared__ int rowsum[8];
__global__ void k() {
  rowsum[threadIdx.y] = threadIdx.x;
}""")
        assert report.has_races
        race = report.races[0]
        w = race.witness
        # witness threads differ in x, agree in y (same cell)
        assert w.thread1[1] == w.thread2[1]
        assert w.thread1[0] != w.thread2[0]

    def test_transposed_access_races(self):
        report = check("""
__shared__ int tile[64];
__global__ void k() {
  tile[threadIdx.y * 8 + threadIdx.x] = 1;
  int v = tile[threadIdx.x * 8 + threadIdx.y];
  tile[threadIdx.y * 8 + threadIdx.x] = v;
}""")
        assert report.has_races

    def test_barrier_fixes_transpose(self):
        report = check("""
__shared__ int tile[64];
__global__ void k(int *out) {
  tile[threadIdx.y * 8 + threadIdx.x] = 1;
  __syncthreads();
  out[threadIdx.y * 8 + threadIdx.x] =
      tile[threadIdx.x * 8 + threadIdx.y];
}""", check_oob=False)
        assert not report.has_races


class TestMultiBlock2D:
    def test_global_2d_disjoint(self):
        report = check("""
__global__ void k(float *out, int width) {
  unsigned x = blockIdx.x * blockDim.x + threadIdx.x;
  unsigned y = blockIdx.y * blockDim.y + threadIdx.y;
  out[y * 32 + x] = 1.0f;
}""", grid=(4, 4, 1), block=(8, 8, 1),
            scalar_values={"width": 32}, check_oob=False)
        assert not report.races

    def test_affine_fast_path_2d(self):
        """The 2D global-id map is discharged without the SAT core."""
        report = check("""
__global__ void k(float *out) {
  unsigned x = blockIdx.x * blockDim.x + threadIdx.x;
  unsigned y = blockIdx.y * blockDim.y + threadIdx.y;
  out[y * 32 + x] = 1.0f;
}""", grid=(4, 4, 1), block=(8, 8, 1), check_oob=False)
        assert not report.races
        assert report.check_stats.by_affine >= 1

    def test_column_race_across_blocks(self):
        report = check("""
__global__ void k(int *colsum) {
  unsigned x = blockIdx.x * blockDim.x + threadIdx.x;
  colsum[x & 7] = (int)threadIdx.y;
}""", grid=(2, 1, 1), block=(8, 2, 1), check_oob=False)
        assert report.has_races


class TestZDimension:
    def test_3d_disjoint(self):
        report = check("""
__shared__ int buf[64];
__global__ void k() {
  buf[threadIdx.z * 16 + threadIdx.y * 4 + threadIdx.x] = 1;
}""", block=(4, 4, 4))
        assert not report.races

    def test_3d_plane_collision(self):
        report = check("""
__shared__ int buf[64];
__global__ void k() {
  buf[threadIdx.y * 4 + threadIdx.x] = (int)threadIdx.z;
}""", block=(4, 4, 4))
        assert report.has_races
