"""Property-based coverage tests for the swarm partitioner.

The whole soundness argument of swarm mode rests on one structural
fact: the shard selectors tile the canonical pair enumeration exactly —
every ordinal in exactly one shard, no pair dropped, none duplicated —
for *any* group structure, shard count, and size budget. Hypothesis
drives that space; the explicit edge cases pin the empty-kernel and
oversized-group behaviours.
"""
import pytest

from repro.sym.swarm import (
    ShardSelector, plan_partitions, split_span, validate_partition,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

group_sizes = st.lists(st.integers(min_value=0, max_value=40),
                       min_size=0, max_size=12)


@given(sizes=group_sizes, shards=st.integers(1, 9))
@settings(max_examples=200, deadline=None)
def test_every_pair_in_exactly_one_shard(sizes, shards):
    selectors = plan_partitions(sizes, shards)
    validate_partition(selectors)
    total = sum(sizes)
    for ordinal in range(total):
        owners = [s for s in selectors if s.contains(ordinal)]
        assert len(owners) == 1, \
            f"ordinal {ordinal} owned by {len(owners)} shards"
    for sel in selectors:
        assert not sel.contains(total)
        assert not sel.contains(total + 7)
        assert not sel.contains(-1)


@given(sizes=group_sizes, shards=st.integers(1, 9),
       budget=st.integers(1, 25))
@settings(max_examples=200, deadline=None)
def test_budgeted_split_still_tiles_exactly(sizes, shards, budget):
    """An explicit per-shard budget recursively splits oversized
    groups; the result must still be an exact tiling and the call must
    terminate (hypothesis would hang a non-terminating split)."""
    selectors = plan_partitions(sizes, shards,
                                max_pairs_per_shard=budget)
    validate_partition(selectors)
    covered = sum(s.num_pairs for s in selectors)
    assert covered == sum(sizes)
    assert sum(1 for s in selectors if s.check_aux) == 1


@given(lo=st.integers(0, 10_000), size=st.integers(1, 10_000),
       budget=st.integers(1, 64))
@settings(max_examples=300, deadline=None)
def test_split_span_terminates_and_covers(lo, size, budget):
    chunks = split_span(lo, lo + size, budget)
    assert all(b - a <= budget for a, b in chunks)
    assert all(b > a for a, b in chunks)
    # ascending, gapless cover of [lo, lo+size)
    cursor = lo
    for a, b in chunks:
        assert a == cursor
        cursor = b
    assert cursor == lo + size


@given(sizes=group_sizes, shards=st.integers(1, 9))
@settings(max_examples=100, deadline=None)
def test_selector_round_trips_through_dict(sizes, shards):
    for sel in plan_partitions(sizes, shards):
        assert ShardSelector.from_dict(sel.to_dict()) == sel


# ---------------------------------------------------------------------
# explicit edges
# ---------------------------------------------------------------------

def test_empty_enumeration_yields_single_aux_shard():
    selectors = plan_partitions([], 8)
    assert len(selectors) == 1
    assert selectors[0].check_aux
    assert selectors[0].total_pairs == 0
    validate_partition(selectors)


def test_more_shards_than_pairs_drops_empty_shards():
    selectors = plan_partitions([1, 1], 8)
    validate_partition(selectors)
    assert len(selectors) == 2
    assert all(s.num_pairs == 1 for s in selectors)


def test_one_giant_group_is_halved():
    selectors = plan_partitions([1000], 4)
    validate_partition(selectors)
    assert len(selectors) == 4
    assert max(s.num_pairs for s in selectors) <= 2 * (1000 // 4)


def test_malformed_descriptor_rejected():
    with pytest.raises(ValueError):
        ShardSelector.from_dict({"index": 0})
    with pytest.raises(ValueError):
        ShardSelector.from_dict("s1of4")
    with pytest.raises(ValueError):
        # overlapping ranges
        ShardSelector(index=0, count=1, total_pairs=10,
                      ranges=((0, 5), (3, 8)))
    with pytest.raises(ValueError):
        plan_partitions([3, -1], 2)
    with pytest.raises(ValueError):
        plan_partitions([3], 0)


def test_validate_partition_catches_gap_and_overlap():
    good = plan_partitions([10, 10], 2)
    validate_partition(good)
    gap = [ShardSelector(index=0, count=2, total_pairs=20,
                         ranges=((0, 9),)),
           ShardSelector(index=1, count=2, total_pairs=20,
                         ranges=((10, 20),), check_aux=True)]
    with pytest.raises(ValueError, match="gap"):
        validate_partition(gap)
    overlap = [ShardSelector(index=0, count=2, total_pairs=20,
                             ranges=((0, 11),)),
               ShardSelector(index=1, count=2, total_pairs=20,
                             ranges=((10, 20),), check_aux=True)]
    with pytest.raises(ValueError, match="overlap"):
        validate_partition(overlap)
    with pytest.raises(ValueError, match="aux"):
        validate_partition([ShardSelector(index=0, count=1,
                                          total_pairs=20,
                                          ranges=((0, 20),))])
