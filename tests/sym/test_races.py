"""Race checker unit tests: pair selection, warp semantics, OOB, benign."""
import pytest

from repro.core import GKLEEp, SESA, LaunchConfig, check_source


def check(source, *, block=64, grid=1, warp=32, lockstep=False, oob=False,
          kernel=None, **kw):
    cfg = LaunchConfig(grid_dim=grid, block_dim=block, warp_size=warp,
                       warp_lockstep=lockstep, check_oob=oob, **kw)
    return check_source(source, cfg, kernel_name=kernel)


class TestSharedMemoryRaces:
    def test_adjacent_write_read(self):
        report = check("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = s[(threadIdx.x + 1) % blockDim.x];
}""")
        assert report.has_races
        kinds = {r.kind for r in report.races}
        assert kinds & {"RW", "WR"}

    def test_disjoint_writes_clean(self):
        report = check("""
__shared__ int s[64];
__global__ void k() { s[threadIdx.x] = 1; }""")
        assert not report.races

    def test_strided_disjoint_clean(self):
        report = check("""
__shared__ int s[128];
__global__ void k() {
  s[threadIdx.x * 2] = 1;
  s[threadIdx.x * 2 + 1] = 2;
}""")
        assert not report.races

    def test_all_threads_same_cell_ww(self):
        report = check("""
__shared__ int s[64];
__global__ void k() { s[0] = threadIdx.x; }""")
        ww = [r for r in report.races if r.kind == "WW"]
        assert ww and not ww[0].benign  # different values: not benign

    def test_same_cell_same_value_benign(self):
        report = check("""
__shared__ int s[64];
__global__ void k() { s[0] = 7; }""")
        ww = [r for r in report.races if r.kind == "WW"]
        assert ww and ww[0].benign

    def test_barrier_separates_intervals(self):
        report = check("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = 1;
  __syncthreads();
  int x = s[(threadIdx.x + 1) % blockDim.x];
  s[threadIdx.x] = x;
}""")
        # read of neighbour's cell is ordered by the barrier w.r.t. the
        # first write; but within BI2 the read races the second write
        assert report.has_races
        for race in report.races:
            assert race.access1.bi_index == race.access2.bi_index

    def test_missing_barrier_is_racy(self):
        report = check("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = 1;
  int x = s[(threadIdx.x + 1) % blockDim.x];
  s[threadIdx.x] = x;
}""")
        assert report.has_races


class TestGlobalMemoryRaces:
    def test_inter_block_race(self):
        # every block writes cell 0 of global memory
        report = check("""
__global__ void k(int *g) { if (threadIdx.x == 0) { g[0] = blockIdx.x; } }
""", grid=4)
        assert report.has_races

    def test_per_thread_global_clean(self):
        report = check("""
__global__ void k(int *g) {
  g[blockIdx.x * blockDim.x + threadIdx.x] = 1;
}""", grid=4)
        assert not report.races

    def test_barrier_does_not_order_across_blocks(self):
        # the barrier orders the two accesses within a block, but thread
        # pairs in *different* blocks still race
        report = check("""
__global__ void k(int *g) {
  g[threadIdx.x] = 1;
  __syncthreads();
  g[threadIdx.x] = 2;
}""", grid=2)
        assert report.has_races
        assert any(r.access1.bi_index != r.access2.bi_index
                   or r.access1.bi_index == r.access2.bi_index
                   for r in report.races)

    def test_single_block_barrier_orders(self):
        report = check("""
__global__ void k(int *g) {
  g[threadIdx.x] = 1;
  __syncthreads();
  g[threadIdx.x] = 2;
}""", grid=1)
        assert not report.has_races


class TestAtomics:
    def test_atomic_vs_atomic_clean(self):
        report = check("""
__global__ void k(unsigned *c) { atomicAdd(&c[0], 1); }""")
        assert not report.races

    def test_atomic_vs_plain_read_races(self):
        report = check("""
__global__ void k(unsigned *c, unsigned *out) {
  if (threadIdx.x == 0) { out[0] = c[0]; }
  else { atomicAdd(&c[0], 1); }
}""")
        assert report.has_races

    def test_atomic_vs_plain_write_races(self):
        report = check("""
__global__ void k(unsigned *c) {
  if (threadIdx.x == 0) { c[0] = 5; }
  else { atomicAdd(&c[0], 1); }
}""")
        assert report.has_races


class TestWarpSemantics:
    DIVERGED = """
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x % 2 == 0) { int x = s[threadIdx.x]; x = x + 1; }
  else { s[threadIdx.x >> 2] = 1; }
}"""

    LOCKSTEP = """
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = 1;
  int x = s[(threadIdx.x + 2) % 32];
  s[threadIdx.x] = x;
}"""

    def test_divergent_intra_warp_race_found_at_warp32(self):
        """§II: the divergent-branch race manifests 'no matter whether
        t1 and t2 are within a warp or not' — even under lock-step."""
        report = check(self.DIVERGED, block=32, warp=32, lockstep=True)
        assert report.has_races

    def test_lockstep_intra_warp_ordered_at_warp32(self):
        """Within one warp, straight-line accesses execute in lock-step:
        no race for a single 32-thread warp."""
        report = check(self.LOCKSTEP, block=32, warp=32, lockstep=True)
        assert not report.has_races

    def test_lockstep_races_at_warp1(self):
        """With warp size 1 (the compiler's legal view, §II), the same
        kernel races — programmers relying on warp-synchronism get hurt."""
        report = check(self.LOCKSTEP, block=32, warp=1, lockstep=True)
        assert report.has_races

    def test_lockstep_races_under_default_view(self):
        """The default (no lock-step assumption, 'warp size may be 1')
        reports the warp-synchronous pattern as racy."""
        report = check(self.LOCKSTEP, block=32, warp=32)
        assert report.has_races

    def test_simultaneous_simd_write_races_even_in_warp(self):
        report = check("""
__shared__ int s[64];
__global__ void k() { s[threadIdx.x / 2] = threadIdx.x; }
""", block=32, warp=32, lockstep=True)
        assert report.has_races


class TestOutOfBounds:
    def test_overflow_caught(self):
        report = check("""
__global__ void k(int *g) {
  g[blockIdx.x * blockDim.x + threadIdx.x + 1] = 1;
}""", oob=True, array_sizes={"g": 64})
        assert report.has_oob
        oob = report.oobs[0]
        # only the very last thread runs off the end
        assert oob.witness.thread1[0] == 63

    def test_exact_fit_clean(self):
        report = check("""
__global__ void k(int *g) { g[threadIdx.x] = 1; }
""", oob=True, array_sizes={"g": 64})
        assert not report.oobs

    def test_guard_prevents_oob(self):
        report = check("""
__global__ void k(int *g, int n) {
  unsigned i = threadIdx.x;
  if (i < 32u) { g[i] = 1; }
}""", oob=True, array_sizes={"g": 32})
        assert not report.oobs

    def test_shared_oob(self):
        report = check("""
__shared__ int s[32];
__global__ void k() { s[threadIdx.x] = 1; }
""", oob=True)  # 64 threads, 32 slots
        assert report.has_oob


class TestWitnesses:
    def test_witness_satisfies_race(self):
        report = check("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = s[(threadIdx.x + 1) % blockDim.x];
}""")
        race = report.races[0]
        w = race.witness
        assert w.thread1 != w.thread2
        assert 0 <= w.thread1[0] < 64 and 0 <= w.thread2[0] < 64

    def test_input_values_in_witness(self):
        report = check("""
__global__ void k(int *data, int *out) {
  out[data[threadIdx.x] & 31] = threadIdx.x;
}""", oob=False)
        assert report.has_races
