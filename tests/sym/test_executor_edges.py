"""Executor edge cases: casts, selects, atomics, do-while, pointer phis,
float intrinsics, opaque conversions."""
import pytest

from repro.core import LaunchConfig, check_source
from repro.frontend import compile_source
from repro.passes import standard_pipeline
from repro.smt import evaluate
from repro.sym import AccessKind, Executor, LaunchConfig as LC


def run(source, block=8, **kw):
    module = compile_source(source)
    standard_pipeline().run(module)
    fn = module.get_kernel()
    config = LC(block_dim=(block, 1, 1),
                symbolic_inputs={a.name for a in fn.args}, **kw)
    return Executor(module, fn, config).run()


def write_value(result, tid):
    writes = [a for s in result.bi_access_sets for a in s
              if a.kind == AccessKind.WRITE]
    assert len(writes) == 1
    return evaluate(writes[0].value, {"tid.x": tid})


class TestCasts:
    def test_trunc_wraps(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  char c = (char)(threadIdx.x + 250);
  s[threadIdx.x] = (int)c;
}""")
        # tid=10: (10+250)=260 -> char 4 -> sext back = 4
        assert write_value(result, 10) == 4

    def test_sext_of_negative(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  char c = (char)255;
  s[threadIdx.x] = (int)c;
}""")
        assert write_value(result, 0) == 0xFFFFFFFF  # -1 as u32

    def test_zext_of_unsigned_char(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  unsigned char c = (unsigned char)255;
  s[threadIdx.x] = (int)c;
}""")
        assert write_value(result, 0) == 255

    def test_bool_to_int(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  int b = threadIdx.x > 3;
  s[threadIdx.x] = b;
}""")
        assert write_value(result, 2) == 0
        # need separate eval per tid on the same term
        writes = [a for st in result.bi_access_sets for a in st
                  if a.kind == AccessKind.WRITE]
        assert evaluate(writes[0].value, {"tid.x": 5}) == 1


class TestSelect:
    def test_ternary_value(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = threadIdx.x < 4 ? 100 : 200;
}""")
        assert write_value(result, 1) == 100
        writes = [a for st in result.bi_access_sets for a in st
                  if a.kind == AccessKind.WRITE]
        assert evaluate(writes[0].value, {"tid.x": 6}) == 200

    def test_min_max(self):
        result = run("""
__shared__ unsigned s[64];
__global__ void k() {
  s[threadIdx.x] = min(threadIdx.x, 3u) + max(threadIdx.x, 5u);
}""")
        assert write_value(result, 1) == 1 + 5
        writes = [a for st in result.bi_access_sets for a in st
                  if a.kind == AccessKind.WRITE]
        assert evaluate(writes[0].value, {"tid.x": 7}) == 3 + 7

    def test_abs(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  int v = (int)threadIdx.x - 4;
  s[threadIdx.x] = abs(v);
}""")
        assert write_value(result, 1) == 3
        writes = [a for st in result.bi_access_sets for a in st
                  if a.kind == AccessKind.WRITE]
        assert evaluate(writes[0].value, {"tid.x": 6}) == 2


class TestLoops:
    def test_do_while_executes_once(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  int i = 0;
  do { i = i + 1; } while (i < 3);
  s[threadIdx.x] = i;
}""")
        assert write_value(result, 0) == 3

    def test_break_mid_loop(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  int acc = 0;
  for (int i = 0; i < 100; i++) {
    if (i == 5) break;
    acc = acc + 1;
  }
  s[threadIdx.x] = acc;
}""")
        assert write_value(result, 0) == 5

    def test_continue_skips(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  int acc = 0;
  for (int i = 0; i < 6; i++) {
    if (i % 2 == 0) continue;
    acc = acc + i;
  }
  s[threadIdx.x] = acc;
}""")
        assert write_value(result, 0) == 1 + 3 + 5


class TestAtomicsExtended:
    def test_atomic_cas_recorded(self):
        result = run("""
__global__ void k(unsigned *lock) {
  atomicCAS(&lock[0], 0, 1);
}""")
        accesses = list(result.bi_access_sets[0])
        assert accesses[0].kind == AccessKind.ATOMIC

    def test_atomic_min_max_exch(self):
        result = run("""
__global__ void k(int *a) {
  atomicMin(&a[0], 1);
  atomicMax(&a[1], 2);
  atomicExch(&a[2], 3);
}""")
        atomics = [x for x in result.bi_access_sets[0]
                   if x.kind == AccessKind.ATOMIC]
        assert len(atomics) == 3

    def test_atomic_inc_default_arg(self):
        result = run("""
__global__ void k(unsigned *c) {
  atomicInc(&c[0], 16u);
}""")
        assert len(list(result.bi_access_sets[0])) == 1


class TestFloatOpacity:
    def test_float_ops_are_uf(self):
        from repro.smt.terms import Op
        result = run("""
__shared__ float s[64];
__global__ void k(float *in) {
  s[threadIdx.x] = sqrtf(in[threadIdx.x]) * 2.0f;
}""")
        writes = [a for st in result.bi_access_sets for a in st
                  if a.kind == AccessKind.WRITE and "s" in a.obj.name]
        value = writes[0].value
        from repro.smt import iter_dag
        assert any(t.op == Op.UF for t in iter_dag([value]))

    def test_fcmp_guard_is_symbolic(self):
        result = run("""
__shared__ float s[64];
__global__ void k(float *in) {
  if (in[threadIdx.x] > 0.5f) { s[threadIdx.x] = 1.0f; }
}""")
        writes = [a for st in result.bi_access_sets for a in st
                  if a.kind == AccessKind.WRITE]
        assert writes and not writes[0].cond.is_const()

    def test_same_float_expr_consistent(self):
        """Hash-consing gives functional consistency: the same float
        computation appears as the same opaque node."""
        result = run("""
__shared__ float s[64];
__global__ void k(float *in) {
  float a = in[threadIdx.x] * 2.0f;
  float b = in[threadIdx.x] * 2.0f;
  if (a > b) { s[0] = 1.0f; }  // identical nodes: a > b is one UF
}""")
        # executing is enough; the guard folds over identical UF nodes
        assert result.num_barriers >= 1


class TestPointerHandling:
    def test_pointer_phi_same_object(self):
        result = run("""
__shared__ int s[64];
__global__ void k() {
  int *p;
  if (threadIdx.x % 2 == 0) { p = &s[0]; } else { p = &s[32]; }
  *p = 1;
}""")
        writes = [a for st in result.bi_access_sets for a in st
                  if a.kind == AccessKind.WRITE]
        assert len(writes) == 1
        assert evaluate(writes[0].offset, {"tid.x": 0}) == 0
        assert evaluate(writes[0].offset, {"tid.x": 1}) == 32 * 4

    def test_pointer_arithmetic_chain(self):
        result = run("""
__global__ void k(int *a) {
  int *p = a + 4;
  int *q = p + (int)threadIdx.x;
  *q = 1;
}""")
        writes = [x for st in result.bi_access_sets for x in st
                  if x.kind == AccessKind.WRITE]
        assert evaluate(writes[0].offset, {"tid.x": 3}) == (4 + 3) * 4
