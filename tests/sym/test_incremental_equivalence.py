"""Differential check: incremental sessions must not change verdicts.

The incremental solver path (blast-once preambles + assumption-based
SAT + query memo) is a pure performance layer: for every kernel the
set of races, OOBs and assertion failures — including kinds, objects,
source lines and benign flags — must be identical to the one-shot
path. Witness *values* may legitimately differ (both are valid models
of the same formula), so they are excluded from the signature.
"""
import pytest

from repro.core import SESA
from repro.service.corpus import SUITES, spec_from_kernel

# a fast cross-section of the corpus: racy, clean, benign-WW, OOB,
# divergence-heavy and barrier-heavy kernels (each < ~1 s per mode)
FAST_KERNELS = [
    ("paper", "race_example"),
    ("paper", "reduction_racy"),
    ("paper", "bitonic_fig1"),
    ("sdk", "histogram64"),
    ("sdk", "scan_short"),
    ("reductions", "reduce4"),
    ("divergent", "stream_compaction"),
]


def _kernel(suite, name):
    for k in SUITES[suite]:
        if k.name == name:
            return k
    raise KeyError(f"{suite}/{name}")


def _run(suite, name, incremental):
    spec = spec_from_kernel(_kernel(suite, name), suite=suite)
    spec.incremental_solving = incremental
    tool = SESA.from_source(spec.source, spec.kernel_name)
    config = spec.launch_config()
    # this suite studies the solver session path; the static tier would
    # resolve these kernels before a session is ever constructed
    config.static_tier = False
    return tool.check(config)


def _signature(report):
    races = sorted(
        (r.kind, r.obj_name, r.access1.loc, r.access2.loc,
         r.benign, r.unresolvable) for r in report.races)
    oobs = sorted((o.obj_name, o.access.loc) for o in report.oobs)
    asserts = sorted(a.loc for a in report.assertion_failures)
    return (races, oobs, asserts, report.timed_out)


@pytest.mark.parametrize("suite,name", FAST_KERNELS,
                         ids=[f"{s}/{n}" for s, n in FAST_KERNELS])
def test_identical_verdicts(suite, name):
    one_shot = _run(suite, name, incremental=False)
    incremental = _run(suite, name, incremental=True)
    assert _signature(incremental) == _signature(one_shot)


def test_incremental_actually_engages():
    # a racy kernel with several candidate pairs must hit the session
    # path, reuse preambles across pairs, and never fall back to the
    # one-shot SAT constructor per query
    report = _run("paper", "reduction_racy", incremental=True)
    cs = report.check_stats
    assert cs is not None
    assert cs.sessions_created >= 1
    assert cs.preamble_reuse >= 1
    assert cs.solver.by_session > 0
    assert cs.solver.sat_instances <= cs.solver.by_session


def test_one_shot_never_uses_sessions():
    report = _run("paper", "reduction_racy", incremental=False)
    cs = report.check_stats
    assert cs is not None
    assert cs.sessions_created == 0
    assert cs.by_memo == 0
    assert cs.solver.by_session == 0
    # the one-shot path builds one SAT instance per SAT-layer query
    assert cs.solver.sat_instances == cs.solver.by_sat


def test_witnesses_remain_valid_models():
    # equivalence of *verdicts* is the contract; each path's witnesses
    # must still satisfy its own reported race condition
    for incremental in (False, True):
        report = _run("paper", "race_example", incremental=incremental)
        assert report.races
        for race in report.races:
            assert race.witness is not None
