"""Branch classification: which diamonds merge and which split."""
import pytest

from repro import ir
from repro.frontend import compile_source
from repro.passes import standard_pipeline
from repro.sym import Executor, LaunchConfig


def classify(source):
    module = compile_source(source)
    standard_pipeline().run(module)
    fn = module.get_kernel()
    ex = Executor(module, fn, LaunchConfig(block_dim=8))
    verdicts = {}
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, ir.Br):
            verdicts[block.name] = ex.mergeable[id(term)]
    return verdicts


class TestMergeable:
    def test_plain_diamond_mergeable(self):
        v = classify("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x % 2 == 0) { s[threadIdx.x] = 1; }
  else { s[threadIdx.x] = 2; }
}""")
        assert any(v.values())

    def test_barrier_inside_arm_not_mergeable(self):
        v = classify("""
__shared__ int s[64];
__global__ void k(int n) {
  if (threadIdx.x < 4) {
    s[threadIdx.x] = 1;
    __syncthreads();
    s[threadIdx.x] = 2;
  }
}""")
        entry_verdicts = [m for name, m in v.items()
                          if name.startswith("entry")]
        assert entry_verdicts == [False]

    def test_loop_inside_arm_not_mergeable(self):
        v = classify("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x < 4) {
    for (int i = 0; i < 3; i++) { s[i] = 1; }
  }
}""")
        entry_verdicts = [m for name, m in v.items()
                          if name.startswith("entry")]
        assert entry_verdicts == [False]

    def test_loop_branch_itself_not_mergeable(self):
        v = classify("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned i = 0; i < threadIdx.x; i++) { s[i] = 1; }
}""")
        loop_verdicts = [m for name, m in v.items()
                         if name.startswith("for.cond")]
        assert loop_verdicts == [False]

    def test_return_inside_arm_not_mergeable(self):
        v = classify("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x > 4) { return; }
  s[threadIdx.x] = 1;
}""")
        entry_verdicts = [m for name, m in v.items()
                          if name.startswith("entry")]
        assert entry_verdicts == [False]

    def test_early_return_splits_flows_correctly(self):
        """An early-return branch splits; both flows are still analysed."""
        from repro.core import SESA, LaunchConfig as LC
        report = SESA.from_source("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x >= 4) { return; }
  s[threadIdx.x % 2] = (int)threadIdx.x;
}""").check(LC(block_dim=8, check_oob=False))
        assert report.max_flows == 2
        assert report.has_races  # tids 0/2 collide on s[0]

    def test_barrier_after_early_return_diverges(self):
        from repro.core import SESA, LaunchConfig as LC
        report = SESA.from_source("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x >= 4) { return; }
  __syncthreads();
  s[threadIdx.x] = 1;
}""").check(LC(block_dim=8, check_oob=False))
        assert any("barrier divergence" in e
                   for e in report.execution.errors)
