"""Flow tree recording/rendering (Fig. 4)."""
import pytest

from repro.core import GKLEEp, SESA, LaunchConfig
from repro.kernels.paper_examples import REDUCTION
from repro.sym import render_flow_tree


@pytest.fixture(scope="module")
def gkleep_result():
    report = GKLEEp.from_source(REDUCTION.source).check(
        LaunchConfig(block_dim=8, check_oob=False))
    return report.execution


class TestFlowTreeFig4:
    def test_first_split_is_parity(self, gkleep_result):
        """Fig. 4: the root splits on tid % 2 == 0."""
        parents = [e[0] for e in gkleep_result.flow_events]
        root = min(parents)
        first_level = [e for e in gkleep_result.flow_events
                       if e[0] == root]
        assert len(first_level) == 2
        conds = [repr(c) for _, _, c in first_level]
        assert any("2) == 0" in c for c in conds)

    def test_infeasible_refinements_pruned(self, gkleep_result):
        """The odd-tids flow cannot refine to tid % 4 == 0 (the paper's
        F4 discussion): no recorded child carries a contradictory cond."""
        for _, _, cond in gkleep_result.flow_events:
            text = repr(cond)
            assert not ("!((tid.x %u 2) == 0)" in text
                        and "&& ((tid.x %u 4) == 0)" in text), text

    def test_leaf_count_matches_final_flows(self, gkleep_result):
        children = {c for _, c, _ in gkleep_result.flow_events}
        parents = {p for p, _, _ in gkleep_result.flow_events}
        leaves = children - parents
        assert len(leaves) == len(gkleep_result.final_flow_conds)

    def test_render_contains_tree_glyphs(self, gkleep_result):
        text = render_flow_tree(gkleep_result)
        assert "|--" in text and "`--" in text
        assert "final flows" in text

    def test_sesa_renders_single_node(self):
        report = SESA.from_source(REDUCTION.source).check(
            LaunchConfig(block_dim=8, check_oob=False))
        text = render_flow_tree(report.execution)
        assert "single flow" in text
