"""Solver-budget exhaustion must surface as a timeout, not silence.

When a race query burns through ``solver_budget`` conflicts the SAT
core answers UNKNOWN. Dropping that on the floor would report "no
races found" for a kernel the checker never actually decided — so the
checker must set ``timed_out`` and the report must carry the budget
warning, exactly like a wall-clock timeout.
"""
import pytest

from repro.core import SESA, LaunchConfig
from repro.sym import RaceChecker

# the xor address defeats both the affine fast path (xor is not
# affine) and the interval pre-filter, so the disjointness query
# reaches the SAT core, where proving UNSAT needs conflicts
XOR_ADDR = """
__shared__ int s[64];
__global__ void k() {
  s[(threadIdx.x ^ 21) & 63] = threadIdx.x;
}
"""


def _check(budget):
    tool = SESA.from_source(XOR_ADDR)
    return tool.check(LaunchConfig(block_dim=64, check_oob=False),
                      solver_budget=budget)


class TestSolverBudgetTimeout:
    def test_exhausted_budget_sets_timed_out(self):
        report = _check(budget=0)
        assert report.timed_out
        assert not report.races  # undecided, not "clean"

    def test_exhausted_budget_appends_warning(self):
        report = _check(budget=0)
        assert any("budget" in w for w in report.execution.warnings)

    def test_generous_budget_decides_cleanly(self):
        report = _check(budget=200_000)
        assert not report.timed_out
        assert report.execution.warnings == []
        assert not report.races  # xor with a constant is a bijection

    def test_checker_flag_directly(self):
        tool = SESA.from_source(XOR_ADDR)
        config = LaunchConfig(block_dim=64, check_oob=False)
        config.symbolic_inputs = tool.inferred_symbolic_inputs()
        from repro.sym import Executor
        result = Executor(tool.module, tool.kernel, config, mode="sesa",
                          sink_value_ids=tool.taint.sink_value_ids).run()
        checker = RaceChecker(result, solver_budget=0).check()
        assert checker.timed_out

    def test_json_report_carries_the_flag(self):
        payload = _check(budget=0).to_dict()
        assert payload["timed_out"] is True
