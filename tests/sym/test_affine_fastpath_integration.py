"""Regression guard: disjoint-per-thread kernels must be discharged by
the affine fast path, never reaching the SAT core for their main access
pairs (this is what keeps Table I/IV interactive)."""
import pytest

from repro.core import SESA, LaunchConfig, check_source


def test_vector_add_needs_no_sat_for_races(sample=None):
    report = check_source("""
__global__ void k(float *a, float *b, float *c) {
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  c[i] = a[i] + b[i];
}""", LaunchConfig(grid_dim=4, block_dim=64, check_oob=False))
    assert not report.races
    stats = report.check_stats
    assert stats.by_affine >= 1
    # every write/write and read/write pair on c was affine-discharged
    assert stats.queries == 0, (stats.queries, stats.by_affine)


def test_strided_kernel_affine_discharged():
    report = check_source("""
__shared__ int s[512];
__global__ void k() {
  s[threadIdx.x * 4] = 1;
  s[threadIdx.x * 4 + 1] = 2;
}""", LaunchConfig(block_dim=64, check_oob=False))
    assert not report.races
    assert report.check_stats.by_affine >= 1


def test_fast_path_does_not_hide_real_races():
    report = check_source("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x / 2] = (int)threadIdx.x;
}""", LaunchConfig(block_dim=64, check_oob=False))
    # tid/2 is affine-undecomposable (division): falls through and the
    # solver finds the genuine collision
    assert report.has_races


def test_different_offsets_not_falsely_discharged():
    report = check_source("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = 1;
  int v = s[(threadIdx.x + 1) % blockDim.x];
  s[threadIdx.x] = v;
}""", LaunchConfig(block_dim=64, check_oob=False))
    assert report.has_races  # the neighbour read still races
