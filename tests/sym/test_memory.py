"""Memory model tests: write logs, read resolution, havoc tagging."""
import pytest

from repro import ir
from repro.smt import TRUE, mk_bv, mk_bv_var, evaluate
from repro.sym.memory import (
    LocalMemory, MemoryObject, ObjectLog, WriteRecord, contains_havoc,
    is_havoc_term, make_havoc,
)


def obj(space=ir.MemSpace.SHARED, size=256, symbolic=False, values=None):
    return MemoryObject(name="m", space=space, size_bytes=size,
                        elem_width=32, is_symbolic_input=symbolic,
                        concrete_values=values)


def wr(offset, value, guard=TRUE, width=32, instr=0, atomic=False):
    return WriteRecord(guard=guard, offset=offset, value=value,
                       width=width, instr_id=instr, atomic=atomic)


class TestReadResolution:
    def test_read_own_write_same_offset(self):
        tid = mk_bv_var("tid.x")
        offset = tid * 4
        log = ObjectLog(obj())
        log.append(wr(offset, mk_bv(42, 32)))
        value, resolved = log.resolve_read(offset, 32)
        assert resolved
        assert value is mk_bv(42, 32)

    def test_read_unwritten_shared_is_uninit_symbol(self):
        log = ObjectLog(obj())
        value, resolved = log.resolve_read(mk_bv(0, 32), 32)
        assert resolved
        assert not is_havoc_term(value)  # uninit, not havoc

    def test_read_symbolic_input_array(self):
        log = ObjectLog(obj(space=ir.MemSpace.GLOBAL, symbolic=True))
        off = mk_bv_var("tid.x") * 4
        v1, _ = log.resolve_read(off, 32)
        v2, _ = log.resolve_read(off, 32)
        assert v1 is v2  # same cell, same symbol (functional consistency)
        other, _ = log.resolve_read(mk_bv(8, 32), 32)
        assert other is not v1

    def test_read_concrete_input_array(self):
        log = ObjectLog(obj(space=ir.MemSpace.GLOBAL,
                            values=[10, 20, 30]))
        value, resolved = log.resolve_read(mk_bv(4, 32), 32)
        assert resolved
        assert value is mk_bv(20, 32)  # element 1 (4-byte elements)

    def test_foreign_offset_write_havocs_read(self):
        tid = mk_bv_var("tid.x")
        log = ObjectLog(obj())
        log.append(wr(tid * 4, mk_bv(1, 32)))
        value, resolved = log.resolve_read((tid + 1) * 4, 32)
        assert not resolved
        assert is_havoc_term(value)

    def test_distinct_concrete_offsets_dont_interfere(self):
        log = ObjectLog(obj())
        log.append(wr(mk_bv(0, 32), mk_bv(5, 32)))
        log.append(wr(mk_bv(4, 32), mk_bv(7, 32)))
        value, resolved = log.resolve_read(mk_bv(4, 32), 32)
        assert resolved
        assert value is mk_bv(7, 32)

    def test_guarded_write_folds_ite(self):
        cond = mk_bv_var("tid.x") % 2 == mk_bv(0, 32)
        from repro.smt import mk_eq, mk_urem
        cond = mk_eq(mk_urem(mk_bv_var("tid.x"), mk_bv(2, 32)), mk_bv(0, 32))
        off = mk_bv(0, 32)
        log = ObjectLog(obj())
        log.append(wr(off, mk_bv(1, 32)))
        log.append(wr(off, mk_bv(2, 32), guard=cond))
        value, resolved = log.resolve_read(off, 32)
        assert resolved
        # tid even -> 2, else 1
        assert evaluate(value, {"tid.x": 2}) == 2
        assert evaluate(value, {"tid.x": 3}) == 1

    def test_atomic_write_havocs_read(self):
        off = mk_bv(0, 32)
        log = ObjectLog(obj())
        log.append(wr(off, mk_bv(1, 32), atomic=True))
        value, resolved = log.resolve_read(off, 32)
        assert not resolved
        assert is_havoc_term(value)

    def test_clone_isolates_children(self):
        log = ObjectLog(obj())
        log.append(wr(mk_bv(0, 32), mk_bv(1, 32)))
        child = log.clone()
        child.append(wr(mk_bv(0, 32), mk_bv(2, 32)))
        v_parent, _ = log.resolve_read(mk_bv(0, 32), 32)
        v_child, _ = child.resolve_read(mk_bv(0, 32), 32)
        assert v_parent is mk_bv(1, 32)
        assert v_child is mk_bv(2, 32)


class TestHavocTags:
    def test_havoc_terms_are_fresh(self):
        assert make_havoc(32, "x") is not make_havoc(32, "x")

    def test_contains_havoc_finds_nested(self):
        h = make_havoc(32, "test")
        composite = (h + mk_bv(1, 32)) * mk_bv_var("y")
        assert contains_havoc(composite)

    def test_plain_terms_have_no_havoc(self):
        t = mk_bv_var("x") + mk_bv(3, 32)
        assert not contains_havoc(t)


class TestLocalMemory:
    def test_store_load_roundtrip(self):
        mem = LocalMemory()
        mem.allocate(1, 64)
        mem.store(1, mk_bv(8, 32), mk_bv(99, 32), TRUE)
        assert mem.load(1, mk_bv(8, 32), 32) is mk_bv(99, 32)

    def test_uninitialised_load_is_havoc(self):
        mem = LocalMemory()
        mem.allocate(1, 64)
        assert is_havoc_term(mem.load(1, mk_bv(0, 32), 32))

    def test_guarded_store_merges(self):
        from repro.smt import mk_bool_var
        mem = LocalMemory()
        mem.allocate(1, 64)
        mem.store(1, mk_bv(0, 32), mk_bv(1, 32), TRUE)
        cond = mk_bool_var("c")
        mem.store(1, mk_bv(0, 32), mk_bv(2, 32), cond)
        value = mem.load(1, mk_bv(0, 32), 32)
        assert evaluate(value, {"c": 1}) == 2
        assert evaluate(value, {"c": 0}) == 1

    def test_symbolic_offset_store_havocs_object(self):
        mem = LocalMemory()
        mem.allocate(1, 64)
        mem.store(1, mk_bv(0, 32), mk_bv(1, 32), TRUE)
        ok = mem.store(1, mk_bv_var("i"), mk_bv(2, 32), TRUE)
        assert not ok
        assert is_havoc_term(mem.load(1, mk_bv(0, 32), 32))

    def test_clone_is_deep(self):
        mem = LocalMemory()
        mem.allocate(1, 64)
        mem.store(1, mk_bv(0, 32), mk_bv(1, 32), TRUE)
        copy = mem.clone()
        copy.store(1, mk_bv(0, 32), mk_bv(2, 32), TRUE)
        assert mem.load(1, mk_bv(0, 32), 32) is mk_bv(1, 32)
