"""Pointer values, width handling, and launch-config environment tests."""
import pytest

from repro import ir
from repro.smt import evaluate, mk_bv, mk_bv_var
from repro.sym import LaunchConfig, MemoryObject, Pointer, SymbolicEnv
from repro.sym.value import fit_width, width_of


def obj(elem_width=32):
    return MemoryObject(name="m", space=ir.MemSpace.SHARED,
                        size_bytes=1024, elem_width=elem_width)


class TestPointer:
    def test_advance_scales_by_elem_size(self):
        p = Pointer(obj(), mk_bv(0, 32))
        q = p.advanced(mk_bv(3, 32), 4)
        assert q.offset is mk_bv(12, 32)

    def test_advance_accumulates(self):
        p = Pointer(obj(), mk_bv(8, 32))
        q = p.advanced(mk_bv(2, 32), 8)
        assert q.offset is mk_bv(24, 32)

    def test_symbolic_index(self):
        tid = mk_bv_var("tid.x")
        p = Pointer(obj(), mk_bv(0, 32)).advanced(tid, 4)
        assert evaluate(p.offset, {"tid.x": 5}) == 20

    def test_wide_index_truncated(self):
        idx = mk_bv_var("i", 64)
        p = Pointer(obj(), mk_bv(0, 32)).advanced(idx, 4)
        assert p.offset.width == 32

    def test_narrow_index_sign_extended(self):
        idx = mk_bv(-1, 16)  # 0xFFFF
        p = Pointer(obj(), mk_bv(100, 32)).advanced(idx, 4)
        # -1 * 4 = -4 → offset 96
        assert evaluate(p.offset, {}) == 96


class TestWidths:
    def test_width_of_types(self):
        assert width_of(ir.I32) == 32
        assert width_of(ir.I8) == 8
        assert width_of(ir.F64) == 64
        assert width_of(ir.ptr(ir.I32)) == 64

    def test_fit_width_identity(self):
        x = mk_bv_var("x", 32)
        assert fit_width(x, 32) is x

    def test_fit_width_trunc_zext(self):
        x = mk_bv(0x1FF, 16)
        assert evaluate(fit_width(x, 8), {}) == 0xFF
        assert evaluate(fit_width(x, 32), {}) == 0x1FF


class TestLaunchConfig:
    def test_scalar_dims_accepted(self):
        cfg = LaunchConfig(grid_dim=4, block_dim=128)
        assert cfg.grid_dim == (4, 1, 1)
        assert cfg.block_dim == (128, 1, 1)

    def test_thread_counts(self):
        cfg = LaunchConfig(grid_dim=(2, 3, 1), block_dim=(8, 4, 1))
        assert cfg.threads_per_block == 32
        assert cfg.num_blocks == 6
        assert cfg.total_threads == 192

    def test_default_scalar_falls_back_to_total(self):
        cfg = LaunchConfig(grid_dim=2, block_dim=32)
        assert cfg.default_scalar("n") == 64
        cfg.scalar_values["n"] = 7
        assert cfg.default_scalar("n") == 7


class TestSymbolicEnv:
    def test_unit_dims_collapse_to_zero(self):
        env = SymbolicEnv(LaunchConfig(grid_dim=1, block_dim=(64, 1, 1)))
        assert env.lookup("tid.y").is_const()
        assert env.lookup("tid.y").value == 0
        assert env.lookup("bid.x").is_const()  # single block

    def test_multi_dims_are_variables(self):
        env = SymbolicEnv(LaunchConfig(grid_dim=(4, 2, 1),
                                       block_dim=(8, 8, 1)))
        assert env.lookup("tid.x").is_var()
        assert env.lookup("tid.y").is_var()
        assert env.lookup("bid.y").is_var()
        assert env.lookup("tid.z").is_const()

    def test_bounds_match_extents(self):
        cfg = LaunchConfig(grid_dim=(4, 1, 1), block_dim=(8, 1, 1))
        env = SymbolicEnv(cfg)
        bounds = env.bounds()
        assert len(bounds) == 2  # tid.x < 8, bid.x < 4
        # all satisfied at the corners
        assert all(evaluate(b, {"tid.x": 7, "bid.x": 3}) for b in bounds)
        assert not all(evaluate(b, {"tid.x": 8, "bid.x": 0})
                       for b in bounds)

    def test_dims_are_concrete_constants(self):
        env = SymbolicEnv(LaunchConfig(block_dim=(128, 1, 1)))
        assert env.lookup("bdim.x").value == 128
        assert env.lookup("gdim.x").value == 1

    def test_warp_size_constant(self):
        env = SymbolicEnv(LaunchConfig(warp_size=32))
        assert env.lookup("warpSize").value == 32

    def test_thread_vars_listing(self):
        env = SymbolicEnv(LaunchConfig(grid_dim=(2, 1, 1),
                                       block_dim=(8, 4, 1)))
        assert set(env.thread_vars()) == {"tid.x", "tid.y", "bid.x"}
