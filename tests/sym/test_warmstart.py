"""Kernel-level warm-start tests: cross-process replay, damaged
artifacts, and the shared-session stats audit.

The cross-process tests use subprocesses deliberately: fresh-variable
counters are process-global, so two runs *in one process* produce
different havoc names (and thus different canonical goal digests) —
the disk artifacts are built for the run-the-tool-again workflow,
which always crosses a process boundary.
"""
import glob
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.core import SESA, LaunchConfig, check_source
from repro.smt import QueryMemo
from repro.smt.persist import FORMAT_VERSION
from repro.sym.executor import Executor
from repro.sym.races import RaceChecker

SRC_DIR = os.path.dirname(os.path.dirname(
    os.path.abspath(repro.__file__)))

RACY = """
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = s[(threadIdx.x + 1) % blockDim.x];
}
"""

TWO_OBJECTS = """
__shared__ int a[64];
__shared__ int b[64];
__global__ void k() {
  a[threadIdx.x] = a[(threadIdx.x + 1) % blockDim.x];
  b[threadIdx.x] = b[(threadIdx.x + 3) % blockDim.x];
}
"""

# run one check in a child process; print signature + warm counters
CHILD = """
import json, sys
from repro.core import LaunchConfig, check_source
report = check_source(sys.argv[2], LaunchConfig(
    block_dim=(64, 1, 1), solver_cache_dir=sys.argv[1],
    static_tier=False))
cs = report.check_stats
print(json.dumps({
    "races": sorted((r.kind, r.obj_name, str(r.access1.loc),
                     str(r.access2.loc), r.benign) for r in report.races),
    "warm_starts": cs.warm_starts,
    "warm_memo_hits": cs.warm_memo_hits,
    "warm_pair_hits": cs.warm_pair_hits,
    "by_session": cs.solver.by_session,
    "warnings": report.execution.warnings,
}))
"""


def _child_run(cache_dir):
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, cache_dir, RACY],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _artifacts(cache_dir):
    return glob.glob(os.path.join(cache_dir, "solver", "*", "*.json"))


class TestCrossProcessWarmStart:
    def test_warm_rerun_replays_and_matches(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = _child_run(cache)
        assert _artifacts(cache), "cold run must persist artifacts"
        warm = _child_run(cache)
        assert warm["races"] == cold["races"]
        assert warm["warm_memo_hits"] + warm["warm_pair_hits"] >= 1
        # replay displaces live SAT work entirely (a fully replayed
        # run never even constructs a session, so warm_starts may be 0)
        assert warm["by_session"] < cold["by_session"]
        assert not warm["warnings"]


class TestDamagedArtifacts:
    def _cold(self, cache):
        # warm-start artifacts only exist on the solver path; keep the
        # static tier out so the cold run actually writes them
        report = check_source(RACY, LaunchConfig(
            block_dim=(64, 1, 1), solver_cache_dir=cache,
            static_tier=False))
        paths = _artifacts(cache)
        assert paths
        return report, paths

    @staticmethod
    def _signature(report):
        return sorted((r.kind, r.obj_name, r.benign)
                      for r in report.races)

    def test_corrupted_artifact_cold_starts_with_warning(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold, paths = self._cold(cache)
        for path in paths:
            with open(path, "w") as fh:
                fh.write("{torn write")
        again = check_source(RACY, LaunchConfig(
            block_dim=(64, 1, 1), solver_cache_dir=cache,
            static_tier=False))
        assert self._signature(again) == self._signature(cold)
        assert any("cold-starting" in w
                   for w in again.execution.warnings)
        assert again.check_stats.warm_starts == 0

    def test_version_skew_cold_starts_with_warning(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold, paths = self._cold(cache)
        for path in paths:
            blob = json.load(open(path))
            blob["format"] = FORMAT_VERSION + 1
            json.dump(blob, open(path, "w"))
        again = check_source(RACY, LaunchConfig(
            block_dim=(64, 1, 1), solver_cache_dir=cache,
            static_tier=False))
        assert self._signature(again) == self._signature(cold)
        assert any("version skew" in w
                   for w in again.execution.warnings)
        assert again.check_stats.warm_starts == 0


class TestSharedSessionStatsAudit:
    """Sessions outlive a checker (the repair loop re-checks against a
    warm shared pool); per-checker solver counters must reflect only
    that checker's queries, not the session's lifetime totals."""

    def _execution(self):
        tool = SESA.from_source(TWO_OBJECTS, None)
        config = LaunchConfig(block_dim=(64, 1, 1))
        config.symbolic_inputs = tool.inferred_symbolic_inputs()
        executor = Executor(tool.module, tool.kernel, config,
                            mode="sesa",
                            sink_value_ids=tool.taint.sink_value_ids)
        return executor.run()

    def test_second_checker_not_double_counted(self):
        result = self._execution()
        sessions = {}
        c1 = RaceChecker(result, sessions=sessions, memo=QueryMemo())
        c1.check()
        c2 = RaceChecker(result, sessions=sessions, memo=QueryMemo())
        c2.check()
        # both objects share one structurally identical preamble, so
        # the pool holds one warm session the second pass reuses whole
        assert c1.stats.sessions_created >= 1
        assert c2.stats.sessions_created == 0
        assert c2.stats.preamble_reuse > 0
        for checker in (c1, c2):
            s = checker.stats.solver
            # every query dispatched exactly once: a double-merge of
            # session-lifetime stats would push by_session past queries
            assert s.by_simplifier + s.by_interval + s.by_session \
                + s.by_sat == s.queries
        # both checkers solved the same queries against the same pool
        assert c2.stats.solver.by_session <= c1.stats.solver.by_session
        assert len(c2.races) == len(c1.races)
