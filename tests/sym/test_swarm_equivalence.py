"""Differential gate: swarm verdicts must equal monolithic verdicts.

Swarm mode is a pure execution-strategy change — for every kernel the
merged shard verdict must match the sequential checker's verdict at
every shard count, through both backends (the process-isolated
scheduler and the daemon queue), and the merged witnesses must still
be concretely valid models. The signatures compare the deduplicated
verdict *sets* (kind, object, source locations, benign/unresolvable
flags): shards re-solve queries under different learned-clause state,
so witness coordinates may legitimately differ while the verdict set
may not.
"""
import json
import os

import pytest

from repro.core import SESA
from repro.service import execute_job, run_swarm_check, spec_from_kernel
from repro.service.corpus import SUITES
from repro.smt import evaluate
from repro.smt.subst import EvaluationError

# one representative per behaviour class across the three gated
# suites: racy, clean/safe, benign-WW, report-capped (reduce4 hits
# max_reports), loop-unrolled and divergence-heavy
KERNELS = [
    ("paper", "race_example"),
    ("paper", "reduction_racy"),
    ("paper", "bitonic_fig1"),
    ("reductions", "reduce0"),
    ("reductions", "reduce4"),
    ("divergent", "stream_compaction"),
]
SHARD_COUNTS = (1, 2, 4, 8)


def _kernel(suite, name):
    for k in SUITES[suite]:
        if k.name == name:
            return k
    raise KeyError(f"{suite}/{name}")


def _spec(suite, name):
    return spec_from_kernel(_kernel(suite, name), suite=suite)


def _signature(verdict):
    """Deduplicated verdict set from an AnalysisReport-shaped dict,
    built from the JSON-stable ``locs`` fields so in-process, pickled
    and JSON-round-tripped verdicts compare equal."""
    verdict = json.loads(json.dumps(verdict))
    races = sorted(set(
        (r["kind"], r["object"],
         json.dumps(r["locs"]), bool(r["benign"]),
         bool(r["unresolvable"]))
        for r in verdict.get("races", [])))
    oobs = sorted(set((o["object"], json.dumps(o["loc"]))
                      for o in verdict.get("oobs", [])))
    asserts = sorted(set(json.dumps(a["loc"])
                         for a in verdict.get("assertion_failures", [])))
    return (races, oobs, asserts, bool(verdict.get("timed_out")))


@pytest.fixture(scope="module")
def mono_verdicts():
    """Monolithic verdicts, computed once per kernel."""
    out = {}
    for suite, name in KERNELS:
        payload = execute_job(_spec(suite, name).to_dict())
        assert payload["status"] == "done", payload.get("error")
        out[(suite, name)] = payload["verdict"]
    return out


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("suite,name", KERNELS,
                         ids=[f"{s}/{n}" for s, n in KERNELS])
def test_scheduler_swarm_matches_monolithic(suite, name, shards,
                                            mono_verdicts):
    spec = _spec(suite, name)
    result = run_swarm_check(spec, shards, max_workers=2)
    assert result.status == "done", result.error
    verdict = result.verdict
    assert verdict["swarm"]["shards"] >= 1
    assert not verdict["timed_out"], verdict["warnings"]
    assert verdict["swarm"]["unresolved"] == []
    assert _signature(verdict) == _signature(mono_verdicts[(suite, name)])
    # the merged verdict label agrees with the monolithic content
    mono_racy = bool(mono_verdicts[(suite, name)]["races"])
    assert (verdict["swarm"]["verdict"] == "racy") == mono_racy


def test_swarm_race_lists_replay_monolithic_order(mono_verdicts):
    """Beyond set equality: on the report-capped kernel the merged
    race list must reproduce the monolithic list ordinal-for-ordinal
    (the 'first N SAT pairs in enumeration order' contract)."""
    spec = _spec("reductions", "reduce4")
    mono = mono_verdicts[("reductions", "reduce4")]
    for shards in (2, 8):
        result = run_swarm_check(spec, shards, max_workers=2)
        assert result.status == "done", result.error
        got = [(r["ordinal"], r["kind"], r["object"])
               for r in result.verdict["races"]]
        want = [(r["ordinal"], r["kind"], r["object"])
                for r in mono["races"]]
        assert got == want


def test_merged_witnesses_are_valid_models():
    """Re-replay: every witness in a merged racy verdict must satisfy
    the access conditions and collide the addresses of the pair at its
    ordinal (looked up in an in-process monolithic run, which carries
    the actual symbolic access expressions)."""
    spec = _spec("paper", "reduction_racy")
    result = run_swarm_check(spec, 4, max_workers=2)
    assert result.status == "done", result.error
    verdict = result.verdict
    assert verdict["swarm"]["verdict"] == "racy"

    tool = SESA.from_source(spec.source, spec.kernel_name)
    report = tool.check(spec.launch_config())
    by_ordinal = {r.ordinal: r for r in report.races}

    def env(w, which):
        coords = w["thread1"] if which == 1 else w["thread2"]
        blocks = w["block1"] if which == 1 else w["block2"]
        out = {"tid.x": coords[0], "tid.y": coords[1],
               "tid.z": coords[2], "bid.x": blocks[0],
               "bid.y": blocks[1], "bid.z": blocks[2]}
        out.update(w["inputs"])
        return out

    replayed = 0
    for race in verdict["races"]:
        mono = by_ordinal.get(race["ordinal"])
        assert mono is not None, \
            f"swarm reported ordinal {race['ordinal']} unknown to " \
            f"the monolithic run"
        w = race["witness_data"]
        assert w is not None and w["thread2"] is not None
        try:
            cond1 = evaluate(mono.access1.cond, env(w, 1))
            cond2 = evaluate(mono.access2.cond, env(w, 2))
            addr1 = evaluate(mono.access1.offset, env(w, 1))
            addr2 = evaluate(mono.access2.offset, env(w, 2))
        except EvaluationError:
            continue   # havocked parts: nothing to validate
        assert cond1 and cond2, race
        lo1, hi1 = addr1, addr1 + mono.access1.size
        lo2, hi2 = addr2, addr2 + mono.access2.size
        assert lo1 < hi2 and lo2 < hi1, \
            f"merged witness addresses disjoint at ordinal " \
            f"{race['ordinal']}"
        replayed += 1
    assert replayed >= 1


def test_daemon_swarm_matches_monolithic(tmp_path, mono_verdicts):
    """Daemon backend: server-side shard expansion over the queue must
    produce the same verdicts as the monolithic path."""
    from repro.service.daemon import Daemon
    daemon = Daemon(db_path=str(tmp_path / "q.sqlite3"),
                    cache_dir=str(tmp_path / "cache"),
                    workers=2, poll_interval=0.05,
                    timeout_seconds=300).start(serve_http=False)
    try:
        jobs = {}
        for suite, name in [("paper", "reduction_racy"),
                            ("paper", "bitonic_fig1")]:
            spec = _spec(suite, name)
            body = spec.to_dict()
            body["swarm"] = 4
            job = daemon.submit_request(body)[0]
            assert job.get("shards"), job
            jobs[(suite, name)] = job
        assert daemon.wait_idle(timeout=600)
        for key, job in jobs.items():
            row = daemon.store.get(job["job_id"])
            assert row is not None and row.state == "done", \
                (key, row and row.state, row and row.error)
            verdict = row.result["verdict"]
            assert _signature(verdict) == _signature(mono_verdicts[key])
            assert verdict["swarm"]["unresolved"] == []
        assert not daemon.store.counts().get("leased")
    finally:
        daemon.stop()
