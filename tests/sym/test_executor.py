"""Executor tests: parametric execution, flow splitting/combining,
barrier intervals, access recording."""
import pytest

from repro import ir
from repro.frontend import compile_source
from repro.passes import analyze_taint, standard_pipeline
from repro.smt import TRUE, evaluate
from repro.sym import AccessKind, Executor, LaunchConfig


def run_kernel(source: str, config=None, mode="sesa", kernel=None,
               use_taint=True):
    module = compile_source(source)
    standard_pipeline().run(module)
    fn = module.get_kernel(kernel)
    config = config or LaunchConfig(block_dim=(64, 1, 1))
    if config.symbolic_inputs is None:
        config.symbolic_inputs = {a.name for a in fn.args}
    sinks = analyze_taint(fn).sink_value_ids if use_taint else None
    executor = Executor(module, fn, config, mode=mode,
                        sink_value_ids=sinks)
    return executor.run()


class TestStraightLine:
    def test_single_flow_single_interval(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() { s[threadIdx.x] = 1; }
""")
        assert result.max_flows == 1
        assert result.num_barriers == 1  # the implicit kernel-end interval

    def test_barrier_splits_intervals(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = 1;
  __syncthreads();
  s[threadIdx.x] = 2;
}
""")
        assert result.num_barriers == 2
        assert len(result.bi_access_sets) == 2
        assert len(result.bi_access_sets[0].writes()) == 1
        assert len(result.bi_access_sets[1].writes()) == 1

    def test_access_offsets_are_parametric(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() { s[threadIdx.x * 2] = 7; }
""")
        write = result.bi_access_sets[0].writes()[0]
        # offset = tid.x * 2 * 4 bytes
        assert evaluate(write.offset, {"tid.x": 3}) == 24

    def test_local_accesses_not_recorded(self):
        result = run_kernel("""
__global__ void k() {
  int t[4];
  t[0] = 1;
  t[1] = t[0] + 1;
}
""")
        assert len(result.bi_access_sets[0]) == 0


class TestDiamondMerging:
    SRC = """
__shared__ int s[64];
__global__ void k() {
  unsigned v;
  if (threadIdx.x % 2 == 0) { v = 10; } else { v = 20; }
  s[threadIdx.x] = v;
}
"""

    def test_sesa_merges_diamond(self):
        result = run_kernel(self.SRC, mode="sesa", use_taint=False)
        assert result.max_flows == 1
        assert result.num_splits == 0

    def test_gkleep_splits_diamond(self):
        result = run_kernel(self.SRC, mode="gkleep")
        assert result.max_flows == 2

    def test_merged_value_is_ite(self):
        result = run_kernel(self.SRC, mode="sesa", use_taint=False)
        write = result.bi_access_sets[0].writes()[0]
        # without taint hints, the stored value must be the precise ite
        assert evaluate(write.value, {"tid.x": 2}) == 10
        assert evaluate(write.value, {"tid.x": 3}) == 20

    def test_accesses_inside_arms_are_guarded(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x % 2 == 0) { s[threadIdx.x] = 1; }
  else { s[threadIdx.x + 1] = 2; }
}
""", use_taint=False)
        writes = result.bi_access_sets[0].writes()
        assert len(writes) == 2
        conds = sorted(
            (evaluate(w.cond, {"tid.x": 0}), evaluate(w.cond, {"tid.x": 1}))
            for w in writes)
        assert conds == [(False, True), (True, False)]

    def test_nested_diamonds_merge(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  unsigned v = 0;
  if (threadIdx.x < 32) {
    if (threadIdx.x < 16) { v = 1; } else { v = 2; }
  } else { v = 3; }
  s[threadIdx.x] = v;
}
""", use_taint=False)
        assert result.max_flows == 1
        write = result.bi_access_sets[0].writes()[0]
        assert evaluate(write.value, {"tid.x": 5}) == 1
        assert evaluate(write.value, {"tid.x": 20}) == 2
        assert evaluate(write.value, {"tid.x": 40}) == 3


class TestConcreteLoops:
    def test_concrete_loop_unrolls(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  for (int i = 0; i < 4; i++) {
    s[threadIdx.x] = i;
  }
}
""")
        writes = result.bi_access_sets[0].writes()
        assert len(writes) == 4

    def test_bdim_bound_loop_is_concrete(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned s1 = 1; s1 < blockDim.x; s1 *= 2) {
    s[threadIdx.x] = s1;
  }
}
""", config=LaunchConfig(block_dim=(16, 1, 1)))
        assert result.max_flows == 1
        assert len(result.bi_access_sets[0].writes()) == 4  # log2(16)


class TestFlowSplitting:
    def test_tid_loop_bound_splits_flows(self):
        # threads run different trip counts: genuine parametric flows
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned i = 0; i < threadIdx.x; i++) {
    s[i] = 1;
  }
}
""", config=LaunchConfig(block_dim=(8, 1, 1)))
        assert result.num_splits > 0
        assert result.max_flows >= 2

    def test_infeasible_flow_pruned(self):
        # tid%4==0 within the tid%2!=0 side is infeasible (paper Fig. 4 F4)
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  if (threadIdx.x % 2 != 0) {
    if (threadIdx.x % 4 == 0) {
      s[0] = 1;
    }
  }
}
""", mode="gkleep")
        # flows: split on tid%2 -> 2; inner split keeps only the feasible
        # side, so never more than 3 concurrent flows
        assert result.max_flows <= 3
        # and the infeasible write is never recorded
        writes = [a for s_ in result.bi_access_sets for a in s_.writes()]
        assert len(writes) == 0

    def test_flow_budget_reports_timeout(self):
        result = run_kernel("""
__shared__ int s[512];
__global__ void k(int *in) {
  unsigned v = 0;
  unsigned d = (unsigned)in[threadIdx.x];
  if ((d & 1u) != 0) { v = v + 1; }
  if ((d & 2u) != 0) { v = v + 2; }
  if ((d & 4u) != 0) { v = v + 4; }
  if ((d & 8u) != 0) { v = v + 8; }
  if ((d & 16u) != 0) { v = v + 16; }
  s[v] = 1;
}
""", mode="gkleep", config=LaunchConfig(block_dim=(64, 1, 1), max_flows=8))
        assert result.timed_out


class TestBarrierSemantics:
    def test_barrier_divergence_detected(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned i = 0; i < threadIdx.x; i++) {
    s[i] = 1;
    __syncthreads();
  }
}
""", config=LaunchConfig(block_dim=(4, 1, 1)))
        assert any("barrier divergence" in e for e in result.errors)

    def test_aligned_barriers_fine(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = 1;
  __syncthreads();
  s[threadIdx.x] = 2;
  __syncthreads();
}
""")
        assert not result.errors


class TestAtomics:
    def test_atomic_recorded_as_atomic_kind(self):
        result = run_kernel("""
__global__ void k(unsigned *c) { atomicAdd(&c[0], 1); }
""")
        accesses = list(result.bi_access_sets[0])
        assert len(accesses) == 1
        assert accesses[0].kind == AccessKind.ATOMIC

    def test_atomic_result_is_havoc(self):
        from repro.sym.memory import contains_havoc
        result = run_kernel("""
__shared__ int s[64];
__global__ void k(unsigned *c) {
  unsigned old = atomicAdd(&c[0], 1);
  s[old & 63u] = 1;
}
""")
        write = [a for a in result.bi_access_sets[0]
                 if a.obj.name == "k.s" or a.obj.name == "s"][0]
        assert contains_havoc(write.offset)


class TestWarnings:
    def test_unresolvable_read_warns(self):
        result = run_kernel("""
__shared__ int s[64];
__global__ void k(int *out) {
  s[threadIdx.x] = 1;
  __syncthreads();
  out[threadIdx.x] = s[(threadIdx.x + 1) % blockDim.x];
}
""")
        assert any("could observe other threads" in w
                   for w in result.warnings)
