"""MemoryObject initial-content semantics per input mode."""
import pytest

from repro import ir
from repro.smt import mk_bv, mk_bv_var
from repro.smt.terms import Op
from repro.sym import MemoryObject


def make(space=ir.MemSpace.GLOBAL, symbolic=False, values=None):
    return MemoryObject(name="buf", space=space, size_bytes=64,
                        elem_width=32, is_symbolic_input=symbolic,
                        concrete_values=values)


class TestInputValueAt:
    def test_symbolic_input_is_uf_over_offset(self):
        obj = make(symbolic=True)
        v = obj.input_value_at(mk_bv(8, 32), 32)
        assert v.op == Op.UF
        assert "in:buf" in str(v.payload)

    def test_symbolic_cells_independent(self):
        obj = make(symbolic=True)
        a = obj.input_value_at(mk_bv(0, 32), 32)
        b = obj.input_value_at(mk_bv(4, 32), 32)
        assert a is not b

    def test_symbolic_same_cell_consistent(self):
        obj = make(symbolic=True)
        off = mk_bv_var("tid.x") * 4
        assert obj.input_value_at(off, 32) is obj.input_value_at(off, 32)

    def test_concrete_values_indexed_by_element(self):
        obj = make(values=[100, 200, 300])
        assert obj.input_value_at(mk_bv(0, 32), 32) is mk_bv(100, 32)
        assert obj.input_value_at(mk_bv(8, 32), 32) is mk_bv(300, 32)

    def test_concrete_out_of_range_falls_back(self):
        obj = make(values=[1])
        v = obj.input_value_at(mk_bv(400, 32), 32)
        assert v.is_const()  # zero-fill default

    def test_concrete_array_symbolic_offset_is_uf(self):
        # concrete contents but parametric index: cannot resolve
        obj = make(values=[1, 2, 3])
        v = obj.input_value_at(mk_bv_var("tid.x"), 32)
        assert v.op == Op.UF

    def test_shared_uninitialised_is_uf(self):
        obj = make(space=ir.MemSpace.SHARED)
        v = obj.input_value_at(mk_bv(0, 32), 32)
        assert v.op == Op.UF
        assert "uninit" in str(v.payload)

    def test_global_default_zero_fill(self):
        obj = make()
        assert obj.input_value_at(mk_bv(12, 32), 32) is mk_bv(0, 32)

    def test_identity_semantics(self):
        a, b = make(), make()
        assert a != b           # objects compare by identity
        assert a == a
        assert len({a, b}) == 2
