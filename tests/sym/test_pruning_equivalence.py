"""Differential check: pair pruning must not change verdicts.

The pre-solver pruning pipeline (record-time summarization,
disjointness-bucketed pair generation, canonical pair memoization, the
interval OOB fast path) is a pure performance layer: for every kernel
the *set* of races, OOBs and assertion failures — kinds, objects,
source lines and benign flags — must be identical to raw enumeration.

Signatures are deduplicated sets, not lists: summarization legitimately
merges N same-instruction pairs into one reported race, so the on/off
runs may differ in duplicate *report multiplicity* but never in which
(kind, object, line-pair, benign) verdicts exist. ``max_reports`` is
raised so neither mode truncates reports.
"""
import pytest

from repro.core import SESA
from repro.service.corpus import SUITES, spec_from_kernel

# a fast cross-section of the three suites the acceptance criteria
# name: racy, clean, benign-WW, OOB, loop-unrolled and divergence-heavy
# kernels (each < ~1 s per mode)
FAST_KERNELS = [
    ("paper", "race_example"),
    ("paper", "reduction_racy"),
    ("paper", "bitonic_fig1"),
    ("reductions", "reduce0"),
    ("reductions", "reduce3"),
    ("reductions", "reduce4"),
    ("divergent", "stream_compaction"),
    ("divergent", "wordsearch"),
]


def _kernel(suite, name):
    for k in SUITES[suite]:
        if k.name == name:
            return k
    raise KeyError(f"{suite}/{name}")


def _run(suite, name, pruning, max_reports=64):
    spec = spec_from_kernel(_kernel(suite, name), suite=suite)
    config = spec.launch_config()
    config.pair_pruning = pruning
    # pruning is a solver-path feature; keep the static tier out so the
    # raw/pruned comparison actually exercises the pair pruner
    config.static_tier = False
    tool = SESA.from_source(spec.source, spec.kernel_name)
    return tool.check(config, max_reports=max_reports)


def _signature(report):
    races = sorted(set(
        (r.kind, r.obj_name, r.access1.loc, r.access2.loc,
         r.benign, r.unresolvable) for r in report.races))
    oobs = sorted(set((o.obj_name, o.access.loc) for o in report.oobs))
    asserts = sorted(set(a.loc for a in report.assertion_failures))
    return (races, oobs, asserts, report.timed_out)


@pytest.mark.parametrize("suite,name", FAST_KERNELS,
                         ids=[f"{s}/{n}" for s, n in FAST_KERNELS])
def test_identical_verdicts(suite, name):
    raw = _run(suite, name, pruning=False)
    pruned = _run(suite, name, pruning=True)
    assert _signature(pruned) == _signature(raw)


def test_pruning_actually_engages():
    # the loop-unrolled reductions kernels must exercise the pipeline:
    # fewer solver queries, with the prune counters accounting for it
    raw = _run("reductions", "reduce3", pruning=False)
    pruned = _run("reductions", "reduce3", pruning=True)
    cs_raw, cs = raw.check_stats, pruned.check_stats
    assert cs is not None and cs_raw is not None
    assert cs.queries < cs_raw.queries
    assert cs.oob_pruned > 0
    assert cs.bucketed_out + cs.pair_memo_hits + \
        cs.summarized_accesses + cs.oob_pruned > 0


def test_summarization_engages_on_suite_kernel():
    # wordsearch records an unrolled affine sweep per flow — the
    # record-time summarizer must collapse it
    report = _run("divergent", "wordsearch", pruning=True)
    cs = report.check_stats
    assert cs is not None
    assert cs.summarized_accesses > 0


def test_raw_mode_keeps_counters_zero():
    report = _run("reductions", "reduce3", pruning=False)
    cs = report.check_stats
    assert cs is not None
    assert cs.summarized_accesses == 0
    assert cs.bucketed_out == 0
    assert cs.pair_memo_hits == 0
    assert cs.oob_pruned == 0


def test_phase_timings_populated():
    report = _run("reductions", "reduce3", pruning=True)
    cs = report.check_stats
    assert cs is not None
    assert cs.execute_seconds > 0
    assert cs.solve_seconds > 0
    assert cs.pairgen_seconds >= 0
    # and they ride along into the JSON report
    payload = report.to_dict()["check_stats"]
    for field in ("execute_seconds", "pairgen_seconds", "solve_seconds",
                  "dedup_skipped", "summarized_accesses", "bucketed_out",
                  "pair_memo_hits", "oob_pruned"):
        assert field in payload


def test_witnesses_remain_valid_models():
    for pruning in (False, True):
        report = _run("paper", "race_example", pruning=pruning)
        assert report.races
        for race in report.races:
            assert race.witness is not None
