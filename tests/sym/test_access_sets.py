"""AccessSet container semantics (barrier-interval unions)."""
import pytest

from repro import ir
from repro.smt import TRUE, evaluate, mk_add, mk_bv, mk_bv_var, mk_mul
from repro.sym import (
    Access, AccessKind, AccessSet, MemoryObject, summarize_access_set,
)


def obj(name="m"):
    return MemoryObject(name=name, space=ir.MemSpace.SHARED,
                        size_bytes=256, elem_width=32)


def acc(o, kind=AccessKind.WRITE, offset=0, cond=TRUE, instr=1, flow=0):
    offset_term = mk_bv(offset, 32) if isinstance(offset, int) else offset
    return Access(kind=kind, obj=o, offset=offset_term, size=4, cond=cond,
                  flow_id=flow, bi_index=0, instr_id=instr)


class TestAccessSet:
    def test_identity_dedupe(self):
        s = AccessSet()
        a = acc(obj())
        s.add(a)
        s.add(a)
        assert len(s) == 1

    def test_distinct_accesses_kept(self):
        o = obj()
        s = AccessSet()
        s.add(acc(o, offset=0))
        s.add(acc(o, offset=4))
        assert len(s) == 2

    def test_union_of_split_children(self):
        """Children inheriting the parent's accesses union back to one."""
        o = obj()
        parent = AccessSet()
        shared_access = acc(o)
        parent.add(shared_access)
        child1 = AccessSet()
        child1.extend(parent)
        child1.add(acc(o, offset=8))
        child2 = AccessSet()
        child2.extend(parent)
        child2.add(acc(o, offset=12))
        union = AccessSet()
        union.extend(child1)
        union.extend(child2)
        assert len(union) == 3  # shared counted once

    def test_reads_writes_partition(self):
        o = obj()
        s = AccessSet()
        s.add(acc(o, kind=AccessKind.READ))
        s.add(acc(o, kind=AccessKind.WRITE, offset=4))
        s.add(acc(o, kind=AccessKind.ATOMIC, offset=8))
        assert len(s.reads()) == 1
        assert len(s.writes()) == 2  # atomic counts as a write

    def test_by_object_grouping(self):
        o1, o2 = obj("a"), obj("b")
        s = AccessSet()
        s.add(acc(o1))
        s.add(acc(o2, offset=4))
        s.add(acc(o1, offset=8))
        groups = s.by_object()
        assert len(groups[o1]) == 2
        assert len(groups[o2]) == 1

    def test_describe_mentions_location(self):
        a = acc(obj())
        a.loc = 42
        assert "line 42" in a.describe()

    def test_atomic_kind_is_write(self):
        assert AccessKind.ATOMIC.is_write()
        assert AccessKind.WRITE.is_write()
        assert not AccessKind.READ.is_write()


class TestContentDedup:
    def test_identical_content_deduped_and_counted(self):
        # loop-invariant address re-recorded per unrolled iteration:
        # distinct Access objects, identical content
        o = obj()
        s = AccessSet()
        for _ in range(5):
            s.add(acc(o, kind=AccessKind.READ, offset=0))
        assert len(s) == 1
        assert s.dedup_skipped == 4

    def test_different_value_not_deduped(self):
        # two writes of different values are NOT duplicates — the
        # benign-WW classification compares stored values
        o = obj()
        s = AccessSet()
        for v in (mk_bv(1, 32), mk_bv(2, 32)):
            a = acc(o)
            a.value = v
            s.add(a)
        assert len(s) == 2
        assert s.dedup_skipped == 0

    def test_uid_dedupe_not_counted_as_skip(self):
        s = AccessSet()
        a = acc(obj())
        s.add(a)
        s.add(a)
        assert len(s) == 1
        assert s.dedup_skipped == 0

    def test_extend_does_not_absorb_counter(self):
        o = obj()
        inner = AccessSet()
        inner.add(acc(o, kind=AccessKind.READ))
        inner.add(acc(o, kind=AccessKind.READ))
        assert inner.dedup_skipped == 1
        outer = AccessSet()
        outer.extend(inner)
        assert outer.dedup_skipped == 0  # stays with its owner


def strided(o, i, kind=AccessKind.WRITE, stride=4, instr=7, value=None):
    """Access i of an unrolled loop: offset = tid*4 + i*stride."""
    tid = mk_bv_var("tid.x", 32)
    offset = mk_add(mk_mul(tid, mk_bv(4, 32)), mk_bv(i * stride, 32))
    return Access(kind=kind, obj=o, offset=offset, size=4, cond=TRUE,
                  flow_id=0, bi_index=0, instr_id=instr, value=value)


class TestSummarization:
    def test_affine_run_collapses(self):
        o = obj()
        s = AccessSet()
        for i in range(8):
            s.add(strided(o, i, stride=32))
        out, collapsed = summarize_access_set(s)
        assert collapsed == 7
        assert len(out) == 1
        summary = out.accesses[0].summary
        assert summary is not None
        assert summary.count == 8 and summary.stride == 32

    def test_summary_offsets_cover_exactly_the_run(self):
        o = obj()
        s = AccessSet()
        for i in range(4):
            s.add(strided(o, i, stride=16))
        out, _ = summarize_access_set(s)
        a = out.accesses[0]
        k = a.summary.index_var
        for tid_val in (0, 3):
            got = {evaluate(a.offset, {"tid.x": tid_val, k.name: i})
                   for i in range(a.summary.count)}
            want = {(tid_val * 4 + i * 16) for i in range(4)}
            assert got == want

    def test_unrelated_instructions_not_grouped(self):
        o = obj()
        s = AccessSet()
        s.add(strided(o, 0, instr=1))
        s.add(strided(o, 1, instr=2))
        out, collapsed = summarize_access_set(s)
        assert collapsed == 0 and len(out) == 2

    def test_non_uniform_gap_kept_individually(self):
        o = obj()
        s = AccessSet()
        for i in (0, 1, 3):   # gaps 4 and 8: not a progression
            s.add(strided(o, i))
        out, collapsed = summarize_access_set(s)
        assert collapsed == 0
        assert len(out) == 3

    def test_different_values_not_grouped(self):
        o = obj()
        s = AccessSet()
        s.add(strided(o, 0, value=mk_bv(1, 32)))
        s.add(strided(o, 1, value=mk_bv(2, 32)))
        out, collapsed = summarize_access_set(s)
        assert collapsed == 0 and len(out) == 2

    def test_single_access_untouched(self):
        o = obj()
        s = AccessSet()
        s.add(strided(o, 0))
        out, collapsed = summarize_access_set(s)
        assert out is s and collapsed == 0

    def test_dedup_counter_carried_over(self):
        o = obj()
        s = AccessSet()
        s.add(acc(o, kind=AccessKind.READ, offset=0))
        s.add(acc(o, kind=AccessKind.READ, offset=0))
        for i in range(3):
            s.add(strided(o, i))
        out, collapsed = summarize_access_set(s)
        assert collapsed == 2
        assert out.dedup_skipped == s.dedup_skipped == 1
