"""AccessSet container semantics (barrier-interval unions)."""
import pytest

from repro import ir
from repro.smt import TRUE, mk_bv, mk_bv_var
from repro.sym import Access, AccessKind, AccessSet, MemoryObject


def obj(name="m"):
    return MemoryObject(name=name, space=ir.MemSpace.SHARED,
                        size_bytes=256, elem_width=32)


def acc(o, kind=AccessKind.WRITE, offset=0, cond=TRUE, instr=1, flow=0):
    offset_term = mk_bv(offset, 32) if isinstance(offset, int) else offset
    return Access(kind=kind, obj=o, offset=offset_term, size=4, cond=cond,
                  flow_id=flow, bi_index=0, instr_id=instr)


class TestAccessSet:
    def test_identity_dedupe(self):
        s = AccessSet()
        a = acc(obj())
        s.add(a)
        s.add(a)
        assert len(s) == 1

    def test_distinct_accesses_kept(self):
        o = obj()
        s = AccessSet()
        s.add(acc(o, offset=0))
        s.add(acc(o, offset=4))
        assert len(s) == 2

    def test_union_of_split_children(self):
        """Children inheriting the parent's accesses union back to one."""
        o = obj()
        parent = AccessSet()
        shared_access = acc(o)
        parent.add(shared_access)
        child1 = AccessSet()
        child1.extend(parent)
        child1.add(acc(o, offset=8))
        child2 = AccessSet()
        child2.extend(parent)
        child2.add(acc(o, offset=12))
        union = AccessSet()
        union.extend(child1)
        union.extend(child2)
        assert len(union) == 3  # shared counted once

    def test_reads_writes_partition(self):
        o = obj()
        s = AccessSet()
        s.add(acc(o, kind=AccessKind.READ))
        s.add(acc(o, kind=AccessKind.WRITE, offset=4))
        s.add(acc(o, kind=AccessKind.ATOMIC, offset=8))
        assert len(s.reads()) == 1
        assert len(s.writes()) == 2  # atomic counts as a write

    def test_by_object_grouping(self):
        o1, o2 = obj("a"), obj("b")
        s = AccessSet()
        s.add(acc(o1))
        s.add(acc(o2, offset=4))
        s.add(acc(o1, offset=8))
        groups = s.by_object()
        assert len(groups[o1]) == 2
        assert len(groups[o2]) == 1

    def test_describe_mentions_location(self):
        a = acc(obj())
        a.loc = 42
        assert "line 42" in a.describe()

    def test_atomic_kind_is_write(self):
        assert AccessKind.ATOMIC.is_write()
        assert AccessKind.WRITE.is_write()
        assert not AccessKind.READ.is_write()
