"""Integration tests reproducing the paper's own worked examples.

Each test pins a fact the paper states about a specific kernel:
§II's two race classes, Fig. 4's flow-tree collapse, §V's taint results,
and the GKLEEp-vs-SESA flow behaviour of §III.
"""
import pytest

from repro.core import GKLEEp, SESA, LaunchConfig
from repro.kernels.paper_examples import (
    BITONIC, GENERIC, RACE_EXAMPLE, REDUCTION, REDUCTION_RACY,
)


def cfg(kernel, **kw):
    base = dict(grid_dim=kernel.grid_dim, block_dim=kernel.block_dim,
                scalar_values=dict(kernel.scalar_values),
                array_sizes=dict(kernel.array_sizes), check_oob=False)
    base.update(kw)
    return LaunchConfig(**base)


class TestSectionTwoRaceKernel:
    """§II: the 'race' kernel has two classes of races."""

    @pytest.fixture(scope="class")
    def report(self):
        tool = SESA.from_source(RACE_EXAMPLE.source)
        return tool.check(cfg(RACE_EXAMPLE))

    def test_first_barrier_interval_wr_race(self, report):
        """Thread 0 and thread bdim-1 race on v[0] (paper's witness)."""
        bi0_races = [r for r in report.races
                     if r.access1.bi_index == 0 and not r.benign]
        assert bi0_races, report.summary()
        race = bi0_races[0]
        assert {race.access1.kind.value, race.access2.kind.value} == \
            {"R", "W"}
        # witness: the two threads are adjacent modulo bdim
        w = race.witness
        t1, t2 = w.thread1[0], w.thread2[0]
        assert (t1 + 1) % 64 == t2 or (t2 + 1) % 64 == t1

    def test_second_barrier_interval_divergent_race(self, report):
        """then-part read races else-part write: t1 even, t2 odd,
        t1 == t2 >> 2 (the paper gives t1=0, t2=1)."""
        bi1 = [r for r in report.races
               if r.access1.bi_index == 1 and not r.benign]
        assert bi1, report.summary()
        race = bi1[0]
        w = race.witness
        reader, writer = w.thread1[0], w.thread2[0]
        if race.access1.kind.value != "R":
            reader, writer = writer, reader
        assert reader % 2 == 0
        assert writer % 2 == 1
        assert reader == writer >> 2

    def test_race_found_in_single_flow(self, report):
        assert report.max_flows == 1

    def test_resolvable(self, report):
        assert report.resolvable == "Y"


class TestGenericExample:
    """§III/§V: Generic — all inputs concrete, single flow, no race."""

    def test_no_symbolic_inputs(self):
        tool = SESA.from_source(GENERIC.source)
        assert tool.inferred_symbolic_inputs() == set()

    def test_single_flow_no_race(self):
        report = SESA.from_source(GENERIC.source).check(cfg(GENERIC))
        assert report.max_flows == 1
        assert not report.has_races

    def test_gkleep_forks_on_the_same_kernel(self):
        # e1(tid) and e3(c) fork flows in GKLEEp (c symbolic there)
        report = GKLEEp.from_source(GENERIC.source).check(cfg(GENERIC))
        assert report.execution.num_splits >= 1
        assert report.max_flows >= 2


class TestReductionFigure4:
    """Fig. 4: the reduction's flow tree, and its collapse."""

    def test_sesa_single_flow_race_free(self):
        report = SESA.from_source(REDUCTION.source).check(cfg(REDUCTION))
        assert report.max_flows == 1
        assert not report.has_races
        assert report.resolvable == "Y"

    def test_paper_race_queries_unsat_at_barrier_one(self):
        """The WW/RW queries of §IV-B ('the solver returns unsat')."""
        report = SESA.from_source(REDUCTION.source).check(cfg(REDUCTION))
        assert report.check_stats.pairs_considered > 0
        assert not report.races

    def test_gkleep_flow_growth(self):
        """GKLEEp's tree: F1/F2 at barrier 1, five flows at barrier 2..."""
        report = GKLEEp.from_source(REDUCTION.source).check(
            cfg(REDUCTION, block_dim=(16, 1, 1)))
        assert report.max_flows > 1

    def test_racy_variant_detected(self):
        """Hoisting the barrier out of the loop re-introduces the race."""
        report = SESA.from_source(REDUCTION_RACY.source).check(
            cfg(REDUCTION_RACY))
        assert report.has_races

    def test_number_of_barrier_intervals(self):
        # copy + log2(64) loop barriers + final interval
        report = SESA.from_source(REDUCTION.source).check(cfg(REDUCTION))
        assert report.execution.num_barriers == 2 + 6


class TestBitonicFigure1:
    """Fig. 1 bitonic: single flow under combining; unresolvable guards."""

    @pytest.fixture(scope="class")
    def report(self):
        return SESA.from_source(BITONIC.source).check(cfg(BITONIC))

    def test_single_flow(self, report):
        assert report.max_flows == 1

    def test_guards_unresolvable(self, report):
        """§IV-B: 'the conditions at lines 6 and 10 introduce global SIMD
        writes into the read set and write set'."""
        assert report.resolvable == "N"

    def test_no_false_alarm_on_swap(self, report):
        """The partner-swap is race-free under barrier separation; the
        over-approximated guards must not invent a race here because the
        addresses (tid, tid^j) are still precise."""
        assert not report.has_races


class TestTaintExamples:
    """§V Examples 1-2 summarised counts."""

    def test_generic_zero_of_three(self):
        tool = SESA.from_source(GENERIC.source)
        assert len(tool.taint.verdicts) == 3
        assert tool.inferred_symbolic_inputs() == set()

    def test_reduction_zero_of_two(self):
        tool = SESA.from_source(REDUCTION.source)
        assert len(tool.taint.verdicts) == 2
        assert tool.inferred_symbolic_inputs() == set()
