"""SESA.generate_tests: concrete per-flow test vectors (§I's 'concolic
tools also generate concrete tests')."""
import pytest

from repro.core import SESA, LaunchConfig
from repro.smt import evaluate


class TestGenerateTests:
    def test_single_flow_single_vector(self):
        tool = SESA.from_source("""
__shared__ int s[64];
__global__ void k() { s[threadIdx.x] = 1; }
""")
        vectors = tool.generate_tests(LaunchConfig(block_dim=8))
        assert len(vectors) == 1

    def test_vector_per_divergent_trip_count(self):
        tool = SESA.from_source("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned i = 0; i < threadIdx.x; i++) { s[i] = 1; }
}
""")
        vectors = tool.generate_tests(LaunchConfig(block_dim=4))
        # trip counts 0..3: one flow (and vector) each
        assert len(vectors) == 4
        tids = sorted(v.get("tid.x", 0) for v in vectors)
        assert tids == [0, 1, 2, 3]

    def test_vectors_satisfy_their_flow(self):
        tool = SESA.from_source("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned i = 0; i < threadIdx.x / 2; i++) { s[i] = 1; }
}
""")
        config = LaunchConfig(block_dim=8)
        vectors = tool.generate_tests(config)
        assert vectors
        for vec in vectors:
            assert 0 <= vec.get("tid.x", 0) < 8

    def test_symbolic_inputs_appear_in_vectors(self):
        tool = SESA.from_source("""
__shared__ int s[64];
__global__ void k(int *idx) {
  for (int i = 0; i < idx[0] % 4; i++) { s[threadIdx.x] = i; }
}
""")
        config = LaunchConfig(block_dim=4,
                              symbolic_inputs={"idx"})
        vectors = tool.generate_tests(config)
        assert len(vectors) >= 2  # different trip counts from idx[0]
