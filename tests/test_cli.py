"""CLI tests (python -m repro ...)."""
import json

import pytest

from repro.cli import main

RACY = """
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}
"""

CLEAN = """
__global__ void k(float *a) { a[threadIdx.x] = 1.0f; }
"""

SCATTER = """
__global__ void scatter(int *idx, float *out) {
  out[idx[threadIdx.x] & 63] = (float)threadIdx.x;
}
"""


@pytest.fixture
def racy_file(tmp_path):
    f = tmp_path / "racy.cu"
    f.write_text(RACY)
    return str(f)


@pytest.fixture
def clean_file(tmp_path):
    f = tmp_path / "clean.cu"
    f.write_text(CLEAN)
    return str(f)


class TestCheck:
    def test_racy_kernel_exit_code(self, racy_file, capsys):
        code = main(["check", racy_file, "--block", "64", "--no-oob"])
        assert code == 1
        out = capsys.readouterr().out
        assert "RACE" in out

    def test_clean_kernel_exit_code(self, clean_file, capsys):
        code = main(["check", clean_file, "--block", "64"])
        assert code == 0
        assert "no races found" in capsys.readouterr().out

    def test_json_output(self, racy_file, capsys):
        code = main(["check", racy_file, "--block", "64", "--no-oob",
                     "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "race"
        assert payload["races"]
        assert payload["flows"] == 1
        assert payload["resolvable"] == "Y"

    def test_engine_selection(self, racy_file, capsys):
        code = main(["check", racy_file, "--block", "8", "--no-oob",
                     "--engine", "gkleep", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "gkleep"
        assert code == 1

    def test_grid_and_scalar_options(self, tmp_path, capsys):
        f = tmp_path / "g.cu"
        f.write_text("""
__global__ void k(int *a, int n) {
  unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
  if ((int)i < n) { a[i] = 1; }
}
""")
        code = main(["check", str(f), "--grid", "4", "--block", "32",
                     "--set", "n=128", "--array-size", "a=128"])
        assert code == 0

    def test_forced_symbolic(self, tmp_path, capsys):
        f = tmp_path / "s.cu"
        f.write_text(SCATTER)
        code = main(["check", str(f), "--block", "64", "--no-oob",
                     "--symbolic", "idx"])
        assert code == 1  # symbolic idx values can collide


class TestTaint:
    def test_advisory_output(self, tmp_path, capsys):
        f = tmp_path / "s.cu"
        f.write_text(SCATTER)
        code = main(["taint", str(f)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SYMBOLIC" in out and "idx" in out


class TestIr:
    def test_ir_dump(self, racy_file, capsys):
        code = main(["ir", racy_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel void @race" in out
        assert "getelptr" in out


class TestTests:
    def test_vectors_cover_flows(self, tmp_path, capsys):
        f = tmp_path / "t.cu"
        f.write_text("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned i = 0; i < threadIdx.x; i++) { s[i] = 1; }
}
""")
        code = main(["tests", str(f), "--block", "4"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("test[")]
        assert len(lines) >= 2  # distinct trip counts → distinct vectors


class TestFileErrors:
    def test_missing_file_exits_2_with_clean_message(self, capsys):
        for sub in (["check"], ["taint"], ["ir"], ["tests"]):
            with pytest.raises(SystemExit) as exc:
                main(sub + ["/no/such/kernel.cu"])
            assert exc.value.code == 2
            err = capsys.readouterr().err
            assert "cannot read" in err
            assert "Traceback" not in err

    def test_directory_as_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", str(tmp_path)])
        assert exc.value.code == 2
        assert "cannot read" in capsys.readouterr().err


class TestTaintJson:
    def test_json_advisory(self, tmp_path, capsys):
        f = tmp_path / "s.cu"
        f.write_text(SCATTER)
        code = main(["taint", str(f), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "scatter"
        assert payload["symbolic"] == ["idx"]
        assert payload["verdicts"]["idx"]["is_pointer"]
        assert payload["verdicts"]["idx"]["flows_into_address"]
        assert payload["total_inputs"] == len(payload["verdicts"])


class TestTestsJson:
    def test_json_vectors(self, tmp_path, capsys):
        f = tmp_path / "t.cu"
        f.write_text("""
__shared__ int s[64];
__global__ void k() {
  for (unsigned i = 0; i < threadIdx.x; i++) { s[i] = 1; }
}
""")
        code = main(["tests", str(f), "--block", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "k"
        assert len(payload["vectors"]) >= 2
        assert all(isinstance(v, dict) for v in payload["vectors"])


BUGGY_REDUCTION = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""

TRUE_RACE = """
__global__ void clash(int *v) {
  v[0] = threadIdx.x;
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    f = tmp_path / "reduce.cu"
    f.write_text(BUGGY_REDUCTION)
    return str(f)


class TestRepair:
    def test_repair_synthesizes_verified_fix(self, buggy_file, capsys):
        code = main(["repair", buggy_file, "--block", "64", "--no-oob"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified race-free" in out
        assert "+    __syncthreads();" in out

    def test_diff_only_output(self, buggy_file, capsys):
        code = main(["repair", buggy_file, "--block", "64", "--no-oob",
                     "--diff"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("--- a/reduce.cu")
        assert "+    __syncthreads();" in out

    def test_json_output(self, buggy_file, capsys):
        code = main(["repair", buggy_file, "--block", "64", "--no-oob",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["converged"] and payload["verified"]
        assert payload["minimal"]
        assert [e["line"] for e in payload["edits"]] == [8]
        assert payload["preamble_reuse"] > 0

    def test_unrepairable_kernel_exits_1(self, tmp_path, capsys):
        f = tmp_path / "clash.cu"
        f.write_text(TRUE_RACE)
        code = main(["repair", str(f), "--block", "32", "--no-oob",
                     "--max-iterations", "3"])
        assert code == 1
        assert "FAILED to converge" in capsys.readouterr().out

    def test_clean_kernel_exits_0(self, clean_file, capsys):
        code = main(["repair", clean_file, "--block", "64"])
        assert code == 0
        assert "already race-free" in capsys.readouterr().out


class TestExitCodeAudit:
    """0 = clean, 1 = defects found (or repair failed), 2 = bad input —
    uniformly across subcommands."""

    @pytest.mark.parametrize("argv,expected", [
        (["check", "{clean}", "--block", "64"], 0),
        (["check", "{racy}", "--block", "64", "--no-oob"], 1),
        (["repair", "{buggy}", "--block", "64", "--no-oob"], 0),
        (["taint", "{racy}"], 0),
        (["ir", "{racy}"], 0),
        (["tests", "{clean}", "--block", "4"], 0),
        (["check", "{bad}"], 2),
        (["repair", "{bad}"], 2),
        (["taint", "{bad}"], 2),
        (["ir", "{bad}"], 2),
        (["tests", "{bad}"], 2),
        (["check", "{racy}", "--kernel", "nosuch"], 2),
        (["repair", "{racy}", "--kernel", "nosuch"], 2),
        (["check", "{racy}", "--set", "oops"], 2),
        (["check", "{racy}", "--set", "n=abc"], 2),
    ])
    def test_exit_codes(self, tmp_path, capsys, argv, expected):
        files = {}
        for tag, source in (("clean", CLEAN), ("racy", RACY),
                            ("buggy", BUGGY_REDUCTION),
                            ("bad", "__global__ void f( {")):
            f = tmp_path / f"{tag}.cu"
            f.write_text(source)
            files[tag] = str(f)
        argv = [a.format(**files) for a in argv]
        try:
            code = main(argv)
        except SystemExit as exc:
            code = exc.code
        assert code == expected
        err = capsys.readouterr().err
        if expected == 2:
            assert err.startswith("repro:")
            assert "Traceback" not in err
