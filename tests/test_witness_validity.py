"""Witness validation: every reported race/OOB witness must concretely
satisfy the conditions and addresses it claims to collide.

This closes the loop end-to-end: parser → executor → checker → witness —
if any layer mis-translates, the concrete re-evaluation fails.
"""
import pytest

from repro.core import SESA, LaunchConfig
from repro.kernels import ALL_KERNELS
from repro.smt import evaluate
from repro.smt.subst import EvaluationError


def env_for(witness, which, extra=None):
    coords = witness.thread1 if which == 1 else witness.thread2
    blocks = witness.block1 if which == 1 else witness.block2
    env = {"tid.x": coords[0], "tid.y": coords[1], "tid.z": coords[2],
           "bid.x": blocks[0], "bid.y": blocks[1], "bid.z": blocks[2]}
    if extra:
        env.update(extra)
    return env


def validate_races(report):
    for race in report.races:
        w = race.witness
        inputs = dict(w.inputs)
        try:
            cond1 = evaluate(race.access1.cond, env_for(w, 1, inputs))
            cond2 = evaluate(race.access2.cond, env_for(w, 2, inputs))
            addr1 = evaluate(race.access1.offset, env_for(w, 1, inputs))
            addr2 = evaluate(race.access2.offset, env_for(w, 2, inputs))
        except EvaluationError:
            continue  # havocked/unresolvable parts: nothing to validate
        assert cond1, race.describe()
        assert cond2, race.describe()
        lo1, hi1 = addr1, addr1 + race.access1.size
        lo2, hi2 = addr2, addr2 + race.access2.size
        assert lo1 < hi2 and lo2 < hi1, \
            f"witness addresses disjoint: {race.describe()}"


def validate_oobs(report):
    for oob in report.oobs:
        w = oob.witness
        try:
            cond = evaluate(oob.access.cond, env_for(w, 1, dict(w.inputs)))
            addr = evaluate(oob.access.offset, env_for(w, 1, dict(w.inputs)))
        except EvaluationError:
            continue
        assert cond, oob.describe()
        assert addr + oob.access.size > oob.size_bytes, oob.describe()


@pytest.mark.parametrize("name", [
    "race_example", "reduction_racy", "histogram64", "histo_prescan",
])
def test_race_witnesses_validate(name):
    k = ALL_KERNELS[name]
    grid = tuple(min(g, 2) for g in k.grid_dim)
    block = tuple(min(b, 64) for b in k.block_dim)
    report = SESA.from_source(k.source, k.kernel_name).check(
        k.launch_config(grid_dim=grid, block_dim=block, check_oob=False))
    assert report.races
    validate_races(report)


def test_oob_witness_validates():
    report = SESA.from_source("""
__global__ void k(int *g) {
  g[blockIdx.x * blockDim.x + threadIdx.x + 3] = 1;
}""").check(LaunchConfig(grid_dim=2, block_dim=32,
                         array_sizes={"g": 64}))
    assert report.oobs
    validate_oobs(report)


def test_witness_thread_bounds():
    k = ALL_KERNELS["race_example"]
    report = SESA.from_source(k.source).check(
        k.launch_config(check_oob=False))
    for race in report.races:
        for coords, dims in ((race.witness.thread1, k.block_dim),
                             (race.witness.thread2, k.block_dim)):
            for c, d in zip(coords, dims):
                assert 0 <= c < max(d, 1)
