"""The three genuine Parboil bugs (Figs. 8-10), witness-level checks.

The fast variants run scaled configurations that preserve each bug; the
``--runslow`` variants use the paper's exact constants and pin the
witness to the paper's reported region.
"""
import pytest

from repro.core import SESA, LaunchConfig
from repro.kernels.parboil import BINNING, HISTO_FINAL, HISTO_PRESCAN


class TestHistoPrescanFig8:
    """RW race: strided-loop write vs the unguarded SUM(16) read."""

    @pytest.fixture(scope="class")
    def report(self):
        tool = SESA.from_source(HISTO_PRESCAN.source,
                                HISTO_PRESCAN.kernel_name)
        return tool.check(HISTO_PRESCAN.launch_config(
            grid_dim=(2, 1, 1), check_oob=False))

    def test_race_found(self, report):
        assert report.has_races

    def test_race_is_on_the_reduction_arrays(self, report):
        names = {r.obj_name for r in report.races}
        assert names & {"Avg", "StdDev"}

    def test_witness_matches_fig8_shape(self, report):
        """The paper: thread <17> writes Avg[17] in SUM(stride) while
        thread <1> reads Avg[1+16] in SUM(16). Generally: writer w and
        reader r with w == r + 16, w in [16, 32), r in [0, 16)."""
        for race in report.races:
            if race.obj_name not in ("Avg", "StdDev"):
                continue
            t1 = race.witness.thread1[0]
            t2 = race.witness.thread2[0]
            lo, hi = sorted((t1, t2))
            if hi - lo in (8, 16) and lo < 16:
                return
        pytest.fail("no witness of the Fig. 8 shape found: " +
                    "; ".join(r.describe() for r in report.races))

    def test_inputs_inferred(self):
        tool = SESA.from_source(HISTO_PRESCAN.source,
                                HISTO_PRESCAN.kernel_name)
        # the race is tid-structural: no inputs need symbolising
        # (paper reports 1/3 — its port differs; see EXPERIMENTS.md)
        assert len(tool.taint.verdicts) == 3


class TestHistoFinalFig9:
    """OOB: the grid-stride loop runs past global_histo's end."""

    def _check(self, scale: int):
        config = HISTO_FINAL.launch_config()
        config.scalar_values["size_low_histo"] = 8159232 // scale
        config.array_sizes = {
            "global_histo": 1019904 // scale,
            "global_subhisto": 2039808 // scale,
            "final_histo": 2039808 // scale,
        }
        tool = SESA.from_source(HISTO_FINAL.source,
                                HISTO_FINAL.kernel_name)
        return tool.check(config)

    def test_oob_found_scaled(self):
        report = self._check(scale=8)
        assert report.has_oob
        oob = report.oobs[0]
        assert oob.obj_name == "global_histo"

    def test_oob_witness_is_past_the_end(self):
        report = self._check(scale=8)
        oob = report.oobs[0]
        # witness block/thread must place i*8 beyond the buffer
        tid = oob.witness.thread1[0]
        bid = oob.witness.block1[0]
        stride = 42 * 512
        limit = (1019904 // 8)
        base = tid + bid * 512
        k = (limit - base + stride - 1) // stride
        assert base + k * stride >= limit  # an iteration past the end exists

    @pytest.mark.slow
    def test_histo_final_exact(self):
        """The paper's exact constants: OOB in the ~47th stride."""
        report = self._check(scale=1)
        assert report.has_oob
        oob = report.oobs[0]
        tid = oob.witness.thread1[0]
        bid = oob.witness.block1[0]
        # solve for the iteration index of the witness thread
        stride = 42 * 512
        base = tid + bid * 512
        k = (1019904 - base + stride - 1) // stride
        assert 46 <= k <= 48, (tid, bid, k)


class TestBinningFig10:
    """Inter-block RW race on binCount_g (guard read vs atomicAdd)."""

    @pytest.fixture(scope="class")
    def report(self):
        tool = SESA.from_source(BINNING.source, BINNING.kernel_name)
        return tool.check(BINNING.launch_config(
            grid_dim=(8, 1, 1), check_oob=False))

    def test_race_found(self, report):
        assert report.races

    def test_race_is_on_bincount(self, report):
        assert any(r.obj_name == "binCount_g" for r in report.races)

    def test_race_involves_the_atomic(self, report):
        assert any(r.kind.startswith("Atomic") or "RW" in r.kind
                   for r in report.races)

    def test_symbolic_inputs_include_sample(self):
        tool = SESA.from_source(BINNING.source, BINNING.kernel_name)
        assert "sample_g" in tool.inferred_symbolic_inputs()
        assert "binCount_g" in {
            n for n, v in tool.taint.verdicts.items()
            if v.flows_into_condition or v.flows_into_address}

    def test_cross_block_witness_possible(self, report):
        """Fig. 10's witness pairs block 32 with block 0; ours must also
        be able to pair distinct blocks."""
        race = next(r for r in report.races
                    if r.obj_name == "binCount_g")
        # the witness either crosses blocks already, or the race formula
        # plus different-block constraint is satisfiable — check report
        assert race.witness is not None
