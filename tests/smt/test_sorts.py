"""Sort (BV/Bool) unit tests."""
import pytest

from repro.smt.sorts import BOOL, BV32, BoolSort, BVSort, bv_sort


class TestBoolSort:
    def test_singleton(self):
        assert BoolSort() is BOOL

    def test_predicates(self):
        assert BOOL.is_bool() and not BOOL.is_bv()


class TestBVSort:
    def test_interned(self):
        assert bv_sort(32) is BV32
        assert bv_sort(17) is bv_sort(17)

    def test_mask_and_modulus(self):
        s = bv_sort(8)
        assert s.mask == 255
        assert s.modulus == 256

    def test_signed_range(self):
        s = bv_sort(8)
        assert s.min_signed == -128
        assert s.max_signed == 127

    def test_wrap(self):
        s = bv_sort(8)
        assert s.wrap(256) == 0
        assert s.wrap(-1) == 255
        assert s.wrap(300) == 44

    def test_to_signed(self):
        s = bv_sort(8)
        assert s.to_signed(255) == -1
        assert s.to_signed(127) == 127
        assert s.to_signed(128) == -128

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BVSort(0)

    def test_equality_by_width(self):
        assert bv_sort(16) == BVSort(16)
        assert bv_sort(16) != bv_sort(32)
        assert bv_sort(16) != BOOL
