"""Incremental solver sessions: assumption scoping, blast-once, memo.

The session must behave exactly like a fresh layered Solver per query
(same verdicts, valid models) while actually reusing one SAT instance —
assumptions from one query must never leak into the next, and learned
clauses must survive because they are assumption-independent.
"""
import pytest

from repro.smt import (
    CheckResult, QueryMemo, SolverSession, evaluate,
    mk_add, mk_and, mk_bool_var, mk_bv, mk_bv_var, mk_bvxor, mk_eq,
    mk_ne, mk_not, mk_or, mk_ult,
)
from repro.smt.cnf import CNF
from repro.smt.sat import SatResult, SatSolver


X = mk_bv_var("x", 32)
Y = mk_bv_var("y", 32)


def make_session(**kw):
    # x < 16 and y < 16: a tiny but non-trivial preamble
    return SolverSession([mk_ult(X, mk_bv(16, 32)),
                          mk_ult(Y, mk_bv(16, 32))], **kw)


class TestAssumptionScoping:
    def test_contradictory_sequential_queries(self):
        s = make_session()
        assert s.check([mk_eq(X, mk_bv(3, 32))]) == CheckResult.SAT
        assert s.model()["x"] == 3
        # contradicts the previous goal but NOT the preamble: must be SAT
        assert s.check([mk_eq(X, mk_bv(5, 32))]) == CheckResult.SAT
        assert s.model()["x"] == 5
        # contradicts the preamble: UNSAT, not an error
        assert s.check([mk_eq(X, mk_bv(200, 32))]) == CheckResult.UNSAT
        # and the session still answers afterwards
        assert s.check([mk_eq(X, mk_bv(3, 32))]) == CheckResult.SAT

    def test_unsat_goal_does_not_poison_instance(self):
        s = make_session(use_interval=False)
        eq = mk_eq(X, Y)
        ne = mk_ne(X, Y)
        # x == y and x != y together are UNSAT...
        assert s.check([eq, ne]) == CheckResult.UNSAT
        # ...but each alone remains SAT on the same instance
        assert s.check([eq]) == CheckResult.SAT
        assert s.check([ne]) == CheckResult.SAT

    def test_empty_goal_checks_preamble(self):
        s = make_session()
        assert s.check([]) == CheckResult.SAT

    def test_contradictory_preamble(self):
        s = SolverSession([mk_eq(X, mk_bv(1, 32)),
                           mk_eq(X, mk_bv(2, 32)),
                           mk_ult(X, mk_bv(4, 32))])
        assert s.check([mk_eq(Y, mk_bv(0, 32))]) == CheckResult.UNSAT
        assert s.check([]) == CheckResult.UNSAT


class TestBlastOnce:
    def test_one_sat_instance_many_queries(self):
        s = make_session(use_interval=False)
        for k in range(10):
            assert s.check([mk_eq(X, mk_bv(k, 32))]) == CheckResult.SAT
        assert s.stats.sat_instances == 1
        assert s.stats.by_session == 10
        assert s.stats.by_sat == 0

    def test_rotation_rebuilds_instance(self):
        s = make_session(use_interval=False, max_live_queries=2)
        for k in range(5):
            assert s.check([mk_eq(X, mk_bv(k, 32))]) == CheckResult.SAT
        # 5 queries at 2 per instance: ceil(5/2) = 3 instances
        assert s.stats.sat_instances == 3
        assert s.stats.by_session == 5

    def test_models_are_valid(self):
        s = make_session(use_interval=False)
        goals = [
            [mk_eq(mk_add(X, Y), mk_bv(20, 32))],
            [mk_eq(mk_bvxor(X, Y), mk_bv(9, 32))],
            [mk_ne(X, Y), mk_ult(X, Y)],
        ]
        for goal in goals:
            assert s.check(goal) == CheckResult.SAT
            model = s.model()
            assignment = dict(model.values)
            assignment.setdefault("x", 0)
            assignment.setdefault("y", 0)
            for t in goal:
                assert evaluate(t, assignment)
            assert assignment["x"] < 16 and assignment["y"] < 16

    def test_budget_exhaustion_returns_unknown(self):
        # a propositional pigeonhole (5 pigeons, 4 holes) is UNSAT but
        # only via search; a zero conflict budget must surface UNKNOWN,
        # and a later easy query on the same session still works
        n = 5
        holes = [[mk_bool_var(f"h{p}_{j}") for j in range(n - 1)]
                 for p in range(n)]
        hard = [mk_or(*holes[p]) for p in range(n)]
        for j in range(n - 1):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    hard.append(mk_not(mk_and(holes[p1][j], holes[p2][j])))
        s = SolverSession([mk_ult(X, mk_bv(16, 32))],
                          conflict_budget=0, use_interval=False)
        assert s.check(hard) == CheckResult.UNKNOWN
        assert s.check([mk_eq(X, mk_bv(3, 32))]) == CheckResult.SAT

    def test_interval_layer_uses_preamble_bounds(self):
        s = make_session()
        # x >= 16 contradicts the preamble bound without bit-blasting
        before = s.stats.by_interval
        assert s.check([mk_eq(X, mk_bv(17, 32))]) == CheckResult.UNSAT
        assert s.stats.by_interval == before + 1
        assert s.stats.sat_instances == 0


class TestQueryMemo:
    def test_hit_miss_accounting(self):
        memo = QueryMemo()
        goal = mk_eq(X, mk_bv(3, 32))
        key = ((id(X),), id(goal))
        assert memo.get(key) is None
        memo.put(key, CheckResult.SAT, {"x": 3})
        assert memo.get(key) == (CheckResult.SAT, {"x": 3})
        assert memo.hits == 1 and memo.misses == 1

    def test_unknown_never_stored(self):
        memo = QueryMemo()
        memo.put(("k",), CheckResult.UNKNOWN)
        assert memo.get(("k",)) is None
        assert len(memo) == 0

    def test_distinct_preambles_do_not_collide(self):
        memo = QueryMemo()
        goal = mk_eq(X, mk_bv(3, 32))
        memo.put((("p1",), id(goal)), CheckResult.UNSAT)
        assert memo.get((("p2",), id(goal))) is None


class TestIncrementalSatSolver:
    def test_add_clause_after_solve(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add([a, b])
        sat = SatSolver(cnf)
        assert sat.solve() == SatResult.SAT
        sat.add_clause([-a])
        sat.add_clause([-b])
        assert sat.solve() == SatResult.UNSAT

    def test_attached_cnf_forwards_clauses(self):
        cnf = CNF()
        a = cnf.new_var()
        sat = SatSolver(cnf)
        cnf.attach(sat)
        assert sat.solve([a]) == SatResult.SAT
        cnf.add([-a])
        assert sat.solve([a]) == SatResult.UNSAT
        assert sat.solve([-a]) == SatResult.SAT

    def test_assumptions_do_not_persist(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add([-a, b])
        sat = SatSolver(cnf)
        assert sat.solve([a]) == SatResult.SAT
        assert sat.model[b] is True
        assert sat.solve([-b]) == SatResult.SAT
        assert sat.model[a] is False

    def test_per_call_conflict_budget(self):
        # pigeonhole guarded by an assumption: proving it UNSAT costs
        # conflicts, but those must count against a fresh per-call
        # allowance, not a lifetime total
        cnf = CNF()
        sel = cnf.new_var()
        n = 5
        holes = [[cnf.new_var() for _ in range(n - 1)] for _ in range(n)]
        for p in range(n):
            cnf.add([-sel] + holes[p])
        for h in range(n - 1):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    cnf.add([-holes[p1][h], -holes[p2][h]])
        probe = SatSolver(cnf)
        assert probe.solve([sel]) == SatResult.UNSAT
        assert probe.ok          # assumption-relative, not global
        needed = probe.conflicts
        assert needed > 0
        sat = SatSolver(cnf, conflict_budget=needed)
        sat.conflicts = 10 * needed   # as if prior queries burned it
        assert sat.solve([sel]) == SatResult.UNSAT

    def test_global_unsat_sets_ok_false(self):
        cnf = CNF()
        a = cnf.new_var()
        sat = SatSolver(cnf)
        sat.add_clause([a])
        sat.add_clause([-a])
        assert sat.solve() == SatResult.UNSAT
        assert not sat.ok
