"""Simplifier rewrite tests (semantics preservation is property-tested
in test_properties.py; these pin the specific rewrites the race queries
rely on)."""
from repro.smt import (
    FALSE, TRUE, Op, mk_add, mk_bv, mk_bv_var, mk_bvand, mk_bvxor, mk_eq,
    mk_extract, mk_lshr, mk_mul, mk_shl, mk_sub, mk_udiv, mk_ult,
    mk_urem, mk_zext, simplify,
)


def x():
    return mk_bv_var("x", 32)


class TestPowerOfTwoRewrites:
    def test_urem_to_mask(self):
        t = simplify(mk_urem(x(), mk_bv(8, 32)))
        assert t.op == Op.AND
        assert t.args[1] is mk_bv(7, 32)

    def test_udiv_to_shift(self):
        t = simplify(mk_udiv(x(), mk_bv(16, 32)))
        assert t.op == Op.LSHR

    def test_mul_to_shift(self):
        t = simplify(mk_mul(x(), mk_bv(4, 32)))
        assert t.op == Op.SHL

    def test_non_power_untouched(self):
        t = simplify(mk_urem(x(), mk_bv(6, 32)))
        assert t.op == Op.UREM

    def test_nested_rewrites(self):
        # (x % 32) / 4  ->  (x & 31) >> 2
        t = simplify(mk_udiv(mk_urem(x(), mk_bv(32, 32)), mk_bv(4, 32)))
        assert t.op == Op.LSHR
        assert t.args[0].op == Op.AND


class TestEqualityNormalisation:
    def test_offset_cancellation(self):
        # x + 3 == 10  ->  x == 7
        t = simplify(mk_eq(mk_add(x(), mk_bv(3, 32)), mk_bv(10, 32)))
        assert t.op == Op.EQ
        assert t.args[1] is mk_bv(7, 32)

    def test_two_sided_offsets(self):
        # x + 1 == y + 3  ->  x == y + 2
        y = mk_bv_var("y", 32)
        t = simplify(mk_eq(mk_add(x(), mk_bv(1, 32)),
                           mk_add(y, mk_bv(3, 32))))
        assert t.op == Op.EQ

    def test_mask_contradiction(self):
        # (x & 0xF0) == 5 is impossible
        t = simplify(mk_eq(mk_bvand(x(), mk_bv(0xF0, 32)), mk_bv(5, 32)))
        assert t is FALSE

    def test_shift_alignment_contradiction(self):
        # (x << 2) == 3 is impossible
        t = simplify(mk_eq(mk_shl(x(), mk_bv(2, 32)), mk_bv(3, 32)))
        assert t is FALSE

    def test_sub_to_eq(self):
        y = mk_bv_var("y", 32)
        t = simplify(mk_eq(mk_sub(x(), y), mk_bv(0, 32)))
        assert t.op == Op.EQ
        assert set(map(id, t.args)) == {id(x()), id(y)}

    def test_xor_to_eq(self):
        y = mk_bv_var("y", 32)
        t = simplify(mk_eq(mk_bvxor(x(), y), mk_bv(0, 32)))
        assert t.op == Op.EQ

    def test_zext_narrowing(self):
        small = mk_bv_var("s", 8)
        t = simplify(mk_eq(mk_zext(small, 32), mk_bv(300, 32)))
        assert t is FALSE  # 300 needs more than 8 bits
        t2 = simplify(mk_eq(mk_zext(small, 32), mk_bv(200, 32)))
        assert t2.op == Op.EQ and t2.args[0].width == 8


class TestComparisonRewrites:
    def test_masked_lt_tautology(self):
        # (x & 7) < 8 is always true
        t = simplify(mk_ult(mk_bvand(x(), mk_bv(7, 32)), mk_bv(8, 32)))
        assert t is TRUE

    def test_extract_of_zext(self):
        small = mk_bv_var("s", 8)
        t = simplify(mk_extract(mk_zext(small, 32), 7, 0))
        assert t is small


class TestIdempotence:
    def test_simplify_twice_is_stable(self):
        t = mk_eq(mk_add(mk_urem(x(), mk_bv(8, 32)), mk_bv(3, 32)),
                  mk_bv(10, 32))
        once = simplify(t)
        twice = simplify(once)
        assert once is twice
