"""End-to-end solver tests, including the paper's own race formulas."""
import pytest

from repro.smt import (
    CheckResult, Solver, get_model, is_sat, mk_add, mk_and, mk_bv,
    mk_bv_var, mk_bvand, mk_bvxor, mk_eq, mk_lshr, mk_ne, mk_not, mk_or,
    mk_shl, mk_ult, mk_urem, evaluate,
)


def bv(value, width=32):
    return mk_bv(value, width)


class TestBasicQueries:
    def test_trivially_sat(self):
        x = mk_bv_var("x")
        assert is_sat(mk_eq(x, bv(5)))

    def test_trivially_unsat(self):
        x = mk_bv_var("x")
        assert not is_sat(mk_and(mk_eq(x, bv(5)), mk_eq(x, bv(6))))

    def test_model_extraction(self):
        x, y = mk_bv_var("x"), mk_bv_var("y")
        model = get_model(mk_eq(mk_add(x, y), bv(10)), mk_eq(x, bv(3)))
        assert model is not None
        assert model["x"] == 3
        assert (model["x"] + model["y"]) % 2**32 == 10

    def test_unsat_has_no_model(self):
        x = mk_bv_var("x")
        solver = Solver()
        solver.add(mk_ult(x, bv(0)))
        assert solver.check() == CheckResult.UNSAT
        with pytest.raises(RuntimeError):
            solver.model()


class TestPaperRaceFormulas:
    """The exact formulas from Section II of the paper."""

    def test_intro_wr_race_is_sat(self):
        # t1.x = (t2.x + 1) % bdim.x  with t1 != t2, both < bdim, bdim = 64
        t1, t2 = mk_bv_var("t1"), mk_bv_var("t2")
        bdim = bv(64)
        formula = mk_and(
            mk_ne(t1, t2),
            mk_ult(t1, bdim),
            mk_ult(t2, bdim),
            mk_eq(t1, mk_urem(mk_add(t2, bv(1)), bdim)),
        )
        model = get_model(formula)
        assert model is not None
        # the paper's witness shape: consecutive threads (mod bdim)
        assert (model["t2"] + 1) % 64 == model["t1"]

    def test_divergent_branch_rw_race_is_sat(self):
        # t1.x % 2 == 0  &&  t2.x % 2 != 0  &&  t1.x == t2.x >> 2
        t1, t2 = mk_bv_var("t1"), mk_bv_var("t2")
        formula = mk_and(
            mk_ne(t1, t2),
            mk_ult(t1, bv(64)), mk_ult(t2, bv(64)),
            mk_eq(mk_urem(t1, bv(2)), bv(0)),
            mk_ne(mk_urem(t2, bv(2)), bv(0)),
            mk_eq(t1, mk_lshr(t2, bv(2))),
        )
        model = get_model(formula)
        assert model is not None
        assert model["t1"] % 2 == 0 and model["t2"] % 2 == 1
        assert model["t1"] == model["t2"] >> 2

    def test_reduction_ww_query_is_unsat(self):
        # t1 != t2 && t1 % 2 == 0 && t2 % 2 == 0 && t1 == t2
        t1, t2 = mk_bv_var("t1"), mk_bv_var("t2")
        formula = mk_and(
            mk_ne(t1, t2),
            mk_eq(mk_urem(t1, bv(2)), bv(0)),
            mk_eq(mk_urem(t2, bv(2)), bv(0)),
            mk_eq(t1, t2),
        )
        assert not is_sat(formula)

    def test_reduction_rw_query_is_unsat(self):
        # t1 != t2 && t1%2 == 0 && t2%2 == 0 && (t1 + 1 == t2 || t1 == t2)
        t1, t2 = mk_bv_var("t1"), mk_bv_var("t2")
        formula = mk_and(
            mk_ne(t1, t2),
            mk_eq(mk_urem(t1, bv(2)), bv(0)),
            mk_eq(mk_urem(t2, bv(2)), bv(0)),
            mk_or(mk_eq(mk_add(t1, bv(1)), t2), mk_eq(t1, t2)),
        )
        assert not is_sat(formula)

    def test_bitonic_ixj_formula(self):
        # ixj = tid ^ j with j = 2: accesses shared[tid] and shared[ixj]
        t1, t2 = mk_bv_var("t1"), mk_bv_var("t2")
        j = bv(2)
        formula = mk_and(
            mk_ne(t1, t2),
            mk_ult(t1, bv(16)), mk_ult(t2, bv(16)),
            mk_ult(t1, mk_bvxor(t1, j)),      # ixj > tid guard for t1
            mk_eq(mk_bvxor(t1, j), t2),       # t1's partner address hits t2's own
        )
        model = get_model(formula)
        assert model is not None
        assert (model["t1"] ^ 2) == model["t2"]


class TestHistoFinalOOB:
    """Figure 9's OOB constraint, downscaled proportionally."""

    def test_oob_constraint_shape(self):
        # (tid + bid*512 + 47*42*512) * 8 < 8159230 is SAT for small tid/bid
        tid, bid = mk_bv_var("tid"), mk_bv_var("bid")
        expr = mk_add(mk_add(tid, mk_bv(512, 32) * bid), bv(47 * 42 * 512))
        formula = mk_and(
            mk_ult(tid, bv(512)),
            mk_ult(bid, bv(42)),
            mk_ult(expr * bv(8), bv(8159230 + 8 * 4)),
            mk_not(mk_ult(expr, bv(8159232 // 8))),
        )
        model = get_model(formula)
        assert model is not None
        idx = (model["tid"] + model["bid"] * 512 + 47 * 42 * 512)
        assert idx >= 8159232 // 8
        assert idx * 8 < 8159230 + 32


class TestSolverLayers:
    def test_interval_layer_catches_disjoint_strides(self):
        x = mk_bv_var("x")
        solver = Solver()
        solver.add(mk_ult(x, bv(8)), mk_eq(x, bv(100)))
        assert solver.check() == CheckResult.UNSAT
        assert solver.stats.by_sat == 0  # never reached the SAT core

    def test_simplifier_layer_catches_mask_contradiction(self):
        x = mk_bv_var("x")
        solver = Solver()
        # (x * 4) == 2 is impossible: multiples of 4 are never 2
        solver.add(mk_eq(mk_shl(x, bv(2)), bv(2)))
        assert solver.check() == CheckResult.UNSAT
        assert solver.stats.by_sat == 0

    def test_layers_can_be_disabled(self):
        x = mk_bv_var("x")
        solver = Solver(use_simplifier=False, use_interval=False)
        solver.add(mk_ult(x, bv(8)), mk_eq(x, bv(100)))
        assert solver.check() == CheckResult.UNSAT
        assert solver.stats.by_sat == 1

    def test_push_pop_scopes(self):
        x = mk_bv_var("x")
        solver = Solver()
        solver.add(mk_ult(x, bv(10)))
        mark = solver.push_scope()
        solver.add(mk_eq(x, bv(100)))
        assert solver.check() == CheckResult.UNSAT
        solver.pop_scope(mark)
        assert solver.check() == CheckResult.SAT

    def test_extra_assumptions_not_persistent(self):
        x = mk_bv_var("x")
        solver = Solver()
        solver.add(mk_ult(x, bv(10)))
        assert solver.check(mk_eq(x, bv(100))) == CheckResult.UNSAT
        assert solver.check() == CheckResult.SAT

    def test_model_validates_against_evaluator(self):
        x, y = mk_bv_var("x"), mk_bv_var("y")
        formula = mk_eq(mk_bvand(mk_add(x, y), bv(0xFF)), bv(0x42))
        model = get_model(formula)
        assert model is not None
        assert evaluate(formula, dict(model.values)) is True
