"""Unit tests for the CDCL SAT core."""
import itertools
import random

import pytest

from repro.smt.cnf import CNF
from repro.smt.sat import SatResult, SatSolver, solve_cnf


def brute_force(cnf: CNF) -> bool:
    """Reference: try all assignments (small instances only)."""
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        def val(lit):
            v = bits[abs(lit) - 1]
            return v if lit > 0 else not v
        if all(any(val(l) for l in clause) for clause in cnf.clauses):
            return True
    return False


def check_model(cnf: CNF, model: dict) -> bool:
    def val(lit):
        v = model.get(abs(lit), False)
        return v if lit > 0 else not v
    return all(any(val(l) for l in clause) for clause in cnf.clauses)


class TestBasics:
    def test_empty_formula_is_sat(self):
        result, _ = solve_cnf(CNF())
        assert result == SatResult.SAT

    def test_unit_clause(self):
        cnf = CNF()
        cnf.add([1])
        result, model = solve_cnf(cnf)
        assert result == SatResult.SAT
        assert model[1] is True

    def test_contradiction(self):
        cnf = CNF()
        cnf.add([1])
        cnf.add([-1])
        result, _ = solve_cnf(cnf)
        assert result == SatResult.UNSAT

    def test_empty_clause_is_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.clauses.append([])
        result, _ = solve_cnf(cnf)
        assert result == SatResult.UNSAT

    def test_simple_implication_chain(self):
        cnf = CNF()
        # 1 -> 2 -> 3 -> ... -> 10, assert 1, deny 10
        for i in range(1, 10):
            cnf.add([-i, i + 1])
        cnf.add([1])
        cnf.add([-10])
        result, _ = solve_cnf(cnf)
        assert result == SatResult.UNSAT

    def test_tautological_clause_ignored(self):
        cnf = CNF()
        cnf.add([1, -1])
        cnf.add([2])
        result, model = solve_cnf(cnf)
        assert result == SatResult.SAT
        assert model[2] is True


class TestPigeonhole:
    """PHP(n+1, n) is UNSAT and exercises clause learning."""

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        pigeons = holes + 1
        cnf = CNF()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = cnf.new_var()
        for p in range(pigeons):
            cnf.add([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add([-var[p1, h], -var[p2, h]])
        result, _ = solve_cnf(cnf)
        assert result == SatResult.UNSAT

    def test_exact_fit_sat(self):
        n = 4
        cnf = CNF()
        var = {(p, h): cnf.new_var() for p in range(n) for h in range(n)}
        for p in range(n):
            cnf.add([var[p, h] for h in range(n)])
        for h in range(n):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    cnf.add([-var[p1, h], -var[p2, h]])
        result, model = solve_cnf(cnf)
        assert result == SatResult.SAT
        assert check_model(cnf, model)


class TestAssumptions:
    def test_assumption_forces_value(self):
        cnf = CNF()
        cnf.add([1, 2])
        solver = SatSolver(cnf)
        assert solver.solve(assumptions=[-1]) == SatResult.SAT
        assert solver.model[2] is True

    def test_conflicting_assumptions(self):
        cnf = CNF()
        cnf.add([-1, 2])
        solver = SatSolver(cnf)
        assert solver.solve(assumptions=[1, -2]) == SatResult.UNSAT


class TestRandomised:
    """Fuzz against brute force on small random 3-SAT instances."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_3sat_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        nvars = rng.randint(3, 8)
        nclauses = rng.randint(2, 30)
        cnf = CNF()
        cnf.new_vars(nvars)
        for _ in range(nclauses):
            clause = [rng.choice([-1, 1]) * rng.randint(1, nvars)
                      for _ in range(3)]
            cnf.add(clause)
        expected = brute_force(cnf)
        result, model = solve_cnf(cnf)
        assert result == (SatResult.SAT if expected else SatResult.UNSAT)
        if result == SatResult.SAT:
            assert check_model(cnf, model)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_wide_clauses(self, seed):
        rng = random.Random(1000 + seed)
        nvars = rng.randint(4, 9)
        cnf = CNF()
        cnf.new_vars(nvars)
        for _ in range(rng.randint(5, 25)):
            width = rng.randint(1, 4)
            cnf.add([rng.choice([-1, 1]) * rng.randint(1, nvars)
                     for _ in range(width)])
        expected = brute_force(cnf)
        result, model = solve_cnf(cnf)
        assert result == (SatResult.SAT if expected else SatResult.UNSAT)
        if result == SatResult.SAT:
            assert check_model(cnf, model)


class TestBudget:
    def test_budget_returns_unknown_or_answer(self):
        # hard pigeonhole with a tiny budget should give unknown
        holes = 7
        pigeons = holes + 1
        cnf = CNF()
        var = {(p, h): cnf.new_var()
               for p in range(pigeons) for h in range(holes)}
        for p in range(pigeons):
            cnf.add([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add([-var[p1, h], -var[p2, h]])
        result, _ = solve_cnf(cnf, conflict_budget=10)
        assert result in (SatResult.UNKNOWN, SatResult.UNSAT)


class TestTseitinGates:
    def test_gate_and_truth_table(self):
        for a_val, b_val in itertools.product([1, -1], repeat=2):
            cnf = CNF()
            a, b = cnf.new_vars(2)
            out = cnf.gate_and(a, b)
            cnf.add([a * a_val])
            cnf.add([b * b_val])
            expected = a_val > 0 and b_val > 0
            cnf.add([out if expected else -out])
            result, _ = solve_cnf(cnf)
            assert result == SatResult.SAT

    def test_gate_xor_truth_table(self):
        for a_val, b_val in itertools.product([1, -1], repeat=2):
            cnf = CNF()
            a, b = cnf.new_vars(2)
            out = cnf.gate_xor(a, b)
            cnf.add([a * a_val])
            cnf.add([b * b_val])
            expected = (a_val > 0) != (b_val > 0)
            cnf.add([out if expected else -out])
            result, _ = solve_cnf(cnf)
            assert result == SatResult.SAT

    def test_gate_mux(self):
        for sel, t, e in itertools.product([1, -1], repeat=3):
            cnf = CNF()
            s, a, b = cnf.new_vars(3)
            out = cnf.gate_mux(s, a, b)
            cnf.add([s * sel]); cnf.add([a * t]); cnf.add([b * e])
            expected = (t > 0) if sel > 0 else (e > 0)
            cnf.add([out if expected else -out])
            result, _ = solve_cnf(cnf)
            assert result == SatResult.SAT
