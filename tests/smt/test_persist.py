"""Unit tests for the cross-run solver artifact store.

Safety first: every way an artifact can be unusable — missing,
corrupted, truncated, version-skewed, structurally malformed — must
cold-start (load returns ``(None, warning)``), never raise and never
hand back a partial artifact.
"""
import json
import os

import pytest

from repro.smt import mk_add, mk_bv, mk_bv_var, mk_mul, mk_ult
from repro.smt.persist import (
    FORMAT_VERSION, SolverArtifactStore, TOOL_VERSION, canonical_term,
    preamble_fingerprint,
)


def _terms():
    x = mk_bv_var("x", 32)
    y = mk_bv_var("y", 32)
    return [mk_ult(x, mk_bv(64, 32)),
            mk_ult(y, mk_bv(64, 32)),
            mk_ult(mk_add(mk_mul(x, mk_bv(4, 32)), y), mk_bv(256, 32))]


def _state():
    return {
        "snapshot": {"num_vars": 5, "clauses": [[1, -2], [2, 3, -4]],
                     "true_lit": 5, "var_bits": {"x": [1, 2]},
                     "bool_vars": {"g": 3}},
        "learnts": [[1, 3], [-2, 4]],
    }


class TestCanonicalisation:
    def test_digest_is_stable_and_full_depth(self):
        a = _terms()
        b = _terms()  # interning makes these the same nodes
        assert [canonical_term(t) for t in a] == \
            [canonical_term(t) for t in b]
        assert len(canonical_term(a[0])) == 64

    def test_deep_difference_changes_digest(self):
        x = mk_bv_var("x", 32)
        t1 = mk_ult(mk_add(mk_mul(x, mk_bv(4, 32)), mk_bv(1, 32)),
                    mk_bv(256, 32))
        t2 = mk_ult(mk_add(mk_mul(x, mk_bv(4, 32)), mk_bv(2, 32)),
                    mk_bv(256, 32))
        assert canonical_term(t1) != canonical_term(t2)

    def test_fingerprint_order_insensitive(self):
        terms = _terms()
        assert preamble_fingerprint(terms) == \
            preamble_fingerprint(list(reversed(terms)))

    def test_fingerprint_content_sensitive(self):
        terms = _terms()
        assert preamble_fingerprint(terms) != \
            preamble_fingerprint(terms[:-1])


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        store = SolverArtifactStore(str(tmp_path))
        fp = preamble_fingerprint(_terms())
        memo = [("c" * 64, "sat", {"x": 3}), ("d" * 64, "unsat", None)]
        pairs = {"e" * 64: None, "f" * 64: [{"tid.x!1": 0}, False]}
        store.save(fp, _state(), memo, pairs)
        artifact, warning = store.load(fp)
        assert warning is None
        assert artifact["snapshot"] == _state()["snapshot"]
        assert artifact["learnts"] == _state()["learnts"]
        assert artifact["memo"] == [list(m) for m in memo]
        assert artifact["pairs"] == pairs
        assert artifact["format"] == FORMAT_VERSION
        assert artifact["tool"] == TOOL_VERSION

    def test_plain_miss(self, tmp_path):
        store = SolverArtifactStore(str(tmp_path))
        assert store.load("0" * 64) == (None, None)

    def test_json_is_reread_equal(self, tmp_path):
        # the artifact survives a JSON round trip byte-for-byte at the
        # structural level (no tuples, no non-string keys sneaking in)
        store = SolverArtifactStore(str(tmp_path))
        fp = "ab" + "0" * 62
        path = store.save(fp, _state(), [("c" * 64, "unsat", None)], {})
        assert json.load(open(path)) == store.load(fp)[0]


class TestUnusableArtifacts:
    def _saved(self, tmp_path):
        store = SolverArtifactStore(str(tmp_path))
        fp = "ab" + "1" * 62
        path = store.save(fp, _state(), [("c" * 64, "sat", {"x": 1})],
                          {"d" * 64: None})
        return store, fp, path

    def test_corrupted_json(self, tmp_path):
        store, fp, path = self._saved(tmp_path)
        with open(path, "w") as fh:
            fh.write("{not json at all")
        artifact, warning = store.load(fp)
        assert artifact is None and "cold-starting" in warning

    def test_truncated_file(self, tmp_path):
        store, fp, path = self._saved(tmp_path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        artifact, warning = store.load(fp)
        assert artifact is None and "cold-starting" in warning

    def test_format_version_skew(self, tmp_path):
        store, fp, path = self._saved(tmp_path)
        blob = json.load(open(path))
        blob["format"] = FORMAT_VERSION + 1
        json.dump(blob, open(path, "w"))
        artifact, warning = store.load(fp)
        assert artifact is None and "format version skew" in warning

    def test_tool_version_skew(self, tmp_path):
        store, fp, path = self._saved(tmp_path)
        blob = json.load(open(path))
        blob["tool"] = "0.0.0-other"
        json.dump(blob, open(path, "w"))
        artifact, warning = store.load(fp)
        assert artifact is None and "tool version skew" in warning

    @pytest.mark.parametrize("mutate, reason", [
        (lambda a: a.pop("snapshot"), "missing snapshot"),
        (lambda a: a["snapshot"].pop("clauses"), "malformed snapshot"),
        (lambda a: a.update(learnts="zzz"), "malformed learnts"),
        (lambda a: a.update(memo={"not": "a list"}), "malformed memo"),
        (lambda a: a.update(memo=[["x", "maybe", None]]),
         "malformed memo entry"),
        (lambda a: a.update(pairs=["not a dict"]), "malformed pairs"),
        (lambda a: a.update(pairs={"d": [1, 2, 3]}),
         "malformed pair verdict"),
    ])
    def test_structural_damage(self, tmp_path, mutate, reason):
        store, fp, path = self._saved(tmp_path)
        blob = json.load(open(path))
        mutate(blob)
        json.dump(blob, open(path, "w"))
        artifact, warning = store.load(fp)
        assert artifact is None and reason in warning


class TestMaintenance:
    def test_disk_stats_and_prune(self, tmp_path):
        store = SolverArtifactStore(str(tmp_path))
        for i in range(4):
            store.save(f"{i:02d}" + "e" * 62, _state())
        stats = store.disk_stats()
        assert stats["entries"] == 4 and stats["bytes"] > 0
        outcome = store.prune(max_bytes=stats["bytes"] // 2)
        assert outcome["removed"] >= 1
        assert store.disk_stats()["bytes"] <= stats["bytes"] // 2

    def test_prune_by_age(self, tmp_path):
        store = SolverArtifactStore(str(tmp_path))
        path = store.save("aa" + "e" * 62, _state())
        old = os.path.getmtime(path) - 3600
        os.utime(path, (old, old))
        store.save("bb" + "e" * 62, _state())
        outcome = store.prune(max_age_seconds=60)
        assert outcome["removed"] == 1 and outcome["kept"] == 1

    def test_empty_store(self, tmp_path):
        store = SolverArtifactStore(str(tmp_path / "nothing"))
        assert store.disk_stats()["entries"] == 0
        assert store.prune(max_age_seconds=0)["removed"] == 0
