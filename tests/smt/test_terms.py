"""Unit tests for the term language: interning, folding, normalisation."""
import pytest

from repro.smt import (
    BOOL, BV32, FALSE, TRUE, Op, bv_sort, free_vars, mk_add, mk_and, mk_bool,
    mk_bv, mk_bv_var, mk_bvand, mk_bvnot, mk_bvor, mk_bvxor, mk_concat,
    mk_eq, mk_extract, mk_ite, mk_lshr, mk_mul, mk_ne, mk_not, mk_or,
    mk_sext, mk_shl, mk_sub, mk_udiv, mk_ule, mk_ult, mk_urem, mk_var,
    mk_zext, term_size, fresh_var,
)


class TestInterning:
    def test_identical_constants_are_same_object(self):
        assert mk_bv(42, 32) is mk_bv(42, 32)

    def test_different_widths_are_distinct(self):
        assert mk_bv(1, 32) is not mk_bv(1, 64)

    def test_constants_wrap_modulo_width(self):
        assert mk_bv(256, 8) is mk_bv(0, 8)
        assert mk_bv(-1, 8) is mk_bv(255, 8)

    def test_compound_terms_interned(self):
        x = mk_bv_var("x", 32)
        y = mk_bv_var("y", 32)
        assert mk_add(x, y) is mk_add(x, y)

    def test_commutative_constant_normalisation(self):
        x = mk_bv_var("x", 32)
        c = mk_bv(3, 32)
        assert mk_add(c, x) is mk_add(x, c)
        assert mk_mul(c, x) is mk_mul(x, c)

    def test_fresh_vars_are_unique(self):
        a = fresh_var("t", BV32)
        b = fresh_var("t", BV32)
        assert a is not b
        assert a.name != b.name


class TestConstantFolding:
    def test_arith_folds(self):
        assert mk_add(mk_bv(2, 32), mk_bv(3, 32)) is mk_bv(5, 32)
        assert mk_sub(mk_bv(2, 32), mk_bv(3, 32)) is mk_bv(2**32 - 1, 32)
        assert mk_mul(mk_bv(7, 32), mk_bv(6, 32)) is mk_bv(42, 32)

    def test_udiv_by_zero_is_all_ones(self):
        assert mk_udiv(mk_bv(5, 8), mk_bv(0, 8)) is mk_bv(255, 8)

    def test_urem_by_zero_is_lhs(self):
        assert mk_urem(mk_bv(5, 8), mk_bv(0, 8)) is mk_bv(5, 8)

    def test_shift_folds(self):
        assert mk_shl(mk_bv(1, 32), mk_bv(4, 32)) is mk_bv(16, 32)
        assert mk_lshr(mk_bv(16, 32), mk_bv(4, 32)) is mk_bv(1, 32)
        assert mk_shl(mk_bv(1, 32), mk_bv(32, 32)) is mk_bv(0, 32)

    def test_predicates_fold(self):
        assert mk_ult(mk_bv(1, 32), mk_bv(2, 32)) is TRUE
        assert mk_ule(mk_bv(3, 32), mk_bv(2, 32)) is FALSE
        assert mk_eq(mk_bv(5, 32), mk_bv(5, 32)) is TRUE


class TestIdentities:
    def setup_method(self):
        self.x = mk_bv_var("x", 32)

    def test_additive_identity(self):
        assert mk_add(self.x, mk_bv(0, 32)) is self.x

    def test_constant_chain_collapses(self):
        t = mk_add(mk_add(self.x, mk_bv(3, 32)), mk_bv(4, 32))
        assert t is mk_add(self.x, mk_bv(7, 32))

    def test_sub_self_is_zero(self):
        assert mk_sub(self.x, self.x) is mk_bv(0, 32)

    def test_mul_identities(self):
        assert mk_mul(self.x, mk_bv(1, 32)) is self.x
        assert mk_mul(self.x, mk_bv(0, 32)) is mk_bv(0, 32)

    def test_and_identities(self):
        assert mk_bvand(self.x, mk_bv(0, 32)) is mk_bv(0, 32)
        assert mk_bvand(self.x, mk_bv(2**32 - 1, 32)) is self.x
        assert mk_bvand(self.x, self.x) is self.x

    def test_or_identities(self):
        assert mk_bvor(self.x, mk_bv(0, 32)) is self.x
        assert mk_bvor(self.x, self.x) is self.x

    def test_xor_self_is_zero(self):
        assert mk_bvxor(self.x, self.x) is mk_bv(0, 32)

    def test_double_negation(self):
        assert mk_bvnot(mk_bvnot(self.x)) is self.x

    def test_eq_reflexive(self):
        assert mk_eq(self.x, self.x) is TRUE

    def test_ult_irreflexive(self):
        assert mk_ult(self.x, self.x) is FALSE

    def test_ult_zero_bound(self):
        assert mk_ult(self.x, mk_bv(0, 32)) is FALSE


class TestBooleanConnectives:
    def setup_method(self):
        self.p = mk_var("p", BOOL)
        self.q = mk_var("q", BOOL)

    def test_and_short_circuit(self):
        assert mk_and(self.p, FALSE) is FALSE
        assert mk_and(self.p, TRUE) is self.p
        assert mk_and() is TRUE

    def test_or_short_circuit(self):
        assert mk_or(self.p, TRUE) is TRUE
        assert mk_or(self.p, FALSE) is self.p
        assert mk_or() is FALSE

    def test_and_flattens(self):
        t = mk_and(mk_and(self.p, self.q), self.p)
        assert t.op == Op.BAND
        assert len(t.args) == 2

    def test_contradiction_detected(self):
        assert mk_and(self.p, mk_not(self.p)) is FALSE
        assert mk_or(self.p, mk_not(self.p)) is TRUE

    def test_not_involution(self):
        assert mk_not(mk_not(self.p)) is self.p

    def test_ne_is_not_eq(self):
        x = mk_bv_var("x", 32)
        y = mk_bv_var("y", 32)
        assert mk_ne(x, y) is mk_not(mk_eq(x, y))


class TestIte:
    def test_concrete_condition(self):
        x, y = mk_bv_var("x", 32), mk_bv_var("y", 32)
        assert mk_ite(TRUE, x, y) is x
        assert mk_ite(FALSE, x, y) is y

    def test_same_branches(self):
        p = mk_var("p", BOOL)
        x = mk_bv_var("x", 32)
        assert mk_ite(p, x, x) is x

    def test_bool_ite_lowers_to_connectives(self):
        p, a, b = (mk_var(n, BOOL) for n in "pab")
        t = mk_ite(p, a, b)
        assert t.sort is BOOL
        assert t.op in (Op.BOR, Op.BAND)

    def test_negated_condition_swaps(self):
        p = mk_var("p", BOOL)
        x, y = mk_bv_var("x", 32), mk_bv_var("y", 32)
        assert mk_ite(mk_not(p), x, y) is mk_ite(p, y, x)


class TestStructural:
    def test_extract_full_width_is_identity(self):
        x = mk_bv_var("x", 32)
        assert mk_extract(x, 31, 0) is x

    def test_extract_constant(self):
        assert mk_extract(mk_bv(0xAB, 8), 7, 4) is mk_bv(0xA, 4)

    def test_zext_same_width_identity(self):
        x = mk_bv_var("x", 32)
        assert mk_zext(x, 32) is x

    def test_sext_constant(self):
        assert mk_sext(mk_bv(0x80, 8), 16) is mk_bv(0xFF80, 16)

    def test_concat_widths(self):
        a, b = mk_bv_var("a", 8), mk_bv_var("b", 24)
        assert mk_concat(a, b).width == 32

    def test_concat_constants(self):
        assert mk_concat(mk_bv(0xAB, 8), mk_bv(0xCD, 8)) is mk_bv(0xABCD, 16)

    def test_extract_bounds_checked(self):
        x = mk_bv_var("x", 8)
        with pytest.raises(ValueError):
            mk_extract(x, 8, 0)
        with pytest.raises(ValueError):
            mk_extract(x, 3, 5)

    def test_sort_mismatch_raises(self):
        with pytest.raises(TypeError):
            mk_add(mk_bv_var("a", 8), mk_bv_var("b", 16))


class TestTraversal:
    def test_free_vars(self):
        x, y = mk_bv_var("x", 32), mk_bv_var("y", 32)
        t = mk_eq(mk_add(x, y), mk_mul(x, mk_bv(3, 32)))
        names = set(free_vars(t))
        assert names == {"x", "y"}

    def test_term_size_counts_shared_nodes_once(self):
        x = mk_bv_var("x", 32)
        shared = mk_add(x, mk_bv(1, 32))
        t = mk_mul(shared, shared)
        # nodes: x, 1, shared, t
        assert term_size(t) == 4

    def test_immutability(self):
        x = mk_bv_var("x", 32)
        with pytest.raises(AttributeError):
            x.op = "hacked"


class TestUninterpreted:
    def test_same_application_interned(self):
        from repro.smt.terms import mk_uf
        x = mk_bv_var("x", 32)
        assert mk_uf("f", (x,), 32) is mk_uf("f", (x,), 32)

    def test_different_args_distinct(self):
        from repro.smt.terms import mk_uf
        x, y = mk_bv_var("x", 32), mk_bv_var("y", 32)
        assert mk_uf("f", (x,), 32) is not mk_uf("f", (y,), 32)

    def test_different_names_distinct(self):
        from repro.smt.terms import mk_uf
        x = mk_bv_var("x", 32)
        assert mk_uf("f", (x,), 32) is not mk_uf("g", (x,), 32)

    def test_uf_is_free_for_the_solver(self):
        """A UF application can take any value: f(x) == 12345 is SAT."""
        from repro.smt.terms import mk_uf
        from repro.smt import is_sat, mk_eq
        x = mk_bv_var("x", 32)
        f_x = mk_uf("f", (x,), 32)
        assert is_sat(mk_eq(f_x, mk_bv(12345, 32)))

    def test_uf_consistency_within_one_query(self):
        """The same node cannot take two values at once."""
        from repro.smt.terms import mk_uf
        from repro.smt import is_sat, mk_and, mk_eq, mk_ne
        x = mk_bv_var("x", 32)
        f_x = mk_uf("f", (x,), 32)
        assert not is_sat(mk_and(mk_eq(f_x, mk_bv(1, 32)),
                                 mk_eq(f_x, mk_bv(2, 32))))

    def test_evaluation_raises(self):
        from repro.smt.terms import mk_uf
        from repro.smt import EvaluationError, evaluate
        x = mk_bv_var("x", 32)
        with pytest.raises(EvaluationError):
            evaluate(mk_uf("f", (x,), 32), {"x": 1})
