"""Substitution tests — the mechanism behind two-thread instantiation."""
import pytest

from repro.smt import (
    evaluate, mk_add, mk_and, mk_bv, mk_bv_var, mk_eq, mk_ite, mk_not,
    mk_ult, mk_urem, substitute,
)


def tid():
    return mk_bv_var("tid.x")


class TestSubstitute:
    def test_variable_replacement(self):
        t1 = mk_bv_var("t1")
        term = mk_add(tid(), mk_bv(1, 32))
        out = substitute(term, {tid(): t1})
        assert out is mk_add(t1, mk_bv(1, 32))

    def test_parallel_not_sequential(self):
        """x→y, y→x swaps rather than collapsing."""
        x, y = mk_bv_var("x"), mk_bv_var("y")
        term = mk_add(x, mk_add(y, mk_bv(0, 32)))
        out = substitute(term, {x: y, y: x})
        assert evaluate(out, {"x": 5, "y": 7}) == 12
        assert evaluate(out, {"x": 1, "y": 2}) == 3
        # and the positions swapped
        assert out is mk_add(y, x)

    def test_images_not_rewritten(self):
        x, y = mk_bv_var("x"), mk_bv_var("y")
        term = x
        out = substitute(term, {x: mk_add(y, mk_bv(1, 32))})
        # the image contains y; y itself must not be re-substituted even
        # if it is also a key
        out2 = substitute(term, {x: y, y: mk_bv(9, 32)})
        assert out2 is y

    def test_shared_subterms_substituted_once(self):
        x = mk_bv_var("x")
        shared = mk_add(x, mk_bv(1, 32))
        term = mk_eq(shared, mk_urem(shared, mk_bv(7, 32)))
        t1 = mk_bv_var("t1")
        out = substitute(term, {x: t1})
        assert "x" not in repr(out)
        assert repr(out).count("t1") >= 2

    def test_simplification_through_rebuild(self):
        # substituting a constant triggers smart-constructor folding
        x = mk_bv_var("x")
        term = mk_add(x, mk_bv(3, 32))
        out = substitute(term, {x: mk_bv(4, 32)})
        assert out is mk_bv(7, 32)

    def test_bool_structure(self):
        x = mk_bv_var("x")
        t1 = mk_bv_var("t1")
        term = mk_and(mk_ult(x, mk_bv(8, 32)),
                      mk_not(mk_eq(x, mk_bv(3, 32))))
        out = substitute(term, {x: t1})
        assert evaluate(out, {"t1": 2}) is True
        assert evaluate(out, {"t1": 3}) is False
        assert evaluate(out, {"t1": 9}) is False

    def test_ite_branches(self):
        x = mk_bv_var("x")
        t1 = mk_bv_var("t1")
        term = mk_ite(mk_ult(x, mk_bv(4, 32)), x, mk_add(x, mk_bv(10, 32)))
        out = substitute(term, {x: t1})
        assert evaluate(out, {"t1": 2}) == 2
        assert evaluate(out, {"t1": 6}) == 16

    def test_empty_mapping_is_identity(self):
        term = mk_add(tid(), mk_bv(1, 32))
        assert substitute(term, {}) is term

    def test_two_thread_instantiation_pattern(self):
        """The exact race-checker pattern: same access term instantiated
        over t1 and t2 stays independent."""
        addr = mk_urem(mk_add(tid(), mk_bv(1, 32)), mk_bv(64, 32))
        t1, t2 = mk_bv_var("t1"), mk_bv_var("t2")
        a1 = substitute(addr, {tid(): t1})
        a2 = substitute(addr, {tid(): t2})
        collision = mk_eq(a1, a2)
        assert evaluate(collision, {"t1": 5, "t2": 5}) is True
        assert evaluate(collision, {"t1": 5, "t2": 6}) is False
        assert evaluate(collision, {"t1": 63, "t2": 127}) is True  # wrap
