"""Affine decomposition / injectivity fast-path tests."""
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.smt import (
    evaluate, mk_add, mk_bv, mk_bv_var, mk_mul, mk_neg, mk_shl, mk_sub,
    mk_urem, mk_zext, simplify,
)
from repro.smt.affine import (
    affine_decompose, equality_forces_equal_components, injective_on_box,
    stride_separated,
)
from repro.smt.interval import Interval


def tid(which=1):
    return mk_bv_var(f"tid.x!{which}", 32)


def bid(which=1):
    return mk_bv_var(f"bid.x!{which}", 32)


class TestDecompose:
    def test_variable(self):
        coefs, const = affine_decompose(tid())
        assert coefs == {"tid.x!1": 1} and const == 0

    def test_global_id_pattern(self):
        t = mk_add(tid(), mk_mul(bid(), mk_bv(512, 32)))
        coefs, const = affine_decompose(t)
        assert coefs == {"tid.x!1": 1, "bid.x!1": 512}
        assert const == 0

    def test_scaled_and_offset(self):
        # (tid * 4 + 12) as the byte address of s[tid + 3]
        t = mk_add(mk_mul(tid(), mk_bv(4, 32)), mk_bv(12, 32))
        coefs, const = affine_decompose(t)
        assert coefs == {"tid.x!1": 4} and const == 12

    def test_shl_is_multiplication(self):
        t = mk_shl(tid(), mk_bv(3, 32))
        coefs, _ = affine_decompose(t)
        assert coefs == {"tid.x!1": 8}

    def test_subtraction_and_negation(self):
        t = mk_sub(mk_bv(100, 32), tid())
        coefs, const = affine_decompose(t)
        assert const == 100
        assert coefs["tid.x!1"] == (1 << 32) - 1  # -1 mod 2^32

    def test_cancellation_drops_zero_coef(self):
        t = mk_sub(mk_add(tid(), bid()), tid())
        coefs, _ = affine_decompose(t)
        assert coefs == {"bid.x!1": 1}

    def test_non_affine_rejected(self):
        assert affine_decompose(mk_mul(tid(), bid())) is None
        assert affine_decompose(mk_urem(tid(), mk_bv(6, 32))) is None

    def test_simplified_address_still_decomposes(self):
        # the executor builds ((tid + bid*512) + c) * 8 then simplifies
        t = simplify(mk_mul(
            mk_add(mk_add(tid(), mk_mul(bid(), mk_bv(512, 32))),
                   mk_bv(21504, 32)),
            mk_bv(8, 32)))
        coefs, const = affine_decompose(t)
        assert coefs == {"tid.x!1": 8, "bid.x!1": 4096}
        assert const == 21504 * 8


class TestDecomposeEdgeCases:
    def test_negative_coefficient_is_modular(self):
        # 100 - 3*tid: the coefficient lands at -3 mod 2^32
        t = mk_sub(mk_bv(100, 32), mk_mul(tid(), mk_bv(3, 32)))
        coefs, const = affine_decompose(t)
        assert const == 100
        assert coefs["tid.x!1"] == (1 << 32) - 3

    def test_double_negation_cancels(self):
        t = mk_neg(mk_neg(tid()))
        coefs, const = affine_decompose(t)
        assert coefs == {"tid.x!1": 1} and const == 0

    def test_constant_wraparound_at_bit_width(self):
        # (2^32 - 4) + 8 wraps to 4
        t = mk_add(mk_bv((1 << 32) - 4, 32), mk_bv(8, 32))
        form = affine_decompose(t)
        assert form is not None
        assert form[1] == 4

    def test_coefficient_wraparound_at_bit_width(self):
        # tid * 2^31 * 2 == tid * 0 mod 2^32: the coefficient vanishes
        t = mk_mul(mk_mul(tid(), mk_bv(1 << 31, 32)), mk_bv(2, 32))
        form = affine_decompose(t)
        assert form is not None
        coefs, const = form
        assert coefs == {} and const == 0

    def test_narrow_width_wraparound(self):
        # 8-bit arithmetic: 200 + 100 wraps to 44
        v = mk_bv_var("v", 8)
        t = mk_add(mk_add(v, mk_bv(200, 8)), mk_bv(100, 8))
        coefs, const = affine_decompose(t)
        assert coefs == {"v": 1}
        assert const == (200 + 100) % 256

    def test_max_nodes_budget_returns_none(self):
        # a deep affine chain that blows a tiny node budget must fall
        # back to "not affine" (None), never a wrong decomposition
        t = tid()
        for i in range(50):
            t = mk_add(t, mk_bv_var(f"v{i}", 32))
        assert affine_decompose(t, max_nodes=10) is None
        assert affine_decompose(t) is not None

    def test_shl_by_width_or_more_rejected(self):
        t = mk_shl(tid(), mk_bv(32, 32))
        assert affine_decompose(t) is None


class TestInjectivityBoundaryStrides:
    def bounds(self, **kw):
        return {name: Interval(0, hi, 32) for name, hi in kw.items()}

    def test_coefficient_exactly_spanning_is_injective(self):
        # b's coefficient 512 must EXCEED t's span 511: boundary holds
        assert injective_on_box(
            {"t": 1, "b": 512}, self.bounds(t=511, b=7), 32)

    def test_coefficient_equal_to_span_plus_one_not_enough(self):
        # t spans 0..511 (coef 1), so coef 511 for b collides
        # (t=511,b=0) with (t=0,b=1)
        assert not injective_on_box(
            {"t": 1, "b": 511}, self.bounds(t=511, b=7), 32)

    def test_span_reaching_modulus_boundary(self):
        # max value exactly 2^32 - 1 is still wrap-free
        assert injective_on_box(
            {"t": 1, "b": 1 << 16}, self.bounds(t=(1 << 16) - 1,
                                                b=(1 << 16) - 1), 32)
        # one more bumps past the modulus: rejected
        assert not injective_on_box(
            {"t": 1, "b": 1 << 16}, self.bounds(t=(1 << 16) - 1,
                                                b=1 << 16), 32)

    def test_nonzero_lower_bound_rejected(self):
        assert not injective_on_box(
            {"t": 4}, {"t": Interval(1, 63, 32)}, 32)

    def test_empty_coefs_rejected(self):
        assert not injective_on_box({}, {}, 32)


class TestStrideSeparation:
    def test_offset_within_stride_separates(self):
        # tid*4 vs tid*4 + 2: different words of different parity
        f1 = affine_decompose(mk_mul(tid(1), mk_bv(4, 32)))
        f2 = affine_decompose(
            mk_add(mk_mul(tid(2), mk_bv(4, 32)), mk_bv(2, 32)))
        assert stride_separated(f1, f2, 32)

    def test_stride_multiple_does_not_separate(self):
        # tid*4 vs tid*4 + 8 CAN collide (t1 = t2 + 2)
        f1 = affine_decompose(mk_mul(tid(1), mk_bv(4, 32)))
        f2 = affine_decompose(
            mk_add(mk_mul(tid(2), mk_bv(4, 32)), mk_bv(8, 32)))
        assert not stride_separated(f1, f2, 32)

    def test_mixed_coefficient_gcd(self):
        # gcd(4, 6, 2^32) = 2: odd difference separates, even does not
        f1 = affine_decompose(mk_mul(tid(1), mk_bv(4, 32)))
        f2 = affine_decompose(
            mk_add(mk_mul(tid(2), mk_bv(6, 32)), mk_bv(3, 32)))
        assert stride_separated(f1, f2, 32)
        f3 = affine_decompose(
            mk_add(mk_mul(tid(2), mk_bv(6, 32)), mk_bv(2, 32)))
        assert not stride_separated(f1, f3, 32)

    def test_unit_coefficient_never_separates(self):
        f1 = affine_decompose(tid(1))
        f2 = affine_decompose(mk_add(tid(2), mk_bv(1, 32)))
        assert not stride_separated(f1, f2, 32)

    def test_constant_only_forms(self):
        # pure constants: g = 2^32, separation is plain inequality
        f1 = affine_decompose(mk_bv(0, 32))
        f2 = affine_decompose(mk_bv(4, 32))
        assert stride_separated(f1, f2, 32)
        assert not stride_separated(f1, f1, 32)

    @settings(max_examples=150, deadline=None)
    @given(s1=st.sampled_from([1, 2, 4, 8, 12]),
           s2=st.sampled_from([1, 2, 4, 8, 12]),
           c1=st.integers(0, 64), c2=st.integers(0, 64),
           t1=st.integers(0, 1023), t2=st.integers(0, 1023))
    def test_separation_soundness(self, s1, s2, c1, c2, t1, t2):
        """A separated pair never collides on concrete thread ids."""
        f1 = ({"t1": s1}, c1)
        f2 = ({"t2": s2}, c2)
        if stride_separated(f1, f2, 32):
            assert (s1 * t1 + c1) % 2**32 != (s2 * t2 + c2) % 2**32


@settings(max_examples=150, deadline=None)
@given(a=st.integers(0, 63), b=st.integers(0, 63),
       c1=st.integers(0, 100), c2=st.integers(1, 64), c3=st.integers(0, 8))
def test_decomposition_agrees_with_evaluation(a, b, c1, c2, c3):
    t = mk_add(mk_add(mk_mul(tid(), mk_bv(c2, 32)),
                      mk_shl(bid(), mk_bv(c3, 32))),
               mk_bv(c1, 32))
    form = affine_decompose(t)
    assert form is not None
    coefs, const = form
    expected = (coefs.get("tid.x!1", 0) * a + coefs.get("bid.x!1", 0) * b
                + const) % 2**32
    assert evaluate(t, {"tid.x!1": a, "bid.x!1": b}) == expected


class TestInjectivity:
    def bounds(self, **kw):
        return {name: Interval(0, hi, 32) for name, hi in kw.items()}

    def test_mixed_radix_injective(self):
        # tid + 512*bid, tid < 512: classic global id
        assert injective_on_box(
            {"t": 1, "b": 512}, self.bounds(t=511, b=41), 32)

    def test_overlapping_radix_not_injective(self):
        # tid + 256*bid with tid < 512 collides
        assert not injective_on_box(
            {"t": 1, "b": 256}, self.bounds(t=511, b=41), 32)

    def test_wraparound_rejected(self):
        assert not injective_on_box(
            {"t": 1 << 30}, self.bounds(t=63), 32) or True
        # huge coefficient whose span wraps:
        assert not injective_on_box(
            {"t": 1, "b": 1 << 31}, self.bounds(t=0xFFFF, b=3), 32)

    def test_single_component(self):
        assert injective_on_box({"t": 4}, self.bounds(t=63), 32)


class TestEqualityFastPath:
    PAIRING = {"tid.x!1": "tid.x!2", "bid.x!1": "bid.x!2"}

    def bounds(self, t=511, b=41):
        out = {}
        for v in ("tid.x!1", "tid.x!2"):
            out[v] = Interval(0, t, 32)
        for v in ("bid.x!1", "bid.x!2"):
            out[v] = Interval(0, b, 32)
        return out

    def form(self, which):
        t = mk_mul(mk_add(tid(which), mk_mul(bid(which), mk_bv(512, 32))),
                   mk_bv(4, 32))
        return affine_decompose(t)

    def test_same_injective_map(self):
        assert equality_forces_equal_components(
            self.form(1), self.form(2), self.bounds(), self.PAIRING, 32)

    def test_different_constants_rejected(self):
        f1 = affine_decompose(mk_add(tid(1), mk_bv(4, 32)))
        f2 = affine_decompose(tid(2))
        assert not equality_forces_equal_components(
            f1, f2, self.bounds(), self.PAIRING, 32)

    def test_foreign_variable_rejected(self):
        n = mk_bv_var("n", 32)
        f1 = affine_decompose(mk_add(tid(1), n))
        f2 = affine_decompose(mk_add(tid(2), n))
        assert not equality_forces_equal_components(
            f1, f2, self.bounds(), self.PAIRING, 32)

    def test_colliding_map_rejected(self):
        # tid/…: not affine; tid*0 + bid: collides over tid
        f1 = affine_decompose(bid(1))
        f2 = affine_decompose(bid(2))
        # forces bid equal, but cannot speak for tid — caller's
        # distinct-components check must reject; here the map itself is
        # still injective over its own components
        assert equality_forces_equal_components(
            f1, f2, self.bounds(), self.PAIRING, 32)


@settings(max_examples=100, deadline=None)
@given(scale=st.sampled_from([1, 2, 4, 8]),
       bdim=st.sampled_from([32, 64, 512]),
       t1=st.integers(0, 511), b1=st.integers(0, 41),
       t2=st.integers(0, 511), b2=st.integers(0, 41))
def test_fast_path_soundness(scale, bdim, t1, b1, t2, b2):
    """If the fast path claims injectivity, no concrete collision exists."""
    t1 %= bdim
    t2 %= bdim
    coefs = {"t": scale, "b": scale * bdim}
    bounds = {"t": Interval(0, bdim - 1, 32), "b": Interval(0, 41, 32)}
    if injective_on_box(coefs, bounds, 32):
        v1 = (scale * t1 + scale * bdim * b1) % 2**32
        v2 = (scale * t2 + scale * bdim * b2) % 2**32
        if (t1, b1) != (t2, b2):
            assert v1 != v2, (scale, bdim, t1, b1, t2, b2)
