"""Differential tests: arena SAT core vs. the legacy reference solver.

The arena core (`repro.smt.sat.SatSolver`) replaced the list-of-lists
legacy implementation on the hot path; the legacy solver is kept as the
differential oracle. Property: on any CNF, any assumption set, and any
incremental add/solve sequence, both cores agree on sat/unsat, and
every SAT model actually satisfies the formula (models themselves may
legitimately differ).
"""
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt.cnf import CNF
from repro.smt.sat import SatResult, SatSolver, make_solver, \
    set_solver_impl
from repro.smt.sat_legacy import LegacySatSolver

N_VARS = 8


@st.composite
def clauses(draw, max_clauses=24):
    """A random clause list over variables 1..N_VARS."""
    lits = st.integers(1, N_VARS).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(lits, min_size=1, max_size=4)
    return draw(st.lists(clause, min_size=0, max_size=max_clauses))


@st.composite
def assumption_sets(draw, max_size=4):
    vs = draw(st.lists(st.integers(1, N_VARS), min_size=0,
                       max_size=max_size, unique=True))
    return [v if draw(st.booleans()) else -v for v in vs]


def _cnf_of(clause_list):
    cnf = CNF()
    cnf.new_vars(N_VARS)
    for cl in clause_list:
        cnf.add(cl)
    return cnf


def _satisfies(model, clause_list, assumptions=()):
    def lit_true(lit):
        return model.get(abs(lit), False) == (lit > 0)
    return all(any(lit_true(l) for l in cl) for cl in clause_list) \
        and all(lit_true(a) for a in assumptions)


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(clauses())
    def test_plain_solve_agrees(self, clause_list):
        arena = SatSolver(_cnf_of(clause_list))
        legacy = LegacySatSolver(_cnf_of(clause_list))
        ra, rl = arena.solve(), legacy.solve()
        assert ra == rl
        if ra == SatResult.SAT:
            assert _satisfies(arena.model, clause_list)
            assert _satisfies(legacy.model, clause_list)

    @settings(max_examples=120, deadline=None)
    @given(clauses(), assumption_sets())
    def test_assumption_solve_agrees(self, clause_list, assumptions):
        arena = SatSolver(_cnf_of(clause_list))
        legacy = LegacySatSolver(_cnf_of(clause_list))
        ra = arena.solve(assumptions)
        rl = legacy.solve(assumptions)
        assert ra == rl
        if ra == SatResult.SAT:
            assert _satisfies(arena.model, clause_list, assumptions)
            assert _satisfies(legacy.model, clause_list, assumptions)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(clauses(max_clauses=8),
                              assumption_sets(max_size=3)),
                    min_size=1, max_size=4))
    def test_incremental_sequence_agrees(self, rounds):
        """Interleaved add_clauses / solve-under-assumptions: the two
        cores agree at every step of the incremental session."""
        arena = SatSolver(_cnf_of([]))
        legacy = LegacySatSolver(_cnf_of([]))
        grown = []
        for clause_list, assumptions in rounds:
            arena.add_clauses(clause_list)
            legacy.add_clauses(clause_list)
            grown.extend(clause_list)
            ra = arena.solve(assumptions)
            rl = legacy.solve(assumptions)
            assert ra == rl
            if ra == SatResult.SAT:
                assert _satisfies(arena.model, grown, assumptions)
                assert _satisfies(legacy.model, grown, assumptions)


class TestBatchedImport:
    """Satellite regression: `add_clauses` pays the backtrack-to-root
    cost once per batch, not once per clause."""

    def _solved_solver(self):
        # leave the solver at a non-root decision level: solve SAT,
        # so the trail still holds decisions
        cnf = _cnf_of([[1, 2], [2, 3], [-1, 3], [4, 5, 6]])
        solver = SatSolver(cnf)
        assert solver.solve() == SatResult.SAT
        return solver

    def test_batch_import_single_backtrack(self):
        solver = self._solved_solver()
        before = solver.backtracks
        solver.add_clauses([[1, -4], [2, -5], [3, -6], [-2, 6], [4, -1]])
        assert solver.backtracks - before <= 1

    def test_per_clause_import_backtracks_each_time(self):
        # the contrast that makes the batched count meaningful: adding
        # one clause mid-flight backtracks, and a fresh solve re-opens
        # a decision level for the next add to unwind
        solver = self._solved_solver()
        before = solver.backtracks
        for cl in [[1, -4], [2, -5], [3, -6]]:
            solver.add_clause(cl)
            assert solver.solve() == SatResult.SAT
        assert solver.backtracks - before >= 3

    @settings(max_examples=60, deadline=None)
    @given(clauses(), clauses(max_clauses=8))
    def test_batch_equals_sequential(self, base, extra):
        batched = SatSolver(_cnf_of(base))
        batched.solve()
        batched.add_clauses(extra)
        single = SatSolver(_cnf_of(base))
        single.solve()
        for cl in extra:
            single.add_clause(cl)
        assert batched.solve() == single.solve()


class TestImplSwitch:
    def test_make_solver_honours_impl(self):
        cnf = _cnf_of([[1]])
        prev = set_solver_impl("legacy")
        try:
            assert isinstance(make_solver(cnf), LegacySatSolver)
        finally:
            set_solver_impl(prev)
        assert isinstance(make_solver(cnf), SatSolver)
