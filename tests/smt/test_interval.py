"""Interval-domain unit tests (soundness is also covered by the
property suite: the solver pipeline never lets the interval layer claim
UNSAT on satisfiable queries)."""
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import (
    Interval, IntervalAnalysis, derive_bounds, evaluate, mk_add, mk_and,
    mk_bv, mk_bv_var, mk_bvand, mk_eq, mk_lshr, mk_mul, mk_ne, mk_not,
    mk_shl, mk_ult, mk_urem,
)
from repro.smt.interval import B_FALSE, B_TOP, B_TRUE, byte_footprint


def var(name="x"):
    return mk_bv_var(name, 32)


class TestIntervalAlgebra:
    def test_point(self):
        iv = Interval.point(7, 32)
        assert iv.is_point() and iv.lo == iv.hi == 7

    def test_top(self):
        iv = Interval.top(8)
        assert iv.lo == 0 and iv.hi == 255

    def test_join_meet(self):
        a = Interval(0, 10, 32)
        b = Interval(5, 20, 32)
        assert a.join(b) == Interval(0, 20, 32)
        assert a.meet(b) == Interval(5, 10, 32)
        assert Interval(0, 3, 32).meet(Interval(5, 9, 32)) is None


class TestDeriveBounds:
    def test_ult_const(self):
        x = var()
        bounds = derive_bounds([mk_ult(x, mk_bv(64, 32))])
        assert bounds["x"] == Interval(0, 63, 32)

    def test_eq_const(self):
        x = var()
        bounds = derive_bounds([mk_eq(x, mk_bv(5, 32))])
        assert bounds["x"].is_point()

    def test_nested_and(self):
        x, y = var("x"), var("y")
        conj = mk_and(mk_ult(x, mk_bv(8, 32)), mk_ult(y, mk_bv(4, 32)))
        bounds = derive_bounds([conj])
        assert bounds["x"].hi == 7 and bounds["y"].hi == 3

    def test_meet_of_multiple_bounds(self):
        x = var()
        bounds = derive_bounds([mk_ult(x, mk_bv(64, 32)),
                                mk_ult(x, mk_bv(16, 32))])
        assert bounds["x"].hi == 15


class TestAbstractEvaluation:
    def test_bounded_add_no_overflow(self):
        x = var()
        analysis = IntervalAnalysis({"x": Interval(0, 10, 32)})
        iv = analysis.interval_of(mk_add(x, mk_bv(5, 32)))
        assert (iv.lo, iv.hi) == (5, 15)

    def test_mul_overflow_goes_top(self):
        x = var()
        analysis = IntervalAnalysis({"x": Interval(0, 2**31, 32)})
        iv = analysis.interval_of(mk_mul(x, mk_bv(4, 32)))
        assert iv.is_top()

    def test_urem_bounded(self):
        x = var()
        analysis = IntervalAnalysis()
        iv = analysis.interval_of(mk_urem(x, mk_bv(8, 32)))
        assert iv.hi <= 7

    def test_and_mask_bounded(self):
        x = var()
        analysis = IntervalAnalysis()
        iv = analysis.interval_of(mk_bvand(x, mk_bv(0xFF, 32)))
        assert iv.hi == 0xFF

    def test_disjoint_ranges_unsat(self):
        x = var()
        analysis = IntervalAnalysis({"x": Interval(0, 7, 32)})
        assert analysis.must_be_false(mk_eq(x, mk_bv(100, 32)))

    def test_tautology_detected(self):
        x = var()
        analysis = IntervalAnalysis({"x": Interval(0, 7, 32)})
        assert analysis.must_be_true(mk_ult(x, mk_bv(8, 32)))

    def test_unknown_stays_top(self):
        x, y = var("x"), var("y")
        analysis = IntervalAnalysis()
        assert analysis.bool_of(mk_eq(x, y)) == B_TOP


@settings(max_examples=200, deadline=None)
@given(x=st.integers(0, 2**32 - 1),
       c1=st.integers(0, 255), c2=st.integers(1, 255))
def test_interval_soundness(x, c1, c2):
    """Any concrete evaluation must fall inside the abstract interval."""
    xv = var()
    terms = [
        mk_add(xv, mk_bv(c1, 32)),
        mk_mul(xv, mk_bv(c2, 32)),
        mk_urem(xv, mk_bv(c2, 32)),
        mk_bvand(xv, mk_bv(c1, 32)),
        mk_lshr(xv, mk_bv(c1 % 32, 32)),
        mk_shl(xv, mk_bv(c1 % 32, 32)),
    ]
    analysis = IntervalAnalysis({"x": Interval(0, 2**32 - 1, 32)})
    for t in terms:
        value = evaluate(t, {"x": x})
        iv = analysis.interval_of(t)
        assert iv.lo <= value <= iv.hi, (t, value, iv)


@settings(max_examples=100, deadline=None)
@given(x=st.integers(0, 63), bound=st.integers(1, 64))
def test_bounded_var_soundness(x, bound):
    if x >= bound:
        x = x % bound
    xv = var()
    analysis = IntervalAnalysis({"x": Interval(0, bound - 1, 32)})
    t = mk_add(mk_mul(xv, mk_bv(4, 32)), mk_bv(2, 32))
    value = evaluate(t, {"x": x})
    iv = analysis.interval_of(t)
    assert iv.lo <= value <= iv.hi


class TestByteFootprint:
    def test_word_access(self):
        assert byte_footprint(Interval(0, 1020, 32), 4) == (0, 1023)

    def test_single_byte(self):
        assert byte_footprint(Interval(8, 8, 32), 1) == (8, 8)

    def test_wrapping_end_has_no_footprint(self):
        top = Interval.top(32)
        assert byte_footprint(top, 1) == (0, 2**32 - 1)
        assert byte_footprint(top, 2) is None

    def test_narrow_width(self):
        assert byte_footprint(Interval(250, 254, 8), 2) == (250, 255)
        assert byte_footprint(Interval(250, 254, 8), 3) is None
