"""Property-based tests: the three semantics must agree.

For random terms we check that (1) the concrete evaluator, (2) the
simplifier followed by the evaluator, and (3) the bitblaster + SAT solver
all define the same function. This pins down the SMT substrate that all
race verdicts depend on.
"""
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.smt import (
    BOOL, Solver, bv_sort, evaluate, get_model, is_sat, mk_add, mk_and,
    mk_ashr, mk_bv, mk_bv_var, mk_bvand, mk_bvnot, mk_bvor, mk_bvxor,
    mk_eq, mk_extract, mk_ite, mk_lshr, mk_mul, mk_ne, mk_not, mk_or,
    mk_sdiv, mk_sext, mk_shl, mk_sle, mk_slt, mk_srem, mk_sub, mk_udiv,
    mk_ule, mk_ult, mk_urem, mk_zext, simplify,
)
from repro.smt.bitblast import BitBlaster
from repro.smt.sat import SatResult, SatSolver

WIDTH = 8  # small width keeps bit-blasting fast while covering wrap cases

_BINOPS = [mk_add, mk_sub, mk_mul, mk_udiv, mk_urem, mk_sdiv, mk_srem,
           mk_bvand, mk_bvor, mk_bvxor, mk_shl, mk_lshr, mk_ashr]
_PREDS = [mk_eq, mk_ne, mk_ult, mk_ule, mk_slt, mk_sle]


@st.composite
def bv_terms(draw, depth=3):
    """Random BV term over variables a, b and constants."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return mk_bv_var(draw(st.sampled_from(["a", "b"])), WIDTH)
        return mk_bv(draw(st.integers(0, 2**WIDTH - 1)), WIDTH)
    op = draw(st.sampled_from(_BINOPS + ["ite", "ext"]))
    if op == "ite":
        cond = draw(bool_terms(depth=depth - 1))
        x = draw(bv_terms(depth=depth - 1))
        y = draw(bv_terms(depth=depth - 1))
        return mk_ite(cond, x, y)
    if op == "ext":
        x = draw(bv_terms(depth=depth - 1))
        kind = draw(st.sampled_from(["zext", "sext", "extract", "not"]))
        if kind == "zext":
            return mk_extract(mk_zext(x, WIDTH + 4), WIDTH - 1, 0)
        if kind == "sext":
            return mk_extract(mk_sext(x, WIDTH + 4), WIDTH - 1, 0)
        if kind == "extract":
            return mk_zext(mk_extract(x, WIDTH - 2, 1), WIDTH)
        return mk_bvnot(x)
    x = draw(bv_terms(depth=depth - 1))
    y = draw(bv_terms(depth=depth - 1))
    return op(x, y)


@st.composite
def bool_terms(draw, depth=2):
    if depth == 0:
        pred = draw(st.sampled_from(_PREDS))
        return pred(draw(bv_terms(depth=1)), draw(bv_terms(depth=1)))
    kind = draw(st.sampled_from(["pred", "and", "or", "not"]))
    if kind == "pred":
        pred = draw(st.sampled_from(_PREDS))
        return pred(draw(bv_terms(depth=depth)), draw(bv_terms(depth=depth)))
    if kind == "not":
        return mk_not(draw(bool_terms(depth=depth - 1)))
    x = draw(bool_terms(depth=depth - 1))
    y = draw(bool_terms(depth=depth - 1))
    return mk_and(x, y) if kind == "and" else mk_or(x, y)


assignments = st.fixed_dictionaries({
    "a": st.integers(0, 2**WIDTH - 1),
    "b": st.integers(0, 2**WIDTH - 1),
})


@settings(max_examples=150, deadline=None)
@given(term=bv_terms(), env=assignments)
def test_simplify_preserves_semantics(term, env):
    assert evaluate(term, env) == evaluate(simplify(term), env)


@settings(max_examples=150, deadline=None)
@given(term=bool_terms(), env=assignments)
def test_simplify_preserves_bool_semantics(term, env):
    assert evaluate(term, env) == evaluate(simplify(term), env)


@settings(max_examples=60, deadline=None)
@given(term=bv_terms(depth=2), env=assignments)
def test_bitblast_agrees_with_evaluator(term, env):
    """Assert term == concrete-result; the blasted formula must be SAT
    when variables are pinned to env, proving circuit == evaluator."""
    expected = evaluate(term, env)
    a = mk_bv_var("a", WIDTH)
    b = mk_bv_var("b", WIDTH)
    pinned = mk_and(
        mk_eq(a, mk_bv(env["a"], WIDTH)),
        mk_eq(b, mk_bv(env["b"], WIDTH)),
        mk_eq(term, mk_bv(expected, WIDTH)),
    )
    blaster = BitBlaster()
    blaster.assert_term(pinned)
    solver = SatSolver(blaster.cnf)
    assert solver.solve() == SatResult.SAT

    # and the *wrong* result must be UNSAT
    wrong = mk_and(
        mk_eq(a, mk_bv(env["a"], WIDTH)),
        mk_eq(b, mk_bv(env["b"], WIDTH)),
        mk_eq(term, mk_bv((expected + 1) % 2**WIDTH, WIDTH)),
    )
    if not wrong.is_false():
        blaster2 = BitBlaster()
        blaster2.assert_term(wrong)
        assert SatSolver(blaster2.cnf).solve() == SatResult.UNSAT


@settings(max_examples=60, deadline=None)
@given(term=bool_terms(depth=1), env=assignments)
def test_full_solver_agrees_with_evaluator(term, env):
    expected = evaluate(term, env)
    a = mk_bv_var("a", WIDTH)
    b = mk_bv_var("b", WIDTH)
    pinned = mk_and(
        mk_eq(a, mk_bv(env["a"], WIDTH)),
        mk_eq(b, mk_bv(env["b"], WIDTH)),
        term if expected else mk_not(term),
    )
    assert is_sat(pinned)


@settings(max_examples=40, deadline=None)
@given(term=bool_terms(depth=1))
def test_models_satisfy_their_formula(term):
    model = get_model(term)
    if model is not None:
        env = {"a": model.get("a", 0), "b": model.get("b", 0)}
        assert evaluate(term, env) is True
    else:
        # claimed UNSAT: spot-check a grid of the small domain
        for av in range(0, 2**WIDTH, step := 7):
            for bv_ in range(0, 2**WIDTH, step):
                assert not evaluate(term, {"a": av, "b": bv_})
