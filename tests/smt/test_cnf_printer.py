"""CNF container, Tseitin helpers, and term printer tests."""
import pytest

from repro.smt import (
    BOOL, mk_add, mk_and, mk_bv, mk_bv_var, mk_eq, mk_extract, mk_ite,
    mk_lshr, mk_not, mk_or, mk_sext, mk_ult, mk_urem, mk_zext,
)
from repro.smt.cnf import CNF
from repro.smt.printer import term_to_str
from repro.smt.sat import SatResult, solve_cnf


class TestCNF:
    def test_var_allocation(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_vars(3) == [2, 3, 4]
        assert cnf.num_vars == 4

    def test_add_tracks_max_var(self):
        cnf = CNF()
        cnf.add([5, -3])
        assert cnf.num_vars == 5

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add([0])

    def test_const_true_is_stable(self):
        cnf = CNF()
        t1 = cnf.const_true()
        t2 = cnf.const_true()
        assert t1 == t2
        assert cnf.const_false() == -t1

    def test_gate_and_short_circuits(self):
        cnf = CNF()
        a = cnf.new_var()
        assert cnf.gate_and(a, a) == a
        assert cnf.gate_and(a, -a) == cnf.const_false()

    def test_gate_or_many_empty(self):
        cnf = CNF()
        lit = cnf.gate_or_many([])
        result, model = solve_cnf(cnf)
        assert result == SatResult.SAT
        # empty-or is false
        value = model.get(abs(lit), False)
        assert (value if lit > 0 else not value) is False

    def test_mux_same_inputs(self):
        cnf = CNF()
        s, a = cnf.new_vars(2)
        assert cnf.gate_mux(s, a, a) == a

    def test_len_counts_clauses(self):
        cnf = CNF()
        cnf.add([1])
        cnf.add([1, 2])
        assert len(cnf) == 2


class TestPrinter:
    def test_constants(self):
        assert term_to_str(mk_bv(42, 32)) == "42"

    def test_bools(self):
        from repro.smt import TRUE, FALSE
        assert term_to_str(TRUE) == "true"
        assert term_to_str(FALSE) == "false"

    def test_infix_operators(self):
        x, y = mk_bv_var("x"), mk_bv_var("y")
        assert term_to_str(mk_add(x, y)) == "(x + y)"
        assert term_to_str(mk_ult(x, y)) == "(x <u y)"
        assert "%u" in term_to_str(mk_urem(x, mk_bv(6, 32)))

    def test_connectives(self):
        from repro.smt import mk_bool_var
        p, q = mk_bool_var("p"), mk_bool_var("q")
        assert "&&" in term_to_str(mk_and(p, q))
        assert "||" in term_to_str(mk_or(p, q))
        assert term_to_str(mk_not(p)) == "!p"

    def test_ite(self):
        p = mk_eq(mk_bv_var("x"), mk_bv(1, 32))
        t = mk_ite(p, mk_bv_var("a"), mk_bv_var("b"))
        assert "?" in term_to_str(t)

    def test_extract_and_ext(self):
        x = mk_bv_var("x", 32)
        assert "[7:0]" in term_to_str(mk_extract(x, 7, 0))
        assert "zext" in term_to_str(mk_zext(x, 64))
        assert "sext" in term_to_str(mk_sext(x, 64))

    def test_depth_elision(self):
        t = mk_bv_var("x")
        for i in range(100):
            t = mk_add(t, mk_bv_var(f"v{i}"))
        text = term_to_str(t, max_depth=10)
        assert "..." in text

    def test_repr_matches_printer(self):
        x = mk_bv_var("x")
        t = mk_add(x, mk_bv(1, 32))
        assert repr(t) == term_to_str(t)
