"""Soundness/completeness of parametric checking (§IV-B Proposition).

For kernels whose access sets are *resolvable*, the parametric verdict
must agree with an explicit-thread oracle on downscaled configurations.
We check both directions on a family of generated kernels: racy variants
must be reported, race-free variants must not.

The oracle here enumerates all thread pairs concretely (the GKLEE
comparator), which is exact for resolvable kernels.
"""
import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import GKLEE, SESA, LaunchConfig


def sesa_verdict(src: str, block: int) -> bool:
    report = SESA.from_source(src).check(
        LaunchConfig(block_dim=block, check_oob=False))
    assert report.resolvable == "Y", "test family must stay resolvable"
    return report.has_races


def oracle_verdict(src: str, block: int) -> bool:
    report = GKLEE.from_source(src).check(
        LaunchConfig(block_dim=block, check_oob=False))
    return report.has_races


# a small language of access patterns over tid with known race status
PATTERNS = [
    # (write index expr, read index expr, races?)
    ("threadIdx.x", "threadIdx.x", False),
    ("threadIdx.x", "(threadIdx.x + 1) % blockDim.x", True),
    ("threadIdx.x * 2", "threadIdx.x * 2 + 1", False),
    ("threadIdx.x * 2", "threadIdx.x + 4", True),
    ("threadIdx.x / 2", "threadIdx.x", True),   # WW collision on halves
    ("threadIdx.x ^ 1", "threadIdx.x ^ 1", True),  # read neighbour's cell? no:
    # ^1 is a permutation: write set = all cells, read own written cell.
]
# fix the last entry: xor-by-1 is a bijection, no race
PATTERNS[-1] = ("threadIdx.x ^ 1", "threadIdx.x ^ 1", False)


def kernel_for(write_idx: str, read_idx: str) -> str:
    return f"""
__shared__ int s[128];
__global__ void k() {{
  s[{write_idx}] = s[{read_idx}] + 1;
}}
"""


class TestKnownPatterns:
    @pytest.mark.parametrize("write_idx,read_idx,racy", PATTERNS)
    def test_sesa_matches_ground_truth(self, write_idx, read_idx, racy):
        assert sesa_verdict(kernel_for(write_idx, read_idx), 8) == racy

    @pytest.mark.parametrize("write_idx,read_idx,racy", PATTERNS[:4])
    def test_oracle_agrees(self, write_idx, read_idx, racy):
        src = kernel_for(write_idx, read_idx)
        assert oracle_verdict(src, 4) == sesa_verdict(src, 4)


# property-based: random affine access patterns
@st.composite
def affine_patterns(draw):
    stride = draw(st.sampled_from([1, 2, 4]))
    offset = draw(st.integers(0, 3))
    return stride, offset


@settings(max_examples=15, deadline=None)
@given(w=affine_patterns(), r=affine_patterns())
def test_affine_accesses_parametric_equals_explicit(w, r):
    """For affine index maps, SESA == explicit-thread enumeration."""
    ws, wo = w
    rs, ro = r
    src = f"""
__shared__ int s[128];
__global__ void k() {{
  s[threadIdx.x * {ws} + {wo}] = s[threadIdx.x * {rs} + {ro}] + 1;
}}
"""
    block = 4
    assert sesa_verdict(src, block) == oracle_verdict(src, block)


@settings(max_examples=10, deadline=None)
@given(stride=st.sampled_from([1, 2, 4, 8]),
       block=st.sampled_from([4, 8]))
def test_strided_writes_ground_truth(stride, block):
    """s[tid * k] writes are disjoint for any k >= 1: never a race."""
    src = f"""
__shared__ int s[256];
__global__ void k() {{ s[threadIdx.x * {stride}] = threadIdx.x; }}
"""
    assert sesa_verdict(src, block) is False


@settings(max_examples=10, deadline=None)
@given(div=st.sampled_from([2, 4, 8]), block=st.sampled_from([8, 16]))
def test_dividing_writes_ground_truth(div, block):
    """s[tid / k] writes collide for k >= 2 whenever block > k... always
    racy here since block > div."""
    src = f"""
__shared__ int s[256];
__global__ void k() {{ s[threadIdx.x / {div}] = threadIdx.x; }}
"""
    assert sesa_verdict(src, block) is True


class TestScalingInvariance:
    """The parametric verdict must not depend on the thread count
    (that's the whole point of §IV): same kernel, growing blocks."""

    RACY = kernel_for("threadIdx.x", "(threadIdx.x + 1) % blockDim.x")
    CLEAN = kernel_for("threadIdx.x", "threadIdx.x")

    @pytest.mark.parametrize("block", [4, 16, 64, 128])
    def test_racy_at_any_scale(self, block):
        assert sesa_verdict(self.RACY, block) is True

    @pytest.mark.parametrize("block", [4, 16, 64, 128])
    def test_clean_at_any_scale(self, block):
        assert sesa_verdict(self.CLEAN, block) is False

    def test_flow_count_constant_across_scales(self):
        counts = []
        for block in (8, 64, 256):
            report = SESA.from_source(self.RACY).check(
                LaunchConfig(block_dim=block, check_oob=False))
            counts.append(report.max_flows)
        assert counts == [1, 1, 1]
