"""The ``repro stream`` subcommand: exit codes, JSON, script loading."""
import json

from repro.cli import main

SOURCE = """\
__global__ void produce(int *a) { a[threadIdx.x] = threadIdx.x; }
__global__ void consume(int *a, int *b) {
  b[threadIdx.x] = a[threadIdx.x] + 1;
}
"""


def _script(tmp_path, steps):
    (tmp_path / "prog.cu").write_text(SOURCE)
    path = tmp_path / "prog.json"
    path.write_text(json.dumps({
        "source_file": "prog.cu",
        "buffers": {"a": 64, "b": 64},
        "steps": steps,
    }))
    return str(path)


RACY_STEPS = [
    {"launch": "produce", "args": {"a": "a"}},
    {"launch": "consume", "stream": 1, "args": {"a": "a", "b": "b"}},
]
SAFE_STEPS = [
    RACY_STEPS[0], {"sync": "device"}, RACY_STEPS[1],
]


def test_racy_script_exits_1(tmp_path, capsys):
    code = main(["stream", _script(tmp_path, RACY_STEPS),
                 "--no-cache"])
    out = capsys.readouterr().out
    assert code == 1
    assert "INTER-LAUNCH" in out
    assert "RACY" in out


def test_safe_script_exits_0(tmp_path, capsys):
    code = main(["stream", _script(tmp_path, SAFE_STEPS),
                 "--no-cache"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SAFE" in out


def test_json_output_round_trips(tmp_path, capsys):
    code = main(["stream", _script(tmp_path, RACY_STEPS),
                 "--no-cache", "--json"])
    assert code == 1
    data = json.loads(capsys.readouterr().out)
    assert data["engine"] == "stream"
    assert any(r.get("inter_launch") for r in data["races"])
    assert data["stream"]["program"]["name"] == "prog"


def test_builtin_case_and_listing(capsys):
    assert main(["stream", "builtin:", "--no-cache"]) == 0
    listing = capsys.readouterr().out
    assert "pipeline_missing_sync" in listing
    assert main(["stream", "builtin:pipeline_missing_sync",
                 "--no-cache"]) == 1
    capsys.readouterr()
    assert main(["stream", "builtin:same_stream_fifo",
                 "--no-cache"]) == 0


def test_missing_script_exits_2(tmp_path, capsys):
    code = main(["stream", str(tmp_path / "nope.json")])
    assert code == 2
    assert "no such launch script" in capsys.readouterr().err


def test_invalid_program_exits_2(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "source": SOURCE,
        "buffers": {"a": 64},
        "steps": [{"launch": "ghost_kernel", "args": {}}],
    }))
    code = main(["stream", str(path)])
    assert code == 2
    assert "ghost_kernel" in capsys.readouterr().err


def test_unknown_builtin_exits_2(capsys):
    assert main(["stream", "builtin:nope"]) == 2
    assert "no stream case" in capsys.readouterr().err


def test_cache_dir_persists_launch_verdicts(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    script = _script(tmp_path, RACY_STEPS)
    assert main(["stream", script, "--cache-dir", cache_dir,
                 "--json"]) == 1
    first = json.loads(capsys.readouterr().out)
    assert first["check_stats"]["launch_cache_hits"] == 0
    assert main(["stream", script, "--cache-dir", cache_dir,
                 "--json"]) == 1
    second = json.loads(capsys.readouterr().out)
    assert second["check_stats"]["launch_cache_hits"] == 2
    assert second["check_stats"]["pair_cache_hits"] == 1


def test_trace_writes_stream_events(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    main(["stream", _script(tmp_path, SAFE_STEPS), "--no-cache",
          "--trace", str(trace)])
    capsys.readouterr()
    events = [json.loads(line)["event"]
              for line in trace.read_text().splitlines()]
    assert "stream_planned" in events
    assert "stream_merged" in events
