"""StreamChecker: inter-launch races, pruning, caching, reports."""
import json

import pytest

from repro.kernels.streams import STREAM_CASES, get_stream_case
from repro.service import ResultCache
from repro.streams import (
    Launch, StreamChecker, StreamProgram, SyncOp, check_stream,
    launch_fingerprint,
)

EXPECTED_RACY = {case.name for case in STREAM_CASES
                 if case.expected_racy}


@pytest.mark.parametrize("case", STREAM_CASES,
                         ids=lambda c: c.name)
def test_builtin_suite_verdicts(case):
    """Every seeded missing-sync program is racy with a launch-pair
    witness; every synced variant is safe. The ISSUE acceptance bar."""
    report = check_stream(case.program)
    assert not report.timed_out
    assert bool(report.inter_launch_races) == case.expected_racy, \
        report.summary()
    for race in report.inter_launch_races:
        # a witness names both launches and both sides' coordinates
        assert race.launch1 != race.launch2
        assert race.witness["thread1"] is not None
        assert race.witness["thread2"] is not None
        assert race.buffer in case.program.buffers


def test_report_to_dict_is_json_and_analysisreport_shaped():
    report = check_stream(get_stream_case(
        "pipeline_missing_sync").program)
    data = report.to_dict()
    json.dumps(data)
    assert data["engine"] == "stream"
    assert data["timed_out"] is False
    inter = [r for r in data["races"] if r.get("inter_launch")]
    assert inter and inter[0]["launches"] == [0, 1]
    assert "stream" in data
    assert data["stream"]["hb"]["unordered_pairs"] == [[0, 1]]
    assert report.has_issues


def test_disjoint_footprints_pruned_without_solver():
    case = get_stream_case("disjoint_streams")
    report = check_stream(case.program)
    assert not report.inter_launch_races
    assert report.stats.pruned_pairs >= 1
    assert report.stats.queries == 0


def test_hb_ordered_pairs_skip_pair_checking():
    case = get_stream_case("pipeline_sync")
    report = check_stream(case.program)
    assert report.stats.unordered_pairs == 0
    assert report.stats.pairs_considered == 0


def test_pruning_off_still_safe_on_disjoint():
    case = get_stream_case("disjoint_streams")
    report = check_stream(case.program, pruning=False)
    assert not report.inter_launch_races
    assert report.stats.queries > 0       # solver had to discharge it


def test_non_incremental_matches_incremental():
    case = get_stream_case("pingpong_missing_sync")
    inc = check_stream(case.program, incremental=True)
    one = check_stream(case.program, incremental=False)
    key = lambda r: (r.kind, r.buffer, r.launch1, r.launch2,
                     r.loc1, r.loc2)
    assert sorted(map(key, inc.inter_launch_races)) == \
        sorted(map(key, one.inter_launch_races))


def test_summary_mentions_every_launch_and_race():
    report = check_stream(get_stream_case(
        "scatter_gather_missing_sync").program)
    text = report.summary()
    for outcome in report.launches:
        assert outcome.label in text
    assert "INTER-LAUNCH" in text
    assert "RACY" in text


SOURCE = """\
__global__ void produce(int *a) { a[threadIdx.x] = threadIdx.x; }
__global__ void consume(int *a, int *b) {
  b[threadIdx.x] = a[threadIdx.x] + 1;
}
"""


def _pipeline(consume_body_delta=""):
    source = SOURCE if not consume_body_delta else \
        SOURCE.replace("+ 1", consume_body_delta)
    return StreamProgram(
        name="pipe", source=source, buffers={"a": 64, "b": 64},
        steps=[
            Launch("produce", args={"a": "a"}),
            Launch("consume", stream=1, args={"a": "a", "b": "b"}),
        ])


class TestCaching:
    def test_second_run_serves_launches_and_pairs_from_cache(
            self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        first = check_stream(_pipeline(), cache=cache)
        assert first.stats.launch_cache_hits == 0
        second = check_stream(_pipeline(), cache=cache)
        assert second.stats.launch_cache_hits == 2
        assert second.stats.pair_cache_hits == 1
        assert all(o.cached for o in second.launches)
        key = lambda r: (r.kind, r.buffer, r.loc1, r.loc2)
        assert sorted(map(key, second.inter_launch_races)) == \
            sorted(map(key, first.inter_launch_races))

    def test_editing_one_kernel_keeps_other_launch_cached(
            self, tmp_path):
        """The acceptance criterion: one edited kernel → every
        untouched launch replays from cache."""
        cache = ResultCache(str(tmp_path / "cache"))
        check_stream(_pipeline(), cache=cache)
        third = check_stream(_pipeline("+ 2"), cache=cache)
        cached = {o.label: o.cached for o in third.launches}
        assert cached == {"produce": True, "consume": False}
        assert third.stats.launch_cache_hits == 1
        assert third.stats.pair_cache_hits == 0  # pair key changed too

    def test_fingerprint_sensitive_to_config_not_budget(self):
        prog = _pipeline()
        checker = StreamChecker(prog)
        launch = prog.launches()[0]
        base = launch_fingerprint(checker.module, launch,
                                  checker._config_for(launch))
        assert base == launch_fingerprint(
            checker.module, launch, checker._config_for(launch))
        bigger = Launch("produce", block_dim=(128, 1, 1),
                        args={"a": "a"})
        assert base != launch_fingerprint(
            checker.module, bigger, checker._config_for(bigger))


def test_atomic_vs_atomic_across_launches_is_not_a_race():
    source = ("__global__ void bump(int *c) "
              "{ atomicAdd(&c[0], 1); }")
    prog = StreamProgram(
        name="atomics", source=source, buffers={"c": 1},
        steps=[Launch("bump", stream=0, args={"c": "c"}),
               Launch("bump", stream=1, args={"c": "c"})])
    report = check_stream(prog)
    assert not report.inter_launch_races


def test_atomic_vs_plain_across_launches_is_a_race():
    source = ("__global__ void bump(int *c) "
              "{ atomicAdd(&c[0], 1); }\n"
              "__global__ void reset(int *c) { c[0] = 0; }")
    prog = StreamProgram(
        name="mixed", source=source, buffers={"c": 1},
        steps=[Launch("bump", stream=0, args={"c": "c"}),
               Launch("reset", stream=1, args={"c": "c"})])
    report = check_stream(prog)
    kinds = {r.kind for r in report.inter_launch_races}
    assert kinds and all("Atomic" in k for k in kinds)


def test_different_buffers_never_race():
    prog = StreamProgram(
        name="split", source=SOURCE, buffers={"a": 64, "x": 64,
                                              "b": 64},
        steps=[Launch("produce", stream=0, args={"a": "a"}),
               Launch("consume", stream=1,
                      args={"a": "x", "b": "b"})])
    report = check_stream(prog)
    assert not report.inter_launch_races
    assert report.stats.pairs_considered == 0 or \
        report.stats.queries == 0


def test_benign_ww_same_value_is_reported_benign():
    source = ("__global__ void mark(int *f) { f[threadIdx.x] = 7; }")
    prog = StreamProgram(
        name="benign", source=source, buffers={"f": 64},
        steps=[Launch("mark", stream=0, args={"f": "f"}),
               Launch("mark", stream=1, args={"f": "f"})])
    report = check_stream(prog)
    assert report.inter_launch_races
    assert all(r.benign for r in report.inter_launch_races)
    assert not report.has_issues


def test_time_budget_zero_reports_timeout_not_crash():
    report = check_stream(_pipeline(), time_budget_seconds=1e-9)
    assert report.timed_out
    data = report.to_dict()
    assert data["timed_out"] is True
    json.dumps(data)


def test_telemetry_events_emitted(tmp_path):
    from repro.service import Telemetry
    trace = tmp_path / "t.jsonl"
    telemetry = Telemetry(trace_path=str(trace))
    check_stream(_pipeline(), telemetry=telemetry)
    telemetry.close()
    events = [json.loads(line)["event"]
              for line in trace.read_text().splitlines()]
    assert events.count("stream_planned") == 1
    assert events.count("launch_finished") == 2
    assert events.count("stream_merged") == 1
