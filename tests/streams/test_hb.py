"""Happens-before DAG semantics over launch scripts.

The HB relation is pure step-walking (no compilation), so these tests
build programs around a placeholder source and assert on order alone.
"""
from repro.streams import HappensBefore, Launch, StreamProgram, SyncOp

SRC = "__global__ void k(int *a) { a[threadIdx.x] = 1; }"


def _hb(steps):
    return HappensBefore(StreamProgram(
        name="t", source=SRC, buffers={"a": 64}, steps=steps))


def L(stream, label=None):
    return Launch("k", stream=stream, args={"a": "a"}, label=label)


def test_same_stream_is_fifo_ordered():
    hb = _hb([L(0), L(0), L(0)])
    assert hb.unordered_pairs() == []
    assert hb.ordered(0, 2)


def test_different_streams_without_sync_are_unordered():
    hb = _hb([L(0), L(1)])
    assert hb.unordered_pairs() == [(0, 1)]
    assert not hb.ordered(0, 1)


def test_device_sync_orders_everything_before_after():
    hb = _hb([L(0), L(1), SyncOp("device_sync"), L(2)])
    assert hb.unordered_pairs() == [(0, 1)]
    assert hb.ordered(0, 2) and hb.ordered(1, 2)


def test_stream_sync_orders_only_that_stream():
    hb = _hb([L(0), L(1), SyncOp("stream_sync", stream=1), L(2)])
    assert hb.ordered(1, 2)          # synced stream
    assert not hb.ordered(0, 2)      # other stream still concurrent
    assert (0, 2) in hb.unordered_pairs()


def test_stream_sync_on_empty_stream_is_noop():
    hb = _hb([L(0), SyncOp("stream_sync", stream=7), L(1)])
    assert hb.unordered_pairs() == [(0, 1)]


def test_event_record_wait_creates_cross_stream_edge():
    hb = _hb([
        L(0),
        SyncOp("event_record", stream=0, event="e"),
        SyncOp("event_wait", stream=1, event="e"),
        L(1),
    ])
    assert hb.ordered(0, 1)
    assert hb.unordered_pairs() == []


def test_wait_on_unrecorded_event_is_noop():
    hb = _hb([
        L(0),
        SyncOp("event_wait", stream=1, event="never"),
        L(1),
    ])
    assert hb.unordered_pairs() == [(0, 1)]


def test_event_edge_does_not_order_later_work():
    # the recorded event captures launch 0 only; launch 2 (same stream,
    # after the record) stays concurrent with the waiter's stream
    hb = _hb([
        L(0),
        SyncOp("event_record", stream=0, event="e"),
        L(0, label="after-record"),       # index 1
        SyncOp("event_wait", stream=1, event="e"),
        L(1, label="waiter"),             # index 2
    ])
    assert hb.ordered(0, 2)
    assert not hb.ordered(1, 2)
    assert hb.unordered_pairs() == [(1, 2)]


def test_transitive_order_through_chained_events():
    hb = _hb([
        L(0),                                              # 0
        SyncOp("event_record", stream=0, event="a"),
        SyncOp("event_wait", stream=1, event="a"),
        L(1),                                              # 1
        SyncOp("event_record", stream=1, event="b"),
        SyncOp("event_wait", stream=2, event="b"),
        L(2),                                              # 2
    ])
    assert hb.ordered(0, 1) and hb.ordered(1, 2)
    assert hb.ordered(0, 2)      # transitivity
    assert hb.unordered_pairs() == []


def test_to_dict_is_json_shaped():
    hb = _hb([L(0), L(1), SyncOp("device_sync"), L(0)])
    data = hb.to_dict()
    assert data["launches"] == 3
    assert data["unordered_pairs"] == [[0, 1]]
    assert all(len(e) == 2 for e in data["edges"])
