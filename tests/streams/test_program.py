"""StreamProgram model: parsing, validation, serialisation."""
import json

import pytest

from repro.streams import (
    Launch, StreamProgram, StreamProgramError, SyncOp,
    load_stream_script,
)

SOURCE = """\
__global__ void produce(int *a) { a[threadIdx.x] = threadIdx.x; }
__global__ void consume(int *a, int *b) {
  b[threadIdx.x] = a[threadIdx.x] + 1;
}
"""


def _program(steps, buffers=None):
    return StreamProgram(
        name="t", source=SOURCE,
        buffers=buffers if buffers is not None else {"a": 64, "b": 64},
        steps=steps)


def test_valid_program_round_trips_through_dict():
    prog = _program([
        Launch("produce", args={"a": "a"}),
        SyncOp("device_sync"),
        Launch("consume", stream=1, args={"a": "a", "b": "b"},
               label="read-back"),
    ])
    prog.validate()
    data = prog.to_dict()
    back = StreamProgram.from_dict(data)
    back.validate()
    assert [type(s).__name__ for s in back.steps] == \
        [type(s).__name__ for s in prog.steps]
    assert back.launches()[1].label == "read-back"
    assert back.launches()[1].stream == 1
    # dicts are JSON-safe
    json.dumps(data)


def test_launch_name_prefers_label():
    assert Launch("k").name == "k"
    assert Launch("k", label="step-1").name == "step-1"


def test_sync_op_validation():
    with pytest.raises(StreamProgramError):
        SyncOp("stream_sync")              # needs a stream
    with pytest.raises(StreamProgramError):
        SyncOp("event_record", stream=0)   # needs an event
    with pytest.raises(StreamProgramError):
        SyncOp("teleport")                 # unknown kind
    op = SyncOp("event_wait", stream=1, event="e0")
    assert op.to_dict()["sync"] == "event_wait"


@pytest.mark.parametrize("steps,buffers,needle", [
    ([], None, "launch"),                                  # no launches
    ([Launch("nope", args={})], None, "nope"),             # unknown kernel
    ([Launch("produce", args={"a": "ghost"})], None, "ghost"),
    ([Launch("produce", args={"q": "a"})], None, "q"),     # unknown param
    ([Launch("produce", args={"a": "a"})], {"a": 0}, "positive"),
])
def test_validate_rejects(steps, buffers, needle):
    prog = _program(steps, buffers)
    with pytest.raises(StreamProgramError) as err:
        prog.validate()
    assert needle in str(err.value)


def test_parse_step_accepts_short_sync_forms():
    from repro.streams.program import parse_step
    dev = parse_step({"sync": "device"})
    assert dev.kind == "device_sync"
    ss = parse_step({"sync": "stream", "stream": 2})
    assert ss.kind == "stream_sync" and ss.stream == 2
    launch = parse_step(
        {"launch": "k", "grid": [2], "block": [32], "args": {"p": "a"}})
    assert launch.kernel == "k"
    assert launch.grid_dim == (2, 1, 1)
    assert launch.block_dim == (32, 1, 1)


def test_from_dict_requires_source():
    with pytest.raises(StreamProgramError):
        StreamProgram.from_dict({"steps": [{"launch": "k"}]})


def test_load_stream_script_resolves_source_file(tmp_path):
    (tmp_path / "prog.cu").write_text(SOURCE)
    script = {
        "source_file": "prog.cu",
        "buffers": {"a": 64, "b": 64},
        "steps": [
            {"launch": "produce", "args": {"a": "a"}},
            {"sync": "device"},
            {"launch": "consume", "stream": 1,
             "args": {"a": "a", "b": "b"}},
        ],
    }
    path = tmp_path / "prog.json"
    path.write_text(json.dumps(script))
    prog = load_stream_script(str(path))
    assert prog.name == "prog"
    assert prog.source == SOURCE
    prog.validate()


def test_load_stream_script_inline_source(tmp_path):
    path = tmp_path / "inline.json"
    path.write_text(json.dumps({
        "source": SOURCE,
        "buffers": {"a": 64},
        "steps": [{"launch": "produce", "args": {"a": "a"}}],
    }))
    prog = load_stream_script(str(path))
    assert prog.name == "inline"
    prog.validate()
