"""Kernel assertion checking (inherited from the GKLEE lineage)."""
import pytest

from repro.core import SESA, LaunchConfig


def check(source, **kw):
    return SESA.from_source(source).check(
        LaunchConfig(block_dim=64, check_oob=False, **kw))


class TestAssertions:
    def test_violation_found_with_witness(self):
        report = check("""
__global__ void k(int *a) {
  assert(threadIdx.x < 32u);
  a[threadIdx.x] = 1;
}""")
        assert report.assertion_failures
        failure = report.assertion_failures[0]
        assert failure.witness.thread1[0] >= 32

    def test_valid_assertion_holds(self):
        report = check("""
__global__ void k(int *a) {
  assert(threadIdx.x < blockDim.x);
  a[threadIdx.x] = 1;
}""")
        assert not report.assertion_failures

    def test_guarded_assertion_respects_guard(self):
        report = check("""
__global__ void k(int *a) {
  if (threadIdx.x < 16u) {
    assert(threadIdx.x < 16u);
    a[threadIdx.x] = 1;
  }
}""")
        assert not report.assertion_failures

    def test_assertion_over_symbolic_input(self):
        report = check("""
__global__ void k(int *data, int *out) {
  int v = data[threadIdx.x] & 255;
  assert(v < 100);
  out[(unsigned)v & 63u] = 1;
}""")
        # data is symbolic (address flow): v can reach 255
        assert report.assertion_failures

    def test_assertion_in_summary(self):
        report = check("""
__global__ void k(int *a) {
  assert(threadIdx.x < 1u);
  a[0] = 1;
}""")
        assert "ASSERT" in report.summary()
