"""Batch jobs with ``repair=True``: real end-to-end repair through the
scheduler, cache fingerprinting, and telemetry events."""
import json

from repro.service import JobSpec, JobStatus
from repro.service.cache import ResultCache
from repro.service.runner import execute_job
from repro.service.scheduler import run_batch

BUGGY = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""

CLEAN = """
__global__ void k(float *a) { a[threadIdx.x] = 1.0f; }
"""


def _spec(job_id="reduce", source=BUGGY, **kw):
    kw.setdefault("block_dim", (64, 1, 1))
    kw.setdefault("check_oob", False)
    return JobSpec(job_id=job_id, source=source, **kw)


class TestRunner:
    def test_repair_payload_attached(self):
        payload = execute_job(_spec(repair=True).to_dict())
        assert payload["status"] == JobStatus.DONE
        repair = payload["repair"]
        assert repair is not None
        assert repair["converged"] and repair["verified"]
        assert len(repair["edits"]) == 1
        json.dumps(payload)

    def test_no_repair_without_flag(self):
        payload = execute_job(_spec().to_dict())
        assert payload["status"] == JobStatus.DONE
        assert payload["repair"] is None

    def test_clean_kernel_skips_repair(self):
        # nothing to repair: the runner doesn't spin up the engine
        payload = execute_job(_spec(source=CLEAN, repair=True,
                                    check_oob=True).to_dict())
        assert payload["status"] == JobStatus.DONE
        assert payload["repair"] is None


class TestFingerprint:
    def test_repair_flag_changes_cache_key(self, tmp_path):
        plain = _spec()
        repairing = _spec(repair=True)
        assert plain.config_fingerprint() != repairing.config_fingerprint()
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.key_for(plain) != cache.key_for(repairing)

    def test_spec_roundtrips_repair_flag(self):
        spec = _spec(repair=True)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.repair is True


class TestScheduler:
    def test_batch_repair_end_to_end(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        batch = run_batch([_spec(repair=True)], max_workers=1,
                          trace_path=trace, isolate=False)
        assert batch.ok
        job = batch.jobs[0]
        assert job.repair is not None
        assert job.repair["verified"] is True
        events = [json.loads(line)["event"]
                  for line in open(trace, encoding="utf-8")]
        assert "repair_started" in events
        assert "repair_finished" in events

    def test_repair_result_served_from_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        kw = dict(max_workers=1, cache_dir=cache_dir, isolate=False,
                  trace_path=str(tmp_path / "t.jsonl"))
        first = run_batch([_spec(repair=True)], **kw)
        assert first.jobs[0].repair is not None
        second = run_batch([_spec(repair=True)], **kw)
        assert second.jobs[0].status == JobStatus.CACHED
        assert second.jobs[0].repair == first.jobs[0].repair
