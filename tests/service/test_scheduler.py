"""Scheduler behaviour: ordering, timeout, retry, crash isolation.

These tests drive the scheduler with purpose-built runners (sleeping,
crashing, flaky) instead of the real analysis, so each property is
exercised in isolation and in milliseconds. The runners live at module
level so worker processes can reach them under any start method.
"""
import os
import time

from repro.service import JobSpec, JobStatus, Scheduler, Telemetry
from repro.service.scheduler import run_batch


def _spec(job_id, **meta):
    return JobSpec(job_id=job_id, source="", meta=meta)


def _payload(status=JobStatus.DONE, **extra):
    out = {"status": status, "verdict": {"races": [], "oobs": []},
           "check_stats": None, "inputs": None,
           "elapsed_seconds": 0.0, "error": None}
    out.update(extra)
    return out


def ok_runner(spec):
    return _payload(verdict={"races": [], "oobs": [],
                             "job": spec["job_id"]})


def sleepy_runner(spec):
    time.sleep(spec["meta"].get("sleep", 0))
    return ok_runner(spec)


def crash_runner(spec):
    os._exit(17)


def flaky_runner(spec):
    """Crashes until the marker file exists (simulating a transient
    worker failure), then succeeds."""
    marker = spec["meta"]["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        os._exit(9)
    return ok_runner(spec)


def raising_runner(spec):
    raise ValueError("deterministic analysis failure")


class TestOrderingAndCompletion:
    def test_results_in_submission_order(self):
        specs = [_spec(f"job{i}", sleep=0.05 * ((i * 3) % 4) / 10)
                 for i in range(8)]
        batch = Scheduler(max_workers=4, runner=sleepy_runner).run(specs)
        assert [r.job_id for r in batch.jobs] == \
            [s.job_id for s in specs]
        assert all(r.status == JobStatus.DONE for r in batch.jobs)

    def test_empty_batch(self):
        batch = Scheduler(runner=ok_runner).run([])
        assert batch.jobs == [] and batch.ok

    def test_inline_mode(self):
        batch = Scheduler(runner=ok_runner, isolate=False).run(
            [_spec("a"), _spec("b")])
        assert [r.status for r in batch.jobs] == ["done", "done"]

    def test_inline_mode_contains_exceptions(self):
        batch = Scheduler(runner=raising_runner, isolate=False).run(
            [_spec("a")])
        assert batch.jobs[0].status == JobStatus.ERROR
        assert "deterministic analysis failure" in batch.jobs[0].error


class TestTimeout:
    def test_slow_job_is_killed_not_the_batch(self):
        specs = [_spec("fast1"), _spec("stuck", sleep=30.0),
                 _spec("fast2")]
        start = time.monotonic()
        batch = Scheduler(max_workers=3, timeout_seconds=1.0,
                          runner=sleepy_runner).run(specs)
        assert time.monotonic() - start < 15.0
        by_id = {r.job_id: r for r in batch.jobs}
        assert by_id["stuck"].status == JobStatus.TIMEOUT
        assert by_id["fast1"].status == JobStatus.DONE
        assert by_id["fast2"].status == JobStatus.DONE

    def test_timeout_is_not_retried(self):
        batch = Scheduler(timeout_seconds=0.5, max_retries=3,
                          runner=sleepy_runner).run(
            [_spec("stuck", sleep=30.0)])
        assert batch.jobs[0].status == JobStatus.TIMEOUT
        assert batch.jobs[0].attempts == 1


class TestCrashIsolation:
    def test_crash_becomes_error_record(self):
        specs = [_spec("boom"), _spec("fine")]
        sched = Scheduler(max_workers=2, max_retries=1,
                          runner=crash_runner)
        sched2 = Scheduler(max_workers=2, runner=ok_runner)
        batch = sched.run(specs[:1])
        assert batch.jobs[0].status == JobStatus.ERROR
        assert "exit code" in batch.jobs[0].error
        assert not batch.ok
        # an unrelated batch on the same machine is unaffected
        assert sched2.run(specs[1:]).ok

    def test_crash_attempts_bounded(self):
        batch = Scheduler(max_retries=2, retry_backoff=0.01,
                          runner=crash_runner).run([_spec("boom")])
        assert batch.jobs[0].attempts == 3  # 1 try + 2 retries

    def test_crash_does_not_abort_siblings(self):
        specs = [_spec("a"), _spec("boom"), _spec("b")]

        def router(spec):
            if spec["job_id"] == "boom":
                return crash_runner(spec)
            return ok_runner(spec)

        batch = Scheduler(max_workers=3, max_retries=0,
                          runner=router).run(specs)
        statuses = [r.status for r in batch.jobs]
        assert statuses == [JobStatus.DONE, JobStatus.ERROR,
                            JobStatus.DONE]


class TestRetry:
    def test_transient_crash_retried_with_success(self, tmp_path):
        marker = str(tmp_path / "attempted.marker")
        batch = Scheduler(max_retries=2, retry_backoff=0.01,
                          runner=flaky_runner).run(
            [_spec("flaky", marker=marker)])
        assert batch.jobs[0].status == JobStatus.DONE
        assert batch.jobs[0].attempts == 2

    def test_retry_emits_telemetry(self, tmp_path):
        marker = str(tmp_path / "attempted.marker")
        telemetry = Telemetry()
        Scheduler(max_retries=2, retry_backoff=0.01, runner=flaky_runner,
                  telemetry=telemetry).run([_spec("flaky", marker=marker)])
        assert len(telemetry.select("job_retry")) == 1


class TestTelemetryEvents:
    def test_one_start_finish_pair_per_job(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        specs = [_spec(f"j{i}") for i in range(5)]
        batch = run_batch(specs, max_workers=2, trace_path=trace,
                          runner=ok_runner)
        telemetry = batch.telemetry
        assert len(telemetry.select("batch_started")) == 1
        assert len(telemetry.select("batch_finished")) == 1
        started = [e["job_id"] for e in telemetry.select("job_started")]
        finished = [e["job_id"] for e in telemetry.select("job_finished")]
        assert sorted(started) == sorted(s.job_id for s in specs)
        assert sorted(finished) == sorted(s.job_id for s in specs)
        # and the JSONL file mirrors the in-memory trail
        import json
        with open(trace) as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == len(telemetry.events)

    def test_error_jobs_still_get_finish_events(self):
        telemetry = Telemetry()
        Scheduler(max_retries=0, runner=crash_runner,
                  telemetry=telemetry).run([_spec("boom")])
        finished = telemetry.select("job_finished")
        assert len(finished) == 1
        assert finished[0]["status"] == JobStatus.ERROR
