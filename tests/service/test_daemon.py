"""Daemon subsystem: durable store, lease semantics, worker fleet.

Lease tests avoid real waiting where possible by passing explicit
``now`` timestamps to the reaper; worker tests use purpose-built
module-level runners (instant, slow, crashing, SIGKILLed) so each
property runs in milliseconds, exactly like the scheduler tests.
"""
import json
import os
import signal
import time

import pytest

from repro.service import JobSpec, JobState, JobStatus
from repro.service.daemon import (
    Daemon, Heartbeat, JobStore, Reaper, WorkerDaemon,
)
from repro.service.runner import execute_job


def _spec(job_id="k1", source="x", **meta):
    return JobSpec(job_id=job_id, source=source, meta=meta)


def _payload(status=JobStatus.DONE, **extra):
    out = {"status": status, "verdict": {"races": [], "oobs": []},
           "check_stats": None, "inputs": None,
           "elapsed_seconds": 0.0, "error": None}
    out.update(extra)
    return out


def ok_runner(spec):
    return _payload(verdict={"races": [], "oobs": [],
                             "job": spec["job_id"]})


def slow_runner(spec):
    time.sleep(spec["meta"].get("sleep", 0.5))
    return ok_runner(spec)


def error_runner(spec):
    return _payload(status=JobStatus.ERROR, verdict=None,
                    error="deterministic analysis failure")


def sigkill_once_runner(spec):
    """SIGKILL the worker child on the first attempt (the marker file
    records that an attempt happened), succeed on the second."""
    marker = spec["meta"]["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        os.kill(os.getpid(), signal.SIGKILL)
    return ok_runner(spec)


def always_crash_runner(spec):
    os._exit(21)


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "queue.sqlite3"))


class TestStoreLifecycle:
    def test_submit_claim_complete(self, store):
        job_id, deduped = store.submit(_spec(), "fp-1")
        assert not deduped
        assert store.get(job_id).state == JobState.QUEUED

        job = store.claim("w0", lease_ttl=30.0)
        assert job.job_id == job_id
        assert job.state == JobState.LEASED
        assert job.attempts == 1
        assert store.get(job_id).lease_owner == "w0"

        assert store.complete(job_id, "w0", {"status": "done"})
        row = store.get(job_id)
        assert row.state == JobState.DONE and row.terminal
        assert row.result == {"status": "done"}
        assert row.lease_owner is None

    def test_claim_is_fifo_and_empty_queue_is_none(self, store):
        first, _ = store.submit(_spec("a"), "fp-a")
        time.sleep(0.01)
        store.submit(_spec("b"), "fp-b")
        assert store.claim("w0", 30.0).job_id == first
        assert store.claim("w0", 30.0) is not None
        assert store.claim("w0", 30.0) is None

    def test_only_lease_owner_can_complete(self, store):
        job_id, _ = store.submit(_spec(), "fp-1")
        store.claim("w0", 30.0)
        assert not store.complete(job_id, "w1", {"status": "done"})
        assert store.get(job_id).state == JobState.LEASED

    def test_spec_roundtrips_through_store(self, store):
        spec = _spec("roundtrip", source="__global__ void k() {}")
        job_id, _ = store.submit(spec, "fp-rt")
        job = store.claim("w0", 30.0)
        restored = JobSpec.from_dict(job.spec)
        assert restored.job_id == "roundtrip"
        assert restored.source == spec.source


class TestDedup:
    def test_duplicate_submit_collapses_to_one_job(self, store):
        job_id, deduped = store.submit(_spec("a"), "fp-same")
        dup_id, dup = store.submit(_spec("b"), "fp-same")
        assert dup and dup_id == job_id
        assert len(store.list_jobs()) == 1

    def test_dedup_spans_leased_and_done(self, store):
        job_id, _ = store.submit(_spec(), "fp-1")
        store.claim("w0", 30.0)
        assert store.submit(_spec(), "fp-1") == (job_id, True)
        store.complete(job_id, "w0", {"status": "done"})
        assert store.submit(_spec(), "fp-1") == (job_id, True)

    def test_failed_and_dead_do_not_block_resubmit(self, store):
        job_id, _ = store.submit(_spec(), "fp-1")
        store.claim("w0", 30.0)
        store.complete(job_id, "w0", {"status": "error"},
                       state=JobState.FAILED, error="boom")
        new_id, deduped = store.submit(_spec(), "fp-1")
        assert not deduped and new_id != job_id


class TestLeaseSemantics:
    def test_expired_lease_is_reclaimed_for_retry(self, store):
        job_id, _ = store.submit(_spec(), "fp-1")
        store.claim("w0", lease_ttl=0.01)
        # sweep "later": the deadline has passed, attempts remain
        reclaimed = store.reap_expired(now=time.time() + 1.0)
        assert reclaimed == [(job_id, JobState.QUEUED)]
        job = store.get(job_id)
        assert job.state == JobState.QUEUED
        assert job.lease_owner is None
        # next claim is attempt 2
        assert store.claim("w1", 30.0).attempts == 2

    def test_reclaim_exhausts_budget_to_dead(self, store):
        job_id, _ = store.submit(_spec(), "fp-1", max_attempts=2)
        for _attempt in range(2):
            store.claim("w0", lease_ttl=0.01)
            store.reap_expired(now=time.time() + 1.0)
        job = store.get(job_id)
        assert job.state == JobState.DEAD
        assert "retry budget exhausted" in job.error

    def test_live_lease_is_not_reaped(self, store):
        store.submit(_spec(), "fp-1")
        store.claim("w0", lease_ttl=30.0)
        assert store.reap_expired() == []

    def test_heartbeat_renewal_prevents_reclaim(self, store):
        job_id, _ = store.submit(_spec(), "fp-1")
        store.claim("w0", lease_ttl=0.2)
        with Heartbeat(store, job_id, "w0", lease_ttl=0.2,
                       interval=0.05) as beat:
            # without renewal the lease would expire ~0.2s in; the
            # heartbeat keeps pushing the deadline ahead of the reaper
            deadline = time.monotonic() + 0.6
            while time.monotonic() < deadline:
                assert store.reap_expired() == []
                time.sleep(0.05)
            assert not beat.lost
        assert store.get(job_id).state == JobState.LEASED

    def test_heartbeat_discovers_lost_lease(self, store):
        job_id, _ = store.submit(_spec(), "fp-1")
        store.claim("w0", lease_ttl=0.01)
        store.reap_expired(now=time.time() + 1.0)   # reclaimed
        with Heartbeat(store, job_id, "w0", lease_ttl=0.01,
                       interval=0.02) as beat:
            time.sleep(0.1)
        assert beat.lost
        # ... and the zombie's late result is refused by the store
        assert not store.complete(job_id, "w0", {"status": "done"})

    def test_release_requeues_then_kills(self, store):
        job_id, _ = store.submit(_spec(), "fp-1", max_attempts=2)
        store.claim("w0", 30.0)
        assert store.release(job_id, "w0", "crash 1") == JobState.QUEUED
        store.claim("w0", 30.0)
        assert store.release(job_id, "w0", "crash 2") == JobState.DEAD

    def test_reaper_thread_counts_transitions(self, store):
        store.submit(_spec("a"), "fp-a", max_attempts=1)
        store.claim("w0", lease_ttl=0.05)
        reaper = Reaper(store, lease_ttl=0.05, interval=0.02).start()
        try:
            deadline = time.monotonic() + 2.0
            while store.get(store.list_jobs()[0].job_id).state \
                    == JobState.LEASED and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            reaper.stop()
        assert store.list_jobs()[0].state == JobState.DEAD
        assert reaper.killed == 1


class TestWorkerDaemon:
    def test_worker_processes_queue(self, store, tmp_path):
        for i in range(4):
            store.submit(_spec(f"job{i}", source=f"src{i}"), f"fp{i}")
        worker = WorkerDaemon(store, worker_id="w0", runner=ok_runner,
                              poll_interval=0.02)
        while worker.process_one():
            pass
        jobs = store.list_jobs()
        assert len(jobs) == 4
        assert all(j.state == JobState.DONE for j in jobs)
        assert all(j.result["status"] == JobStatus.DONE for j in jobs)
        assert worker.jobs_done == 4

    def test_sigkilled_worker_child_is_retried(self, store, tmp_path):
        """SIGKILL mid-job: the crash is detected, the job requeued,
        and the second attempt produces a correct verdict."""
        marker = str(tmp_path / "attempted.marker")
        job_id, _ = store.submit(
            _spec("victim", marker=marker), "fp-v", max_attempts=2)
        worker = WorkerDaemon(store, worker_id="w0",
                              runner=sigkill_once_runner,
                              poll_interval=0.02)
        assert worker.process_one()          # attempt 1: SIGKILL
        job = store.get(job_id)
        assert job.state == JobState.QUEUED
        assert os.path.exists(marker)
        assert worker.process_one()          # attempt 2: verdict
        job = store.get(job_id)
        assert job.state == JobState.DONE
        assert job.attempts == 2
        assert job.result["verdict"]["job"] == "victim"

    def test_crash_budget_exhausts_to_dead(self, store):
        job_id, _ = store.submit(_spec(), "fp-1", max_attempts=2)
        worker = WorkerDaemon(store, worker_id="w0",
                              runner=always_crash_runner)
        worker.process_one()
        worker.process_one()
        job = store.get(job_id)
        assert job.state == JobState.DEAD
        assert "exit code 21" in job.error

    def test_deterministic_error_is_failed_not_retried(self, store):
        job_id, _ = store.submit(_spec(), "fp-1", max_attempts=3)
        worker = WorkerDaemon(store, worker_id="w0",
                              runner=error_runner)
        worker.process_one()
        job = store.get(job_id)
        assert job.state == JobState.FAILED
        assert job.attempts == 1    # no retry burned on determinism
        assert "deterministic analysis failure" in job.error

    def test_hard_timeout_is_failed(self, store):
        job_id, _ = store.submit(_spec(sleep=30.0), "fp-1")
        worker = WorkerDaemon(store, worker_id="w0",
                              runner=slow_runner, timeout_seconds=0.3)
        worker.process_one()
        job = store.get(job_id)
        assert job.state == JobState.FAILED
        assert "hard timeout" in job.error

    def test_graceful_shutdown_drains_in_flight_job(self, store):
        """stop() during a job: no new claims, but the in-flight job
        runs to a recorded verdict before the worker exits."""
        job_id, _ = store.submit(_spec(sleep=0.4), "fp-slow")
        store.submit(_spec("later", source="y", sleep=0.0), "fp-later")
        worker = WorkerDaemon(store, worker_id="w0",
                              runner=slow_runner,
                              poll_interval=0.02).start()
        deadline = time.monotonic() + 5.0
        while store.get(job_id).state != JobState.LEASED \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        worker.stop()                       # drains, then returns
        assert store.get(job_id).state == JobState.DONE
        # the second job was never claimed — stop means stop
        assert store.get(
            store.list_jobs(state=JobState.QUEUED)[0].job_id
        ).state == JobState.QUEUED
        assert not worker.alive


class TestCacheDedup:
    def test_cache_hit_skips_solver_work(self, store, tmp_path):
        """Same fingerprint resubmitted after completion: the worker
        serves the verdict from the cache without running anything."""
        from repro.service import ResultCache
        cache = ResultCache(str(tmp_path / "cache"))
        job_id, _ = store.submit(_spec(), "fp-same")
        w = WorkerDaemon(store, worker_id="w0", cache=cache,
                         runner=ok_runner)
        w.process_one()
        assert store.get(job_id).state == JobState.DONE

        new_id, deduped = store.submit(_spec(), "fp-same")
        assert deduped and new_id == job_id   # still sharable: done

        # force a genuinely new row for the same content (as if the
        # old one had failed): the cache still serves the verdict
        with store._tx() as cur:
            cur.execute("UPDATE jobs SET state = ? WHERE job_id = ?",
                        (JobState.FAILED, job_id))
        fresh_id, deduped = store.submit(_spec(), "fp-same")
        assert not deduped and fresh_id != job_id
        w.process_one()
        fresh = store.get(fresh_id)
        assert fresh.state == JobState.DONE
        assert fresh.result["status"] == JobStatus.CACHED
        assert fresh.result["cached"] is True
        assert cache.hits == 1

    def test_validation_error_is_structured_failed(self, store):
        """Malformed specs land as ``failed`` with a clean one-line
        error — no traceback — via the real execute_job runner."""
        bad = JobSpec(job_id="bad", source="x", engine="sesa")
        bad.engine = "no-such-engine"   # bypass construction checks
        job_id, _ = store.submit(bad, "fp-bad", max_attempts=3)
        worker = WorkerDaemon(store, worker_id="w0",
                              runner=execute_job)
        worker.process_one()
        job = store.get(job_id)
        assert job.state == JobState.FAILED
        assert job.attempts == 1
        assert "invalid job spec" in job.error
        assert "no-such-engine" in job.error
        assert "Traceback" not in job.error


class TestDaemonSupervisor:
    def test_in_process_end_to_end(self, tmp_path):
        daemon = Daemon(db_path=str(tmp_path / "q.sqlite3"),
                        cache_dir=str(tmp_path / "cache"),
                        workers=2, lease_ttl=5.0, poll_interval=0.02,
                        sample_interval=0.1, runner=ok_runner)
        daemon.start(serve_http=False)
        try:
            submitted = [daemon.submit_spec(
                _spec(f"job{i}", source=f"src{i}")) for i in range(6)]
            assert daemon.wait_idle(timeout=30.0)
            for entry in submitted:
                job = daemon.store.get(entry["job_id"])
                assert job.state == JobState.DONE
            # the sampler emitted periodic queue_sample events with
            # the canonical schema
            samples = daemon.telemetry.select("queue_sample")
            assert samples, "sampler never fired"
            sample = samples[-1]
            assert {"depth", "leased", "oldest_age_seconds",
                    "workers"} <= set(sample)
            assert set(sample["workers"]) == {"w0", "w1"}
            assert all({"jobs", "jobs_per_sec"} <= set(w.keys())
                       for w in sample["workers"].values())
        finally:
            daemon.stop()

    def test_startup_sweep_recovers_orphaned_leases(self, tmp_path):
        """Leases from a daemon that died whole are reclaimed at the
        next daemon's startup, before one TTL elapses."""
        db = str(tmp_path / "q.sqlite3")
        store = JobStore(db)
        job_id, _ = store.submit(_spec(), "fp-1")
        store.claim("dead-daemon-w0", lease_ttl=0.01)
        store.close()
        time.sleep(0.05)
        daemon = Daemon(db_path=db, workers=1, lease_ttl=30.0,
                        poll_interval=0.02, runner=ok_runner)
        daemon.start(serve_http=False)
        try:
            assert daemon.wait_idle(timeout=10.0)
            assert daemon.store.get(job_id).state == JobState.DONE
        finally:
            daemon.stop()


class TestBatchQueueSampleParity:
    def test_batch_final_summary_uses_queue_sample_schema(self):
        from repro.service import Scheduler, Telemetry
        telemetry = Telemetry()
        Scheduler(max_workers=2, runner=ok_runner,
                  telemetry=telemetry).run(
            [_spec(f"j{i}", source=f"s{i}") for i in range(4)])
        samples = telemetry.select("queue_sample")
        assert len(samples) == 1
        sample = samples[0]
        assert sample["depth"] == 0 and sample["leased"] == 0
        assert sum(w["jobs"] for w in sample["workers"].values()) == 4
        assert all({"jobs", "jobs_per_sec"} <= set(w.keys())
                   for w in sample["workers"].values())
