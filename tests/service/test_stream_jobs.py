"""``stream`` JobSpec kind through the service stack.

Covers spec validation, fingerprint stability for plain kernel jobs,
inline execution, corpus enumeration, batch scheduling, and daemon
round-trips with per-launch cache replay.
"""
import json

import pytest

from repro.service import (
    JobSpec, JobState, JobStatus, JobValidationError, builtin_jobs,
    execute_job, run_batch, stream_jobs,
)
from repro.service.daemon import Daemon

SOURCE = """\
__global__ void produce(int *a) { a[threadIdx.x] = threadIdx.x; }
__global__ void consume(int *a, int *b) {
  b[threadIdx.x] = a[threadIdx.x] + 1;
}
"""

PROGRAM = {
    "name": "pipe",
    "buffers": {"a": 64, "b": 64},
    "steps": [
        {"launch": "produce", "args": {"a": "a"}},
        {"launch": "consume", "stream": 1,
         "args": {"a": "a", "b": "b"}},
    ],
}


def _spec(job_id="stream-job", program=PROGRAM, **overrides):
    return JobSpec(job_id=job_id, source=SOURCE, kind="stream",
                   stream_program=dict(program), **overrides)


class TestSpecValidation:
    def test_stream_spec_round_trips(self):
        spec = _spec()
        spec.validate()
        back = JobSpec.from_dict(spec.to_dict())
        assert back.kind == "stream"
        assert back.stream_program == spec.stream_program

    def test_kernel_spec_defaults_to_kernel_kind(self):
        spec = JobSpec(job_id="k", source="__global__ void k() {}")
        spec.validate()
        assert spec.kind == "kernel"

    def test_unknown_kind_rejected(self):
        spec = JobSpec(job_id="k", source="x", kind="graph")
        with pytest.raises(JobValidationError):
            spec.validate()

    def test_stream_without_program_rejected(self):
        spec = JobSpec(job_id="k", source=SOURCE, kind="stream")
        with pytest.raises(JobValidationError):
            spec.validate()

    def test_program_on_kernel_kind_rejected(self):
        spec = JobSpec(job_id="k", source=SOURCE,
                       stream_program=dict(PROGRAM))
        with pytest.raises(JobValidationError):
            spec.validate()

    def test_kernel_fingerprint_unchanged_by_new_fields(self):
        """Adding the ``kind`` field must not shift any existing cache
        key: plain kernel specs serialise exactly as before."""
        spec = JobSpec(job_id="k", source="__global__ void k() {}")
        fp = spec.config_fingerprint()
        assert "kind" not in fp
        assert "stream_program" not in fp
        # stream specs key on kind + the whole program
        sfp = _spec().config_fingerprint()
        assert sfp["kind"] == "stream"
        assert sfp["stream_program"]["steps"]

    def test_stream_fingerprint_differs_from_kernel(self):
        from repro.service import cache_key
        kernel = JobSpec(job_id="x", source=SOURCE)
        stream = _spec(job_id="x")
        assert cache_key(kernel) != cache_key(stream)


class TestExecuteJob:
    def test_racy_program_reports_inter_launch_races(self):
        payload = execute_job(_spec().to_dict())
        assert payload["status"] == JobStatus.DONE
        verdict = payload["verdict"]
        assert verdict["engine"] == "stream"
        assert verdict["stream"]["inter_launch_races"]
        assert payload["check_stats"]["launches"] == 2
        json.dumps(payload)

    def test_invalid_program_is_validation_error(self):
        bad = dict(PROGRAM, steps=[{"launch": "ghost", "args": {}}])
        payload = execute_job(_spec(program=bad).to_dict())
        assert payload["status"] == JobStatus.ERROR
        assert payload.get("validation_error") is True
        assert "ghost" in payload["error"]

    def test_solver_cache_dir_enables_launch_replay(self, tmp_path):
        d = _spec(solver_cache_dir=str(tmp_path / "c")).to_dict()
        first = execute_job(d)
        second = execute_job(d)
        assert first["check_stats"]["launch_cache_hits"] == 0
        assert second["check_stats"]["launch_cache_hits"] == 2
        assert second["check_stats"]["pair_cache_hits"] == 1


class TestCorpus:
    def test_stream_suite_enumerates_builtin_cases(self):
        specs = stream_jobs()
        assert len(specs) >= 8
        assert all(s.kind == "stream" for s in specs)
        assert all(s.stream_program["steps"] for s in specs)
        for spec in specs:
            spec.validate()

    def test_builtin_jobs_routes_streams_suite(self):
        assert [s.job_id for s in builtin_jobs("streams")] == \
            [s.job_id for s in stream_jobs()]
        # the kernels-only full corpus does not include stream jobs
        assert all(s.kind == "kernel" for s in builtin_jobs(None))

    def test_unknown_suite_error_mentions_streams(self):
        with pytest.raises(ValueError) as err:
            builtin_jobs("nope")
        assert "streams" in str(err.value)


class TestBatchAndDaemon:
    def test_run_batch_executes_stream_jobs(self, tmp_path):
        specs = [_spec("s/racy"),
                 _spec("s/safe", program=dict(
                     PROGRAM, steps=[PROGRAM["steps"][0],
                                     {"sync": "device"},
                                     PROGRAM["steps"][1]]))]
        batch = run_batch(specs, max_workers=2,
                          cache_dir=str(tmp_path / "cache"))
        results = {r.job_id: r for r in batch.jobs}
        assert results["s/racy"].has_issues
        assert not results["s/safe"].has_issues
        racy_stream = results["s/racy"].verdict["stream"]
        assert racy_stream["inter_launch_races"]

    def test_daemon_runs_stream_suite_and_replays_cache(self, tmp_path):
        daemon = Daemon(db_path=str(tmp_path / "q.sqlite3"),
                        cache_dir=str(tmp_path / "cache"),
                        workers=2, lease_ttl=30.0, poll_interval=0.02)
        daemon.start(serve_http=False)
        try:
            job_id = daemon.submit_spec(_spec())["job_id"]
            assert daemon.wait_idle(timeout=300.0)
            job = daemon.store.get(job_id)
            assert job.state == JobState.DONE, job.error
            verdict = job.result["verdict"]
            assert verdict["stream"]["inter_launch_races"]
            # identical re-submission hits the whole-job verdict cache
            again = daemon.submit_spec(_spec(job_id="stream-dup"))
            assert again["deduped"] or again["job_id"] != job_id
        finally:
            daemon.stop()
