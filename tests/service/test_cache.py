"""Result cache: content addressing, hits, misses, persistence."""
import json

from repro.service import (
    JobSpec, JobStatus, ResultCache, Scheduler, cache_key,
)

CLEAN = "__global__ void k(float *a) { a[threadIdx.x] = 1.0f; }"
CLEAN_RESTYLED = """
// same program, different spelling
__global__ void k(float *a) {
  a[threadIdx.x] = 1.0f;
}
"""
RACY = """
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}
"""


def _spec(source=CLEAN, **kw):
    kw.setdefault("job_id", "j")
    return JobSpec(source=source, **kw)


class TestCacheKey:
    def test_identical_jobs_share_a_key(self):
        assert cache_key(_spec()) == cache_key(_spec(job_id="other"))

    def test_semantics_preserving_rewrite_shares_a_key(self):
        # the key hashes canonical IR, not source text
        assert cache_key(_spec(CLEAN)) == cache_key(_spec(CLEAN_RESTYLED))

    def test_changed_source_changes_the_key(self):
        assert cache_key(_spec(CLEAN)) != cache_key(_spec(RACY))

    def test_changed_config_changes_the_key(self):
        assert cache_key(_spec(block_dim=(64, 1, 1))) != \
            cache_key(_spec(block_dim=(128, 1, 1)))
        assert cache_key(_spec(engine="sesa")) != \
            cache_key(_spec(engine="gkleep"))
        assert cache_key(_spec(check_oob=True)) != \
            cache_key(_spec(check_oob=False))

    def test_uncompilable_source_still_gets_a_stable_key(self):
        bad = "__global__ void k( this does not parse"
        assert cache_key(_spec(bad)) == cache_key(_spec(bad))
        assert cache_key(_spec(bad)) != cache_key(_spec(CLEAN))


class TestCacheStore:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache.key_for(_spec())
        assert cache.get(key) is None
        payload = {"status": "done", "verdict": {"races": []}}
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache.key_for(_spec())
        cache.put(key, {"ok": True})
        path = cache._path(key)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None


class TestSchedulerIntegration:
    def test_second_run_hits_with_identical_verdict(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        specs = [_spec(RACY, job_id="racy", check_oob=False),
                 _spec(CLEAN, job_id="clean")]
        first = Scheduler(max_workers=2, cache=cache).run(specs)
        assert [r.status for r in first.jobs] == ["done", "done"]
        assert first.cache_hits == 0 and first.cache_misses == 2

        second = Scheduler(max_workers=2, cache=cache).run(specs)
        assert [r.status for r in second.jobs] == \
            [JobStatus.CACHED, JobStatus.CACHED]
        assert second.cache_hits == 2 and second.cache_misses == 0
        for a, b in zip(first.jobs, second.jobs):
            # byte-identical verdicts
            assert json.dumps(a.verdict, sort_keys=True) == \
                json.dumps(b.verdict, sort_keys=True)
            assert b.cached and b.attempts == 0

    def test_changed_config_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        Scheduler(cache=cache).run([_spec(block_dim=(32, 1, 1))])
        batch = Scheduler(cache=cache).run([_spec(block_dim=(16, 1, 1))])
        assert batch.jobs[0].status == JobStatus.DONE  # not CACHED
        assert batch.cache_misses == 1

    def test_errors_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        bad = _spec("__global__ void k( nope", job_id="bad")
        first = Scheduler(cache=cache).run([bad])
        assert first.jobs[0].status == JobStatus.ERROR
        second = Scheduler(cache=cache).run([bad])
        assert second.jobs[0].status == JobStatus.ERROR
        assert second.cache_hits == 0
