"""Result cache: content addressing, hits, misses, persistence,
and the operational maintenance surface (`repro cache stats/prune`)."""
import json
import os
import time

from repro.cli import main
from repro.service import (
    JobSpec, JobStatus, ResultCache, Scheduler, cache_key,
    trace_hit_rate,
)

CLEAN = "__global__ void k(float *a) { a[threadIdx.x] = 1.0f; }"
CLEAN_RESTYLED = """
// same program, different spelling
__global__ void k(float *a) {
  a[threadIdx.x] = 1.0f;
}
"""
RACY = """
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}
"""


def _spec(source=CLEAN, **kw):
    kw.setdefault("job_id", "j")
    return JobSpec(source=source, **kw)


class TestCacheKey:
    def test_identical_jobs_share_a_key(self):
        assert cache_key(_spec()) == cache_key(_spec(job_id="other"))

    def test_semantics_preserving_rewrite_shares_a_key(self):
        # the key hashes canonical IR, not source text
        assert cache_key(_spec(CLEAN)) == cache_key(_spec(CLEAN_RESTYLED))

    def test_changed_source_changes_the_key(self):
        assert cache_key(_spec(CLEAN)) != cache_key(_spec(RACY))

    def test_changed_config_changes_the_key(self):
        assert cache_key(_spec(block_dim=(64, 1, 1))) != \
            cache_key(_spec(block_dim=(128, 1, 1)))
        assert cache_key(_spec(engine="sesa")) != \
            cache_key(_spec(engine="gkleep"))
        assert cache_key(_spec(check_oob=True)) != \
            cache_key(_spec(check_oob=False))

    def test_uncompilable_source_still_gets_a_stable_key(self):
        bad = "__global__ void k( this does not parse"
        assert cache_key(_spec(bad)) == cache_key(_spec(bad))
        assert cache_key(_spec(bad)) != cache_key(_spec(CLEAN))


class TestCacheStore:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache.key_for(_spec())
        assert cache.get(key) is None
        payload = {"status": "done", "verdict": {"races": []}}
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache.key_for(_spec())
        cache.put(key, {"ok": True})
        path = cache._path(key)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None


class TestSchedulerIntegration:
    def test_second_run_hits_with_identical_verdict(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        specs = [_spec(RACY, job_id="racy", check_oob=False),
                 _spec(CLEAN, job_id="clean")]
        first = Scheduler(max_workers=2, cache=cache).run(specs)
        assert [r.status for r in first.jobs] == ["done", "done"]
        assert first.cache_hits == 0 and first.cache_misses == 2

        second = Scheduler(max_workers=2, cache=cache).run(specs)
        assert [r.status for r in second.jobs] == \
            [JobStatus.CACHED, JobStatus.CACHED]
        assert second.cache_hits == 2 and second.cache_misses == 0
        for a, b in zip(first.jobs, second.jobs):
            # byte-identical verdicts
            assert json.dumps(a.verdict, sort_keys=True) == \
                json.dumps(b.verdict, sort_keys=True)
            assert b.cached and b.attempts == 0

    def test_changed_config_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        Scheduler(cache=cache).run([_spec(block_dim=(32, 1, 1))])
        batch = Scheduler(cache=cache).run([_spec(block_dim=(16, 1, 1))])
        assert batch.jobs[0].status == JobStatus.DONE  # not CACHED
        assert batch.cache_misses == 1

    def test_errors_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        bad = _spec("__global__ void k( nope", job_id="bad")
        first = Scheduler(cache=cache).run([bad])
        assert first.jobs[0].status == JobStatus.ERROR
        second = Scheduler(cache=cache).run([bad])
        assert second.jobs[0].status == JobStatus.ERROR
        assert second.cache_hits == 0


def _fill(cache, n, age_seconds=0.0, start=0):
    """Write *n* entries, optionally backdating their mtimes."""
    keys = []
    for i in range(start, start + n):
        key = f"{i:02d}" + "ab" * 31    # distinct two-char fanouts
        cache.put(key, {"i": i, "pad": "x" * 64})
        if age_seconds:
            then = time.time() - age_seconds
            os.utime(cache._path(key), (then, then))
        keys.append(key)
    return keys


class TestMaintenance:
    def test_disk_stats_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.disk_stats()["entries"] == 0
        _fill(cache, 3)
        stats = cache.disk_stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["oldest_age_seconds"] >= stats["newest_age_seconds"]

    def test_prune_by_age_keeps_fresh_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        old = _fill(cache, 2, age_seconds=3600.0)
        fresh = _fill(cache, 1, start=2)
        outcome = cache.prune(max_age_seconds=60.0)
        assert outcome["removed"] == 2 and outcome["kept"] == 1
        assert all(cache.get(k) is None for k in old)
        assert cache.get(fresh[0]) is not None

    def test_prune_by_bytes_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        oldest = _fill(cache, 1, age_seconds=3600.0)[0]
        newest = _fill(cache, 1, start=1)[0]
        entry_size = os.path.getsize(cache._path(newest))
        outcome = cache.prune(max_bytes=entry_size)
        assert outcome["removed"] == 1
        assert cache.get(oldest) is None
        assert cache.get(newest) is not None

    def test_trace_hit_rate(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        events = [{"event": "cache_hit"}] * 3 + \
                 [{"event": "cache_miss"}] + \
                 [{"event": "job_finished"}]
        trace.write_text("\n".join(json.dumps(e) for e in events)
                         + "\n{torn line")
        rate = trace_hit_rate(str(trace))
        assert rate["hits"] == 3 and rate["misses"] == 1
        assert rate["hit_rate"] == 0.75
        assert trace_hit_rate(str(tmp_path / "missing.jsonl")) is None


class TestCacheCli:
    def test_stats_and_prune(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir)
        _fill(cache, 2, age_seconds=3600.0)
        (tmp_path / "cache" / "trace.jsonl").write_text(
            json.dumps({"event": "cache_hit"}) + "\n")

        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert stats["telemetry"]["hits"] == 1

        assert main(["cache", "prune", "--cache-dir", cache_dir,
                     "--max-age", "60", "--json"]) == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["removed"] == 2 and outcome["kept"] == 0

    def test_prune_without_bounds_exits_2(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        ResultCache(cache_dir)
        assert main(["cache", "prune", "--cache-dir", cache_dir]) == 2
        assert "needs --max-age" in capsys.readouterr().err

    def test_missing_cache_dir_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["cache", "stats", "--cache-dir", missing]) == 2
        assert "no cache" in capsys.readouterr().err
