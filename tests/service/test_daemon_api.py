"""HTTP/JSON API, client, CLI clients, and batch-parity guarantees.

One module-scoped daemon (stub runner, port 0) backs the protocol
tests; the parity test runs the real engine over ``examples/kernels``
through both the daemon and ``run_batch`` and requires byte-identical
verdicts — the acceptance bar for serving batch traffic from the
persistent service.
"""
import json
import os
import time

import pytest

from repro.cli import main
from repro.service import JobState, JobStatus, run_batch
from repro.service.corpus import directory_jobs
from repro.service.daemon import Daemon, DaemonClient, DaemonError

from .test_daemon import _spec, ok_runner  # noqa: F401 (shared stubs)

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples", "kernels")


@pytest.fixture()
def daemon(tmp_path):
    d = Daemon(db_path=str(tmp_path / "q.sqlite3"),
               cache_dir=str(tmp_path / "cache"),
               workers=2, lease_ttl=5.0, poll_interval=0.02,
               sample_interval=30.0, runner=ok_runner, port=0)
    d.start(serve_http=True)
    yield d
    d.stop()


@pytest.fixture()
def client(daemon):
    return DaemonClient(daemon.url)


class TestHttpApi:
    def test_healthz(self, client):
        assert client.healthz()

    def test_healthz_carries_vitals(self, daemon, client):
        """A probe can tell a healthy daemon from a wedged one: the
        payload carries version, uptime, queue depth, and live worker
        counts — not just liveness."""
        import urllib.request

        from repro import __version__
        raw = urllib.request.urlopen(daemon.url + "/healthz",
                                     timeout=10.0)
        payload = json.loads(raw.read())
        assert payload["ok"] is True
        assert payload["version"] == __version__
        assert payload["uptime_seconds"] >= 0
        assert payload["queue_depth"] >= 0
        assert payload["workers"]["total"] == 2
        assert payload["workers"]["alive"] == 2
        # the client helper stays a plain boolean probe
        assert client.healthz() is True

    def test_submit_status_result_roundtrip(self, client):
        job = client.submit_source("__global__ void k() {}",
                                   label="api-test")
        assert job["job_id"].startswith("job-")
        assert job["label"] == "api-test"
        results = client.wait([job["job_id"]], timeout=30.0)
        payload = results[job["job_id"]]
        assert payload["state"] == JobState.DONE
        assert payload["terminal"] is True
        assert payload["result"]["status"] == JobStatus.DONE
        # status endpoint agrees and never carries the result body
        status = client.status(job["job_id"])
        assert status["state"] == JobState.DONE
        assert "result" not in status

    def test_result_is_202_until_terminal(self, daemon, client):
        # submit directly against a daemon whose workers are stopped,
        # so the job stays queued
        for worker in daemon.workers:
            worker._stop.set()
        time.sleep(0.1)
        job = client.submit_source("__global__ void k2() {}",
                                   label="pending")
        payload = client.result(job["job_id"])
        assert payload["__code__"] == 202
        assert payload["terminal"] is False

    def test_unknown_job_is_404(self, client):
        with pytest.raises(DaemonError) as err:
            client.status("job-doesnotexist")
        assert err.value.code == 404
        with pytest.raises(DaemonError) as err:
            client.result("job-doesnotexist")
        assert err.value.code == 404

    def test_malformed_submit_is_400(self, client):
        for body in ({}, {"suite": "no-such-suite"},
                     {"source": ""},
                     {"source": "x", "engine": "no-such-engine"}):
            with pytest.raises(DaemonError) as err:
                client.submit(body)
            assert err.value.code == 400, body

    def test_duplicate_submit_dedups_over_http(self, client):
        first = client.submit_source("__global__ void dup() {}",
                                     label="dup-a")
        second = client.submit_source("__global__ void dup() {}",
                                      label="dup-b")
        assert not first["deduped"]
        assert second["deduped"]
        assert second["job_id"] == first["job_id"]

    def test_suite_submit_expands_server_side(self, client):
        jobs = client.submit_suite("paper")
        assert len(jobs) >= 4
        labels = {j["label"] for j in jobs}
        assert any("reduction" in label for label in labels)

    def test_queue_reports_workers_and_leases(self, client):
        stats = client.queue()
        assert {"depth", "leased", "by_state", "workers",
                "reaper"} <= set(stats)
        assert all(w["alive"] for w in stats["workers"].values())

    def test_stream_tails_ndjson_telemetry(self, client):
        job = client.submit_source("__global__ void s() {}",
                                   label="streamed")
        client.wait([job["job_id"]], timeout=30.0)
        events = list(client.stream(since=0))
        kinds = [e["event"] for e in events]
        assert "job_submitted" in kinds or "job_deduped" in kinds
        assert "lease_claimed" in kinds
        # indices are contiguous so clients can resume with ?since=
        assert [e["i"] for e in events] == list(range(len(events)))
        tail = list(client.stream(since=len(events) - 2))
        assert [e["i"] for e in tail][:2] == [len(events) - 2,
                                              len(events) - 1]


class TestCliClients:
    def test_submit_status_result_queue_cli(self, daemon, tmp_path,
                                            capsys):
        kernel = tmp_path / "k.cu"
        kernel.write_text("__global__ void cli(int *a) "
                          "{ a[threadIdx.x] = 1; }")
        code = main(["submit", str(kernel), "--url", daemon.url,
                     "--json"])
        assert code == 0
        submitted = json.loads(capsys.readouterr().out)["jobs"]
        job_id = submitted[0]["job_id"]

        assert main(["submit", str(kernel), "--url", daemon.url,
                     "--wait", "--json"]) == 0
        waited = json.loads(capsys.readouterr().out)["jobs"]
        assert waited[0]["job_id"] == job_id      # deduped, same job
        assert waited[0]["state"] == JobState.DONE

        assert main(["status", job_id, "--url", daemon.url,
                     "--json"]) == 0
        status = json.loads(capsys.readouterr().out)["jobs"][0]
        assert status["state"] == JobState.DONE

        assert main(["result", job_id, "--url", daemon.url,
                     "--json"]) == 0
        result = json.loads(capsys.readouterr().out)["jobs"][0]
        assert result["result"]["status"] == JobStatus.DONE

        assert main(["queue", "--url", daemon.url, "--json"]) == 0
        queue = json.loads(capsys.readouterr().out)
        assert queue["by_state"].get("done", 0) >= 1

    def test_client_commands_exit_2_without_daemon(self, capsys):
        code = main(["queue", "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "no daemon" in capsys.readouterr().err

    def test_unknown_job_exits_2(self, daemon, capsys):
        code = main(["status", "job-nope", "--url", daemon.url])
        assert code == 2
        assert "unknown job" in capsys.readouterr().err


def _strip_timing(value):
    """Drop wall-clock fields (``*seconds``) and warm-start accelerator
    counters (the daemon shares a solver-artifact cache; the plain
    batch run does not) so verdicts compare on semantics: races, OOBs,
    witnesses, counts — not solver timing or cache luck."""
    if isinstance(value, dict):
        return {k: _strip_timing(v) for k, v in value.items()
                if not k.endswith("seconds")
                and not k.startswith("warm_")}
    if isinstance(value, list):
        return [_strip_timing(v) for v in value]
    return value


class TestBatchParity:
    """Acceptance: daemon verdicts == batch verdicts, byte for byte
    (modulo wall-clock timing fields)."""

    def test_daemon_matches_batch_on_examples(self, tmp_path):
        specs = directory_jobs(EXAMPLES)
        assert len(specs) >= 3
        batch = run_batch(specs, max_workers=2)
        batch_verdicts = {r.job_id: r.verdict for r in batch.jobs}
        batch_tiers = {r.job_id: (r.check_stats or {}).get("tier")
                       for r in batch.jobs}

        daemon = Daemon(db_path=str(tmp_path / "q.sqlite3"),
                        cache_dir=str(tmp_path / "cache"),
                        workers=2, lease_ttl=30.0, poll_interval=0.02)
        daemon.start(serve_http=False)
        try:
            submitted = {spec.job_id:
                         daemon.submit_spec(spec)["job_id"]
                         for spec in directory_jobs(EXAMPLES)}
            assert daemon.wait_idle(timeout=300.0)
            for label, job_id in submitted.items():
                job = daemon.store.get(job_id)
                assert job.state == JobState.DONE, (label, job.error)
                assert json.dumps(_strip_timing(job.result["verdict"]),
                                  sort_keys=True) == \
                    json.dumps(_strip_timing(batch_verdicts[label]),
                               sort_keys=True), \
                    f"daemon and batch disagree on {label}"
                # the deciding tier is deterministic: daemon and batch
                # must agree on which tier produced each verdict
                cs = job.result.get("check_stats") or {}
                assert cs.get("tier") == batch_tiers[label], \
                    f"daemon and batch resolved {label} on different tiers"
            # per-worker tier counters cover every completed job
            counted = {}
            for worker in daemon.workers:
                for tier, n in worker.stats()["tiers"].items():
                    counted[tier] = counted.get(tier, 0) + n
            expected = {}
            for tier in batch_tiers.values():
                if tier is not None:
                    expected[tier] = expected.get(tier, 0) + 1
            assert counted == expected
        finally:
            daemon.stop()


class TestTierRoundTrip:
    """Tier bookkeeping across the service surface: worker counters on
    the HTTP queue endpoint, and tier provenance on cache fast-path
    hits."""

    STATIC_SOURCE = ("__global__ void tiered(int *a) "
                     "{ a[threadIdx.x] = threadIdx.x; }")

    def test_tier_counters_roundtrip_over_http(self, tmp_path):
        daemon = Daemon(db_path=str(tmp_path / "q.sqlite3"),
                        cache_dir=str(tmp_path / "cache"),
                        workers=1, lease_ttl=30.0, poll_interval=0.02,
                        sample_interval=30.0, port=0)
        daemon.start(serve_http=True)
        try:
            client = DaemonClient(daemon.url)
            job = client.submit_source(self.STATIC_SOURCE,
                                       label="tier-http")
            payload = client.wait([job["job_id"]],
                                  timeout=60.0)[job["job_id"]]
            assert payload["result"]["check_stats"]["tier"] == "static"
            assert payload["result"]["check_stats"]["queries"] == 0
            # the queue endpoint serves each worker's per-tier counts
            stats = client.queue()
            tiers = {}
            for worker in stats["workers"].values():
                for tier, n in worker["tiers"].items():
                    tiers[tier] = tiers.get(tier, 0) + n
            assert tiers.get("static", 0) >= 1
        finally:
            daemon.stop()

    def test_cache_fast_path_reports_originating_tier(self, tmp_path):
        from repro.service import JobSpec
        cache_dir = str(tmp_path / "cache")

        def run_once(db_name):
            daemon = Daemon(db_path=str(tmp_path / db_name),
                            cache_dir=cache_dir, workers=1,
                            lease_ttl=30.0, poll_interval=0.02)
            daemon.start(serve_http=False)
            try:
                spec = JobSpec(job_id="tier-cache",
                               source=self.STATIC_SOURCE)
                job_id = daemon.submit_spec(spec)["job_id"]
                assert daemon.wait_idle(timeout=60.0)
                return daemon.store.get(job_id).result
            finally:
                daemon.stop()

        first = run_once("q1.sqlite3")
        assert first["status"] == JobStatus.DONE
        assert first["check_stats"]["tier"] == "static"

        # fresh queue, shared verdict cache: the worker's fast path
        # serves the cached payload, and the stats still say which
        # tier originally produced the verdict
        second = run_once("q2.sqlite3")
        assert second["status"] == JobStatus.CACHED
        assert second["cached"] is True
        assert second["check_stats"]["tier"] == "static"
        assert second["check_stats"]["queries"] == 0


class TestBatchValidationExit2:
    def test_bad_flag_value_exits_2(self, tmp_path, capsys):
        kernel = tmp_path / "k.cu"
        kernel.write_text("__global__ void ok(int *a) "
                          "{ a[threadIdx.x] = 1; }")
        with pytest.raises(SystemExit) as exc:
            main(["batch", str(kernel), "--engine", "sesa",
                  "--block", "0"])
        assert exc.value.code == 2
        assert "bad dim3" in capsys.readouterr().err

    def test_empty_source_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.cu"
        empty.write_text("   \n")
        code = main(["batch", str(empty), "--no-cache"])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid job spec" in captured.err
        assert "source is empty" in captured.err
        assert "Traceback" not in captured.err
