"""`repro batch` CLI smoke tests over the examples/ corpus."""
import json
import os
import subprocess
import sys

import pytest

from repro.cli import main

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples", "kernels")


@pytest.fixture
def examples_dir():
    assert os.path.isdir(EXAMPLES), "examples/kernels/ must exist"
    return EXAMPLES


class TestBatchCli:
    def test_smoke_over_examples(self, examples_dir, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code = main(["batch", examples_dir, "--jobs", "2",
                     "--cache-dir", cache, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        jobs = {j["job_id"]: j for j in payload["jobs"]}
        assert len(jobs) == 3
        assert all(j["status"] == "done" for j in jobs.values())
        racy = jobs["neighbor_race.cu"]
        assert any(r["kind"] == "RW" for r in racy["verdict"]["races"])
        assert jobs["saxpy.cu"]["verdict"]["races"] == []
        assert payload["summary"]["cache_misses"] == 3

        # second run: all verdicts served from the cache, byte-identical
        code = main(["batch", examples_dir, "--jobs", "2",
                     "--cache-dir", cache, "--json"])
        assert code == 0
        payload2 = json.loads(capsys.readouterr().out)
        jobs2 = {j["job_id"]: j for j in payload2["jobs"]}
        assert all(j["status"] == "cached" for j in jobs2.values())
        assert payload2["summary"]["cache_hits"] == 3
        for job_id, job in jobs.items():
            assert json.dumps(job["verdict"], sort_keys=True) == \
                json.dumps(jobs2[job_id]["verdict"], sort_keys=True)

        # telemetry invariant: one started/finished pair per job
        with open(payload2["trace"]) as fh:
            events = [json.loads(line) for line in fh]
        started = [e["job_id"] for e in events
                   if e["event"] == "job_started"]
        finished = [e["job_id"] for e in events
                    if e["event"] == "job_finished"]
        assert sorted(started) == sorted(jobs) == sorted(finished)

    def test_no_cache_flag(self, examples_dir, tmp_path, capsys):
        code = main(["batch", examples_dir, "--jobs", "2", "--no-cache",
                     "--trace", str(tmp_path / "t.jsonl"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(j["status"] == "done" for j in payload["jobs"])
        assert payload["summary"]["cache_hits"] == 0

    def test_single_file_and_limit(self, examples_dir, tmp_path, capsys):
        target = os.path.join(examples_dir, "saxpy.cu")
        code = main(["batch", target, "--jobs", "1", "--no-cache",
                     "--trace", str(tmp_path / "t.jsonl"),
                     "--limit", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["jobs"]) == 1

    def test_builtin_suite_target(self, tmp_path, capsys):
        code = main(["batch", "builtin:paper", "--jobs", "2",
                     "--limit", "2", "--no-cache",
                     "--trace", str(tmp_path / "t.jsonl"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [j["status"] for j in payload["jobs"]] == ["done", "done"]

    def test_limit_zero_runs_no_jobs(self, tmp_path, capsys):
        # regression: used to crash with "max() arg is an empty
        # sequence" while rendering an empty batch
        code = main(["batch", "builtin:paper", "--limit", "0",
                     "--no-cache",
                     "--trace", str(tmp_path / "t.jsonl"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == []

    def test_limit_zero_human_output(self, tmp_path, capsys):
        code = main(["batch", "builtin:paper", "--limit", "0",
                     "--no-cache",
                     "--trace", str(tmp_path / "t.jsonl")])
        assert code == 0
        assert "jobs: 0" in capsys.readouterr().out

    def test_negative_limit_exits_2(self, capsys):
        # regression: a negative --limit used to silently slice jobs
        # from the *end* of the corpus instead of being rejected
        assert main(["batch", "builtin:paper", "--limit", "-1"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_bad_target_exits_2(self, capsys):
        assert main(["batch", "/no/such/dir"]) == 2
        assert "corpus target" in capsys.readouterr().err

    def test_unknown_suite_exits_2(self, capsys):
        assert main(["batch", "builtin:nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err


class TestCacheKeyCrossProcess:
    def test_keys_stable_across_interpreter_runs(self, examples_dir):
        """The content-addressed key must not depend on interpreter
        state (hash randomisation, object addresses) — regression test
        for nondeterministic phi numbering in mem2reg."""
        # matrixMul has several loop counters → several promoted phis,
        # the shape that exposed the ordering bug
        prog = (
            "from repro.kernels import ALL_KERNELS;"
            "from repro.service import cache_key, spec_from_kernel;"
            "print(cache_key(spec_from_kernel(ALL_KERNELS['matrixMul'])))"
        )
        keys = set()
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), "..", "..",
                              "src")] +
                env.get("PYTHONPATH", "").split(os.pathsep))
            out = subprocess.run(
                [sys.executable, "-c", prog], env=env, check=True,
                capture_output=True, text=True)
            keys.add(out.stdout.strip())
        assert len(keys) == 1
