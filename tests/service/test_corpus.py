"""Corpus loader: built-in suites and user directories."""
import pytest

from repro.kernels import ALL_KERNELS
from repro.service import SUITES, builtin_jobs, load_corpus
from repro.service.runner import execute_job


class TestBuiltin:
    def test_full_corpus_covers_every_kernel(self):
        specs = builtin_jobs()
        assert len(specs) == len(ALL_KERNELS)
        names = {s.meta["kernel"] for s in specs}
        assert names == set(ALL_KERNELS)

    def test_single_suite(self):
        specs = builtin_jobs("sdk")
        assert len(specs) == len(SUITES["sdk"])
        assert all(s.job_id.startswith("builtin/sdk/") for s in specs)

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="unknown suite"):
            builtin_jobs("nope")

    def test_table3_specs_carry_the_concrete_graph(self):
        specs = builtin_jobs("lonestar")
        assert all(s.needs_concrete_graph for s in specs)
        # and the graph materialises into the launch config
        config = specs[0].launch_config()
        assert config.array_values  # CSR arrays attached

    def test_specs_roundtrip_through_dicts(self):
        for spec in builtin_jobs("paper"):
            from repro.service import JobSpec
            clone = JobSpec.from_dict(spec.to_dict())
            assert clone.config_fingerprint() == spec.config_fingerprint()
            assert clone.source == spec.source


class TestDirectories:
    def test_directory_enumeration_sorted_recursive(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "b.cu").write_text("__global__ void b() {}")
        (tmp_path / "a.cu").write_text("__global__ void a() {}")
        (tmp_path / "sub" / "c.cu").write_text("__global__ void c() {}")
        (tmp_path / "notes.txt").write_text("not a kernel")
        specs = load_corpus([str(tmp_path)])
        assert [s.job_id for s in specs] == ["a.cu", "b.cu", "sub/c.cu"]

    def test_single_file_target(self, tmp_path):
        f = tmp_path / "k.cu"
        f.write_text("__global__ void k(float *a) "
                     "{ a[threadIdx.x] = 1.0f; }")
        specs = load_corpus([str(f)], block_dim=(32, 1, 1))
        assert len(specs) == 1
        assert specs[0].block_dim == (32, 1, 1)

    def test_missing_target_raises(self):
        with pytest.raises(FileNotFoundError):
            load_corpus(["/no/such/corpus"])

    def test_default_is_builtin(self):
        assert len(load_corpus([])) == len(ALL_KERNELS)


class TestRunnerOnBuiltins:
    def test_execute_job_produces_expected_verdict(self):
        # the §II race example must reproduce its paper verdict through
        # the full job-dict round trip
        spec = next(s for s in builtin_jobs("paper")
                    if s.meta["kernel"] == "race_example")
        payload = execute_job(spec.to_dict())
        assert payload["status"] == "done"
        kinds = {r["kind"] for r in payload["verdict"]["races"]}
        assert "RW" in kinds
        assert payload["inputs"]["symbolic"] == 0

    def test_execute_job_never_raises(self):
        payload = execute_job({"job_id": "bad", "source": "((("})
        assert payload["status"] == "error"
        assert payload["error"]

    def test_unknown_engine_is_an_error_payload(self):
        payload = execute_job({"job_id": "x", "source": "",
                               "engine": "z4"})
        assert payload["status"] == "error"
        assert "unknown engine" in payload["error"]
