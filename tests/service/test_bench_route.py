"""benchmarks/common.py can route table runs through the scheduler."""
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                         "benchmarks")


@pytest.fixture
def common():
    sys.path.insert(0, BENCH_DIR)
    try:
        import common as mod
        yield mod
    finally:
        sys.path.remove(BENCH_DIR)


def test_run_suite_parallel_matches_sequential_shape(common):
    from repro.kernels import ALL_KERNELS
    kernels = [ALL_KERNELS["generic"], ALL_KERNELS["race_example"]]

    parallel = common.run_suite(kernels, engine="sesa", jobs=2)
    sequential = common.run_suite(kernels, engine="sesa", jobs=1)

    assert set(parallel) == set(sequential) == \
        {"generic", "race_example"}
    for name in parallel:
        p, s = parallel[name], sequential[name]
        assert p.engine == s.engine == "SESA"
        assert p.threads == s.threads
        assert p.flows == s.flows
        assert sorted(p.issues) == sorted(s.issues)
        assert p.symbolic_inputs == s.symbolic_inputs
        assert p.total_inputs == s.total_inputs
        assert p.resolvable == s.resolvable


def test_run_suite_gkleep_budgets_applied(common):
    from repro.kernels import ALL_KERNELS
    out = common.run_suite([ALL_KERNELS["generic"]], engine="gkleep",
                           jobs=2)
    result = out["generic"]
    assert result.engine == "GKLEEp"
    # all inputs symbolic under the comparator's default policy
    assert result.symbolic_inputs == result.total_inputs > 0
