"""Swarm service-layer failure semantics.

The merge rule under fire: a shard that dies (SIGKILL mid-run), times
out, or never reports must drag the parent verdict to UNKNOWN — never
SAFE — with the dead shard identified; portfolio cancellation must
leave no processes and no leased daemon rows behind. Runners are
module-level functions so the forked scheduler/worker children inherit
them directly.
"""
import json
import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.service import (
    JobSpec, SwarmPlanError, plan_shard_specs, run_portfolio,
    run_swarm_batch, run_swarm_check, spec_from_kernel,
)
from repro.service.corpus import SUITES
from repro.service.runner import execute_job
from repro.service.swarm import merged_job_result, outcomes_from_results
from repro.sym.swarm import ShardOutcome


def _kernel(suite, name):
    for k in SUITES[suite]:
        if k.name == name:
            return k
    raise KeyError(f"{suite}/{name}")


def _safe_spec():
    # a clean kernel: all shards SAFE unless something kills one, so
    # any UNKNOWN in these tests is attributable to the failure
    return spec_from_kernel(_kernel("paper", "reduction"), suite="paper")


def kill_shard_two_runner(spec_dict):
    """SIGKILL the worker child that drew shard index 1."""
    shard = spec_dict.get("shard") or {}
    if shard.get("index") == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_job(spec_dict)


def sleepy_budget_runner(spec_dict):
    """A runner whose marker variant hangs (far beyond any test
    budget) so the portfolio must cancel it."""
    if spec_dict.get("solver_conflict_budget") == 123_456:
        time.sleep(120)
    return execute_job(spec_dict)


# ---------------------------------------------------------------------
# SIGKILLed shard → parent UNKNOWN, never SAFE
# ---------------------------------------------------------------------

def test_sigkilled_shard_merges_unknown_scheduler(monkeypatch):
    monkeypatch.setattr("repro.service.swarm.execute_job",
                        kill_shard_two_runner)
    batch = run_swarm_batch([_safe_spec()], 4, max_workers=2,
                            max_retries=0)
    parent = batch.jobs[0]
    assert parent.status == "done"   # a merged verdict exists...
    verdict = parent.verdict
    swarm = verdict["swarm"]
    assert swarm["verdict"] == "unknown"        # ...but is not SAFE
    assert verdict["timed_out"]
    assert swarm["unresolved"] == ["s2of4"]     # dead shard identified
    assert any("s2of4" in w for w in verdict["warnings"])
    assert not verdict["races"]


def test_sigkilled_shard_merges_unknown_daemon(tmp_path):
    from repro.service.daemon import Daemon
    daemon = Daemon(db_path=str(tmp_path / "q.sqlite3"),
                    workers=1, poll_interval=0.05, max_attempts=1,
                    runner=kill_shard_two_runner,
                    timeout_seconds=120).start(serve_http=False)
    try:
        spec = _safe_spec()
        body = spec.to_dict()
        body["swarm"] = 4
        job = daemon.submit_request(body)[0]
        assert len(job["shards"]) >= 2
        assert daemon.wait_idle(timeout=300)
        parent = daemon.store.get(job["job_id"])
        assert parent.state == "done"
        swarm = parent.result["verdict"]["swarm"]
        assert swarm["verdict"] == "unknown"
        assert swarm["unresolved"] == ["s2of4"]
        dead = daemon.store.get(job["shards"][1])
        assert dead.state == "dead"
        # the lease protocol cleaned up after the killed child
        assert not daemon.store.counts().get("leased")
    finally:
        daemon.stop()


def test_all_shards_failed_is_error_not_safe():
    spec = _safe_spec()
    shard_specs, selectors, _info = plan_shard_specs(spec, 2)
    outcomes = outcomes_from_results(selectors, [None] * len(selectors))
    result = merged_job_result(spec, outcomes)
    assert result.status == "error"
    assert "failed" in result.error


def test_partial_verdicts_never_silently_safe():
    spec = _safe_spec()
    _shard_specs, selectors, _info = plan_shard_specs(spec, 2)
    safe_verdict = {"races": [], "oobs": [], "assertion_failures": [],
                    "warnings": [], "timed_out": False,
                    "check_stats": None, "elapsed_seconds": 0.0}
    outcomes = [
        ShardOutcome(shard=selectors[0], status="done",
                     verdict=dict(safe_verdict)),
        ShardOutcome(shard=selectors[1], status="timeout",
                     error="hard timeout after 1s"),
    ]
    result = merged_job_result(spec, outcomes)
    assert result.status == "done"
    assert result.verdict["swarm"]["verdict"] == "unknown"
    assert result.verdict["timed_out"]


# ---------------------------------------------------------------------
# portfolio cancellation
# ---------------------------------------------------------------------

def test_portfolio_cancels_losers_without_leaks():
    spec = spec_from_kernel(_kernel("paper", "race_example"),
                            suite="paper")
    variants = (("sleepy", {"solver_conflict_budget": 123_456}),
                ("fast", {}))
    start = time.monotonic()
    payload = run_portfolio(spec.to_dict(), variants=variants,
                            runner=sleepy_budget_runner)
    elapsed = time.monotonic() - start
    assert payload["status"] == "done"
    assert payload["portfolio"]["winner"] == "fast"
    # the sleepy variant (120 s) was cancelled, not awaited
    assert elapsed < 60
    # no leaked variant processes: everything terminated and joined
    assert mp.active_children() == []


def test_portfolio_timeout_kills_everything():
    spec = spec_from_kernel(_kernel("paper", "race_example"),
                            suite="paper")
    variants = (("sleepy", {"solver_conflict_budget": 123_456}),)
    payload = run_portfolio(spec.to_dict(), variants=variants,
                            timeout_seconds=1.0,
                            runner=sleepy_budget_runner)
    assert payload["status"] == "error"
    assert mp.active_children() == []


# ---------------------------------------------------------------------
# planner guard rails
# ---------------------------------------------------------------------

def test_plan_rejects_unplannable_specs():
    spec = _safe_spec()
    gk = JobSpec.from_dict(dict(spec.to_dict(), engine="gkleep"))
    with pytest.raises(SwarmPlanError):
        plan_shard_specs(gk, 2)
    rep = JobSpec.from_dict(dict(spec.to_dict(), repair=True))
    with pytest.raises(SwarmPlanError):
        plan_shard_specs(rep, 2)
    shard_specs, _sels, _info = plan_shard_specs(spec, 2)
    with pytest.raises(SwarmPlanError):
        plan_shard_specs(shard_specs[0], 2)   # no re-sharding
    with pytest.raises(SwarmPlanError):
        plan_shard_specs(spec, 0)


def test_unplannable_spec_falls_back_to_monolithic():
    spec = _safe_spec()
    gk = JobSpec.from_dict(dict(spec.to_dict(), engine="gkleep"))
    result = run_swarm_check(gk, 4)
    assert result.status == "done"
    assert "swarm" not in (result.verdict or {})


# ---------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------

def test_check_swarm_cli(tmp_path, capsys):
    from repro.cli import main
    racy = tmp_path / "racy.cu"
    racy.write_text("""
__global__ void k(int *a, int *b) {
    __shared__ int s[64];
    int t = threadIdx.x;
    s[t] = a[t];
    b[t] = s[t + 1];
}
""")
    code = main(["check", str(racy), "--block", "64", "--swarm", "2",
                 "--json"])
    out = json.loads(capsys.readouterr().out)
    assert code == 1
    assert out["verdict"]["swarm"]["verdict"] == "racy"

    assert main(["check", str(racy), "--portfolio"]) == 2
    assert "--portfolio requires --swarm" in capsys.readouterr().err
    assert main(["check", str(racy), "--swarm", "0"]) == 2
