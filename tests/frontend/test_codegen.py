"""Codegen tests: AST → IR structure for the paper's kernel constructs."""
import pytest

from repro import ir
from repro.frontend import CodeGenError, compile_source


def compile_kernel(body: str, params: str = "int *a, unsigned n",
                   prelude: str = "") -> ir.Function:
    module = compile_source(
        f"{prelude}\n__global__ void k({params}) {{ {body} }}")
    return module.get_kernel("k")


def instrs_of(fn: ir.Function, cls) -> list:
    return [i for i in fn.instructions() if isinstance(i, cls)]


class TestBasics:
    def test_kernel_flag(self):
        fn = compile_kernel("")
        assert fn.is_kernel

    def test_args_spilled_to_allocas(self):
        fn = compile_kernel("")
        allocas = instrs_of(fn, ir.Alloca)
        assert len(allocas) == 2  # one per parameter

    def test_all_blocks_terminated(self):
        fn = compile_kernel("if (n > 0) { a[0] = 1; } a[1] = 2;")
        for block in fn.blocks:
            assert block.is_terminated()

    def test_void_return_added(self):
        fn = compile_kernel("a[0] = 1;")
        rets = instrs_of(fn, ir.Ret)
        assert len(rets) >= 1

    def test_verify_rejects_unterminated(self):
        fn = compile_kernel("")
        bad = fn.new_block("bad")
        with pytest.raises(ValueError):
            fn.verify()
        fn.blocks.remove(bad)


class TestMemoryLowering:
    def test_shared_array_becomes_global(self):
        module = compile_source("""
            __global__ void k(int *a) {
                __shared__ int tile[32];
                tile[threadIdx.x] = a[threadIdx.x];
            }
        """)
        assert "k.tile" in module.globals
        gv = module.globals["k.tile"]
        assert gv.space == ir.MemSpace.SHARED
        assert gv.size_bytes == 32 * 4

    def test_module_level_shared(self):
        module = compile_source("""
            __shared__ float sdata[128];
            __global__ void k(float *a) { sdata[0] = a[0]; }
        """)
        assert module.globals["sdata"].size_bytes == 128 * 4

    def test_index_becomes_gep_load(self):
        fn = compile_kernel("unsigned x = a[n];")
        geps = instrs_of(fn, ir.GEP)
        assert len(geps) == 1
        assert geps[0].elem_size() == 4

    def test_store_through_index(self):
        fn = compile_kernel("a[n] = 3;")
        stores = instrs_of(fn, ir.Store)
        # one spill per arg + the actual a[n] store
        gep_stores = [s for s in stores
                      if isinstance(s.pointer, ir.Register)
                      and isinstance(s.pointer.defining, ir.GEP)]
        assert len(gep_stores) == 1

    def test_pointer_arith_is_gep(self):
        fn = compile_kernel("int *p = a + 4; *p = 1;")
        geps = instrs_of(fn, ir.GEP)
        assert len(geps) == 1

    def test_local_array_stays_local(self):
        fn = compile_kernel("int tmp[4]; tmp[0] = 1;")
        allocas = instrs_of(fn, ir.Alloca)
        arr = [al for al in allocas if al.count == 4]
        assert len(arr) == 1


class TestBuiltins:
    def test_tid_expression(self):
        fn = compile_kernel("a[threadIdx.x] = 1;")
        geps = instrs_of(fn, ir.GEP)
        idx = geps[0].index
        assert isinstance(idx, ir.BuiltinValue)
        assert idx.name == "tid.x"

    def test_global_id_pattern(self):
        fn = compile_kernel("a[blockIdx.x * blockDim.x + threadIdx.x] = 1;")
        names = {v.name for i in fn.instructions()
                 for v in i.operands() if isinstance(v, ir.BuiltinValue)}
        assert {"bid.x", "bdim.x", "tid.x"} <= names

    def test_builtin_values_shared_across_uses(self):
        fn = compile_kernel("a[threadIdx.x] = threadIdx.x;")
        tids = [v for i in fn.instructions() for v in i.operands()
                if isinstance(v, ir.BuiltinValue) and v.name == "tid.x"]
        assert len(tids) >= 2
        assert all(t is tids[0] for t in tids)


class TestOperatorLowering:
    def test_unsigned_division_ops(self):
        fn = compile_kernel("unsigned x = n / 2; unsigned y = n % 2;")
        ops = [i.op for i in instrs_of(fn, ir.BinOp)]
        assert "udiv" in ops and "urem" in ops

    def test_signed_division_ops(self):
        fn = compile_kernel("int x = (int)n; int y = x / 2; int z = x % 2;")
        ops = [i.op for i in instrs_of(fn, ir.BinOp)]
        assert "sdiv" in ops and "srem" in ops

    def test_shift_signedness(self):
        fn = compile_kernel("unsigned x = n >> 1; int y = (int)n; y = y >> 1;")
        ops = [i.op for i in instrs_of(fn, ir.BinOp)]
        assert "lshr" in ops and "ashr" in ops

    def test_compare_signedness(self):
        fn = compile_kernel("int s = (int)n; if (s < 0) { a[0]=1; } if (n < 4u) { a[1]=1; }")
        preds = [i.pred for i in instrs_of(fn, ir.ICmp)]
        assert "slt" in preds and "ult" in preds

    def test_compound_assignment(self):
        fn = compile_kernel("n += 2; n <<= 1;")
        ops = [i.op for i in instrs_of(fn, ir.BinOp)]
        assert "add" in ops and "shl" in ops

    def test_increment_decrement(self):
        fn = compile_kernel("n++; --n;")
        ops = [i.op for i in instrs_of(fn, ir.BinOp)]
        assert ops.count("add") == 1 and ops.count("sub") == 1

    def test_ternary_becomes_select(self):
        fn = compile_kernel("unsigned x = n > 2 ? n : 2u;")
        assert len(instrs_of(fn, ir.Select)) == 1

    def test_min_becomes_select(self):
        fn = compile_kernel("unsigned x = min(n, 16u);")
        assert len(instrs_of(fn, ir.Select)) == 1

    def test_float_ops(self):
        fn = compile_kernel("float x = 1.5f; float y = x * 2.0f;",
                            params="float *a")
        ops = [i.op for i in instrs_of(fn, ir.BinOp)]
        assert "fmul" in ops


class TestControlFlow:
    def test_if_produces_br(self):
        fn = compile_kernel("if (n > 0) { a[0] = 1; }")
        assert len(instrs_of(fn, ir.Br)) == 1

    def test_for_loop_structure(self):
        fn = compile_kernel("for (unsigned s = 1; s < n; s *= 2) { a[s] = 1; }")
        brs = instrs_of(fn, ir.Br)
        assert len(brs) == 1
        assert brs[0].meta.get("loop_branch")

    def test_break_jumps_to_exit(self):
        fn = compile_kernel(
            "for (unsigned i = 0; i < n; i++) { if (i == 2) break; a[i]=1; }")
        fn.verify()

    def test_sync_lowered(self):
        fn = compile_kernel("__syncthreads();")
        assert len(instrs_of(fn, ir.Sync)) == 1

    def test_loop_cfg_has_back_edge(self):
        fn = compile_kernel("for (unsigned i = 0; i < n; i++) { a[i] = i; }")
        cfg = ir.CFG(fn)
        assert len(cfg.back_edges()) == 1
        loops = cfg.natural_loops()
        assert len(loops) == 1


class TestCalls:
    def test_atomic_add(self):
        fn = compile_kernel("atomicAdd(&a[0], 1);")
        atomics = instrs_of(fn, ir.AtomicRMW)
        assert len(atomics) == 1 and atomics[0].op == "add"

    def test_atomic_on_pointer_expr(self):
        fn = compile_kernel("atomicAdd(a + n, 1);")
        assert len(instrs_of(fn, ir.AtomicRMW)) == 1

    def test_atomic_cas(self):
        fn = compile_kernel("atomicCAS(&a[0], 0, 1);")
        assert len(instrs_of(fn, ir.AtomicCAS)) == 1

    def test_device_function_inlined(self):
        fn = compile_kernel(
            "a[0] = twice((int)n);",
            prelude="__device__ int twice(int x) { return x * 2; }")
        # the call disappears (inlined, paper §V pass 1); its body remains
        assert len(instrs_of(fn, ir.Call)) == 0
        assert any(b.op == "mul" for b in instrs_of(fn, ir.BinOp))

    def test_inline_early_return(self):
        fn = compile_kernel(
            "a[0] = clampz((int)n);",
            prelude="__device__ int clampz(int x) "
                    "{ if (x < 0) return 0; return x; }")
        fn.verify()

    def test_recursive_device_fn_rejected(self):
        with pytest.raises(CodeGenError):
            compile_kernel(
                "a[0] = f((int)n);",
                prelude="__device__ int f(int x) { return f(x - 1); }")

    def test_float_intrinsic_preserved(self):
        fn = compile_kernel("float x = sqrtf(1.0f);", params="float *a")
        calls = instrs_of(fn, ir.Call)
        assert calls[0].callee == "sqrtf"

    def test_unknown_function_rejected(self):
        with pytest.raises(CodeGenError):
            compile_kernel("frobnicate(n);")


class TestCasts:
    def test_float_to_uint(self):
        fn = compile_kernel("unsigned x = (unsigned)b;",
                            params="float b, int *a")
        casts = instrs_of(fn, ir.Cast)
        assert any(c.kind == "fptoui" for c in casts)

    def test_widening_respects_signedness(self):
        fn = compile_kernel(
            "long w = (long)x; unsigned long v = (unsigned long)n;",
            params="int x, unsigned n, int *a")
        kinds = [c.kind for c in instrs_of(fn, ir.Cast)]
        assert "sext" in kinds and "zext" in kinds

    def test_pointer_cast_changes_elem_size(self):
        fn = compile_kernel("long *w = (long*)a; w[n] = 0;")
        geps = instrs_of(fn, ir.GEP)
        assert geps[-1].elem_size() == 8


class TestSourceLocations:
    def test_locs_propagate(self):
        module = compile_source(
            "__global__ void k(int *a) {\n"
            "  a[0] = 1;\n"
            "  a[1] = 2;\n"
            "}")
        fn = module.get_kernel()
        stores = [s for s in fn.instructions() if isinstance(s, ir.Store)
                  and isinstance(s.pointer, ir.Register)
                  and isinstance(s.pointer.defining, ir.GEP)]
        assert stores[0].loc == 2
        assert stores[1].loc == 3
