"""Lexer unit tests: tokens, comments, macros, errors."""
import pytest

from repro.frontend import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_identifiers_and_keywords(self):
        toks = kinds("unsigned int foo __global__ threadIdx")
        assert toks == [("keyword", "unsigned"), ("keyword", "int"),
                        ("ident", "foo"), ("keyword", "__global__"),
                        ("ident", "threadIdx")]

    def test_integer_literals(self):
        toks = kinds("0 42 0xFF 0x10 7u 3UL")
        assert all(k == "int" for k, _ in toks)

    def test_float_literals(self):
        toks = kinds("1.0 0.5f .25 2e3 1.5e-2 7f")
        assert all(k == "float" for k, _ in toks)

    def test_int_not_confused_with_float(self):
        toks = kinds("123")
        assert toks == [("int", "123")]

    def test_multichar_punctuation_longest_match(self):
        toks = kinds("a <<= b >> c >= d == e && f")
        puncts = [t for k, t in toks if k == "punct"]
        assert puncts == ["<<=", ">>", ">=", "==", "&&"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        by_text = {t.text: t.line for t in toks if t.kind == "ident"}
        assert by_text == {"a": 1, "b": 2, "c": 3}


class TestComments:
    def test_line_comment_stripped(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment_stripped(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_block_comment_preserves_lines(self):
        toks = tokenize("a /* line\nline\n */ b")
        b = next(t for t in toks if t.text == "b")
        assert b.line == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestMacros:
    def test_object_macro_expands(self):
        toks = kinds("#define N 64\nint a[N];")
        assert ("int", "64") in toks

    def test_macro_with_expression(self):
        toks = kinds("#define TWO_N (2 * 64)\nTWO_N")
        texts = [t for _, t in toks]
        assert texts == ["(", "2", "*", "64", ")"]

    def test_function_like_macro_rejected(self):
        with pytest.raises(LexError):
            tokenize("#define SQ(x) ((x)*(x))")

    def test_include_ignored(self):
        assert kinds('#include <cuda.h>\nint') == [("keyword", "int")]

    def test_unknown_directive_rejected(self):
        with pytest.raises(LexError):
            tokenize("#ifdef FOO")

    def test_macro_expansion_keeps_use_site_line(self):
        toks = tokenize("#define N 64\n\n\nN")
        n = next(t for t in toks if t.text == "64")
        assert n.line == 4


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("int a = $;")
        assert "line 1" in str(err.value)
