"""Source line/column threading: lexer -> parser -> AST -> IR."""
from repro import ir
from repro.frontend.codegen import compile_source
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse
from repro.ir import SourceLoc

KERNEL = """\
__global__ void k(int *v) {
    int x = v[threadIdx.x];
    if (threadIdx.x < 4)
        v[threadIdx.x] = x + 1;
}
"""


class TestSourceLoc:
    def test_compares_and_hashes_as_line(self):
        loc = SourceLoc(8, 13)
        assert loc == 8
        assert hash(loc) == hash(8)
        assert loc.line == 8 and loc.col == 13
        assert {loc: "x"}[8] == "x"

    def test_str_carries_column(self):
        assert str(SourceLoc(8, 13)) == "8:13"
        assert str(SourceLoc(8)) == "8"

    def test_json_serialises_as_int(self):
        import json
        assert json.dumps([SourceLoc(8, 13)]) == "[8]"

    def test_sorts_with_plain_ints(self):
        assert sorted([SourceLoc(9, 1), 3, SourceLoc(2, 7)]) == [2, 3, 9]


class TestLexerColumns:
    def test_token_columns_are_one_based(self):
        toks = tokenize("int  x = 1;")
        cols = {t.text: t.col for t in toks if t.kind != "eof"}
        assert cols["int"] == 1
        assert cols["x"] == 6
        assert cols["="] == 8
        assert cols["1"] == 10

    def test_macro_expansion_uses_use_site_column(self):
        toks = tokenize("#define N 256\nint x = N;")
        n_tok = [t for t in toks if t.text == "256"][0]
        assert n_tok.line == 2
        assert n_tok.col == 9  # column of the 'N' use, not the define


class TestAstColumns:
    def test_statement_columns(self):
        unit = parse(KERNEL)
        body = unit.functions[0].body
        decl, if_stmt = body.stmts
        assert (decl.line, decl.col) == (2, 5)
        assert (if_stmt.line, if_stmt.col) == (3, 5)


class TestIrLocs:
    def test_instruction_locs_are_source_locs(self):
        mod = compile_source(KERNEL, "k")
        fn = mod.get_kernel("k")
        locs = [i.loc for b in fn.blocks for i in b.instrs
                if i.loc is not None]
        assert locs, "no locs threaded into the IR"
        assert all(isinstance(l, SourceLoc) for l in locs)
        assert all(l.col > 0 for l in locs)

    def test_store_loc_still_matches_line(self):
        # the pre-existing contract: loc == line as an int
        mod = compile_source(KERNEL, "k")
        fn = mod.get_kernel("k")
        stores = [i for b in fn.blocks for i in b.instrs
                  if isinstance(i, ir.Store) and i.loc is not None]
        assert any(s.loc == 4 for s in stores)
