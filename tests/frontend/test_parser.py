"""Parser unit tests over the constructs the paper's kernels use."""
import pytest

from repro.frontend import ParseError, parse
from repro.frontend import ast as A


def parse_kernel(body: str, params: str = "int *a, int n") -> A.FunctionDef:
    unit = parse(f"__global__ void k({params}) {{ {body} }}")
    assert len(unit.functions) == 1
    return unit.functions[0]


class TestTopLevel:
    def test_kernel_qualifier(self):
        fn = parse_kernel("")
        assert fn.qualifier == "__global__"
        assert fn.name == "k"

    def test_device_function(self):
        unit = parse("__device__ int helper(int x) { return x + 1; }")
        assert unit.functions[0].qualifier == "__device__"

    def test_params(self):
        fn = parse_kernel("", params="float *idata, float *odata, unsigned n")
        assert [p.name for p in fn.params] == ["idata", "odata", "n"]
        assert fn.params[0].type_name.pointer_depth == 1
        assert fn.params[2].type_name.signed is False

    def test_module_level_shared(self):
        unit = parse("""
            __shared__ int sdata[256];
            __global__ void k(int *a) { }
        """)
        assert len(unit.shared_decls) == 1
        assert unit.shared_decls[0].name == "sdata"

    def test_array_param_decays_to_pointer(self):
        fn = parse_kernel("", params="int a[], int n")
        assert fn.params[0].type_name.pointer_depth == 1

    def test_define_macro_expansion(self):
        unit = parse("""
            #define NUM 128
            __shared__ int sdata[NUM];
            __global__ void k(int *a) { int x = NUM * 2; }
        """)
        decl = unit.shared_decls[0]
        assert isinstance(decl.type_name.array_dims[0], A.IntLit)
        assert decl.type_name.array_dims[0].value == 128


class TestStatements:
    def test_if_else(self):
        fn = parse_kernel("if (n > 0) { a[0] = 1; } else { a[1] = 2; }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, A.IfStmt)
        assert stmt.else_body is not None

    def test_if_without_braces(self):
        fn = parse_kernel("if (n > 0) a[0] = 1;")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, A.IfStmt)
        assert len(stmt.then_body.stmts) == 1

    def test_for_loop(self):
        fn = parse_kernel(
            "for (unsigned s = 1; s < n; s *= 2) { a[s] = s; }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, A.ForStmt)
        assert isinstance(stmt.init, A.DeclStmt)
        assert isinstance(stmt.step, A.Assign)

    def test_while_and_do_while(self):
        fn = parse_kernel("while (n) { n = n - 1; } do { n = 1; } while (n);")
        assert isinstance(fn.body.stmts[0], A.WhileStmt)
        assert fn.body.stmts[1].is_do_while

    def test_break_continue(self):
        fn = parse_kernel(
            "for (int i = 0; i < n; i++) { if (i == 2) break; continue; }")
        body = fn.body.stmts[0].body
        assert isinstance(body.stmts[0].then_body.stmts[0], A.BreakStmt)
        assert isinstance(body.stmts[1], A.ContinueStmt)

    def test_syncthreads(self):
        fn = parse_kernel("__syncthreads();")
        assert isinstance(fn.body.stmts[0], A.SyncStmt)

    def test_local_shared_declaration(self):
        fn = parse_kernel("__shared__ float tile[16];")
        decl = fn.body.stmts[0]
        assert isinstance(decl, A.DeclStmt)
        assert decl.shared

    def test_multi_declarator(self):
        fn = parse_kernel("int x = 1, y = 2, *p;")
        decl = fn.body.stmts[0]
        assert [d[0] for d in decl.declarators] == ["x", "y", "p"]
        assert decl.declarators[2][1].pointer_depth == 1


class TestExpressions:
    def expr_of(self, src):
        fn = parse_kernel(f"n = {src};")
        return fn.body.stmts[0].expr.rhs

    def test_builtin_refs(self):
        e = self.expr_of("threadIdx.x + blockIdx.y * blockDim.z")
        assert isinstance(e, A.Binary)
        assert isinstance(e.lhs, A.BuiltinRef)
        assert e.lhs.base == "threadIdx" and e.lhs.axis == "x"

    def test_precedence_mul_over_add(self):
        e = self.expr_of("1 + 2 * 3")
        assert e.op == "+"
        assert e.rhs.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self.expr_of("a[0] < n << 1 ? 1 : 0")
        assert isinstance(e, A.Ternary)
        assert e.cond.op == "<"
        assert e.cond.rhs.op == "<<"

    def test_xor_tid_pattern(self):
        # the bitonic pattern: ixj = tid ^ j
        e = self.expr_of("threadIdx.x ^ 3")
        assert e.op == "^"

    def test_ternary(self):
        e = self.expr_of("n > 0 ? a[0] : 1")
        assert isinstance(e, A.Ternary)

    def test_assignment_right_assoc(self):
        fn = parse_kernel("a[0] = a[1] = 5;")
        outer = fn.body.stmts[0].expr
        assert isinstance(outer.rhs, A.Assign)

    def test_compound_assign(self):
        fn = parse_kernel("n += 4; n <<= 1; n %= 3;")
        ops = [s.expr.op for s in fn.body.stmts]
        assert ops == ["+=", "<<=", "%="]

    def test_post_and_pre_increment(self):
        fn = parse_kernel("n++; ++n;")
        assert isinstance(fn.body.stmts[0].expr, A.PostIncDec)
        assert isinstance(fn.body.stmts[1].expr, A.Unary)

    def test_cast_expression(self):
        e = self.expr_of("(unsigned int)n")
        assert isinstance(e, A.CastExpr)
        assert e.to_type.signed is False

    def test_call_with_args(self):
        e = self.expr_of("min(n, 4)")
        assert isinstance(e, A.CallExpr)
        assert len(e.args) == 2

    def test_atomic_call(self):
        fn = parse_kernel("atomicAdd(&a[0], 1);")
        call = fn.body.stmts[0].expr
        assert call.name == "atomicAdd"
        assert isinstance(call.args[0], A.Unary)

    def test_address_and_deref(self):
        fn = parse_kernel("int *p = &a[2]; *p = 7;")
        assert isinstance(fn.body.stmts[0].declarators[0][2], A.Unary)

    def test_hex_literals(self):
        e = self.expr_of("0xFF")
        assert e.value == 255

    def test_unsigned_suffix(self):
        e = self.expr_of("3u")
        assert e.unsigned

    def test_member_on_non_builtin_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel("n = foo.x;")

    def test_line_numbers_recorded(self):
        unit = parse("__global__ void k(int *a) {\n\n  a[0] = 1;\n}")
        stmt = unit.functions[0].body.stmts[0]
        assert stmt.line == 3


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_kernel("n = 1")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_kernel("n = (1 + 2;")

    def test_function_like_macro_rejected(self):
        from repro.frontend import LexError
        with pytest.raises(LexError):
            parse("#define SUM(x) a[x]\n__global__ void k(int *a) {}")
