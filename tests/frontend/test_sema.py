"""Semantic analysis: type resolution, constant evaluation, error paths."""
import pytest

from repro import ir
from repro.frontend import CodeGenError, SemaError, compile_source
from repro.frontend import ast as A
from repro.frontend.sema import common_int_type, const_eval, resolve_type


class TestTypeResolution:
    def resolve(self, base="int", signed=True, depth=0):
        tn = A.TypeName(base=base, signed=signed, pointer_depth=depth)
        return resolve_type(tn)

    def test_basic_widths(self):
        assert self.resolve("char").width == 8
        assert self.resolve("short").width == 16
        assert self.resolve("int").width == 32
        assert self.resolve("long").width == 64

    def test_signedness(self):
        assert self.resolve("int", signed=False).signed is False
        assert self.resolve("int").signed is True

    def test_floats(self):
        assert self.resolve("float") == ir.F32
        assert self.resolve("double") == ir.F64

    def test_pointers(self):
        t = self.resolve("float", depth=2)
        assert isinstance(t, ir.PointerType)
        assert isinstance(t.pointee, ir.PointerType)

    def test_unknown_base_rejected(self):
        with pytest.raises(SemaError):
            self.resolve("quaternion")


class TestConstEval:
    def eval(self, src):
        from repro.frontend.parser import Parser
        from repro.frontend.lexer import tokenize
        expr = Parser(tokenize(src)).parse_expr()
        return const_eval(expr)

    def test_arithmetic(self):
        assert self.eval("2 + 3 * 4") == 14
        assert self.eval("(1 << 8) - 1") == 255
        assert self.eval("64 / 4 % 5") == 1

    def test_bitwise(self):
        assert self.eval("0xF0 | 0x0F") == 0xFF
        assert self.eval("0xFF & 0x0F") == 0x0F
        assert self.eval("~0 ^ 5") == ~5

    def test_unary_minus(self):
        assert self.eval("-4 + 2") == -2

    def test_non_constant_rejected(self):
        with pytest.raises(SemaError):
            self.eval("x + 1")


class TestCommonIntType:
    def test_promotes_to_32(self):
        t = common_int_type(ir.I8, ir.I16)
        assert t.width == 32

    def test_wider_wins(self):
        t = common_int_type(ir.I64, ir.I32)
        assert t.width == 64 and t.signed

    def test_unsigned_wins_at_equal_width(self):
        t = common_int_type(ir.I32, ir.U32)
        assert not t.signed

    def test_wider_signedness_carries(self):
        t = common_int_type(ir.U64, ir.I32)
        assert t.width == 64 and not t.signed


class TestCodegenErrors:
    def compile(self, body, params="int *a, unsigned n"):
        return compile_source(f"__global__ void k({params}) {{ {body} }}")

    def test_undeclared_identifier(self):
        with pytest.raises(CodeGenError, match="undeclared"):
            self.compile("ghost = 1;")

    def test_redeclaration(self):
        with pytest.raises(SemaError, match="redeclaration"):
            self.compile("int x = 1; int x = 2;")

    def test_break_outside_loop(self):
        with pytest.raises(CodeGenError, match="break"):
            self.compile("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(CodeGenError, match="continue"):
            self.compile("continue;")

    def test_assigning_array_name(self):
        with pytest.raises(CodeGenError, match="array"):
            self.compile("int t[4]; t = 0;")

    def test_deref_non_pointer(self):
        with pytest.raises(CodeGenError):
            self.compile("n = *n;")

    def test_indexing_scalar(self):
        with pytest.raises(CodeGenError, match="non-pointer"):
            self.compile("n[0] = 1;")

    def test_shared_initialiser_rejected(self):
        with pytest.raises(CodeGenError, match="initialis"):
            self.compile("__shared__ int x = 3;")

    def test_scoping_allows_shadowing_in_blocks(self):
        module = self.compile("int x = 1; { int y = 2; } int y = 3; a[0] = y;")
        assert module.get_kernel("k")

    def test_scope_ends_with_block(self):
        with pytest.raises(CodeGenError, match="undeclared"):
            self.compile("{ int y = 2; } a[0] = y;")

    def test_wrong_arity_device_call(self):
        with pytest.raises(CodeGenError, match="argument"):
            compile_source("""
__device__ int f(int a, int b) { return a + b; }
__global__ void k(int *out) { out[0] = f(1); }
""")
