"""The bundled examples must run clean (they double as integration
tests: each asserts its own paper-anchored expectations internally)."""
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "RW race on v" in out


def test_taint_advisor():
    out = run_example("taint_advisor.py", "vectorAdd", "histogram64")
    assert "SYMBOLIC" in out
    assert "d_Data" in out


def test_fix_verify():
    out = run_example("fix_verify.py")
    assert "RACY" in out and "race-free" in out


@pytest.mark.slow
def test_reduction_flows():
    out = run_example("reduction_flows.py")
    assert "flows(max)=  1" in out


@pytest.mark.slow
def test_bug_witnesses_fast_mode():
    out = run_example("bug_witnesses.py", "--fast", timeout=400)
    assert "All three Parboil bugs reproduced" in out
