"""Pipeline robustness fuzz: random MiniCUDA programs must flow through
compile → SSA → taint → execute → check without raising, and the report
invariants must hold (flows >= 1, witnesses within bounds, benign ⊆ WW).
"""
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import SESA, LaunchConfig

TYPES = ["int", "unsigned", "float"]
IDX = ["threadIdx.x", "threadIdx.x * 2", "threadIdx.x / 2",
       "(threadIdx.x + 1) % 8", "threadIdx.x ^ 1",
       "blockIdx.x * blockDim.x + threadIdx.x"]
SCALAR_EXPR = ["threadIdx.x", "n", "i", "threadIdx.x + n",
               "threadIdx.x & 3", "i * 2"]
CONDS = ["threadIdx.x % 2 == 0", "threadIdx.x < n", "i < 2",
         "(threadIdx.x & 1) != 0", "n > 2"]


@st.composite
def statements(draw, depth=0):
    kind = draw(st.sampled_from(
        ["store", "load", "atomic", "sync", "if", "for"]
        if depth < 2 else ["store", "load", "atomic", "sync"]))
    if kind == "store":
        return f"s[({draw(st.sampled_from(IDX))}) & 31] = " \
               f"(int)({draw(st.sampled_from(SCALAR_EXPR))});"
    if kind == "load":
        return f"i = s[({draw(st.sampled_from(IDX))}) & 31] + i;"
    if kind == "atomic":
        return f"atomicAdd(&g[({draw(st.sampled_from(IDX))}) & 15], 1);"
    if kind == "sync":
        return "__syncthreads();"
    if kind == "if":
        cond = draw(st.sampled_from(CONDS))
        body = draw(statements(depth + 1))
        if "syncthreads" in body:
            body = "i = i + 1;"  # avoid intentional barrier divergence
        if draw(st.booleans()):
            other = draw(statements(depth + 1)).replace("__syncthreads();",
                                                        "i = i - 1;")
            return f"if ({cond}) {{ {body} }} else {{ {other} }}"
        return f"if ({cond}) {{ {body} }}"
    if kind == "for":
        body = draw(statements(depth + 1)).replace("__syncthreads();",
                                                   "i = i + 1;")
        bound = draw(st.integers(1, 3))
        return f"for (int j = 0; j < {bound}; j++) {{ {body} }}"
    raise AssertionError(kind)


@st.composite
def programs(draw):
    n = draw(st.integers(1, 5))
    body = "\n  ".join(draw(statements()) for _ in range(n))
    return f"""
__shared__ int s[32];
__global__ void k(unsigned *g, int n) {{
  int i = 0;
  {body}
  g[threadIdx.x & 15] = (unsigned)i;
}}
"""


@settings(max_examples=40, deadline=None)
@given(source=programs())
def test_pipeline_never_crashes(source):
    tool = SESA.from_source(source)
    config = LaunchConfig(
        grid_dim=2, block_dim=8, max_flows=64, max_loop_splits=16,
        max_steps=200_000, time_budget_seconds=20.0)
    report = tool.check(config, max_reports=4)
    assert report.max_flows >= 1
    assert report.resolvable in ("Y", "N")
    for race in report.races:
        assert race.kind
        w = race.witness
        assert 0 <= w.thread1[0] < 8
        assert 0 <= w.block1[0] < 2
        if race.benign:
            assert race.kind.endswith("W")
    for oob in report.oobs:
        assert oob.witness is not None
