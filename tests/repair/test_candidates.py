"""Candidate generation: legal, uniform, deduplicated insertion points."""
import pytest

from repro.core import SESA, LaunchConfig
from repro.repair import CandidateGenerator, barrier_removals

REDUCTION = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""

STRAIGHT = """
__shared__ int buf[64];
__global__ void neigh(int *out) {
  buf[threadIdx.x] = threadIdx.x;
  out[threadIdx.x] = buf[(threadIdx.x + 1) % 64];
}
"""


def races_for(source, block=64):
    tool = SESA.from_source(source)
    report = tool.check(LaunchConfig(block_dim=block, check_oob=False))
    assert report.has_races
    return tool.kernel, [r for r in report.races if not r.benign]


class TestReductionCandidates:
    def test_latch_candidate_exists(self):
        kernel, races = races_for(REDUCTION)
        points = CandidateGenerator(kernel).for_races(races)
        assert points, "racy kernel must yield candidates"
        latch = [p for p in points if "loop" in p.note]
        assert latch, "reduction race must propose a loop-latch barrier"
        # the end of the loop body: after the accumulation statement
        assert latch[0].source_line == 8

    def test_candidates_are_deduplicated(self):
        kernel, races = races_for(REDUCTION)
        points = CandidateGenerator(kernel).for_races(races)
        keys = [p.key() for p in points]
        assert len(keys) == len(set(keys))

    def test_candidates_only_at_uniform_points(self):
        kernel, races = races_for(REDUCTION)
        gen = CandidateGenerator(kernel)
        for point in gen.for_races(races):
            block = point.edge[0] if point.edge else point.block
            assert gen.ua.block_is_uniform(block), \
                f"candidate {point.describe()} sits under a tid branch"

    def test_source_lines_are_positive(self):
        kernel, races = races_for(REDUCTION)
        for point in CandidateGenerator(kernel).for_races(races):
            assert point.source_line >= 1


class TestStraightLineCandidates:
    def test_between_access_candidates(self):
        kernel, races = races_for(STRAIGHT)
        points = CandidateGenerator(kernel).for_races(races)
        notes = " ".join(p.note for p in points)
        assert "access" in notes or "block" in notes

    def test_generator_is_deterministic(self):
        kernel, races = races_for(STRAIGHT)
        a = [p.key() for p in CandidateGenerator(kernel).for_races(races)]
        b = [p.key() for p in CandidateGenerator(kernel).for_races(races)]
        assert a == b


class TestRemovals:
    def test_existing_barriers_enumerated(self):
        tool = SESA.from_source(REDUCTION)
        syncs = barrier_removals(tool.kernel)
        assert len(syncs) == 2
        assert sorted(int(s.loc) for s in syncs) == [5, 10]
