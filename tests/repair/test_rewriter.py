"""IR rewriting: barrier splicing, edge splitting, clean reverts."""
import pytest

from repro.core import SESA, LaunchConfig
from repro.ir import Jump, Sync
from repro.repair import (
    CandidateGenerator, IRRewriter, InsertionPoint, RewriteError,
)

REDUCTION = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""


# do-while: the back-edge tail ends in a conditional Br, so the latch
# candidate is an edge placement the rewriter must realise by splitting
DOWHILE = """
__shared__ int buf[64];
__global__ void shift(int *out) {
  int i = 0;
  int x = 0;
  do {
    x = buf[(threadIdx.x + 1) % 64];
    buf[threadIdx.x] = x;
    i = i + 1;
  } while (i < 4);
  out[threadIdx.x] = buf[threadIdx.x] + x;
}
"""


def setup(source=REDUCTION):
    tool = SESA.from_source(source)
    report = tool.check(LaunchConfig(block_dim=64, check_oob=False))
    races = [r for r in report.races if not r.benign]
    return tool.kernel, CandidateGenerator(tool.kernel).for_races(races)


def count_syncs(fn):
    return sum(isinstance(i, Sync) for b in fn.blocks for i in b.instrs)


class TestInsertRemove:
    def test_insert_adds_exactly_one_sync(self):
        kernel, points = setup()
        before = count_syncs(kernel)
        rewriter = IRRewriter(kernel)
        sync = rewriter.insert_sync(points[0])
        assert count_syncs(kernel) == before + 1
        assert sync.parent is not None
        kernel.verify()

    def test_remove_restores_shape(self):
        kernel, points = setup()
        before = count_syncs(kernel)
        rewriter = IRRewriter(kernel)
        sync = rewriter.insert_sync(points[0])
        rewriter.remove_sync(sync)
        assert count_syncs(kernel) == before
        assert sync.parent is None
        kernel.verify()

    def test_removed_sync_restore_roundtrip(self):
        kernel, points = setup()
        rewriter = IRRewriter(kernel)
        sync = rewriter.insert_sync(points[0])
        block = sync.parent
        idx = next(i for i, ins in enumerate(block.instrs) if ins is sync)
        record = rewriter.remove_sync(sync)
        record.restore()
        assert block.instrs[idx] is sync
        kernel.verify()

    def test_sync_carries_source_line(self):
        kernel, points = setup()
        sync = IRRewriter(kernel).insert_sync(points[0])
        assert int(sync.loc) == points[0].source_line


class TestEdgeSplitting:
    def test_split_edge_interposes_block(self):
        kernel, points = setup(DOWHILE)
        edge_points = [p for p in points if p.edge is not None]
        assert edge_points, "do-while latch must be an edge candidate"
        point = edge_points[0]
        rewriter = IRRewriter(kernel)
        sync = rewriter.insert_sync(point)
        new_block = sync.parent
        pred, succ = point.edge
        assert new_block is not pred and new_block is not succ
        assert isinstance(new_block.terminator, Jump)
        assert new_block.terminator.target is succ
        kernel.verify()

    def test_split_edge_cached_per_edge(self):
        kernel, points = setup(DOWHILE)
        edge_points = [p for p in points if p.edge is not None]
        assert edge_points
        rewriter = IRRewriter(kernel)
        s1 = rewriter.insert_sync(edge_points[0])
        rewriter.remove_sync(s1)
        s2 = rewriter.insert_sync(edge_points[0])
        assert s1.parent is None and s2.parent is not None
        # second insertion reuses the split block instead of stacking
        # another pass-through block on the same edge
        assert ".sync" in s2.parent.name
        assert sum(".sync" in b.name for b in kernel.blocks) == 1
        kernel.verify()

    def test_split_unrelated_blocks_raises(self):
        kernel, _ = setup()
        blocks = list(kernel.blocks)
        rewriter = IRRewriter(kernel)
        with pytest.raises(RewriteError):
            rewriter.split_edge(blocks[-1], blocks[0])


class TestSemanticsPreserved:
    def test_rewritten_kernel_still_executes(self):
        tool = SESA.from_source(REDUCTION)
        races = [r for r in tool.check(
            LaunchConfig(block_dim=64, check_oob=False)).races
            if not r.benign]
        candidates = CandidateGenerator(tool.kernel).for_races(races)
        rewriter = IRRewriter(tool.kernel)
        latch = [p for p in candidates if "loop" in p.note]
        assert latch
        rewriter.insert_sync(latch[0])
        report = tool.check(LaunchConfig(block_dim=64, check_oob=False))
        assert not report.has_races
        assert not any("barrier divergence" in e
                       for e in report.execution.errors)
