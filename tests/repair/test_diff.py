"""Source-level rendering of barrier edits."""
import pytest

from repro.repair import (
    BARRIER_STMT, SourceEdit, apply_edits, render_diff,
)
from repro.repair.diff import RenderError

SOURCE = """\
__global__ void k(int *a) {
  for (int i = 0; i < 4; i = i + 1) {
    a[threadIdx.x] = i;
  }
  __syncthreads();
}"""


class TestApplyEdits:
    def test_insert_after_copies_indent(self):
        out = apply_edits(SOURCE, [SourceEdit("insert_after", 3)])
        lines = out.split("\n")
        assert lines[3] == "    " + BARRIER_STMT
        assert lines[2] == "    a[threadIdx.x] = i;"

    def test_insert_after_unbraced_if_uses_header_indent(self):
        src = ("__global__ void k(int *a) {\n"
               "  if (threadIdx.x % 2 == 0)\n"
               "    a[0] = 1;\n"
               "}")
        out = apply_edits(src, [SourceEdit("insert_after", 3)])
        # the barrier sits outside the unbraced if — indent like the
        # header, not like its body
        assert out.split("\n")[3] == "  " + BARRIER_STMT

    def test_remove_line(self):
        out = apply_edits(SOURCE, [SourceEdit("remove_line", 5)])
        assert BARRIER_STMT not in out

    def test_remove_non_barrier_line_raises(self):
        with pytest.raises(RenderError):
            apply_edits(SOURCE, [SourceEdit("remove_line", 3)])

    def test_edits_apply_bottom_up(self):
        out = apply_edits(SOURCE, [SourceEdit("insert_after", 1),
                                   SourceEdit("insert_after", 3)])
        lines = out.split("\n")
        assert lines[1].strip() == BARRIER_STMT
        assert lines[4].strip() == BARRIER_STMT

    def test_insert_outside_source_raises(self):
        with pytest.raises(RenderError):
            apply_edits(SOURCE, [SourceEdit("insert_after", 99)])


class TestRenderDiff:
    def test_unified_diff_shape(self):
        patched = apply_edits(SOURCE, [SourceEdit("insert_after", 3)])
        diff = render_diff(SOURCE, patched, name="k.cu")
        assert diff.startswith("--- a/k.cu")
        assert "+++ b/k.cu" in diff
        assert f"+    {BARRIER_STMT}" in diff

    def test_identity_diff_is_empty(self):
        assert render_diff(SOURCE, SOURCE) == ""
