"""The repair loop end-to-end: convergence, minimality, honesty."""
import json

import pytest

from repro.core import SESA, LaunchConfig, check_source, repair_source
from repro.core.report import AnalysisReport
from repro.passes import check_barrier_uniformity
from repro.frontend import compile_source
from repro.passes import standard_pipeline

REDUCTION = """
__shared__ float sdata[512];
__global__ void reduce(float *idata, float *odata) {
  sdata[threadIdx.x] = idata[threadIdx.x];
  __syncthreads();
  for (unsigned int s = 1; s < blockDim.x; s *= 2) {
    if (threadIdx.x % (2*s) == 0)
      sdata[threadIdx.x] += sdata[threadIdx.x + s];
  }
  __syncthreads();
  odata[threadIdx.x] = sdata[threadIdx.x];
}
"""

NEIGHBOUR = """
__shared__ int buf[64];
__global__ void neigh(int *out) {
  buf[threadIdx.x] = threadIdx.x;
  out[threadIdx.x] = buf[(threadIdx.x + 1) % 64];
}
"""

# a true data race: no barrier can order two threads' writes to the
# same cell issued by one instruction
UNREPAIRABLE = """
__global__ void clash(int *v) {
  v[0] = threadIdx.x;
}
"""

CLEAN = """
__global__ void k(float *a) { a[threadIdx.x] = 1.0f; }
"""

CFG = dict(block_dim=64, check_oob=False)


class TestReductionRepair:
    @pytest.fixture(scope="class")
    def result(self):
        return repair_source(REDUCTION, config=LaunchConfig(**CFG))

    def test_converges_verified_minimal(self, result):
        assert result.converged
        assert result.verified
        assert result.minimal

    def test_exactly_one_barrier(self, result):
        # the buggy reduction misses exactly one barrier; minimization
        # must not leave extras behind
        assert len(result.edits) == 1
        edit = result.edits[0]
        assert edit.action == "insert"
        assert edit.line == 8

    def test_patched_source_verifies_racefree(self, result):
        report = check_source(result.patched_source,
                              config=LaunchConfig(**CFG))
        assert not report.has_races

    def test_patched_source_passes_divergence_check(self, result):
        module = compile_source(result.patched_source)
        standard_pipeline().run(module)
        assert check_barrier_uniformity(module.get_kernel(None)) == []

    def test_no_barrier_is_removable(self, result):
        # strip the synthesized barrier back out: the race must return,
        # i.e. the fix is tight, not just sufficient
        lines = result.patched_source.split("\n")
        stripped = [ln for i, ln in enumerate(lines, 1)
                    if i != result.edits[0].line + 1]
        report = check_source("\n".join(stripped),
                              config=LaunchConfig(**CFG))
        assert report.has_races

    def test_diff_renders(self, result):
        assert result.diff.startswith("--- a/reduce.cu")
        assert "+    __syncthreads();" in result.diff

    def test_result_is_json_safe(self, result):
        json.dumps(result.to_dict())


class TestStraightLineRepair:
    def test_neighbour_exchange_repairs(self):
        result = repair_source(NEIGHBOUR, config=LaunchConfig(**CFG))
        assert result.converged and result.verified
        assert all(e.action == "insert" for e in result.edits)
        report = check_source(result.patched_source,
                              config=LaunchConfig(**CFG))
        assert not report.has_races


class TestDoWhileRepair:
    # latch fix requires splitting the conditional back edge, and the
    # read→write exchange needs a second mid-body barrier
    DOWHILE = """
__shared__ int buf[64];
__global__ void shift(int *out) {
  int i = 0;
  int x = 0;
  do {
    x = buf[(threadIdx.x + 1) % 64];
    buf[threadIdx.x] = x;
    i = i + 1;
  } while (i < 4);
  out[threadIdx.x] = buf[threadIdx.x] + x;
}
"""

    def test_two_barrier_fix_inside_the_loop(self):
        result = repair_source(self.DOWHILE, config=LaunchConfig(**CFG))
        assert result.converged and result.verified and result.minimal
        assert len(result.edits) == 2
        # both barriers land inside the do-while body (lines 7..9),
        # never after the ``} while`` line
        assert all(7 <= e.line <= 9 for e in result.edits)
        report = check_source(result.patched_source,
                              config=LaunchConfig(**CFG))
        assert not report.has_races


class TestHonestFailure:
    def test_true_race_reports_nonconvergence(self):
        result = repair_source(UNREPAIRABLE, config=LaunchConfig(
            block_dim=32, check_oob=False), max_iterations=4)
        assert not result.converged
        assert not result.verified
        assert result.residual_races >= 1
        assert result.iterations <= 4
        assert "race" in result.message

    def test_same_line_exchange_is_not_source_fixable(self):
        # load and store share one statement; the only separating
        # barrier lives between two instructions of the same source
        # line, which no textual edit expresses — the engine must not
        # claim a fix
        src = """
__shared__ int buf[64];
__global__ void dw(int *out) {
  int i = 0;
  do {
    buf[threadIdx.x] = buf[(threadIdx.x + 1) % 64] + i;
    i = i + 1;
  } while (i < 4);
  out[threadIdx.x] = buf[threadIdx.x];
}
"""
        result = repair_source(src, config=LaunchConfig(**CFG),
                               max_iterations=4)
        assert not (result.converged and result.verified)

    def test_clean_kernel_needs_no_edits(self):
        result = repair_source(CLEAN, config=LaunchConfig(**CFG))
        assert result.converged and result.verified
        assert result.edits == []
        assert result.initial_races == 0


class TestIncrementalReuse:
    """CEGIS re-checks must ride the warm incremental-solver path."""

    def test_shared_sessions_reused_across_iterations(self):
        shared = repair_source(REDUCTION, config=LaunchConfig(**CFG))
        later = [s for s in shared.iteration_stats if s.iteration >= 1]
        assert later, "repair must run at least one CEGIS iteration"
        # iterations after the baseline check never rebuild a session:
        # every query lands on a warm session or the shared memo
        assert sum(s.sessions_created for s in later) == 0
        assert sum(s.preamble_reuse + s.memo_hits for s in later) > 0
        assert shared.preamble_reuse > 0

    def test_unshared_sessions_rebuild_every_recheck(self):
        shared = repair_source(REDUCTION, config=LaunchConfig(**CFG))
        unshared = repair_source(REDUCTION, config=LaunchConfig(**CFG),
                                 share_sessions=False)
        assert unshared.sessions_created > shared.sessions_created
        assert unshared.memo_hits == 0


class TestReportIntegration:
    def test_repair_attaches_to_report(self):
        tool = SESA.from_source(REDUCTION)
        report = tool.check(LaunchConfig(**CFG))
        repair = repair_source(REDUCTION, config=LaunchConfig(**CFG))
        report.repair = repair
        payload = report.to_dict()
        assert payload["repair"]["converged"] is True
        assert "repair:" in report.summary()
        json.dumps(payload)

    def test_races_carry_line_and_col(self):
        report = check_source(REDUCTION, config=LaunchConfig(**CFG))
        assert report.has_races
        payload = report.to_dict()
        locs = payload["races"][0]["locs"]
        assert locs[0] is not None and locs[0][0] >= 1
        # column threading: the frontend records where on the line
        assert locs[0][1] >= 1
