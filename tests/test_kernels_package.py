"""Kernel registry and launch_config helper tests."""
import pytest

from repro.kernels import (
    ALL_KERNELS, DIVERGENT_KERNELS, LONESTAR_KERNELS, PAPER_EXAMPLES,
    PARBOIL_KERNELS, REDUCTION_FAMILY, SDK_KERNELS, Kernel,
)
from repro.kernels.lonestar import attach_concrete_graph, synthetic_csr


class TestRegistry:
    def test_names_unique(self):
        groups = (PAPER_EXAMPLES + SDK_KERNELS + REDUCTION_FAMILY +
                  DIVERGENT_KERNELS + LONESTAR_KERNELS + PARBOIL_KERNELS)
        names = [k.name for k in groups]
        assert len(names) == len(set(names))
        assert len(ALL_KERNELS) == len(names)

    def test_all_have_source_and_table(self):
        for k in ALL_KERNELS.values():
            assert k.source.strip()
            assert k.table

    def test_expected_counts_per_suite(self):
        assert len(SDK_KERNELS) == 9         # Table I's 8 + histogram64
        assert len(REDUCTION_FAMILY) == 6
        assert len(DIVERGENT_KERNELS) == 8   # Table II
        assert len(LONESTAR_KERNELS) == 7    # Table III
        assert len(PARBOIL_KERNELS) == 10    # Table IV


class TestLaunchConfigHelper:
    def test_defaults_from_kernel(self):
        k = ALL_KERNELS["histo_final"]
        cfg = k.launch_config()
        assert cfg.grid_dim == k.grid_dim
        assert cfg.block_dim == k.block_dim
        assert cfg.scalar_values == k.scalar_values
        assert cfg.max_loop_splits == 128

    def test_overrides(self):
        k = ALL_KERNELS["vectorAdd"]
        cfg = k.launch_config(grid_dim=(2, 1, 1), check_oob=False)
        assert cfg.grid_dim == (2, 1, 1)
        assert not cfg.check_oob

    def test_disable_oob_respected(self):
        k = ALL_KERNELS["bfs_ls"]
        assert k.disable_oob
        assert k.launch_config().check_oob is False

    def test_mutation_isolated(self):
        k = ALL_KERNELS["matrixMul"]
        cfg = k.launch_config()
        cfg.scalar_values["wA"] = 1
        assert k.scalar_values["wA"] == 64


class TestSyntheticGraph:
    def test_csr_well_formed(self):
        row, col = synthetic_csr(16, degree=2)
        assert len(row) == 17
        assert row[0] == 0
        assert row[-1] == len(col)
        assert all(0 <= c < 16 for c in col)
        assert all(row[i] <= row[i + 1] for i in range(16))

    def test_attach_concrete_graph(self):
        from repro.sym import LaunchConfig
        cfg = LaunchConfig(grid_dim=2, block_dim=8)
        attach_concrete_graph(cfg)
        assert "row" in cfg.array_values
        assert len(cfg.array_values["row"]) == cfg.total_threads + 1
        assert cfg.scalar_values["nnodes"] == cfg.total_threads
