"""AnalysisReport / resolvability reporting tests."""
import pytest

from repro.core import SESA, LaunchConfig, check_source
from repro.sym import analyze_resolvability


def run(source, **kw):
    return check_source(source, LaunchConfig(block_dim=16, **kw))


class TestAnalysisReport:
    def test_summary_contains_key_facts(self):
        report = run("""
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}""", check_oob=False)
        text = report.summary()
        assert "race" in text
        assert "flows: 1" in text
        assert "RACE:" in text
        assert "resolvable: Y" in text

    def test_race_kinds_deduplicated(self):
        report = run("""
__shared__ int v[64];
__global__ void k() {
  v[0] = threadIdx.x;
  v[1] = threadIdx.x;
}""")
        assert report.race_kinds().count("WW") == 1

    def test_benign_flag_separated(self):
        report = run("""
__shared__ int v[64];
__global__ void k() { v[0] = 7; }""")
        assert report.has_benign_races
        assert not report.has_races

    def test_elapsed_recorded(self):
        report = run("__global__ void k(int *a) { a[threadIdx.x] = 1; }")
        assert report.elapsed_seconds > 0

    def test_check_stats_present(self):
        report = run("__global__ void k(int *a) { a[threadIdx.x] = 1; }")
        stats = report.check_stats
        assert stats.pairs_considered >= 1
        assert stats.races_found == 0


class TestToDict:
    def test_json_roundtrip(self):
        import json
        report = run("""
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}""", check_oob=False)
        payload = report.to_dict()
        text = json.dumps(payload)         # must be serialisable
        back = json.loads(text)
        assert back["kernel"] == "race"
        assert back["races"]
        assert back["flows"] == 1
        assert back["symbolic_inputs"] == []


class TestResolvabilityReport:
    def test_clean_kernel_resolvable(self):
        report = run("""
__shared__ int s[64];
__global__ void k() { s[threadIdx.x] = 1; }""")
        assert report.resolvability.resolvable
        assert report.resolvability.verdict == "Y"
        assert not report.resolvability.offending

    def test_data_dependent_guard_unresolvable(self):
        report = run("""
__shared__ int s[64];
__global__ void k() {
  s[threadIdx.x] = 1;
  __syncthreads();
  if (s[(threadIdx.x + 1) % blockDim.x] > 0) {
    s[threadIdx.x] = 2;
  }
}""")
        assert report.resolvability.verdict == "N"
        assert report.resolvability.offending
        assert report.resolvability.notes

    def test_value_only_havoc_still_resolvable(self):
        # havocked values stored as data (never in guards/addresses)
        # leave the access sets resolvable (the reduction pattern)
        report = run("""
__shared__ int s[64];
__global__ void k(int *out) {
  s[threadIdx.x] = 1;
  __syncthreads();
  out[threadIdx.x] = s[(threadIdx.x + 1) % blockDim.x];
}""", check_oob=False)
        assert report.resolvability.verdict == "Y"

    def test_unresolvable_race_is_flagged(self):
        report = run("""
__shared__ unsigned s[64];
__global__ void k(unsigned *out) {
  s[threadIdx.x] = threadIdx.x;
  __syncthreads();
  out[s[(threadIdx.x + 1) % blockDim.x] & 15u] = 1;
}""", check_oob=False)
        racy = [r for r in report.races if r.unresolvable]
        assert racy, report.summary()


class TestWarningsPropagate:
    def test_executor_warnings_in_result(self):
        report = run("""
__shared__ int s[64];
__global__ void k(int *out) {
  s[threadIdx.x] = 1;
  __syncthreads();
  out[threadIdx.x] = s[(threadIdx.x + 1) % blockDim.x];
}""", check_oob=False)
        assert any("could observe" in w
                   for w in report.execution.warnings)
