"""The SDK reduction-variant family, including the warp-synchronous
reduce4 hazard (§II / refs [25][26])."""
import pytest

from repro.core import SESA, LaunchConfig
from repro.kernels.reductions import REDUCTION_FAMILY, REDUCE4, REDUCE5

BY_NAME = {k.name: k for k in REDUCTION_FAMILY}


def check(kernel, lockstep=False, block=64):
    return SESA.from_source(kernel.source, kernel.kernel_name).check(
        LaunchConfig(block_dim=block, warp_lockstep=lockstep,
                     check_oob=False))


@pytest.mark.parametrize("name", ["reduce0", "reduce1", "reduce2",
                                  "reduce3", "reduce5"])
def test_barrier_correct_variants_clean(name):
    report = check(BY_NAME[name])
    assert not report.has_races, report.summary()


@pytest.mark.parametrize("name", ["reduce0", "reduce1", "reduce2",
                                  "reduce3", "reduce4", "reduce5"])
def test_all_variants_single_flow(name):
    report = check(BY_NAME[name])
    assert report.max_flows == 1


class TestReduce4WarpHazard:
    """reduce4 is the canonical warp-synchronous idiom."""

    def test_racy_under_default_view(self):
        """'NVIDIA makes no guarantees on warp size' (paper ref [26]):
        the unguarded tail races when lock-step is not assumed."""
        report = check(REDUCE4)
        assert report.has_races
        assert any(r.obj_name == "sdata4" for r in report.races)

    def test_clean_under_lockstep_view(self):
        """Under SIMD lock-step the tail steps are ordered within the
        single remaining warp: no race."""
        report = check(REDUCE4, lockstep=True)
        assert not report.has_races, report.summary()

    def test_witness_is_within_last_warp(self):
        report = check(REDUCE4)
        race = next(r for r in report.races if r.obj_name == "sdata4")
        t1, t2 = race.witness.thread1[0], race.witness.thread2[0]
        assert t1 < 64 and t2 < 64

    def test_fixed_variant_clean_under_both_views(self):
        assert not check(REDUCE5).has_races
        assert not check(REDUCE5, lockstep=True).has_races
