"""CFG analyses: dominators, post-dominators, loops, frontiers."""
import pytest

from repro import ir
from repro.frontend import compile_source
from repro.passes import remove_unreachable_blocks


def cfg_of(body: str, params: str = "int *a, unsigned n") -> ir.CFG:
    module = compile_source(f"__global__ void k({params}) {{ {body} }}")
    fn = module.get_kernel("k")
    remove_unreachable_blocks(fn)
    return ir.CFG(fn)


def block_named(cfg: ir.CFG, prefix: str) -> ir.BasicBlock:
    for block in cfg.blocks:
        if block.name.startswith(prefix):
            return block
    raise KeyError(prefix)


class TestDominators:
    def test_entry_dominates_all(self):
        cfg = cfg_of("if (n > 1) { a[0] = 1; } a[1] = 2;")
        entry = cfg.function.entry
        for block in cfg.blocks:
            assert cfg.dominates(entry, block)

    def test_branch_arms_not_dominating_join(self):
        cfg = cfg_of("if (n > 1) { a[0] = 1; } else { a[1] = 2; } a[2] = 3;")
        then_b = block_named(cfg, "if.then")
        join = block_named(cfg, "if.end")
        assert not cfg.dominates(then_b, join)

    def test_loop_header_dominates_body(self):
        cfg = cfg_of("for (unsigned i = 0; i < n; i++) { a[i] = 1; }")
        header = block_named(cfg, "for.cond")
        body = block_named(cfg, "for.body")
        assert cfg.dominates(header, body)

    def test_reflexive(self):
        cfg = cfg_of("a[0] = 1;")
        assert cfg.dominates(cfg.function.entry, cfg.function.entry)


class TestPostDominators:
    def test_join_postdominates_arms(self):
        cfg = cfg_of("if (n > 1) { a[0] = 1; } else { a[1] = 2; } a[2] = 3;")
        then_b = block_named(cfg, "if.then")
        join = block_named(cfg, "if.end")
        assert cfg.ipostdom()[then_b] is join

    def test_reconvergence_point_of_branch(self):
        cfg = cfg_of("if (n > 1) { a[0] = 1; } a[2] = 3;")
        entry = cfg.function.entry
        join = block_named(cfg, "if.end")
        assert cfg.reconvergence_point(entry) is join

    def test_exit_has_no_postdominator(self):
        cfg = cfg_of("a[0] = 1;")
        exits = [b for b in cfg.blocks if not b.successors()]
        assert cfg.ipostdom()[exits[0]] is None

    def test_nested_diamonds(self):
        cfg = cfg_of("""
            if (n > 1) {
              if (n > 2) { a[0] = 1; } else { a[1] = 2; }
            } else { a[2] = 3; }
            a[3] = 4;
        """)
        ipdom = cfg.ipostdom()
        # the inner join post-dominates the inner arms; the outer join
        # post-dominates the inner join
        inner_join = None
        for block in cfg.blocks:
            term = block.terminator
            if isinstance(term, ir.Br) and block.name.startswith("if.then"):
                inner_join = ipdom[block]
        assert inner_join is not None


class TestLoops:
    def test_simple_loop_detected(self):
        cfg = cfg_of("for (unsigned i = 0; i < n; i++) { a[i] = 1; }")
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].header.name.startswith("for.cond")

    def test_nested_loops_detected(self):
        cfg = cfg_of(
            "for (unsigned i = 0; i < n; i++) "
            "  for (unsigned j = 0; j < n; j++) a[i+j] = 1;")
        assert len(cfg.natural_loops()) == 2

    def test_while_loop(self):
        cfg = cfg_of("while (n > 0) { n = n - 1; }")
        assert len(cfg.natural_loops()) == 1

    def test_no_loops_in_straight_line(self):
        cfg = cfg_of("a[0] = 1; if (n > 2) { a[1] = 2; }")
        assert cfg.natural_loops() == []

    def test_loop_exit_branches(self):
        cfg = cfg_of("for (unsigned i = 0; i < n; i++) { a[i] = 1; }")
        loop = cfg.natural_loops()[0]
        exits = loop.exit_condition_branches()
        assert len(exits) == 1
        assert exits[0].meta.get("loop_branch")


class TestDominanceFrontiers:
    def test_join_in_frontier_of_arms(self):
        cfg = cfg_of("if (n > 1) { a[0] = 1; } else { a[1] = 2; } a[2] = 3;")
        df = cfg.dominance_frontiers()
        then_b = block_named(cfg, "if.then")
        join = block_named(cfg, "if.end")
        assert join in df[then_b]

    def test_loop_header_in_own_frontier(self):
        cfg = cfg_of("for (unsigned i = 0; i < n; i++) { a[i] = 1; }")
        df = cfg.dominance_frontiers()
        header = block_named(cfg, "for.cond")
        assert header in df[header]


class TestReversePostorder:
    def test_entry_first(self):
        cfg = cfg_of("if (n > 1) { a[0] = 1; } a[2] = 3;")
        rpo = cfg.reverse_postorder()
        assert rpo[0] is cfg.function.entry

    def test_all_reachable_blocks_present(self):
        cfg = cfg_of("for (unsigned i = 0; i < n; i++) { a[i] = 1; }")
        assert len(cfg.reverse_postorder()) == len(cfg.blocks)
