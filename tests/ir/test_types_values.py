"""IR type system and value classes."""
import pytest

from repro import ir


class TestTypes:
    def test_int_sizes(self):
        assert ir.I8.size_bytes() == 1
        assert ir.I32.size_bytes() == 4
        assert ir.I64.size_bytes() == 8

    def test_float_sizes(self):
        assert ir.F32.size_bytes() == 4
        assert ir.F64.size_bytes() == 8

    def test_pointer_size(self):
        assert ir.ptr(ir.I32).size_bytes() == 8

    def test_array_size(self):
        assert ir.ArrayType(ir.F32, 64).size_bytes() == 256
        nested = ir.ArrayType(ir.ArrayType(ir.I32, 4), 8)
        assert nested.size_bytes() == 128

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            ir.VOID.size_bytes()

    def test_equality_structural(self):
        assert ir.IntType(32, True) == ir.I32
        assert ir.IntType(32, False) != ir.I32
        assert ir.ptr(ir.I32) == ir.ptr(ir.I32)
        assert ir.ptr(ir.I32, ir.MemSpace.SHARED) != ir.ptr(ir.I32)

    def test_hashable(self):
        s = {ir.I32, ir.IntType(32, True), ir.U32, ir.F32}
        assert len(s) == 3

    def test_memspace_sharedness(self):
        assert ir.MemSpace.SHARED.is_shared_between_threads()
        assert ir.MemSpace.GLOBAL.is_shared_between_threads()
        assert not ir.MemSpace.LOCAL.is_shared_between_threads()

    def test_repr(self):
        assert repr(ir.I32) == "i32"
        assert repr(ir.U32) == "u32"
        assert repr(ir.ArrayType(ir.I32, 4)) == "[4 x i32]"
        assert "shared" in repr(ir.ptr(ir.I32, ir.MemSpace.SHARED))


class TestValues:
    def test_constant_short(self):
        assert ir.Constant(42, ir.I32).short() == "42"

    def test_register_short(self):
        assert ir.Register("r1", ir.I32).short() == "%r1"

    def test_global_variable_pointer_type(self):
        gv = ir.GlobalVariable("s", ir.ArrayType(ir.F32, 8),
                               ir.MemSpace.SHARED)
        assert isinstance(gv.type, ir.PointerType)
        assert gv.type.pointee == ir.F32
        assert gv.size_bytes == 32

    def test_scalar_global(self):
        gv = ir.GlobalVariable("c", ir.I32, ir.MemSpace.SHARED)
        assert gv.type.pointee == ir.I32
        assert gv.size_bytes == 4

    def test_builtin_short(self):
        bv = ir.BuiltinValue("tid.x", ir.U32)
        assert bv.short() == "$tid.x"


class TestModule:
    def test_duplicate_function_rejected(self):
        m = ir.Module()
        ft = ir.FunctionType(ir.VOID, ())
        m.add_function(ir.Function("k", ft, [], is_kernel=True))
        with pytest.raises(ValueError):
            m.add_function(ir.Function("k", ft, []))

    def test_duplicate_global_rejected(self):
        m = ir.Module()
        m.add_global(ir.GlobalVariable("g", ir.I32, ir.MemSpace.SHARED))
        with pytest.raises(ValueError):
            m.add_global(ir.GlobalVariable("g", ir.I32,
                                           ir.MemSpace.SHARED))

    def test_get_kernel_requires_unique(self):
        m = ir.Module()
        ft = ir.FunctionType(ir.VOID, ())
        m.add_function(ir.Function("a", ft, [], is_kernel=True))
        m.add_function(ir.Function("b", ft, [], is_kernel=True))
        with pytest.raises(ValueError):
            m.get_kernel()
        assert m.get_kernel("a").name == "a"

    def test_get_kernel_rejects_device_fn(self):
        m = ir.Module()
        ft = ir.FunctionType(ir.VOID, ())
        m.add_function(ir.Function("helper", ft, [], is_kernel=False))
        with pytest.raises(KeyError):
            m.get_kernel("helper")

    def test_block_append_after_terminator_rejected(self):
        m = ir.Module()
        ft = ir.FunctionType(ir.VOID, ())
        fn = m.add_function(ir.Function("k", ft, [], is_kernel=True))
        block = fn.new_block("entry")
        block.append(ir.Ret())
        with pytest.raises(ValueError):
            block.append(ir.Ret())
