"""Golden-structure tests: the §V Example 2 bytecode shape is pinned.

Not a byte-for-byte snapshot (register numbering may drift) but the
structural facts the paper's walkthrough depends on.
"""
import re

import pytest

from repro import ir
from repro.frontend import compile_source
from repro.kernels.paper_examples import REDUCTION
from repro.passes import standard_pipeline


@pytest.fixture(scope="module")
def reduction_ir():
    module = compile_source(REDUCTION.source)
    standard_pipeline().run(module)
    return module


def text_of(module):
    return ir.module_to_str(module)


class TestPaperExampleTwoBytecode:
    """§V Example 2's annotated bytecode, line by line."""

    def test_loop_counter_is_single_phi(self, reduction_ir):
        fn = reduction_ir.get_kernel()
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        #   %3 = phi [loop, 1] [if.end, %9]
        incoming_values = [v for _, v in phis[0].incoming]
        consts = [v for v in incoming_values
                  if isinstance(v, ir.Constant)]
        assert consts and consts[0].value == 1  # s starts at 1

    def test_loop_structure(self, reduction_ir):
        text = text_of(reduction_ir)
        #   %2 = cmp lt %1 bdim.x ; s < bdim.x?
        assert re.search(r"icmp ult %\w+, \$bdim\.x", text)
        #   %5 = mod tid %4 ; tid % (2*s)
        assert re.search(r"urem \$tid\.x", text)
        #   %9 = mul %3 2 ; s *= 2
        assert re.search(r"mul %\w+, 2", text)
        #   call __syncthreads ; barrier
        assert "syncthreads" in text
        assert text.count("syncthreads") == 2  # one explicit + loop body

    def test_shared_accesses(self, reduction_ir):
        text = text_of(reduction_ir)
        #   %8 = load sdata %7 / store sdata tid %8
        assert re.search(r"getelptr @sdata, \$tid\.x x 4", text)
        #   tid + s for the partner element
        assert re.search(r"add \$tid\.x, %\w+", text)

    def test_branch_targets_match_source_structure(self, reduction_ir):
        fn = reduction_ir.get_kernel()
        names = {b.name.split(".")[0] for b in fn.blocks}
        assert {"entry", "for", "if"} <= {n.split(".")[0] for n in
                                          {b.name for b in fn.blocks}} \
            or {"entry"} <= names

    def test_memory_spaces(self, reduction_ir):
        gv = reduction_ir.globals["sdata"]
        assert gv.space == ir.MemSpace.SHARED
        fn = reduction_ir.get_kernel()
        for arg in fn.args:
            assert arg.type.space == ir.MemSpace.GLOBAL


class TestStability:
    def test_compilation_is_deterministic(self):
        m1 = compile_source(REDUCTION.source)
        m2 = compile_source(REDUCTION.source)
        standard_pipeline().run(m1)
        standard_pipeline().run(m2)
        assert ir.module_to_str(m1) == ir.module_to_str(m2)
