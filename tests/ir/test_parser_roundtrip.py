"""Printer ↔ parser round-trip over the whole kernel suite."""
import pytest

from repro.frontend import compile_source
from repro.ir import function_to_str, module_to_str, parse_module
from repro.kernels import ALL_KERNELS
from repro.passes import standard_pipeline


def roundtrip(module):
    text1 = module_to_str(module)
    module2 = parse_module(text1, name=module.name)
    text2 = module_to_str(module2)
    return text1, text2, module2


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_roundtrip_stable(name):
    k = ALL_KERNELS[name]
    module = compile_source(k.source)
    standard_pipeline().run(module)
    text1, text2, module2 = roundtrip(module)
    assert text1 == text2, f"{name} round-trip changed the IR"


def test_roundtrip_preserves_structure():
    k = ALL_KERNELS["reduction"]
    module = compile_source(k.source)
    standard_pipeline().run(module)
    _, _, module2 = roundtrip(module)
    fn1 = module.get_kernel()
    fn2 = module2.get_kernel()
    assert len(fn1.blocks) == len(fn2.blocks)
    assert [b.name for b in fn1.blocks] == [b.name for b in fn2.blocks]
    assert sum(1 for _ in fn1.instructions()) == \
        sum(1 for _ in fn2.instructions())


def test_parsed_module_analyzable():
    """A parsed module feeds straight into the analysis pipeline."""
    from repro.core import SESA, LaunchConfig
    source = """
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}
"""
    module = compile_source(source)
    standard_pipeline().run(module)
    module2 = parse_module(module_to_str(module))
    report = SESA(module2).check(LaunchConfig(block_dim=64,
                                              check_oob=False))
    assert report.has_races


def test_hand_written_ir():
    """The parser is usable to author IR tests directly."""
    module = parse_module("""
@s: [64 x i32] [shared]

kernel void @k() {
entry:
  %p = getelptr @s, $tid.x x 4
  store 1, %p
  ret
}
""")
    fn = module.get_kernel("k")
    assert fn.is_kernel
    assert len(fn.blocks) == 1
    from repro.core import SESA, LaunchConfig
    report = SESA(module).check(LaunchConfig(block_dim=16))
    assert not report.has_races


def test_parse_errors():
    from repro.ir import IRParseError
    with pytest.raises(IRParseError):
        parse_module("kernel void @k() {\nentry:\n  bogus %x\n}")
    with pytest.raises(IRParseError):
        parse_module("what is this")
