"""Flow combining must not change verdicts (the §III soundness story).

SESA's merged execution and GKLEEp's split execution are two evaluation
strategies for the same parametric semantics; on resolvable kernels they
must produce identical race verdicts. Property-tested over generated
divergent kernels.
"""
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import GKLEEp, SESA, LaunchConfig


def verdicts(source: str, block: int = 8):
    sesa = SESA.from_source(source).check(
        LaunchConfig(block_dim=block, check_oob=False))
    gkleep = GKLEEp.from_source(source).check(
        LaunchConfig(block_dim=block, check_oob=False,
                     symbolic_inputs=set()))
    return sesa, gkleep


# building blocks for random divergent kernels over tid
CONDS = ["threadIdx.x % 2 == 0", "threadIdx.x < 4", "(threadIdx.x & 2) != 0",
         "threadIdx.x > 5"]
WRITES = ["s[threadIdx.x] = {v};", "s[threadIdx.x * 2] = {v};",
          "s[threadIdx.x / 2] = {v};", "s[(threadIdx.x + 1) % 8] = {v};"]


@st.composite
def divergent_kernels(draw):
    parts = ["__shared__ int s[64];", "__global__ void k() {"]
    n_branches = draw(st.integers(1, 3))
    for i in range(n_branches):
        cond = draw(st.sampled_from(CONDS))
        then_w = draw(st.sampled_from(WRITES)).format(v=i * 2)
        has_else = draw(st.booleans())
        parts.append(f"  if ({cond}) {{ {then_w} }}")
        if has_else:
            else_w = draw(st.sampled_from(WRITES)).format(v=i * 2 + 1)
            parts.append(f"  else {{ {else_w} }}")
    parts.append("}")
    return "\n".join(parts)


@settings(max_examples=25, deadline=None)
@given(source=divergent_kernels())
def test_merged_equals_split_verdict(source):
    sesa, gkleep = verdicts(source)
    assert sesa.has_races == gkleep.has_races, source


@settings(max_examples=15, deadline=None)
@given(source=divergent_kernels())
def test_sesa_never_more_flows(source):
    sesa, gkleep = verdicts(source)
    assert sesa.max_flows <= gkleep.max_flows, source
    assert sesa.max_flows == 1  # diamonds always merge


class TestMergedValuesSound:
    """The merged state must be exact: a value race depending on which
    arm executed must still be detected through the ite."""

    def test_value_dependent_address_after_merge(self):
        # the arm result feeds an address AFTER the merge point
        source = """
__shared__ int s[64];
__global__ void k() {
  unsigned idx;
  if (threadIdx.x % 2 == 0) { idx = threadIdx.x; }
  else { idx = threadIdx.x / 4; }
  s[idx] = (int)threadIdx.x;
}
"""
        sesa, gkleep = verdicts(source)
        # t=1 -> idx 0, t=0 -> idx 0: genuine WW race; both engines agree
        assert sesa.has_races and gkleep.has_races

    def test_merge_preserves_race_freedom(self):
        source = """
__shared__ int s[64];
__global__ void k() {
  unsigned idx;
  if (threadIdx.x % 2 == 0) { idx = threadIdx.x; }
  else { idx = threadIdx.x + 32; }
  s[idx & 63] = 1;
}
"""
        sesa, gkleep = verdicts(source)
        # even tids write [even], odd write [odd+32 (odd)]: all distinct...
        # (t even -> t; t odd -> t+32 which is odd+32: t=1->33, t=33? block
        # is 8 threads so values stay distinct)
        assert sesa.has_races == gkleep.has_races
