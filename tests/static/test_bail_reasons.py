"""Static-tier escalation: one test per prescreen bail reason.

Each prescreen condition must (a) escalate the kernel to the
parametric engine and (b) surface its exact reason string as
``static_bail_reason`` in the report JSON — the field batch/daemon
telemetry and the tier dashboards key on.
"""
import json

from repro.core import SESA, LaunchConfig
from repro.smt import mk_bv, mk_bv_var, mk_ult
from repro.sym.swarm import ShardSelector

# a kernel the static tier resolves trivially when nothing bails
EASY = "__global__ void k(int *a) { a[threadIdx.x] = threadIdx.x; }"


def _bail_reason(source=EASY, config=None, **check_kwargs):
    report = SESA.from_source(source).check(
        config or LaunchConfig(), **check_kwargs)
    data = report.to_dict()
    stats = data["check_stats"]
    json.dumps(data)  # the reason must survive serialisation
    assert stats["tier"] == "parametric", \
        "expected escalation, static tier resolved it"
    assert stats["static_resolved"] == 0
    return stats["static_bail_reason"]


def test_baseline_easy_kernel_resolves_statically():
    report = SESA.from_source(EASY).check(LaunchConfig())
    stats = report.to_dict()["check_stats"]
    assert stats["tier"] == "static"
    assert stats["static_bail_reason"] is None


def test_swarm_shard_bails():
    shard = ShardSelector(index=0, count=2, total_pairs=2,
                          ranges=((0, 1),), check_aux=True)
    assert _bail_reason(config=LaunchConfig(shard=shard)) == \
        "swarm shard"


def test_user_assumptions_bail():
    tid = mk_bv_var("tid.x", 32)
    config = LaunchConfig(assumptions=[mk_ult(tid, mk_bv(16, 32))])
    assert _bail_reason(config=config) == "user assumptions"


def test_warp_lockstep_bails():
    config = LaunchConfig(warp_lockstep=True, warp_size=32)
    assert _bail_reason(config=config) == "warp lockstep"


def test_time_budget_bails():
    config = LaunchConfig(time_budget_seconds=60.0)
    assert _bail_reason(config=config) == "time budget"


def test_solver_budget_override_on_config_bails():
    config = LaunchConfig(solver_conflict_budget=10)
    assert _bail_reason(config=config) == "solver budget override"


def test_solver_budget_override_on_call_bails():
    assert _bail_reason(solver_budget=50_000) == \
        "solver budget override"


def test_atomic_bails():
    source = "__global__ void k(int *c) { atomicAdd(&c[0], 1); }"
    assert _bail_reason(source=source) == "atomic"


def test_assertion_bails():
    source = ("__global__ void k(int *a) {\n"
              "  assert(threadIdx.x < 64u);\n"
              "  a[threadIdx.x] = 1;\n"
              "}")
    assert _bail_reason(source=source) == "assertion"


def test_divergent_flow_split_bails_during_walk():
    # no prescreen trigger: a barrier inside a divergent arm makes the
    # diamond non-mergeable, so the walker itself has to split
    source = ("__global__ void k(int *a) {\n"
              "  if (threadIdx.x < 4) {\n"
              "    a[threadIdx.x] = 1;\n"
              "    __syncthreads();\n"
              "    a[threadIdx.x] = 2;\n"
              "  }\n"
              "}")
    assert _bail_reason(source=source) == "divergent flow split"
