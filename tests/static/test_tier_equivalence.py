"""Tier equivalence: the static pre-screening tier may never change a
verdict the full engine would produce.

Every built-in suite runs through SESA twice — static tier on (the
default) and off — and the deduplicated verdict sets must be
identical. On top of the fixed corpora, a hypothesis property drives
randomly generated affine kernels through both pipelines: whatever the
tier resolves, the solver-backed engine must agree with, and a
statically resolved kernel must have issued zero solver queries.
"""
import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import SESA
from repro.service.corpus import SUITES, spec_from_kernel
from repro.sym import LaunchConfig

ALL_KERNELS = [(suite, kernel) for suite, kernels in sorted(SUITES.items())
               for kernel in kernels]


def _signature(report):
    races = sorted(set(
        (r.kind, r.obj_name, r.access1.loc, r.access2.loc,
         r.benign, r.unresolvable) for r in report.races))
    oobs = sorted(set((o.obj_name, o.access.loc) for o in report.oobs))
    asserts = sorted(set(a.loc for a in report.assertion_failures))
    return (races, oobs, asserts, report.timed_out)


def _check_both(source, kernel_name, config_factory, max_reports=16):
    """One kernel through both pipelines; returns (tiered report,
    single-tier report) after asserting the equivalence contract."""
    tool = SESA.from_source(source, kernel_name)
    tiered = tool.check(config_factory(), max_reports=max_reports)
    mono_config = config_factory()
    mono_config.static_tier = False
    mono = SESA.from_source(source, kernel_name).check(
        mono_config, max_reports=max_reports)
    assert _signature(tiered) == _signature(mono), \
        "static tier changed a verdict"
    cs = tiered.check_stats
    if cs.tier == "static":
        assert cs.queries == 0, "static verdict touched the solver"
        assert cs.static_resolved == 1
        assert cs.static_bail_reason is None
    else:
        # the tier ran (default-on) and escalated: the reason is kept
        assert cs.static_bail_reason is not None
    # the single-tier pipeline never reports tier bookkeeping
    assert mono.check_stats.tier == "parametric"
    assert mono.check_stats.static_resolved == 0
    return tiered, mono


@pytest.mark.parametrize(
    "suite,kernel", ALL_KERNELS,
    ids=[f"{s}/{k.name}" for s, k in ALL_KERNELS])
def test_builtin_suite_equivalence(suite, kernel):
    spec = spec_from_kernel(kernel, suite=suite)
    _check_both(spec.source, spec.kernel_name, spec.launch_config)


def test_escalation_records_reason():
    """An atomic kernel escapes the decidable fragment in prescreen —
    cheaply, before any walk — and the reason lands in the stats."""
    source = """
__global__ void k(unsigned *g) {
  atomicAdd(&g[threadIdx.x & 7], 1);
}
"""
    tool = SESA.from_source(source)
    report = tool.check(LaunchConfig(grid_dim=1, block_dim=8))
    cs = report.check_stats
    assert cs.tier == "parametric"
    assert cs.static_resolved == 0
    assert cs.static_bail_reason == "atomic"


def test_disabled_tier_runs_single_pipeline():
    source = """
__global__ void k(int *out) {
  out[threadIdx.x] = threadIdx.x;
}
"""
    config = LaunchConfig(grid_dim=1, block_dim=8, static_tier=False)
    report = SESA.from_source(source).check(config)
    cs = report.check_stats
    assert cs.tier == "parametric"
    assert cs.static_resolved == 0
    assert cs.static_bail_reason is None
    assert cs.static_seconds == 0.0


# ---------------------------------------------------------------------------
# property: random affine kernels
# ---------------------------------------------------------------------------

AFFINE_IDX = ["threadIdx.x", "threadIdx.x + 1", "threadIdx.x * 2",
              "threadIdx.x * 2 + 1", "15 - threadIdx.x",
              "blockIdx.x * blockDim.x + threadIdx.x",
              "threadIdx.x + 8 * blockIdx.x"]
AFFINE_VAL = ["0", "1", "threadIdx.x", "threadIdx.x + blockIdx.x",
              "threadIdx.x * 3"]


@st.composite
def affine_programs(draw):
    n = draw(st.integers(1, 4))
    stmts = []
    for _ in range(n):
        kind = draw(st.sampled_from(["store", "load", "sync"]))
        if kind == "store":
            idx = draw(st.sampled_from(AFFINE_IDX))
            val = draw(st.sampled_from(AFFINE_VAL))
            stmts.append(f"s[({idx}) & 15] = (int)({val});")
        elif kind == "load":
            idx = draw(st.sampled_from(AFFINE_IDX))
            stmts.append(f"i = s[({idx}) & 15] + i;")
        else:
            stmts.append("__syncthreads();")
    body = "\n  ".join(stmts)
    return f"""
__shared__ int s[16];
__global__ void k(int *out) {{
  int i = 0;
  {body}
  out[blockIdx.x * blockDim.x + threadIdx.x] = i;
}}
"""


@settings(max_examples=30, deadline=None)
@given(source=affine_programs())
def test_affine_property_tier_never_contradicts_engine(source):
    def config():
        return LaunchConfig(grid_dim=2, block_dim=8)
    tiered, _mono = _check_both(source, None, config, max_reports=8)
    # these kernels are squarely inside the decidable fragment: pure
    # affine addressing, concrete guards, no atomics or symbolic scalars
    assert tiered.check_stats.tier == "static", \
        tiered.check_stats.static_bail_reason
