"""Comparator engine tests: GKLEEp and the GKLEE oracle."""
import pytest

from repro.core import GKLEE, GKLEEp, SESA, LaunchConfig

RACY = """
__shared__ int v[64];
__global__ void race() {
  v[threadIdx.x] = v[(threadIdx.x + 1) % blockDim.x];
}
"""

DIVERGENT = """
__shared__ int s[64];
__global__ void k(int *in) {
  unsigned v = 0;
  unsigned d = (unsigned)in[threadIdx.x];
  if ((d & 1u) != 0) { v = v + 1; }
  if ((d & 2u) != 0) { v = v + 2; }
  if ((d & 4u) != 0) { v = v + 4; }
  s[threadIdx.x] = v;
}
"""


class TestGKLEEp:
    def test_finds_the_same_race_as_sesa(self):
        cfg = LaunchConfig(block_dim=16, check_oob=False)
        sesa = SESA.from_source(RACY).check(cfg)
        cfg2 = LaunchConfig(block_dim=16, check_oob=False)
        gkleep = GKLEEp.from_source(RACY).check(cfg2)
        assert sesa.has_races and gkleep.has_races

    def test_symbolises_everything_by_default(self):
        tool = GKLEEp.from_source(DIVERGENT)
        assert tool.default_symbolic_inputs() == {"in"}

    def test_flow_explosion_on_divergence(self):
        cfg = LaunchConfig(block_dim=16, check_oob=False)
        report = GKLEEp.from_source(DIVERGENT).check(cfg)
        # 3 independent input bits -> 8 flows
        assert report.max_flows == 8

    def test_sesa_merges_the_same_kernel(self):
        cfg = LaunchConfig(block_dim=16, check_oob=False)
        report = SESA.from_source(DIVERGENT).check(cfg)
        assert report.max_flows == 1

    def test_flow_combining_disabled(self):
        cfg = LaunchConfig(block_dim=16, check_oob=False)
        report = GKLEEp.from_source(DIVERGENT).check(cfg)
        assert report.mode == "gkleep"
        assert not cfg.flow_combining


class TestGKLEEOracle:
    def test_finds_races_with_pinned_threads(self):
        cfg = LaunchConfig(block_dim=4, check_oob=False)
        report = GKLEE.from_source(RACY).check(cfg)
        assert report.has_races
        # the witness threads are concrete and distinct
        race = report.races[0]
        assert race.witness.thread1 != race.witness.thread2

    def test_clean_kernel_clean(self):
        cfg = LaunchConfig(block_dim=4)
        report = GKLEE.from_source("""
__global__ void k(int *a) { a[threadIdx.x] = 1; }
""").check(cfg)
        assert not report.has_races

    def test_mode_tag(self):
        cfg = LaunchConfig(block_dim=2)
        report = GKLEE.from_source(RACY).check(cfg)
        assert report.mode == "gklee"


class TestEngineAgreement:
    """All three engines agree on the §II example's verdict."""

    @pytest.mark.parametrize("engine_cls", [SESA, GKLEEp, GKLEE])
    def test_racy_verdict(self, engine_cls):
        cfg = LaunchConfig(block_dim=4, check_oob=False)
        report = engine_cls.from_source(RACY).check(cfg)
        assert report.has_races, engine_cls.__name__

    @pytest.mark.parametrize("engine_cls", [SESA, GKLEEp, GKLEE])
    def test_clean_verdict(self, engine_cls):
        cfg = LaunchConfig(block_dim=4, check_oob=False)
        report = engine_cls.from_source("""
__shared__ int v[64];
__global__ void k() { v[threadIdx.x] = 1; }
""").check(cfg)
        assert not report.has_races, engine_cls.__name__
