"""Ablation — taint-guided input concretisation (DESIGN.md).

SESA's second innovation: inputs that never reach a sensitive sink are
concretised. This bench runs the same kernels with (a) the inferred
symbolic set and (b) everything symbolic, and reports time and solver
effort. The verdict must not change on resolvable kernels (that is the
§V guarantee); the cost difference is the Table I speed story.
"""
import time

import pytest

from common import print_table
from repro.core import SESA
from repro.kernels import ALL_KERNELS

# kernels where over-symbolising is costly but tractable. matrixMul-class
# kernels (symbolic dimension scalars multiplying into every address) are
# deliberately excluded here: their all-symbolic cost is the pathological
# case Table I's budgeted GKLEEp comparison already demonstrates.
KERNELS = ["vectorAdd", "scan_short", "fastWalsh", "histogram64",
           "matrixMul"]
#: kernels where unconstrained over-symbolising *corrupts* the verdict
#: (spurious collisions like wB = 0 — the paper's §VI-A observation that
#: "constraints on the symbolic inputs must be set properly"; GKLEEp
#: crashed on scalarProd for this reason). Excluded from the
#: verdict-equality assertion; their cost blow-up is the headline.
VERDICT_EXEMPT = {"matrixMul"}
RESULTS = {}


def run_variant(name: str, all_symbolic: bool):
    kernel = ALL_KERNELS[name]
    config = kernel.launch_config(time_budget_seconds=45.0)
    tool = SESA.from_source(kernel.source, kernel.kernel_name)
    if all_symbolic:
        config.symbolic_inputs = {
            a.name for a in tool.kernel.args}
    start = time.perf_counter()
    report = tool.check(config)
    return dict(
        seconds=time.perf_counter() - start,
        queries=report.check_stats.queries,
        races=report.has_races,
        timed_out=report.timed_out,
        n_sym=len(config.symbolic_inputs),
    )


@pytest.mark.parametrize("mode", ["inferred", "all-symbolic"])
@pytest.mark.parametrize("name", KERNELS)
def test_variant(benchmark, name, mode):
    RESULTS[(name, mode)] = benchmark.pedantic(
        lambda: run_variant(name, mode == "all-symbolic"),
        rounds=1, iterations=1)


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in KERNELS:
        inf = RESULTS.get((name, "inferred"))
        alls = RESULTS.get((name, "all-symbolic"))
        if inf is None or alls is None:
            pytest.skip("run the full module for the report")
        # §V guarantee: concretising non-sink inputs never changes the
        # race verdict (on resolvable kernels, absent input constraints)
        if name not in VERDICT_EXEMPT:
            assert inf["races"] == alls["races"], name
        all_cell = ">45.00 (budget)" if alls["timed_out"] \
            else f"{alls['seconds']:.2f}"
        note = "spurious races!" if name in VERDICT_EXEMPT \
            and alls["races"] != inf["races"] else ""
        rows.append([
            name, inf["n_sym"], alls["n_sym"],
            f"{inf['seconds']:.2f}", all_cell,
            f"{alls['seconds'] / max(inf['seconds'], 1e-9):.0f}x {note}",
        ])
    print_table(
        "Ablation: taint-guided concretisation (same verdicts)",
        ["Kernel", "#sym (inferred)", "#sym (all)", "s (inferred)",
         "s (all)", "cost of over-symbolising"],
        rows)
