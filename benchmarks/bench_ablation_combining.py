"""Ablation — flow combining (DESIGN.md).

Three engine configurations on the same kernels:

* full SESA (diamond merging + taint-guided value dropping),
* SESA without the taint hint (merging builds precise ``ite`` values for
  *every* merged register — correct but larger terms),
* GKLEEp (no merging at all).

The paper's claim being isolated: merging is what prevents the flow
explosion; the taint hint additionally shrinks the terms the solver sees.
"""
import time

import pytest

from common import GKLEEP_FLOW_BUDGET, GKLEEP_STEP_BUDGET, print_table
from repro.core import GKLEEp, SESA
from repro.kernels import ALL_KERNELS
from repro.smt import term_size

KERNELS = ["reduction", "bitonic2.0", "mergeSort4.3"]
RESULTS = {}


def run_variant(name: str, variant: str):
    kernel = ALL_KERNELS[name]
    config = kernel.launch_config(block_dim=(16, 1, 1), check_oob=False)
    start = time.perf_counter()
    if variant == "gkleep":
        config.max_flows = GKLEEP_FLOW_BUDGET
        config.max_steps = GKLEEP_STEP_BUDGET
        report = GKLEEp.from_source(kernel.source,
                                    kernel.kernel_name).check(config)
    else:
        if variant == "no-hint":
            config.flow_combining = False  # merge, but no value dropping
        report = SESA.from_source(kernel.source,
                                  kernel.kernel_name).check(config)
    seconds = time.perf_counter() - start
    ex = report.execution
    sizes = [term_size(a.cond) + term_size(a.offset)
             for s in ex.bi_access_sets for a in s]
    return dict(flows=ex.max_flows, seconds=seconds,
                timed_out=ex.timed_out,
                avg_term=sum(sizes) / max(len(sizes), 1),
                races=report.has_races)


@pytest.mark.parametrize("variant", ["sesa", "no-hint", "gkleep"])
@pytest.mark.parametrize("name", KERNELS)
def test_variant(benchmark, name, variant):
    RESULTS[(name, variant)] = benchmark.pedantic(
        lambda: run_variant(name, variant), rounds=1, iterations=1)


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in KERNELS:
        row = [name]
        for variant in ("gkleep", "no-hint", "sesa"):
            r = RESULTS.get((name, variant))
            if r is None:
                pytest.skip("run the full module for the report")
            cell = "T.O." if r["timed_out"] else \
                f"{r['flows']}f/{r['seconds']:.1f}s"
            row.append(cell)
        sesa = RESULTS[(name, "sesa")]
        nohint = RESULTS[(name, "no-hint")]
        row.append(f"{nohint['avg_term']:.0f}->{sesa['avg_term']:.0f}")
        rows.append(row)
    print_table(
        "Ablation: flow combining and the taint merge-hint",
        ["Kernel", "no merging", "merge (no hint)", "full SESA",
         "avg term size"],
        rows)
    for name in KERNELS:
        # merging (either variant) must beat no-merging on flows
        assert RESULTS[(name, "sesa")]["flows"] <= \
            RESULTS[(name, "gkleep")]["flows"]
        # verdicts agree between hint/no-hint
        assert RESULTS[(name, "sesa")]["races"] == \
            RESULTS[(name, "no-hint")]["races"]
