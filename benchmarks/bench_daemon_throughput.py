"""Daemon throughput bench — jobs/sec of the leased worker fleet.

Runs the paper suite through the in-process :class:`Daemon` (durable
SQLite queue + N leased workers, no HTTP in the hot path) at several
fleet sizes and records end-to-end throughput; a final warm-cache run
measures the queue's fixed overhead when every verdict is a cache hit.
The EXPERIMENTS.md "service throughput" table is generated from the
``BENCH_daemon_throughput.json`` payload.

Acceptance gates:

* every submitted job ends ``done`` at every fleet size (no verdict is
  lost to lease churn under full parallel load);
* verdicts are identical across fleet sizes (scheduling never changes
  the analysis);
* the warm-cache pass does zero solver work (``cached`` on every job)
  and is not slower than the coldest configured run.
"""
import json
import os
import shutil
import tempfile
import time

from repro.service.corpus import builtin_jobs
from repro.service.daemon import Daemon
from repro.service.jobs import JobState

from common import print_table

WORKER_COUNTS = (1, 2, 4)
SUITE = "paper"

RESULTS = {}


def run_fleet(workers, cache_dir=None, label=None):
    """One cold (or warm, with a shared *cache_dir*) daemon run of the
    suite; returns {label, workers, jobs, wall_s, jobs_per_sec,
    verdicts, cached}."""
    specs = builtin_jobs(SUITE)
    tmp = tempfile.mkdtemp(prefix="bench-daemon-")
    daemon = Daemon(db_path=os.path.join(tmp, "queue.sqlite3"),
                    cache_dir=cache_dir or os.path.join(tmp, "cache"),
                    workers=workers, lease_ttl=60.0,
                    poll_interval=0.01, sample_interval=3600.0)
    daemon.start(serve_http=False)
    try:
        start = time.perf_counter()
        submitted = {spec.job_id: daemon.submit_spec(spec)["job_id"]
                     for spec in specs}
        assert daemon.wait_idle(timeout=600.0), \
            f"queue did not drain with {workers} worker(s)"
        wall = time.perf_counter() - start
        rows = {name: daemon.store.get(job_id)
                for name, job_id in submitted.items()}
        assert all(r.state == JobState.DONE for r in rows.values()), \
            {n: (r.state, r.error) for n, r in rows.items()
             if r.state != JobState.DONE}
        return {
            "label": label or f"{workers}w",
            "workers": workers,
            "jobs": len(rows),
            "wall_s": round(wall, 3),
            "jobs_per_sec": round(len(rows) / wall, 3),
            "cached": sum(1 for r in rows.values()
                          if r.result.get("cached")),
            "verdicts": {n: _strip_timing(r.result["verdict"])
                         for n, r in rows.items()},
        }
    finally:
        daemon.stop()
        if cache_dir is None:
            shutil.rmtree(tmp, ignore_errors=True)


def _strip_timing(value):
    if isinstance(value, dict):
        return {k: _strip_timing(v) for k, v in value.items()
                if not k.endswith("seconds")}
    if isinstance(value, list):
        return [_strip_timing(v) for v in value]
    return value


def test_throughput_scaling(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    runs = [run_fleet(n) for n in WORKER_COUNTS]

    # scheduling must never change the analysis
    baseline = runs[0]["verdicts"]
    for run in runs[1:]:
        assert run["verdicts"] == baseline, \
            f"verdicts changed at {run['workers']} workers"

    # warm-cache pass: same suite against a pre-populated cache —
    # the queue's fixed overhead, zero solver work
    warm_tmp = tempfile.mkdtemp(prefix="bench-daemon-warm-")
    try:
        cache_dir = os.path.join(warm_tmp, "cache")
        cold = run_fleet(2, cache_dir=cache_dir, label="2w cold")
        warm = run_fleet(2, cache_dir=cache_dir, label="2w warm cache")
    finally:
        shutil.rmtree(warm_tmp, ignore_errors=True)
    assert warm["cached"] == warm["jobs"], \
        "warm run did solver work despite a populated cache"
    assert warm["verdicts"] == cold["verdicts"]
    assert warm["wall_s"] <= max(r["wall_s"] for r in runs), \
        "cache-hit pass slower than the slowest cold run"

    RESULTS["runs"] = [dict(r, verdicts=None) for r in runs + [warm]]


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "runs" not in RESULTS:
        import pytest
        pytest.skip("run the full module for the report")
    runs = RESULTS["runs"]
    print_table(
        f"daemon throughput over builtin:{SUITE} "
        f"({runs[0]['jobs']} jobs)",
        ["config", "workers", "jobs", "wall s", "jobs/s", "cached"],
        [[r["label"], r["workers"], r["jobs"], f"{r['wall_s']:.2f}",
          f"{r['jobs_per_sec']:.2f}", r["cached"]] for r in runs])
    payload = {"suite": SUITE, "worker_counts": list(WORKER_COUNTS),
               "runs": runs}
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_daemon_throughput.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
