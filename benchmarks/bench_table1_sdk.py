"""Table I — CUDA SDK non-divergent kernels.

Paper's claims reproduced here:
* SESA infers **0** symbolic inputs for every kernel (vs the 1-2 a
  GKLEEp user must pick);
* both engines explore **one flow** (the kernels are non-divergent);
* no races are found;
* SESA is at least as fast (dramatically so for matrixMul-style kernels,
  where fewer symbolic inputs shrink every solver query).

Thread counts are the paper's full configurations — parametric execution
makes the analysis cost independent of the thread count, which is itself
one of the paper's headline properties.
"""
import pytest

from common import print_table, run_gkleep, run_sesa
from repro.kernels import ALL_KERNELS

KERNELS = ["vectorAdd", "clock", "matrixMul", "scan_short", "scan_large",
           "scalarProd", "transpose", "fastWalsh"]

RESULTS = {}


@pytest.mark.parametrize("name", KERNELS)
def test_sesa(benchmark, name):
    kernel = ALL_KERNELS[name]
    result = benchmark.pedantic(
        lambda: run_sesa(kernel), rounds=1, iterations=1)
    RESULTS[("sesa", name)] = result
    # the paper's structural facts
    assert result.symbolic_inputs == 0, \
        f"{name}: SESA must concretise all inputs (Table I)"
    assert result.flows == 1
    assert not any("OOB" == i or i in ("RW", "WW") for i in result.issues), \
        f"{name}: Table I kernels are clean, got {result.issues}"


@pytest.mark.parametrize("name", KERNELS)
def test_gkleep(benchmark, name):
    kernel = ALL_KERNELS[name]
    result = benchmark.pedantic(
        lambda: run_gkleep(kernel), rounds=1, iterations=1)
    RESULTS[("gkleep", name)] = result


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in KERNELS:
        s = RESULTS.get(("sesa", name))
        g = RESULTS.get(("gkleep", name))
        if s is None or g is None:
            pytest.skip("run the full module for the report")
        rows.append([
            name, f"{s.threads:,}",
            f"{g.symbolic_inputs}/{g.total_inputs}", f"{g.seconds:.2f}",
            f"{s.symbolic_inputs}/{s.total_inputs}", f"{s.seconds:.2f}",
        ])
    print_table(
        "Table I: CUDA SDK non-divergent kernels (no races found)",
        ["Kernel", "#Threads", "GKLEEp #In", "GKLEEp s",
         "SESA #In", "SESA s"],
        rows)
    # aggregate claim: SESA's input reduction never loses the clean verdict
    assert all(RESULTS[("sesa", n)].symbolic_inputs == 0 for n in KERNELS)
