"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation (§VI). The harness prints rows in the paper's format; wall
clock is measured on this host, so *absolute* numbers differ from the
2.4 GHz Xeon of 2014 — the asserted reproduction targets are the
structural facts (flow counts, symbolic-input counts, which bugs are
found, who wins and by roughly what factor).

GKLEEp time-outs: the paper capped runs at 3,600 s. Here the comparator
gets a work budget (flow count / interpreter steps) calibrated so that a
run the paper calls "T.O." exhausts the budget within seconds; such runs
are printed as ``T.O.`` exactly like the paper.
"""
from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import GKLEEp, SESA, AnalysisReport
from repro.kernels import ALL_KERNELS, Kernel
from repro.kernels.lonestar import attach_concrete_graph

#: budgets standing in for the paper's 3,600 s wall-clock cap
GKLEEP_FLOW_BUDGET = 96
GKLEEP_STEP_BUDGET = 400_000
GKLEEP_TIME_BUDGET = 15.0      # seconds: the comparator's "T.O." line
SESA_TIME_BUDGET = 150.0


@dataclass
class RunResult:
    engine: str
    kernel: str
    threads: int
    seconds: float
    flows: int
    timed_out: bool
    issues: List[str]
    symbolic_inputs: Optional[int] = None
    total_inputs: Optional[int] = None
    resolvable: str = "?"

    @property
    def cell(self) -> str:
        """Table II-style cell: 'flows (secs)' or 'T.O.'."""
        if self.timed_out:
            return "T.O."
        return f"{self.flows} ({self.seconds:.1f})"


def lonestar_config(kernel: Kernel, config) -> None:
    """Attach the synthetic CSR graph (the paper's concrete inputs)."""
    attach_concrete_graph(config)


def run_sesa(kernel: Kernel, grid=None, block=None,
             concrete_inputs: bool = False, **overrides) -> RunResult:
    config = kernel.launch_config(grid_dim=grid, block_dim=block,
                                  **overrides)
    if config.time_budget_seconds is None:
        config.time_budget_seconds = SESA_TIME_BUDGET
    if kernel.table.startswith("Table III"):
        lonestar_config(kernel, config)
    tool = SESA.from_source(kernel.source, kernel.kernel_name)
    if concrete_inputs:
        config.symbolic_inputs = set()
    start = time.perf_counter()
    report = tool.check(config)
    seconds = time.perf_counter() - start
    taint = tool.taint
    return RunResult(
        engine="SESA", kernel=kernel.name, threads=config.total_threads,
        seconds=seconds, flows=report.max_flows,
        timed_out=report.timed_out,
        issues=report.race_kinds() + (["OOB"] if report.oobs else []),
        symbolic_inputs=len(tool.inferred_symbolic_inputs()),
        total_inputs=len(taint.verdicts),
        resolvable=report.resolvable)


def run_gkleep(kernel: Kernel, grid=None, block=None,
               concrete_inputs: bool = False, **overrides) -> RunResult:
    config = kernel.launch_config(grid_dim=grid, block_dim=block,
                                  **overrides)
    config.max_flows = min(config.max_flows, GKLEEP_FLOW_BUDGET)
    config.max_steps = min(config.max_steps, GKLEEP_STEP_BUDGET)
    config.time_budget_seconds = GKLEEP_TIME_BUDGET
    # the per-kernel loop-split caps model SESA's §III-C loop-bound
    # concretisation; the comparator has no such mitigation
    config.max_loop_splits = GKLEEP_FLOW_BUDGET
    if kernel.table.startswith("Table III"):
        lonestar_config(kernel, config)
    tool = GKLEEp.from_source(kernel.source, kernel.kernel_name)
    if concrete_inputs:
        config.symbolic_inputs = set()
    start = time.perf_counter()
    report = tool.check(config)
    seconds = time.perf_counter() - start
    n_inputs = len(tool.default_symbolic_inputs())
    return RunResult(
        engine="GKLEEp", kernel=kernel.name, threads=config.total_threads,
        seconds=seconds, flows=report.max_flows,
        timed_out=report.timed_out,
        issues=report.race_kinds() + (["OOB"] if report.oobs else []),
        symbolic_inputs=0 if concrete_inputs else n_inputs,
        total_inputs=n_inputs,
        resolvable=report.resolvable)


def run_suite(kernels: Sequence[Kernel], engine: str = "sesa",
              jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              timeout: Optional[float] = None) -> Dict[str, "RunResult"]:
    """Run a list of benchmark kernels, optionally in parallel.

    With ``jobs > 1`` (or ``REPRO_BENCH_JOBS`` set in the environment)
    the kernels are fanned out through :mod:`repro.service` — each one
    an isolated, cacheable job — and the per-job records are folded
    back into the table harness's :class:`RunResult` shape. With one
    worker the classic sequential path (`run_sesa`/`run_gkleep`) runs
    unchanged.
    """
    if jobs is None:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0)
    if jobs <= 1:
        runner = run_sesa if engine == "sesa" else run_gkleep
        return {k.name: runner(k) for k in kernels}

    from repro.service import Scheduler, ResultCache, Telemetry, \
        spec_from_kernel
    specs = []
    for kernel in kernels:
        spec = spec_from_kernel(kernel, engine=engine, suite="bench")
        if engine == "sesa":
            spec.time_budget_seconds = timeout or SESA_TIME_BUDGET
        else:
            spec.time_budget_seconds = timeout or GKLEEP_TIME_BUDGET
            spec.max_flows = GKLEEP_FLOW_BUDGET
            spec.max_steps = GKLEEP_STEP_BUDGET
            spec.max_loop_splits = GKLEEP_FLOW_BUDGET
        specs.append(spec)
    sched = Scheduler(
        max_workers=jobs,
        cache=ResultCache(cache_dir) if cache_dir else None,
        telemetry=Telemetry())
    batch = sched.run(specs)
    out: Dict[str, RunResult] = {}
    for spec, job in zip(specs, batch.jobs):
        verdict = job.verdict or {}
        inputs = job.inputs or {}
        out[spec.meta["kernel"]] = RunResult(
            engine="SESA" if engine == "sesa" else "GKLEEp",
            kernel=spec.meta["kernel"],
            threads=spec.total_threads,
            seconds=verdict.get("elapsed_seconds", job.elapsed_seconds),
            flows=verdict.get("flows", 0),
            timed_out=(job.status == "timeout"
                       or bool(verdict.get("timed_out"))),
            issues=job.issue_tags(),
            symbolic_inputs=inputs.get("symbolic"),
            total_inputs=inputs.get("total"),
            resolvable=verdict.get("resolvable", "?"))
    return out


def print_table(title: str, header: List[str],
                rows: List[List[str]]) -> None:
    print()
    print(f"== {title} ==")
    widths = [max(len(str(r[i])) for r in [header] + rows)
              for i in range(len(header))]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def speedup(gkleep: RunResult, sesa: RunResult) -> str:
    """Fig. 6/7-style speedup; budget-exhausted runs are lower bounds."""
    if sesa.seconds <= 0:
        return "inf"
    factor = gkleep.seconds / sesa.seconds
    prefix = ">" if gkleep.timed_out else ""
    return f"{prefix}{factor:.1f}x"
