"""Ablation — pre-solver pruning pipeline on the race-check phase.

The pruning pipeline attacks candidate pairs before the solver sees
them: record-time summarization collapses affine access runs into a
single summarized access with a symbolic index, disjointness bucketing
partitions each barrier interval's accesses into provably
non-overlapping address buckets (interval byte footprints + affine
residue separation) so pairs are only generated within a bucket, and a
canonical pair memo keyed on interned (offset, cond, kind, size,
value) classes discharges isomorphic pairs once. The raw path
(``pair_pruning=False``) enumerates and solves every pair, as the
checker did before the pipeline existed.

This bench runs the paper + reductions suites through SESA both ways
and asserts the contract:

* every kernel's deduplicated verdict set (races/OOBs/assertions,
  incl. benign flags) is identical across the two modes —
  summarization may merge duplicate reports of the same race but may
  never add or drop a verdict;
* the pruned path issues at least 30% fewer solver queries than the
  raw path on the reductions suite (the unrolled-loop family the
  pipeline targets);
* the pruned path's total query count does not regress above the
  recorded baseline in ``BENCH_pruning_baseline.json`` (guards
  against bucket or memo keys silently breaking and pushing pairs
  back into the solver).

The per-mode counters land in ``BENCH_pruning.json`` (CI uploads it
as an artifact).
"""
import json
import os
import time

import pytest

from common import print_table
from repro.core import SESA
from repro.service.corpus import SUITES, spec_from_kernel

SUITE_NAMES = ("paper", "reductions")

#: the unrolled-loop family the acceptance gate is measured on
GATED_SUITE = "reductions"
GATE = 0.30

#: regression gate: pruned-mode solver queries may not exceed
#: baseline * SLACK
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_pruning_baseline.json")
SLACK = 1.25

RESULTS = {}


def _signature(report):
    # deduplicated sets: summarization merges same-instruction duplicate
    # reports, so multiplicity may differ — the verdict set may not
    races = sorted(set(
        (r.kind, r.obj_name, r.access1.loc, r.access2.loc,
         r.benign, r.unresolvable) for r in report.races))
    oobs = sorted(set((o.obj_name, o.access.loc) for o in report.oobs))
    asserts = sorted(set(a.loc for a in report.assertion_failures))
    return (races, oobs, asserts, report.timed_out)


def run_suites(pruning):
    agg = {"queries": 0, "pairs_considered": 0, "by_affine": 0,
           "dedup_skipped": 0, "summarized_accesses": 0,
           "bucketed_out": 0, "pair_memo_hits": 0, "oob_pruned": 0,
           "execute_s": 0.0, "pairgen_s": 0.0, "solve_s": 0.0}
    per_suite_queries = {}
    verdicts = {}
    start = time.perf_counter()
    for suite in SUITE_NAMES:
        per_suite_queries[suite] = 0
        for kernel in SUITES[suite]:
            spec = spec_from_kernel(kernel, suite=suite)
            spec.pair_pruning = pruning
            # this ablation measures solver-path pruning counters: keep
            # the static tier out so every kernel reaches the solver
            spec.static_tier = False
            tool = SESA.from_source(spec.source, spec.kernel_name)
            report = tool.check(spec.launch_config())
            verdicts[spec.job_id] = _signature(report)
            cs = report.check_stats
            if cs is None:
                continue
            per_suite_queries[suite] += cs.queries
            agg["queries"] += cs.queries
            agg["pairs_considered"] += cs.pairs_considered
            agg["by_affine"] += cs.by_affine
            agg["dedup_skipped"] += cs.dedup_skipped
            agg["summarized_accesses"] += cs.summarized_accesses
            agg["bucketed_out"] += cs.bucketed_out
            agg["pair_memo_hits"] += cs.pair_memo_hits
            agg["oob_pruned"] += cs.oob_pruned
            agg["execute_s"] += cs.execute_seconds
            agg["pairgen_s"] += cs.pairgen_seconds
            agg["solve_s"] += cs.solve_seconds
    agg["ms"] = (time.perf_counter() - start) * 1e3
    agg["suite_queries"] = per_suite_queries
    return agg, verdicts


@pytest.mark.parametrize("mode", ["raw", "pruned"])
def test_mode(benchmark, mode):
    def run():
        return run_suites(pruning=(mode == "pruned"))
    agg, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS[mode] = (agg, verdicts)


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(RESULTS) < 2:
        pytest.skip("run the full module for the report")
    raw, pruned = RESULTS["raw"][0], RESULTS["pruned"][0]

    # the contract: a pure performance layer — verdicts are identical
    assert RESULTS["pruned"][1] == RESULTS["raw"][1], \
        "pair pruning changed a verdict!"

    cols = ["queries", "pairs_considered", "summarized_accesses",
            "bucketed_out", "pair_memo_hits", "oob_pruned"]
    rows = [[mode] + [RESULTS[mode][0][c] for c in cols]
            + [f"{RESULTS[mode][0]['ms']:.0f}"]
            for mode in ("raw", "pruned")]
    print_table(
        "Ablation: pre-solver pair pruning "
        "(verdicts identical across modes)",
        ["mode"] + cols + ["ms"], rows)

    payload = {
        "suites": list(SUITE_NAMES),
        "raw": raw,
        "pruned": pruned,
        "query_reduction": {
            suite: {
                "raw": raw["suite_queries"][suite],
                "pruned": pruned["suite_queries"][suite],
            } for suite in SUITE_NAMES},
    }
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_pruning.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    # the acceptance gate: >= 30% fewer solver queries on the
    # unrolled-loop reductions suite
    raw_q = raw["suite_queries"][GATED_SUITE]
    pruned_q = pruned["suite_queries"][GATED_SUITE]
    assert pruned_q <= (1.0 - GATE) * raw_q, (
        f"pruning saved only {raw_q - pruned_q} of {raw_q} queries on "
        f"{GATED_SUITE} (< {GATE:.0%})")

    # regression gate against the recorded baseline
    with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    budget = baseline["pruned_queries"] * SLACK
    assert pruned["queries"] <= budget, (
        f"pruned-mode solver queries regressed: {pruned['queries']} > "
        f"{baseline['pruned_queries']} * {SLACK}")
