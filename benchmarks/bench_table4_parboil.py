"""Table IV — the Parboil suite: inferred inputs and the genuine bugs.

Rows mirror the paper: per kernel, the number of inputs the taint
analysis marks symbolic, the issues found, and the flow count. The three
genuine bugs (Figs. 8-10) must be found:

* histo_prescan — RW race (reduction tail without a barrier),
* histo_final  — OOB (grid-stride loop past the histogram end),
* binning      — inter-block race on binCount_g.

histo_final here uses constants scaled 1/8 from the paper's (loop count
~12 instead of ~95) so the whole table stays fast; the exact-constant
run — which lands in the same iteration window the paper reports — is
tests/test_parboil_bugs.py::test_histo_final_exact (marked slow) and is
recorded in EXPERIMENTS.md.
"""
import pytest

from common import print_table, run_sesa
from repro.kernels import ALL_KERNELS

RESULTS = {}

# kernel -> (grid override, extra config overrides)
CONFIGS = {
    "parboil_bfs": (((2, 1, 1)), {}),
    "cutcp": ((4, 1, 1), {}),
    "histo_prescan": ((4, 1, 1), {}),
    "histo_intermediates": ((4, 1, 1), {}),
    "histo_main": ((4, 1, 1), {}),
    "histo_final": (None, {
        "scalar_values": {"size_low_histo": 8159232 // 8},
        "array_sizes": {"global_histo": 1019904 // 8,
                        "global_subhisto": 2039808 // 8,
                        "final_histo": 2039808 // 8},
    }),
    "binning": ((8, 1, 1), {"check_oob": False}),
    "reorder": ((4, 1, 1), {}),
    "spmv_jds": (None, {}),
    "stencil": ((2, 2, 1), {}),
}

KERNELS = list(CONFIGS)


@pytest.mark.parametrize("name", KERNELS)
def test_sesa(benchmark, name):
    kernel = ALL_KERNELS[name]
    grid, overrides = CONFIGS[name]
    result = benchmark.pedantic(
        lambda: run_sesa(kernel, grid=grid, **overrides),
        rounds=1, iterations=1)
    RESULTS[name] = result
    expected = set(kernel.expected_issues)
    found = set(result.issues)
    if expected:
        closure = set()
        for k in expected:
            closure.add(k)
            closure.add(k.replace(" (Benign)", ""))
        assert found & closure, \
            f"{name}: expected {expected}, found {found}"
    else:
        assert not {f for f in found if "Benign" not in f}, \
            f"{name}: expected clean, found {found}"


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in KERNELS:
        r = RESULTS.get(name)
        if r is None:
            pytest.skip("run the full module for the report")
        k = ALL_KERNELS[name]
        paper = f"{k.paper_inputs[0]}/{k.paper_inputs[1]}" \
            if k.paper_inputs else "-"
        rows.append([
            name, f"{r.threads:,}",
            f"{r.symbolic_inputs}/{r.total_inputs}", paper,
            ",".join(r.issues) or "-", r.flows, f"{r.seconds:.2f}",
        ])
    print_table(
        "Table IV: Parboil — inferred symbolic inputs and issues",
        ["Kernel", "#Threads", "#In (tool)", "#In (paper)", "Errors",
         "#Flow", "secs"],
        rows)
    # the three genuine bugs are found
    assert "RW" in RESULTS["histo_prescan"].issues
    assert "OOB" in RESULTS["histo_final"].issues
    assert any(i.startswith("Atomic") or i == "RW"
               for i in RESULTS["binning"].issues)
