"""Warm-start bench: re-checking an unchanged corpus from disk artifacts.

A cold run over the paper + reductions suites populates the solver
artifact store (preamble CNF snapshots, retained learnts, query memos,
pair verdicts). A second run *in a fresh process* — the re-run-the-tool
workflow the cache exists for — must then:

* produce byte-identical race/OOB/assertion verdicts,
* replay instead of solving: zero assumption checks against live SAT
  sessions (``by_session == 0``),
* cut the summed check-phase (solve) wall clock by at least
  ``MIN_SPEEDUP``x.

Fresh processes matter: fresh-variable counters are process-global, so
an in-process re-run produces different havoc names and artificially
misses the memo. Each measurement runs in its own interpreter.

Counters and timings land in ``BENCH_warmstart.json``; the recorded
``BENCH_warmstart_baseline.json`` gates the replay counters so a digest
or serialisation regression (which would silently push pairs back into
the solver) fails the bench rather than just slowing it down.
"""
import json
import os
import subprocess
import sys
import tempfile

import pytest

from common import print_table

#: acceptance: warm solve phase at least this much faster than cold
MIN_SPEEDUP = 4.0

#: replay-counter regression slack vs the recorded baseline
COUNTER_SLACK = 0.9

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_warmstart_baseline.json")

#: one measurement = one interpreter: check both suites with the
#: artifact store at argv[1], print aggregate counters + verdicts
CHILD = r"""
import json, sys
from repro.core import SESA
from repro.service.corpus import SUITES, spec_from_kernel

agg = {"solve_seconds": 0.0, "by_session": 0, "by_sat": 0,
       "warm_memo_hits": 0, "warm_pair_hits": 0, "warm_starts": 0,
       "queries": 0, "pairs_considered": 0}
verdicts = {}
for suite in ("paper", "reductions"):
    for kernel in SUITES[suite]:
        spec = spec_from_kernel(kernel, suite=suite)
        spec.incremental_solving = True
        spec.solver_cache_dir = sys.argv[1]
        # warm starts only exist on the solver path: keep the static
        # tier out so every kernel produces solver artifacts
        spec.static_tier = False
        tool = SESA.from_source(spec.source, spec.kernel_name)
        report = tool.check(spec.launch_config())
        verdicts[spec.job_id] = [
            sorted((r.kind, r.obj_name, str(r.access1.loc),
                    str(r.access2.loc), r.benign, r.unresolvable)
                   for r in report.races),
            sorted((o.obj_name, str(o.access.loc)) for o in report.oobs),
            sorted(str(a.loc) for a in report.assertion_failures),
            report.timed_out,
        ]
        cs = report.check_stats
        agg["solve_seconds"] += cs.solve_seconds
        agg["by_session"] += cs.solver.by_session
        agg["by_sat"] += cs.solver.by_sat
        agg["warm_memo_hits"] += cs.warm_memo_hits
        agg["warm_pair_hits"] += cs.warm_pair_hits
        agg["warm_starts"] += cs.warm_starts
        agg["queries"] += cs.queries
        agg["pairs_considered"] += cs.pairs_considered
agg["solve_seconds"] = round(agg["solve_seconds"], 6)
print(json.dumps({"agg": agg, "verdicts": verdicts}))
"""


def _child_run(cache_dir):
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src")
    env = dict(os.environ,
               PYTHONPATH=src_dir + os.pathsep + os.path.dirname(
                   os.path.abspath(__file__)))
    proc = subprocess.run([sys.executable, "-c", CHILD, cache_dir],
                          capture_output=True, text=True, env=env,
                          timeout=600)
    assert proc.returncode == 0, proc.stderr[-4000:]
    return json.loads(proc.stdout.splitlines()[-1])


def test_warmstart(benchmark):
    with tempfile.TemporaryDirectory(prefix="repro-warmstart-") as cache:
        cold = _child_run(cache)
        warm = benchmark.pedantic(lambda: _child_run(cache),
                                  rounds=1, iterations=1)

    # contract first: warm start may never change a verdict
    assert warm["verdicts"] == cold["verdicts"], \
        "warm start changed a verdict!"

    ca, wa = cold["agg"], warm["agg"]
    speedup = ca["solve_seconds"] / max(wa["solve_seconds"], 1e-9)
    replays = wa["warm_memo_hits"] + wa["warm_pair_hits"]

    cols = ["solve_seconds", "queries", "by_session", "by_sat",
            "warm_memo_hits", "warm_pair_hits", "pairs_considered"]
    print_table(
        f"Warm start: re-check of an unchanged corpus "
        f"({speedup:.1f}x solve speedup, verdicts identical)",
        ["run"] + cols,
        [[name] + [run[c] for c in cols]
         for name, run in (("cold", ca), ("warm", wa))])

    payload = {"cold": ca, "warm": wa,
               "speedup": round(speedup, 2),
               "warm_replays": replays}
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_warmstart.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    # the warm run replays, it does not solve
    assert wa["by_session"] == 0, \
        f"warm run still solved {wa['by_session']} session queries"
    assert speedup >= MIN_SPEEDUP, (
        f"warm re-check speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x acceptance gate")

    # counter gate vs the recorded baseline: digests going stale would
    # silently push pairs back into the solver
    with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    floor = baseline["warm_replays"] * COUNTER_SLACK
    assert replays >= floor, (
        f"warm replays regressed: {replays} < "
        f"{baseline['warm_replays']} * {COUNTER_SLACK}")
