"""Stream-checker bench: inter-launch verdicts + per-launch cache replay.

Three child runs over the built-in stream suite (fresh interpreter
each — the re-run-the-tool workflow the per-launch cache exists for):

1. **cold** — populates the cache; every seeded ``missing_sync``
   program must report an inter-launch race with a launch-pair
   witness, every synced variant must be safe;
2. **warm** — identical suite: every launch and every checked pair
   replays from cache, verdicts byte-identical;
3. **edited** — one kernel body of the pipeline program changed: only
   the touched launch re-runs, the untouched producer replays.

Counters land in ``BENCH_streams.json``; the recorded
``BENCH_streams_baseline.json`` gates the replay counters so a
fingerprint regression (which would silently re-check untouched
launches) fails the bench rather than just slowing it down.
"""
import json
import os
import subprocess
import sys
import tempfile

from common import print_table

#: replay-counter regression slack vs the recorded baseline
COUNTER_SLACK = 0.9

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_streams_baseline.json")

#: one measurement = one interpreter: check the whole suite with the
#: launch/pair cache at argv[1]; argv[2] == "edited" swaps one kernel
#: body in the pipeline program before checking it
CHILD = r"""
import json, sys
from repro.kernels.streams import STREAM_CASES
from repro.service import ResultCache
from repro.streams import StreamProgram, check_stream

edited = len(sys.argv) > 2 and sys.argv[2] == "edited"
cache = ResultCache(sys.argv[1])
out = {}
for case in STREAM_CASES:
    program = case.program
    if edited and case.name == "pipeline_missing_sync":
        data = program.to_dict()
        data["source"] = data["source"].replace("+ 1", "+ 2")
        program = StreamProgram.from_dict(data)
    report = check_stream(program, cache=cache)
    out[case.name] = {
        "racy": bool(report.inter_launch_races),
        "expected_racy": case.expected_racy,
        "races": sorted(
            (r.kind, r.buffer, r.launch1, r.launch2, r.loc1, r.loc2)
            for r in report.inter_launch_races),
        "witnessed": all(
            r.witness.get("thread1") is not None
            and r.witness.get("thread2") is not None
            for r in report.inter_launch_races),
        "launches": report.stats.launches,
        "launch_cache_hits": report.stats.launch_cache_hits,
        "unordered_pairs": report.stats.unordered_pairs,
        "pair_cache_hits": report.stats.pair_cache_hits,
        "pruned_pairs": report.stats.pruned_pairs,
        "timed_out": report.timed_out,
    }
print(json.dumps(out))
"""


def _child_run(cache_dir, mode="plain"):
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src")
    env = dict(os.environ,
               PYTHONPATH=src_dir + os.pathsep + os.path.dirname(
                   os.path.abspath(__file__)))
    proc = subprocess.run([sys.executable, "-c", CHILD, cache_dir,
                           mode],
                          capture_output=True, text=True, env=env,
                          timeout=600)
    assert proc.returncode == 0, proc.stderr[-4000:]
    return json.loads(proc.stdout.splitlines()[-1])


def _totals(run):
    return {key: sum(case[key] for case in run.values())
            for key in ("launches", "launch_cache_hits",
                        "unordered_pairs", "pair_cache_hits")}


def test_stream_suite_and_cache_replay(benchmark):
    with tempfile.TemporaryDirectory(prefix="repro-streams-") as cache:
        cold = _child_run(cache)
        warm = benchmark.pedantic(lambda: _child_run(cache),
                                  rounds=1, iterations=1)
        edited = _child_run(cache, "edited")

    # verdict contract first: racy == the seeded missing-sync set,
    # every race carries a two-sided launch witness, nothing timed out
    for name, case in cold.items():
        assert not case["timed_out"], name
        assert case["racy"] == case["expected_racy"], \
            f"{name}: racy={case['racy']}"
        assert case["witnessed"], f"{name}: race without witness"
    racy = sorted(n for n, c in cold.items() if c["racy"])
    assert racy and all("missing_sync" in n for n in racy)

    # the warm run replays: verdicts identical, all launches and all
    # solver-checked pairs served from cache
    for name in cold:
        assert warm[name]["races"] == cold[name]["races"], name
        assert warm[name]["launch_cache_hits"] == \
            warm[name]["launches"], \
            f"{name}: warm run re-checked a launch"
        assert warm[name]["pair_cache_hits"] == \
            cold[name]["unordered_pairs"], \
            f"{name}: warm run re-solved a launch pair"

    # one edited kernel: only the touched launch re-runs
    ep = edited["pipeline_missing_sync"]
    assert ep["launch_cache_hits"] == ep["launches"] - 1, \
        "edited program should replay every untouched launch"
    assert ep["racy"]
    for name in cold:
        if name != "pipeline_missing_sync":
            assert edited[name]["launch_cache_hits"] == \
                edited[name]["launches"], \
                f"{name}: unrelated program re-checked a launch"

    ct, wt = _totals(cold), _totals(warm)
    cols = ["launches", "launch_cache_hits", "unordered_pairs",
            "pair_cache_hits"]
    print_table(
        f"Stream suite: {len(cold)} programs, "
        f"{len(racy)} racy (all seeded), warm run fully replayed",
        ["run"] + cols,
        [[name] + [t[c] for c in cols]
         for name, t in (("cold", ct), ("warm", wt),
                         ("edited", _totals(edited)))])

    payload = {"cold": ct, "warm": wt, "edited": _totals(edited),
               "racy_cases": racy,
               "warm_launch_hits": wt["launch_cache_hits"],
               "warm_pair_hits": wt["pair_cache_hits"]}
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_streams.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    # counter gate vs the recorded baseline: fingerprints going stale
    # would silently re-check untouched launches
    with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    assert payload["racy_cases"] == baseline["racy_cases"]
    floor = baseline["warm_launch_hits"] * COUNTER_SLACK
    assert payload["warm_launch_hits"] >= floor, (
        f"warm launch replays regressed: "
        f"{payload['warm_launch_hits']} < {floor}")
    assert payload["warm_pair_hits"] >= \
        baseline["warm_pair_hits"] * COUNTER_SLACK
