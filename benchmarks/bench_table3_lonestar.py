"""Table III — LonestarGPU irregular kernels, concrete vs symbolic inputs.

The paper's columns: for each kernel, flows (time) with purely concrete
inputs vs with the taint-selected symbolic inputs (loop-bound inputs
excluded, §III-C); GKLEEp against SESA. OOB checking is disabled, as the
paper did for this suite ("to make the comparison fair").

Configurations are downscaled grids (the analysis is parametric in the
thread count; the synthetic CSR graph from repro.kernels.lonestar plays
the concrete-input role).
"""
import pytest

from common import print_table, run_gkleep, run_sesa
from repro.kernels import ALL_KERNELS

KERNELS = ["bfs_ls", "bfs_atomic", "bfs_worklistw", "bfs_worklista",
           "BoundingBox", "sssp_ls", "sssp_worklistn"]

RESULTS = {}


def _dims(name):
    if name == "BoundingBox":
        return dict(grid=(2, 1, 1), block=(64, 1, 1))
    return dict(grid=(2, 1, 1), block=(32, 1, 1))


@pytest.mark.parametrize("mode", ["conc", "sym"])
@pytest.mark.parametrize("name", KERNELS)
def test_sesa(benchmark, name, mode):
    kernel = ALL_KERNELS[name]
    result = benchmark.pedantic(
        lambda: run_sesa(kernel, concrete_inputs=(mode == "conc"),
                         **_dims(name)),
        rounds=1, iterations=1)
    RESULTS[("sesa", name, mode)] = result
    if mode == "sym" and kernel.expected_issues:
        assert result.issues, f"{name}: expected {kernel.expected_issues}"


@pytest.mark.parametrize("mode", ["conc", "sym"])
@pytest.mark.parametrize("name", KERNELS)
def test_gkleep(benchmark, name, mode):
    kernel = ALL_KERNELS[name]
    result = benchmark.pedantic(
        lambda: run_gkleep(kernel, concrete_inputs=(mode == "conc"),
                           **_dims(name)),
        rounds=1, iterations=1)
    RESULTS[("gkleep", name, mode)] = result


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in KERNELS:
        cells = [name]
        for engine in ("gkleep", "sesa"):
            for mode in ("conc", "sym"):
                r = RESULTS.get((engine, name, mode))
                if r is None:
                    pytest.skip("run the full module for the report")
                cells.append(r.cell)
        sym = RESULTS[("sesa", name, "sym")]
        cells.append(",".join(sym.issues) or "-")
        rows.append(cells)
    print_table(
        "Table III: LonestarGPU — flows (seconds); errors from the "
        "symbolic run",
        ["Kernel", "GKLEEp Conc", "GKLEEp Sym", "SESA Conc", "SESA Sym",
         "Errors (SESA)"],
        rows)
    # the paper's headline rows: symbolic inputs + flow merging let SESA
    # find the races without GKLEEp's blow-up
    racy = [n for n in KERNELS if ALL_KERNELS[n].expected_issues]
    assert all(RESULTS[("sesa", n, "sym")].issues for n in racy)
