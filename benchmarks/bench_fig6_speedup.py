"""Figure 6 — SESA's speedup over GKLEEp on LonestarGPU.

The paper's bars: ~1x with concrete inputs for most BFS variants (both
engines explore the same few flows), and 1-3 orders of magnitude with
symbolic inputs (GKLEEp times out; e.g. >3,000x on bfs_ls). Here the
timed-out comparator contributes a *lower bound* (printed as ``>Nx``).
"""
import pytest

from common import print_table, run_gkleep, run_sesa, speedup
from repro.kernels import ALL_KERNELS

KERNELS = ["bfs_ls", "bfs_atomic", "bfs_worklistw", "bfs_worklista",
           "BoundingBox", "sssp_ls", "sssp_worklistn"]
RESULTS = {}


def _dims(name):
    return dict(grid=(2, 1, 1), block=(32, 1, 1))


@pytest.mark.parametrize("mode", ["conc", "sym"])
@pytest.mark.parametrize("name", KERNELS)
def test_speedup_pair(benchmark, name, mode):
    kernel = ALL_KERNELS[name]
    conc = mode == "conc"

    def pair():
        g = run_gkleep(kernel, concrete_inputs=conc, **_dims(name))
        s = run_sesa(kernel, concrete_inputs=conc, **_dims(name))
        return g, s

    g, s = benchmark.pedantic(pair, rounds=1, iterations=1)
    RESULTS[(name, mode)] = (g, s)


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    sym_speedups = []
    for name in KERNELS:
        row = [name]
        for mode in ("conc", "sym"):
            pair = RESULTS.get((name, mode))
            if pair is None:
                pytest.skip("run the full module for the report")
            g, s = pair
            row.append(speedup(g, s))
            if mode == "sym":
                sym_speedups.append(g.seconds / max(s.seconds, 1e-9))
        rows.append(row)
    print_table("Figure 6: SESA speedup over GKLEEp (LonestarGPU)",
                ["Kernel", "concrete inputs", "symbolic inputs"], rows)
    # the figure's shape: symbolic-input speedups are substantial for at
    # least the bfs_ls-style rows
    assert max(sym_speedups) > 2.0, sym_speedups
