"""Figure 7 — SESA's speedup over GKLEEp on the Table II kernels.

The paper plots T=16 and T=256 bars (1-3 orders of magnitude). We plot
T=16 and T=32; timed-out comparator runs give lower bounds (``>Nx``).
"""
import pytest

from common import print_table, run_gkleep, run_sesa, speedup
from repro.kernels import ALL_KERNELS

KERNELS = ["bitonic2.0", "wordsearch", "bitonic4.3", "mergeSort4.3",
           "stream_compaction", "n_stream_compaction", "blelloch",
           "brentkung"]
THREADS = [16, 32]
RESULTS = {}


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("name", KERNELS)
def test_speedup_pair(benchmark, name, threads):
    kernel = ALL_KERNELS[name]

    def pair():
        g = run_gkleep(kernel, block=(threads, 1, 1), check_oob=False)
        s = run_sesa(kernel, block=(threads, 1, 1), check_oob=False)
        return g, s

    g, s = benchmark.pedantic(pair, rounds=1, iterations=1)
    RESULTS[(name, threads)] = (g, s)


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    wins = 0
    for name in KERNELS:
        row = [name]
        for threads in THREADS:
            pair = RESULTS.get((name, threads))
            if pair is None:
                pytest.skip("run the full module for the report")
            g, s = pair
            row.append(speedup(g, s))
            if g.timed_out or g.seconds > s.seconds:
                wins += 1
        rows.append(row)
    print_table("Figure 7: SESA speedup over GKLEEp (Table II kernels)",
                ["Kernel"] + [f"T={t}" for t in THREADS], rows)
    assert wins >= len(KERNELS), \
        f"SESA should win on most kernel/size points, won {wins}"
