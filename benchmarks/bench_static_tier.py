"""Tiered checking — static pre-screening resolution rate and latency.

The static tier (``repro.static``) sits in front of the parametric
race checker and resolves kernels whose guards, addresses and values
are pure bounded terms by exhaustive enumeration — no solver. This
bench runs the built-in suites through ``execute_job`` twice, tier on
and tier off, and asserts the contract:

* **verdict parity**: on every kernel — statically resolved or
  escalated — the tiered pipeline's verdict (races/OOBs/assertions
  incl. benign flags) is identical to the single-tier pipeline's;
* **resolution rate**: at least ``min_static_fraction`` of the gated
  paper + reductions suites resolves statically (no solver query),
  and every kernel recorded as resolved in
  ``BENCH_static_baseline.json`` still resolves statically — a cap or
  prescreen regression that silently pushes easy kernels back to the
  solver fails the bench rather than just slowing it down;
* **latency**: the median static-tier wall clock over the gated
  resolved kernels stays under ``max_median_static_ms``.

The per-kernel tier table (tier, bail reason, static ms, end-to-end
ms both ways) lands in ``BENCH_static.json`` (CI uploads it as an
artifact).
"""
import json
import os
import statistics
import time

import pytest

from common import print_table
from repro.service.corpus import SUITES, spec_from_kernel
from repro.service.runner import execute_job

#: suites in the report table
SUITE_NAMES = ("paper", "reductions", "sdk")

#: the resolution-rate and latency gates apply to these suites
GATED_SUITES = ("paper", "reductions")

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_static_baseline.json")

RESULTS = {}


def _signature(verdict):
    verdict = json.loads(json.dumps(verdict))
    races = sorted(set(
        (r["kind"], r["object"], json.dumps(r["locs"]),
         bool(r["benign"]), bool(r["unresolvable"]))
        for r in verdict.get("races", [])))
    oobs = sorted(set((o["object"], json.dumps(o["loc"]))
                      for o in verdict.get("oobs", [])))
    asserts = sorted(set(json.dumps(a["loc"])
                         for a in verdict.get("assertion_failures", [])))
    return (races, oobs, asserts, bool(verdict.get("timed_out")))


def _run_suite(suite):
    rows = []
    for kernel in SUITES[suite]:
        spec = spec_from_kernel(kernel, suite=suite)
        start = time.perf_counter()
        tiered = execute_job(spec.to_dict())
        tiered_s = time.perf_counter() - start
        assert tiered["status"] == "done", tiered.get("error")

        start = time.perf_counter()
        mono = execute_job(dict(spec.to_dict(), static_tier=False))
        mono_s = time.perf_counter() - start
        assert mono["status"] == "done", mono.get("error")

        cs = tiered["check_stats"]
        rows.append({
            "suite": suite,
            "kernel": kernel.name,
            "tier": cs["tier"],
            "bail_reason": cs.get("static_bail_reason"),
            "static_ms": round(cs["static_seconds"] * 1e3, 3),
            "queries": cs["queries"],
            "tiered_ms": round(tiered_s * 1e3, 1),
            "mono_ms": round(mono_s * 1e3, 1),
            "parity": _signature(tiered["verdict"]) ==
            _signature(mono["verdict"]),
        })
    return rows


@pytest.mark.parametrize("suite", SUITE_NAMES)
def test_suite(benchmark, suite):
    RESULTS[suite] = benchmark.pedantic(lambda: _run_suite(suite),
                                        rounds=1, iterations=1)


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(RESULTS) < len(SUITE_NAMES):
        pytest.skip("run the full module for the report")
    with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    rows = [r for suite in SUITE_NAMES for r in RESULTS[suite]]

    # the contract: the tier is a pure performance layer — the tiered
    # pipeline's verdict is identical on every kernel
    diverged = [f"{r['suite']}/{r['kernel']}" for r in rows
                if not r["parity"]]
    assert not diverged, f"static tier changed a verdict: {diverged}"
    # a statically resolved kernel never touched the solver
    for r in rows:
        if r["tier"] == "static":
            assert r["queries"] == 0, \
                f"{r['kernel']}: static verdict with solver queries"

    print_table(
        "Tiered checking: static pre-screening by kernel "
        "(verdicts identical with and without the tier)",
        ["suite", "kernel", "tier", "static ms", "tiered ms",
         "mono ms", "bail reason"],
        [[r["suite"], r["kernel"], r["tier"],
          f"{r['static_ms']:.2f}", f"{r['tiered_ms']:.0f}",
          f"{r['mono_ms']:.0f}", r["bail_reason"] or "--"]
         for r in rows])

    gated = [r for r in rows if r["suite"] in GATED_SUITES]
    resolved = [r for r in gated if r["tier"] == "static"]
    fraction = len(resolved) / len(gated)
    latencies = sorted(r["static_ms"] for r in resolved)
    median_ms = statistics.median(latencies) if latencies else 0.0

    payload = {
        "gated_suites": list(GATED_SUITES),
        "static_fraction": round(fraction, 3),
        "median_static_ms": round(median_ms, 3),
        "p95_static_ms": round(
            latencies[max(0, int(len(latencies) * 0.95) - 1)], 3)
        if latencies else 0.0,
        "kernels": rows,
    }
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_static.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    # resolution-rate gates
    assert fraction >= baseline["min_static_fraction"], (
        f"static tier resolved only {fraction:.0%} of the gated "
        f"suites (< {baseline['min_static_fraction']:.0%})")
    still = {f"{r['suite']}/{r['kernel']}" for r in resolved}
    regressed = [k for k in baseline["resolved"] if k not in still]
    assert not regressed, (
        f"kernels fell off the static tier: {regressed}")

    # latency gate: the tier must stay ~free next to the solver path
    assert median_ms <= baseline["max_median_static_ms"], (
        f"median static-tier latency {median_ms:.2f} ms exceeds "
        f"{baseline['max_median_static_ms']} ms")
