"""Swarm verification — shard-count scaling on the hardest kernels.

Swarm mode splits one kernel's race check into independently solvable
partitions (contiguous ranges of the canonical pair enumeration) and
runs them as parallel jobs. This bench measures wall-clock at shard
counts 1/2/4 against the monolithic checker on the two slowest gated
kernels and asserts the contract:

* at every shard count the merged verdict signature is identical to
  the monolithic verdict (races/OOBs/assertions incl. benign flags)
  and no shard is left unresolved;
* on hosts with >= 2 usable cores, 4-way sharding is at least
  ``speedup_gate`` x faster than the monolithic run on the gated
  kernel (recorded in ``BENCH_swarm_baseline.json``);
* on single-core hosts a parallelism gate would be meaningless —
  sharding there is pure overhead — so the gate degrades to a bound on
  that overhead: the 4-shard run may cost at most
  ``max_serial_overhead`` x the monolithic wall-clock.

The per-mode wall-clocks, core count, and which gate applied land in
``BENCH_swarm.json`` (CI uploads it as an artifact).
"""
import json
import os
import time

import pytest

from common import print_table
from repro.service import execute_job, run_swarm_check, spec_from_kernel
from repro.service.corpus import SUITES

KERNELS = [("divergent", "bitonic4.3"), ("paper", "bitonic_fig1")]
MODES = ("mono", "swarm2", "swarm4")

#: the slowest kernel in the gated suites carries the speedup gate
GATED_KERNEL = "bitonic4.3"
GATE_MODE = "swarm4"

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_swarm_baseline.json")

RESULTS = {}


def _cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:       # non-Linux
        return os.cpu_count() or 1


def _kernel(suite, name):
    for k in SUITES[suite]:
        if k.name == name:
            return k
    raise KeyError(f"{suite}/{name}")


def _signature(verdict):
    verdict = json.loads(json.dumps(verdict))
    races = sorted(set(
        (r["kind"], r["object"], json.dumps(r["locs"]),
         bool(r["benign"]), bool(r["unresolvable"]))
        for r in verdict.get("races", [])))
    oobs = sorted(set((o["object"], json.dumps(o["loc"]))
                      for o in verdict.get("oobs", [])))
    asserts = sorted(set(json.dumps(a["loc"])
                         for a in verdict.get("assertion_failures", [])))
    return (races, oobs, asserts, bool(verdict.get("timed_out")))


def _run(suite, name, mode):
    spec = spec_from_kernel(_kernel(suite, name), suite=suite)
    start = time.perf_counter()
    if mode == "mono":
        payload = execute_job(spec.to_dict())
        seconds = time.perf_counter() - start
        assert payload["status"] == "done", payload.get("error")
        return {"seconds": seconds, "verdict": payload["verdict"],
                "shards": 1}
    shards = int(mode.replace("swarm", ""))
    result = run_swarm_check(spec, shards, max_workers=shards)
    seconds = time.perf_counter() - start
    assert result.status == "done", result.error
    swarm = result.verdict["swarm"]
    assert swarm["unresolved"] == [], swarm
    return {"seconds": seconds, "verdict": result.verdict,
            "shards": swarm["shards"]}


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("suite,name", KERNELS,
                         ids=[f"{s}/{n}" for s, n in KERNELS])
def test_mode(benchmark, suite, name, mode):
    out = benchmark.pedantic(lambda: _run(suite, name, mode),
                             rounds=1, iterations=1)
    RESULTS[(name, mode)] = out


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(RESULTS) < len(KERNELS) * len(MODES):
        pytest.skip("run the full module for the report")
    with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    cores = _cores()

    # the contract: sharding is a pure execution strategy — verdicts
    # are identical to the monolithic checker at every shard count
    for _suite, name in KERNELS:
        mono = _signature(RESULTS[(name, "mono")]["verdict"])
        for mode in MODES[1:]:
            assert _signature(RESULTS[(name, mode)]["verdict"]) == mono, \
                f"swarm verdict diverged on {name} ({mode})"

    rows = []
    for _suite, name in KERNELS:
        mono_s = RESULTS[(name, "mono")]["seconds"]
        for mode in MODES:
            r = RESULTS[(name, mode)]
            rows.append([name, mode, r["shards"],
                         f"{r['seconds'] * 1e3:.0f}",
                         f"{mono_s / r['seconds']:.2f}x",
                         "=="])
    print_table(
        f"Swarm scaling on {cores} core(s) "
        "(verdicts identical across all shard counts)",
        ["kernel", "mode", "shards", "ms", "vs mono", "verdict"], rows)

    mono_s = RESULTS[(GATED_KERNEL, "mono")]["seconds"]
    gated_s = RESULTS[(GATED_KERNEL, GATE_MODE)]["seconds"]
    multi_core = cores >= 2
    payload = {
        "cores": cores,
        "gate_applied": ("speedup" if multi_core
                         else "serial_overhead"),
        "gated_kernel": GATED_KERNEL,
        "gate_mode": GATE_MODE,
        "results": {
            f"{name}/{mode}": {
                "seconds": RESULTS[(name, mode)]["seconds"],
                "shards": RESULTS[(name, mode)]["shards"],
            } for _suite, name in KERNELS for mode in MODES},
    }
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_swarm.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    if multi_core:
        gate = baseline["speedup_gate"]
        assert gated_s * gate <= mono_s, (
            f"{GATE_MODE} on {GATED_KERNEL}: {mono_s / gated_s:.2f}x "
            f"< required {gate}x speedup on {cores} cores")
    else:
        # 1 core: parallel shards serialize; bound the overhead instead
        cap = baseline["max_serial_overhead"]
        assert gated_s <= mono_s * cap, (
            f"{GATE_MODE} on {GATED_KERNEL} cost "
            f"{gated_s / mono_s:.2f}x monolithic on a single core "
            f"(cap {cap}x)")
