"""Benchmark-suite configuration."""
import sys
from pathlib import Path

# allow `from common import ...` inside bench modules
sys.path.insert(0, str(Path(__file__).parent))
