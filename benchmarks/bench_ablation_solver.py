"""Ablation — the layered solver (DESIGN.md).

Race queries pass through simplifier → interval filter → bitblast+CDCL.
This bench runs a representative query batch (the §II race kernel plus
reduction's UNSAT queries) with layers toggled and reports where queries
were dispatched and the time taken. The claim: the cheap layers absorb a
large fraction of queries, and disabling them pushes everything into the
SAT core at a measurable cost.
"""
import time

import pytest

from common import print_table
from repro.smt import (
    CheckResult, Solver, mk_add, mk_and, mk_bv, mk_bv_var, mk_eq,
    mk_lshr, mk_ne, mk_or, mk_shl, mk_ult, mk_urem,
)

RESULTS = {}


def query_batch():
    """The §II + Fig. 4 query mix: some SAT, some UNSAT, varied shape."""
    t1, t2 = mk_bv_var("t1"), mk_bv_var("t2")
    bdim = mk_bv(64, 32)
    bounds = mk_and(mk_ult(t1, bdim), mk_ult(t2, bdim), mk_ne(t1, t2))
    queries = []
    # the intro example's WR race (SAT)
    queries.append(mk_and(bounds, mk_eq(
        t1, mk_urem(mk_add(t2, mk_bv(1, 32)), bdim))))
    # divergent-branch race (SAT)
    queries.append(mk_and(
        bounds,
        mk_eq(mk_urem(t1, mk_bv(2, 32)), mk_bv(0, 32)),
        mk_ne(mk_urem(t2, mk_bv(2, 32)), mk_bv(0, 32)),
        mk_eq(t1, mk_lshr(t2, mk_bv(2, 32)))))
    # reduction's WW/RW queries per stride (UNSAT)
    for stride in (1, 2, 4, 8, 16, 32):
        even1 = mk_eq(mk_urem(t1, mk_bv(2 * stride, 32)), mk_bv(0, 32))
        even2 = mk_eq(mk_urem(t2, mk_bv(2 * stride, 32)), mk_bv(0, 32))
        queries.append(mk_and(bounds, even1, even2, mk_eq(t1, t2)))
        queries.append(mk_and(
            bounds, even1, even2,
            mk_or(mk_eq(mk_add(t1, mk_bv(stride, 32)), t2),
                  mk_eq(t1, t2))))
    # strided disjointness (UNSAT via simplifier/interval)
    for k in (2, 4, 8):
        queries.append(mk_and(
            bounds,
            mk_eq(mk_shl(t1, mk_bv(k, 32)), mk_add(
                mk_shl(t2, mk_bv(k, 32)), mk_bv(1, 32)))))
    return queries


VARIANTS = {
    "full": dict(use_simplifier=True, use_interval=True),
    "no-interval": dict(use_simplifier=True, use_interval=False),
    "no-simplify": dict(use_simplifier=False, use_interval=True),
    "sat-only": dict(use_simplifier=False, use_interval=False),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_layer_variant(benchmark, variant):
    queries = query_batch()

    def run():
        solver = Solver(**VARIANTS[variant])
        start = time.perf_counter()
        outcomes = []
        for q in queries:
            solver.assertions = []
            solver.add(q)
            outcomes.append(solver.check())
        return solver.stats, time.perf_counter() - start, outcomes

    stats, seconds, outcomes = benchmark.pedantic(run, rounds=3,
                                                  iterations=1)
    RESULTS[variant] = (stats, seconds, outcomes)
    assert CheckResult.UNKNOWN not in outcomes


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(RESULTS) < len(VARIANTS):
        pytest.skip("run the full module for the report")
    # all variants agree on every verdict
    baselines = RESULTS["full"][2]
    for variant, (_, _, outcomes) in RESULTS.items():
        assert outcomes == baselines, f"{variant} changed a verdict!"
    rows = []
    for variant, (stats, seconds, _) in RESULTS.items():
        rows.append([
            variant, stats.queries, stats.by_simplifier,
            stats.by_interval, stats.by_sat, f"{seconds * 1e3:.1f}",
        ])
    print_table(
        "Ablation: layered solving (verdicts identical across variants)",
        ["variant", "queries", "simplifier", "interval", "SAT", "ms"],
        rows)
    # trivially-false conjunctions are folded by the smart constructors
    # before any layer runs, so the by_* counters agree across variants;
    # the simplifier's win shows up as SAT-core time (mask/shift circuits
    # instead of division circuits)
    full_seconds = RESULTS["full"][1]
    nosimp_seconds = RESULTS["no-simplify"][1]
    assert nosimp_seconds > 1.5 * full_seconds, \
        (full_seconds, nosimp_seconds)
