"""Ablation — incremental solver sessions on the race-check hot path.

The incremental path simplifies and bit-blasts each preamble (bounds +
distinct-thread + barrier-interval context) once, then discharges every
candidate pair against that live SAT instance under assumption
literals, with learned clauses retained and a normalized query memo in
front. The one-shot path (``incremental_solving=False``) rebuilds the
full formula and a fresh CDCL instance per query, as the checker did
before sessions existed.

This bench runs the paper + reductions suites through SESA both ways
and asserts the contract:

* every kernel's verdicts (races/OOBs/assertions, incl. benign flags)
  are identical across the two paths;
* the incremental path constructs at most half the fresh SAT instances
  (``by_sat``) of the one-shot path — the blast-once claim;
* the incremental path's total SAT-core work (fresh + assumption
  checks) does not regress above the recorded baseline in
  ``BENCH_solver_baseline.json`` (guards against cache keys silently
  breaking and pushing queries back into the SAT core).

The dispatch table and counters land in ``BENCH_solver.json`` (CI
uploads it as an artifact).
"""
import json
import os
import time

import pytest

from common import print_table
from repro.core import SESA
from repro.service.corpus import SUITES, spec_from_kernel

SUITE_NAMES = ("paper", "reductions")

#: regression gate: incremental SAT-core queries (fresh + assumption
#: checks) may not exceed baseline * SLACK
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_solver_baseline.json")
SLACK = 1.25

RESULTS = {}


def _signature(report):
    races = sorted(
        (r.kind, r.obj_name, r.access1.loc, r.access2.loc,
         r.benign, r.unresolvable) for r in report.races)
    oobs = sorted((o.obj_name, o.access.loc) for o in report.oobs)
    asserts = sorted(a.loc for a in report.assertion_failures)
    return (races, oobs, asserts, report.timed_out)


def run_suites(incremental):
    agg = {"queries": 0, "by_memo": 0, "by_affine": 0,
           "by_simplifier": 0, "by_interval": 0, "by_sat": 0,
           "by_session": 0, "sat_instances": 0, "preamble_reuse": 0,
           "sessions_created": 0, "sat_conflicts": 0,
           "learned_clauses": 0}
    verdicts = {}
    start = time.perf_counter()
    for suite in SUITE_NAMES:
        for kernel in SUITES[suite]:
            spec = spec_from_kernel(kernel, suite=suite)
            spec.incremental_solving = incremental
            # this ablation measures the solver stack: keep the static
            # tier out so every kernel actually reaches the solver
            spec.static_tier = False
            tool = SESA.from_source(spec.source, spec.kernel_name)
            report = tool.check(spec.launch_config())
            verdicts[spec.job_id] = _signature(report)
            cs = report.check_stats
            if cs is None:
                continue
            agg["queries"] += cs.queries
            agg["by_memo"] += cs.by_memo
            agg["by_affine"] += cs.by_affine
            agg["preamble_reuse"] += cs.preamble_reuse
            agg["sessions_created"] += cs.sessions_created
            agg["by_simplifier"] += cs.solver.by_simplifier
            agg["by_interval"] += cs.solver.by_interval
            agg["by_sat"] += cs.solver.by_sat
            agg["by_session"] += cs.solver.by_session
            agg["sat_instances"] += cs.solver.sat_instances
            agg["sat_conflicts"] += cs.solver.sat_conflicts
            agg["learned_clauses"] += cs.solver.learned_clauses
    agg["ms"] = (time.perf_counter() - start) * 1e3
    return agg, verdicts


@pytest.mark.parametrize("mode", ["one_shot", "incremental"])
def test_mode(benchmark, mode):
    def run():
        return run_suites(incremental=(mode == "incremental"))
    agg, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS[mode] = (agg, verdicts)


def test_stack_differential(benchmark):
    """Relative gate: the fast solver stack (arena CDCL core, constant
    folding in the Tseitin gates, template lowering, plain-guard
    assumptions) must finish the suites at least 2x faster than the
    ``legacy`` stack — a faithful reconstruction of the pre-arena
    pipeline — at identical verdicts. Same-process, same suites, so
    the ratio is robust to runner speed."""
    from repro.smt import set_solver_stack
    prev = set_solver_stack("legacy")
    try:
        legacy, legacy_verdicts = run_suites(incremental=True)
    finally:
        set_solver_stack(prev)
    fast, fast_verdicts = benchmark.pedantic(
        lambda: run_suites(incremental=True), rounds=1, iterations=1)
    assert fast_verdicts == legacy_verdicts, \
        "fast and legacy solver stacks disagree on a verdict!"
    ratio = legacy["ms"] / fast["ms"]
    RESULTS["stack"] = {"legacy_ms": round(legacy["ms"], 1),
                        "fast_ms": round(fast["ms"], 1),
                        "speedup": round(ratio, 2)}
    print(f"\nstack differential: legacy {legacy['ms']:.0f} ms, "
          f"fast {fast['ms']:.0f} ms -> {ratio:.2f}x "
          "(verdicts identical)")
    assert ratio >= 2.0, (
        f"fast-stack speedup {ratio:.2f}x fell below the 2x gate")


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "one_shot" not in RESULTS or "incremental" not in RESULTS:
        pytest.skip("run the full module for the report")
    one, inc = RESULTS["one_shot"][0], RESULTS["incremental"][0]

    # the contract: a pure performance layer — verdicts are identical
    assert RESULTS["incremental"][1] == RESULTS["one_shot"][1], \
        "incremental sessions changed a verdict!"

    cols = ["queries", "by_memo", "by_affine", "by_simplifier",
            "by_interval", "by_sat", "by_session", "preamble_reuse",
            "sat_conflicts"]
    rows = [[mode] + [RESULTS[mode][0][c] for c in cols]
            + [f"{RESULTS[mode][0]['ms']:.0f}"]
            for mode in ("one_shot", "incremental")]
    print_table(
        "Ablation: incremental solver sessions "
        "(verdicts identical across modes)",
        ["mode"] + cols + ["ms"], rows)

    payload = {
        "suites": list(SUITE_NAMES),
        "one_shot": one,
        "incremental": inc,
        "sat_core_queries": {
            "one_shot": one["by_sat"] + one["by_session"],
            "incremental": inc["by_sat"] + inc["by_session"],
        },
    }
    if "stack" in RESULTS:
        payload["stack"] = RESULTS["stack"]
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_solver.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")

    # blast-once: the incremental path constructs at most half the
    # fresh SAT instances of the one-shot path
    assert one["by_sat"] >= 2 * inc["by_sat"], (one["by_sat"],
                                                inc["by_sat"])

    # regression gate against the recorded baseline
    with open(BASELINE_PATH, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    budget = baseline["incremental_sat_core_queries"] * SLACK
    actual = inc["by_sat"] + inc["by_session"]
    assert actual <= budget, (
        f"incremental SAT-core queries regressed: {actual} > "
        f"{baseline['incremental_sat_core_queries']} * {SLACK}")
