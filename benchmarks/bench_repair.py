"""Repair bench — CEGIS barrier synthesis over the racy built-ins.

Runs the repair engine on every racy kernel of the paper, reductions,
and divergent suites and records per-kernel iterations, barriers
inserted, re-check queries, and wall clock (``BENCH_repair.json``; the
EXPERIMENTS.md repairs table is generated from this payload).

The acceptance gates:

* every repair run terminates within its iteration budget and reports
  an honest outcome (verified fix, or explicit non-convergence — never
  a fix that fails re-verification while claiming success);
* the CEGIS re-checks ride the warm incremental-solver fast path:
  with shared sessions (the default) the iterations after the baseline
  check never create a solver session, and preamble/memo reuse is
  strictly positive — while the same repair with ``share_sessions=False``
  rebuilds sessions on every re-check.
"""
import json
import os
import time

import pytest

from common import print_table
from repro.repair import repair_source
from repro.service.corpus import SUITES, spec_from_kernel

SUITE_NAMES = ("paper", "reductions", "divergent")

MAX_ITERATIONS = 4

#: the kernel the differential fast-path gate runs on: the paper's
#: canonical missing-barrier reduction bug (repairs in >= 1 iteration)
GATED_KERNEL = "reduction_racy"

RESULTS = {}


def racy_specs():
    specs = []
    for suite in SUITE_NAMES:
        for kernel in SUITES[suite]:
            if not kernel.expected_issues:
                continue
            spec = spec_from_kernel(kernel, suite=suite)
            if spec.needs_concrete_graph:
                continue
            specs.append(spec)
    return specs


def run_repairs():
    rows = {}
    for spec in racy_specs():
        config = spec.launch_config()
        config.check_oob = False
        start = time.perf_counter()
        result = repair_source(spec.source, config=config,
                               kernel_name=spec.kernel_name,
                               max_iterations=MAX_ITERATIONS)
        rows[spec.job_id] = {
            "kernel": spec.meta["kernel"],
            "suite": spec.meta["suite"],
            "converged": result.converged,
            "verified": result.verified,
            "minimal": result.minimal,
            "iterations": result.iterations,
            "barriers_inserted": len([e for e in result.edits
                                      if e.action == "insert"]),
            "minimized_out": result.minimized_out,
            "rechecks": result.rechecks,
            "recheck_queries": result.recheck_queries,
            "preamble_reuse": result.preamble_reuse,
            "memo_hits": result.memo_hits,
            "sessions_created": result.sessions_created,
            "wall_s": round(time.perf_counter() - start, 3),
        }
    return rows


def test_repair_suites(benchmark):
    RESULTS["rows"] = benchmark.pedantic(run_repairs, rounds=1,
                                         iterations=1)


def test_incremental_fast_path(benchmark):
    """Differential gate: repair re-checks reuse incremental sessions."""
    spec = next(s for s in racy_specs()
                if s.meta["kernel"] == GATED_KERNEL)
    config = spec.launch_config()
    config.check_oob = False

    def run():
        shared = repair_source(spec.source, config=config,
                               kernel_name=spec.kernel_name,
                               max_iterations=MAX_ITERATIONS)
        unshared = repair_source(spec.source, config=config,
                                 kernel_name=spec.kernel_name,
                                 max_iterations=MAX_ITERATIONS,
                                 share_sessions=False)
        return shared, unshared

    shared, unshared = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS["fast_path"] = {
        "shared_sessions_created": shared.sessions_created,
        "unshared_sessions_created": unshared.sessions_created,
        "shared_preamble_reuse": shared.preamble_reuse,
        "shared_memo_hits": shared.memo_hits,
    }
    assert shared.converged and shared.verified

    later = [s for s in shared.iteration_stats if s.iteration >= 1]
    assert later, "the gated kernel must need at least one iteration"
    assert sum(s.sessions_created for s in later) == 0, \
        "a CEGIS re-check rebuilt its solver session (cold path)"
    assert shared.preamble_reuse > 0, \
        "no re-check query reused a warm session preamble"
    assert sum(s.preamble_reuse + s.memo_hits for s in later) > 0, \
        "iterations after the baseline never hit the warm path"
    # the ablation: cold mode rebuilds sessions per re-check
    assert unshared.sessions_created > shared.sessions_created


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "rows" not in RESULTS:
        pytest.skip("run the full module for the report")
    rows = RESULTS["rows"]

    # honesty gate: a claimed fix always re-verified from source; a
    # failed repair always says so
    for job_id, row in rows.items():
        assert row["iterations"] <= MAX_ITERATIONS, job_id
        if row["verified"]:
            assert row["converged"], job_id
        if row["converged"] and row["barriers_inserted"]:
            assert row["minimal"], job_id

    # at least the canonical missing-barrier bugs must be repaired
    repaired = [r for r in rows.values() if r["verified"]]
    assert any(r["kernel"] == GATED_KERNEL for r in repaired), \
        f"{GATED_KERNEL} (the paper's reduction bug) must repair"

    table_rows = [
        [row["suite"], row["kernel"],
         "yes" if row["verified"] else
         ("unverified" if row["converged"] else "no"),
         row["iterations"], row["barriers_inserted"],
         row["recheck_queries"], row["preamble_reuse"],
         f"{row['wall_s']:.2f}"]
        for row in sorted(rows.values(),
                          key=lambda r: (r["suite"], r["kernel"]))]
    print_table(
        "CEGIS barrier repair over the racy built-ins",
        ["suite", "kernel", "fixed", "iters", "barriers",
         "re-check queries", "preamble reuse", "wall s"],
        table_rows)

    payload = {"suites": list(SUITE_NAMES),
               "max_iterations": MAX_ITERATIONS,
               "repairs": rows,
               "fast_path": RESULTS.get("fast_path")}
    out_path = os.environ.get("BENCH_OUT", os.path.join(
        os.path.dirname(__file__), "BENCH_repair.json"))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
