"""Figure 4 — the reduction kernel's parametric flow tree.

GKLEEp: one flow per tid-equivalence class, growing per barrier
encounter (F0 → F1/F2 → F3..F5 → ...; infeasible refinements like F4's
complement are pruned with the solver). SESA: flow combining collapses
every barrier encounter back to one flow.

The bench measures both engines across block sizes and asserts the
paper's two facts: SESA's flow count is 1 at every size, GKLEEp's grows.
"""
import pytest

from common import print_table, run_gkleep, run_sesa
from repro.kernels import ALL_KERNELS

BLOCKS = [8, 16, 32, 64]
RESULTS = {}


@pytest.mark.parametrize("block", BLOCKS)
def test_sesa_flow_tree(benchmark, block):
    kernel = ALL_KERNELS["reduction"]
    result = benchmark.pedantic(
        lambda: run_sesa(kernel, block=(block, 1, 1), check_oob=False),
        rounds=1, iterations=1)
    RESULTS[("sesa", block)] = result
    assert result.flows == 1


@pytest.mark.parametrize("block", BLOCKS)
def test_gkleep_flow_tree(benchmark, block):
    kernel = ALL_KERNELS["reduction"]
    result = benchmark.pedantic(
        lambda: run_gkleep(kernel, block=(block, 1, 1), check_oob=False),
        rounds=1, iterations=1)
    RESULTS[("gkleep", block)] = result
    assert result.flows > 1


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for block in BLOCKS:
        s = RESULTS.get(("sesa", block))
        g = RESULTS.get(("gkleep", block))
        if s is None or g is None:
            pytest.skip("run the full module for the report")
        rows.append([block, g.flows, f"{g.seconds:.2f}",
                     s.flows, f"{s.seconds:.2f}"])
    print_table(
        "Figure 4: reduction flow tree — max concurrent flows",
        ["blockDim", "GKLEEp flows", "GKLEEp s", "SESA flows", "SESA s"],
        rows)
    gk = [RESULTS[("gkleep", b)].flows for b in BLOCKS]
    assert gk == sorted(gk), "GKLEEp flow count grows with block size"
