"""Table II — highly divergent kernels: SESA vs GKLEEp flow counts.

The paper's shape: GKLEEp's flows grow with the thread count (often
exponentially) until the 3,600 s timeout; SESA's flow combining keeps
1-O(1) flows at every size. Cells are ``flows (seconds)`` or ``T.O.``
(budget exhausted — see common.py).

Thread counts {16, 32} keep the whole table under a few minutes; the
paper's {16..256} columns show the same monotone separation.
"""
import pytest

from common import print_table, run_gkleep, run_sesa
from repro.kernels import ALL_KERNELS

KERNELS = ["bitonic2.0", "wordsearch", "bitonic4.3", "mergeSort4.3",
           "stream_compaction", "n_stream_compaction", "blelloch",
           "brentkung"]
THREADS = [16, 32]

RESULTS = {}


def _config(name, threads):
    return dict(block=(threads, 1, 1), grid=(1, 1, 1), check_oob=False)


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("name", KERNELS)
def test_sesa(benchmark, name, threads):
    kernel = ALL_KERNELS[name]
    result = benchmark.pedantic(
        lambda: run_sesa(kernel, **_config(name, threads)),
        rounds=1, iterations=1)
    RESULTS[("sesa", name, threads)] = result
    assert not result.timed_out, f"SESA must not time out on {name}"
    # the paper's flow counts: 1 for the sort/search kernels, <= 3 for
    # the scans, single digits for compaction
    assert result.flows <= 9, f"{name}: {result.flows} flows"


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("name", KERNELS)
def test_gkleep(benchmark, name, threads):
    kernel = ALL_KERNELS[name]
    result = benchmark.pedantic(
        lambda: run_gkleep(kernel, **_config(name, threads)),
        rounds=1, iterations=1)
    RESULTS[("gkleep", name, threads)] = result


def test_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    explosion = 0
    for name in KERNELS:
        row = [name, ALL_KERNELS[name].paper_resolvable or "?"]
        for threads in THREADS:
            s = RESULTS.get(("sesa", name, threads))
            g = RESULTS.get(("gkleep", name, threads))
            if s is None or g is None:
                pytest.skip("run the full module for the report")
            row.append(g.cell)
            row.append(s.cell)
            if g.timed_out or g.flows > 4 * s.flows:
                explosion += 1
        rows.append(row)
    header = ["Kernel", "RSLV?"]
    for threads in THREADS:
        header += [f"GKLEEp T={threads}", f"SESA T={threads}"]
    print_table("Table II: divergent kernels — flows (seconds) or T.O.",
                header, rows)
    # the headline: GKLEEp explodes or badly trails SESA on most rows
    assert explosion >= len(KERNELS), \
        f"expected flow explosion on most kernels, saw {explosion}"
