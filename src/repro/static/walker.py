"""Tier-0 static walk: the kernel IR explored as one single flow.

The static tier only owns a kernel when it can reproduce the parametric
engine's execution record *exactly* and then decide every race/OOB query
without a solver. The first half of that bargain lives here: a
:class:`StaticWalker` is the symbolic executor constrained to a single
flow — any structural divergence (a genuine flow split, which is where
the flow tree, per-flow guards and merge machinery earn their keep)
raises :class:`StaticBail` instead of splitting, and the kernel
escalates to the full engine untouched. Kernels that survive the walk
produce an :class:`~repro.sym.executor.ExecutionResult` identical to
the one the engine itself would build, because it is built by the same
code: straight-line execution, constant-folded loop bounds, and
mergeable (barrier-free) diamonds never call :meth:`_split_flow` at
all.

Atomics and assertions also bail: atomics need the engine's
happens-before treatment, and assertion checking is a solver query by
construction. Both are detected by a cheap IR pre-scan before any
execution work is spent.
"""
from __future__ import annotations

from typing import Optional, Set

from .. import ir
from ..smt import TRUE, Term
from ..sym.config import LaunchConfig
from ..sym.executor import ExecutionError, ExecutionResult, Executor


class StaticBail(Exception):
    """The static tier cannot own this kernel — escalate.

    Raised for *structural* reasons (divergence, atomics, assertions,
    budgets); the adjudicator's value-level reasons use
    :class:`repro.static.checker.StaticUnknown`.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def prescreen(kernel: ir.Function, config: LaunchConfig) -> Optional[str]:
    """Walk-free reasons the static tier must escalate, or ``None``.

    Cheap single pass over the instruction stream plus a few config
    checks; anything caught here bails before an executor is built.
    """
    if getattr(config, "shard", None) is not None:
        # a swarm shard's verdict covers one ordinal partition of the
        # solver-path enumeration; the static tier has no shard notion
        return "swarm shard"
    if config.assumptions:
        return "user assumptions"
    if config.warp_lockstep and config.warp_size > 1:
        # intra-warp races need the warp-aware solving mode
        return "warp lockstep"
    if config.time_budget_seconds is not None:
        # under a wall-clock budget the engine may legitimately time
        # out with a partial report; the tier must not out-run it
        return "time budget"
    if config.solver_conflict_budget is not None:
        # portfolio variants study solver behaviour under tiny budgets;
        # a solver-less verdict would defeat the comparison
        return "solver budget override"
    for block in kernel.blocks:
        for instr in block.instrs:
            if isinstance(instr, (ir.AtomicRMW, ir.AtomicCAS)):
                return "atomic"
            if isinstance(instr, ir.Call) and instr.callee == "__assert":
                return "assertion"
    return None


class StaticWalker(Executor):
    """The parametric executor restricted to one flow.

    Overrides exactly the three points where the engine leaves
    single-flow execution; everything else (memory model, access
    recording, summarization, barrier intervals, mergeable diamonds)
    runs unchanged, which is what guarantees a resolved kernel's
    execution record matches the engine's bit for bit.
    """

    def _split_flow(self, flow, block, br, cond, idx):
        # covers both the genuine parametric split and the
        # bounded-unrolling forced exit (a symbolic loop condition
        # either way)
        raise StaticBail("divergent flow split")

    def _exec_atomic(self, flow, instr, guard):
        raise StaticBail("atomic")  # prescreen catches this first

    def _exec_call(self, flow, instr, guard=TRUE):
        if instr.callee == "__assert":
            raise StaticBail("assertion")  # prescreen catches this first
        super()._exec_call(flow, instr, guard)


def static_walk(module: ir.Module, kernel: ir.Function,
                config: LaunchConfig,
                sink_value_ids: Optional[Set[int]] = None
                ) -> ExecutionResult:
    """Run the single-flow walk, or raise :class:`StaticBail`.

    Post-conditions on the returned record: exactly one flow, no
    timeout, no execution errors — so the engine, run on the same
    kernel, would produce the identical record.
    """
    reason = prescreen(kernel, config)
    if reason is not None:
        raise StaticBail(reason)
    walker = StaticWalker(module, kernel, config, mode="sesa",
                          sink_value_ids=sink_value_ids)
    try:
        result = walker.run()
    except ExecutionError as exc:
        # deterministic: the engine would raise the same error; let it
        # produce the failure (and its message) on the escalation path
        raise StaticBail(f"execution error: {exc}") from None
    if result.timed_out:
        raise StaticBail("execution budget")
    if result.errors:
        # barrier divergence is a verdict-bearing warning the engine
        # attaches during the run; keep that path on the engine
        raise StaticBail("barrier divergence")
    return result
