"""Static pre-screening tier (tier 0 of the tiered checker).

Resolves easy kernels — single-flow, affine-indexed, atomic-free —
straight from a solver-less walk of the IR, well under a millisecond
per kernel, and escalates everything else to the parametric engine
untouched. Sound in both directions: a resolved verdict is one the
full engine would also produce (the differential suite in
``tests/static/`` enforces exactly that).
"""
from .checker import StaticAdjudicator, StaticUnknown
from .tier import StaticOutcome, run_static_tier
from .walker import StaticBail, StaticWalker, prescreen, static_walk

__all__ = [
    "StaticAdjudicator", "StaticBail", "StaticOutcome", "StaticUnknown",
    "StaticWalker", "prescreen", "run_static_tier", "static_walk",
]
