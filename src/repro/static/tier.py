"""Tier 0 of the tiered checker: walk, adjudicate, or escalate.

:func:`run_static_tier` is the one entry point the engines call. It
either *resolves* the kernel — returning a fully populated
:class:`~repro.sym.races.RaceChecker` (races, OOBs, stats) built
without a single solver query — or reports why it could not, so the
caller runs the exact prior parametric pipeline. A resolved outcome is
exact by construction: the walk is the engine's own executor restricted
to one flow, and every discharged query is decided by exhaustive
evaluation over the bounded thread box (see :mod:`.walker` /
:mod:`.checker`).
"""
from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Set

from .. import ir
from ..sym.config import LaunchConfig
from ..sym.executor import ExecutionResult
from ..sym.races import RaceChecker
from .checker import StaticAdjudicator, StaticUnknown
from .walker import StaticBail, static_walk


@dataclass
class StaticOutcome:
    """What tier 0 did with one kernel."""

    #: the tier owns the verdict (checker/result are populated)
    resolved: bool
    #: why it escalated (``None`` when resolved)
    reason: Optional[str] = None
    #: wall clock spent in the tier, walk included
    seconds: float = 0.0
    checker: Optional[RaceChecker] = None
    result: Optional[ExecutionResult] = None
    #: candidate pairs the adjudicator looked at before finishing/bailing
    pairs_checked: int = 0
    #: pairs it discharged as race-free without a solver
    pairs_discharged: int = 0


def run_static_tier(module: ir.Module, kernel: ir.Function,
                    config: LaunchConfig,
                    sink_value_ids: Optional[Set[int]] = None,
                    max_reports: int = 16) -> StaticOutcome:
    """Attempt a solver-less verdict for one kernel launch."""
    start = time.perf_counter()
    adj: Optional[StaticAdjudicator] = None
    try:
        result = static_walk(module, kernel, config, sink_value_ids)
        adj = StaticAdjudicator(result, max_reports=max_reports)
        checker = adj.adjudicate()
    except StaticBail as exc:
        return StaticOutcome(
            resolved=False, reason=exc.reason,
            seconds=time.perf_counter() - start)
    except StaticUnknown as exc:
        return StaticOutcome(
            resolved=False, reason=exc.reason,
            seconds=time.perf_counter() - start,
            pairs_checked=adj.pairs_checked if adj else 0,
            pairs_discharged=adj.pairs_discharged if adj else 0)
    return StaticOutcome(
        resolved=True, seconds=time.perf_counter() - start,
        checker=checker, result=result,
        pairs_checked=adj.pairs_checked,
        pairs_discharged=adj.pairs_discharged)
