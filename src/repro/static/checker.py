"""Static adjudication: decide the engine's race/OOB queries exactly,
without a solver.

The walked kernel's guards, offsets and values are interned terms over
the *bounded, concrete* thread box (``tid.* < blockDim``,
``bid.* < gridDim``) plus summary index variables with known extents.
For a pure term (no uninterpreted application, no free symbolic
input), exhaustive evaluation over that box decides the engine's SAT
query *exactly* — same satisfiability, never an approximation. The
adjudicator walks the engine's own candidate-pair enumeration
(:meth:`RaceChecker._iter_candidate_pairs`), discharges each pair with
the engine's affine fast path or by vectorised enumeration, and emits
races through the engine's own :meth:`_emit_race`, so a statically
resolved kernel carries a report the full engine could have produced.

Anything outside the decidable fragment — a free non-thread variable
(symbolic scalar input), an uninterpreted application, or a domain too
large to enumerate under the caps — raises :class:`StaticUnknown` and
the kernel escalates. The caps keep the sub-millisecond latency claim
honest: a kernel that would need a big enumeration goes to the solver
instead of burning the fast path's budget.
"""
from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from .. import ir
from ..smt import Model
from ..smt.sorts import BVSort
from ..smt.subst import _eval_node
from ..smt.terms import Op, Term, free_vars
from ..sym.access import Access
from ..sym.executor import ExecutionResult
from ..sym.memory import MemoryObject, contains_havoc
from ..sym.races import _MISS, OOBReport, RaceChecker

#: per-side enumeration domain cap (product of variable extents)
ENUM_CAP = 4096
#: total (i, j) pair iterations allowed per pair adjudication
SCAN_CAP = 1 << 16

_AXIS = {"x": 0, "y": 1, "z": 2}


class StaticUnknown(Exception):
    """The pair/access leaves the decidable fragment — escalate."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# vectorised term evaluation
# ---------------------------------------------------------------------------

def _vec(x, d: int) -> list:
    return x if isinstance(x, list) else [x] * d


def _apply(node: Term, args: list, d: int):
    """One DAG node over *d* parallel assignments. Scalar results stay
    scalars (constant subtrees cost nothing); every element matches
    :func:`repro.smt.subst.evaluate` exactly — the generic fallback IS
    that evaluator, applied pointwise."""
    if not any(isinstance(a, list) for a in args):
        return _eval_node(node, args)
    op = node.op
    if op == Op.ITE:
        c, t, e = (_vec(a, d) for a in args)
        return [tv if cv else ev for cv, tv, ev in zip(c, t, e)]
    if op in (Op.BAND, Op.BOR):
        out = _vec(args[0], d)[:]
        for other in args[1:]:
            ov = _vec(other, d)
            if op == Op.BAND:
                out = [bool(p) and bool(q) for p, q in zip(out, ov)]
            else:
                out = [bool(p) or bool(q) for p, q in zip(out, ov)]
        return out
    if op == Op.BNOT:
        return [not p for p in _vec(args[0], d)]
    if len(args) == 2:
        x, y = _vec(args[0], d), _vec(args[1], d)
        if op == Op.EQ:
            return [p == q for p, q in zip(x, y)]
        if op == Op.ULT:
            return [p < q for p, q in zip(x, y)]
        if op == Op.ULE:
            return [p <= q for p, q in zip(x, y)]
        sort = node.sort
        if isinstance(sort, BVSort):
            mask = sort.mask
            if op == Op.ADD:
                return [(p + q) & mask for p, q in zip(x, y)]
            if op == Op.SUB:
                return [(p - q) & mask for p, q in zip(x, y)]
            if op == Op.MUL:
                return [(p * q) & mask for p, q in zip(x, y)]
            if op == Op.AND:
                return [p & q for p, q in zip(x, y)]
            if op == Op.OR:
                return [p | q for p, q in zip(x, y)]
            if op == Op.XOR:
                return [p ^ q for p, q in zip(x, y)]
            if not isinstance(args[1], list):
                q0 = args[1]
                if op == Op.UREM and q0 != 0:
                    return [p % q0 for p in x]
                if op == Op.UDIV and q0 != 0:
                    return [p // q0 for p in x]
                if op == Op.SHL and q0 < sort.width:
                    return [(p << q0) & mask for p in x]
                if op == Op.LSHR and q0 < sort.width:
                    return [p >> q0 for p in x]
    # generic fallback: the scalar evaluator, pointwise
    cols = [_vec(a, d) for a in args]
    return [_eval_node(node, [c[i] for c in cols]) for i in range(d)]


def _veval(roots: List[Term], columns: Dict[str, list], d: int,
           vals: Optional[Dict[int, object]] = None) -> list:
    """Evaluate term DAGs column-wise over *d* assignments.

    Raises :class:`StaticUnknown` on an unbound variable (a symbolic
    scalar input) or an uninterpreted application — exactly the leaves
    a solver would treat as free, which enumeration cannot decide.

    *vals* is a node-id → column cache; a shared dict (one per box)
    lets subDAGs common to many pairs — the block's address arithmetic,
    repeated guards — evaluate exactly once per adjudication, and the
    traversal prunes at already-cached nodes.
    """
    if vals is None:
        vals = {}
    stack: list = [(r, False) for r in roots]
    while stack:
        node, expanded = stack.pop()
        nid = id(node)
        if nid in vals:
            continue
        if not expanded:
            stack.append((node, True))
            for arg in node.args:
                if id(arg) not in vals:
                    stack.append((arg, False))
            continue
        op = node.op
        if op == Op.CONST:
            vals[nid] = node.payload
        elif op == Op.VAR:
            col = columns.get(node.name)
            if col is None:
                raise StaticUnknown(f"free input {node.name}")
            vals[nid] = col
        elif op == Op.UF:
            raise StaticUnknown(f"uninterpreted {node.payload}")
        else:
            vals[nid] = _apply(
                node, [vals[id(a)] for a in node.args], d)
    return [_vec(vals[id(r)], d) for r in roots]


# ---------------------------------------------------------------------------
# the adjudicator
# ---------------------------------------------------------------------------

class StaticAdjudicator:
    """Drives a solver-less :class:`RaceChecker` over one walked record.

    Reuses the engine's pair enumeration, affine fast path, pair memo,
    interval OOB pruning, report emission and stats counters — the only
    thing replaced is the SAT query itself, which becomes an exhaustive
    evaluation over the thread box. ``stats.queries`` staying 0 is the
    visible signature of a statically resolved kernel.
    """

    def __init__(self, result: ExecutionResult,
                 max_reports: int = 16) -> None:
        self.checker = RaceChecker(result, max_reports=max_reports)
        self.pairs_checked = 0
        self.pairs_discharged = 0
        rc = self.checker
        self._extents: Dict[str, int] = {}
        for name in rc.env.thread_vars():
            i = _AXIS[name.split(".")[1]]
            self._extents[name] = (rc.config.block_dim[i]
                                   if name.startswith("tid")
                                   else rc.config.grid_dim[i])
        self._box_cache: Dict[tuple, tuple] = {}
        self._col_cache: Dict[tuple, Dict[str, list]] = {}
        #: per-box node-id → column vector cache (see :func:`_veval`)
        self._node_cache: Dict[tuple, Dict[int, object]] = {}
        #: affine-fast-path verdicts keyed by the inputs the engine's
        #: check actually reads: the interned offset pair, access size
        #: and memory object (everything else is fixed per run)
        self._affine_cache: Dict[tuple, bool] = {}
        self._fv_cache: Dict[tuple, Dict[str, Term]] = {}
        #: address-bucket maps, one per (access terms, box) — each
        #: access participates in many pairs
        self._bucket_cache: Dict[tuple, Dict[int, List[int]]] = {}

    # -- driving -------------------------------------------------------

    def adjudicate(self) -> RaceChecker:
        """Mirror of :meth:`RaceChecker.check` minus solver/timeout
        machinery (the tier bails on time budgets before walking)."""
        rc = self.checker
        pairs = rc._iter_candidate_pairs()
        for a1, a2, same_bi in pairs:
            if len(rc.races) >= rc.max_reports:
                break
            self._pair(a1, a2, same_bi)
        if rc.config.check_oob:
            self._oob()
        # assertions: the walker bails on __assert, so none exist here
        return rc

    # -- race pairs ----------------------------------------------------

    def _pair(self, a1: Access, a2: Access, same_bi: bool) -> None:
        """Mirror of :meth:`RaceChecker._check_pair` with enumeration in
        place of ``_solve`` (and no cross-run persistence — warm starts
        accelerate solving, and there is nothing to solve)."""
        rc = self.checker
        rc.stats.pairs_considered += 1
        self.pairs_checked += 1
        obj = a1.obj
        memo_key = None
        if rc.pruning:
            memo_key = rc._pair_key(a1, a2, same_bi)
            hit = rc._pair_memo.get(memo_key, _MISS)
            if hit is not _MISS:
                rc.stats.pair_memo_hits += 1
                if hit is not None:
                    values, benign = hit
                    rc._emit_race(a1, a2, Model(dict(values)), benign)
                else:
                    self.pairs_discharged += 1
                return
        akey = (id(a1.offset), id(a2.offset), a1.size, a2.size, id(obj))
        affine = self._affine_cache.get(akey)
        if affine is None:
            affine = rc._affine_no_overlap(a1, a2, obj)
            self._affine_cache[akey] = affine
        if affine:
            rc.stats.by_affine += 1
            if memo_key is not None:
                rc._pair_memo[memo_key] = None
            self.pairs_discharged += 1
            return
        verdict = self._enumerate(a1, a2, same_bi, obj)
        if verdict is None:
            if memo_key is not None:
                rc._pair_memo[memo_key] = None
            self.pairs_discharged += 1
            return
        values, benign = verdict
        if memo_key is not None:
            rc._pair_memo[memo_key] = (dict(values), benign)
        rc._emit_race(a1, a2, Model(dict(values)), benign)

    def _enumerate(self, a1: Access, a2: Access, same_bi: bool,
                   obj: MemoryObject
                   ) -> Optional[Tuple[Dict[str, int], bool]]:
        """Decide the pair's race query by exhaustive evaluation.

        Returns ``None`` (provably disjoint under thread distinctness)
        or ``(witness values, benign)``; raises :class:`StaticUnknown`
        outside the decidable fragment. Semantics mirrored exactly:
        preamble bounds become the enumeration box, ``_different_thread``
        / the cross-interval ``not same_block`` conjunct become the
        validity predicate over coordinate tuples, ``_overlap`` becomes
        the address join, ``_classify_benign`` becomes a value sweep
        over the colliding assignments.
        """
        rc = self.checker
        # W/W pairs with pure recorded values qualify for the benign
        # classification, whose query ranges over the value terms' own
        # thread variables too — fold them into the enumeration so
        # thread distinctness sees every coordinate that matters
        needs_values = (a1.kind.is_write() and a2.kind.is_write()
                        and a1.value is not None and a2.value is not None
                        and not contains_havoc(a1.value)
                        and not contains_havoc(a2.value))
        roots1 = [a1.cond, a1.offset] + ([a1.value] if needs_values else [])
        roots2 = [a2.cond, a2.offset] + ([a2.value] if needs_values else [])
        fv1 = self._free_vars(roots1)
        fv2 = self._free_vars(roots2)
        for name in set(fv1) | set(fv2):
            if name not in self._extents \
                    and name not in rc._summary_bounds:
                raise StaticUnknown(f"free input {name}")
        occurring = tuple(sorted(
            n for n in self._extents if n in fv1 or n in fv2))
        n_occ = len(occurring)
        occ_tid = [i for i, n in enumerate(occurring)
                   if n.startswith("tid")]
        occ_bid = [i for i, n in enumerate(occurring)
                   if n.startswith("bid")]
        has_rtid = any(n.startswith("tid") and n not in occurring
                       for n in self._extents)
        has_rbid = any(n.startswith("bid") and n not in occurring
                       for n in self._extents)
        # per-side domains: shared occurring coordinates plus each
        # side's own summary index variables (instantiated per side,
        # like the engine's k!1 / k!2)
        names1 = occurring + tuple(sorted(
            n for n in fv1 if n in rc._summary_bounds))
        names2 = occurring + tuple(sorted(
            n for n in fv2 if n in rc._summary_bounds))
        tuples1, d1 = self._box(names1)
        tuples2, d2 = self._box(names2)
        vals1 = self._eval_terms(roots1, names1)
        vals2 = self._eval_terms(roots2, names2)
        cond1, off1 = vals1[0], vals1[1]
        cond2, off2 = vals2[0], vals2[1]

        if obj.space == ir.MemSpace.SHARED:
            mode = "S"
        elif same_bi:
            mode = "G"
        else:
            mode = "X"

        def valid(t1: tuple, t2: tuple) -> bool:
            """thread-distinctness over the enumerated coordinates;
            non-occurring coordinates are free, so their mere existence
            satisfies (or defeats) the corresponding (in)equality"""
            if mode == "S":
                # same block, different thread-in-block
                if any(t1[i] != t2[i] for i in occ_bid):
                    return False
                return has_rtid or any(t1[i] != t2[i] for i in occ_tid)
            if mode == "X":
                # different block (which implies different thread)
                return has_rbid or any(t1[i] != t2[i] for i in occ_bid)
            # global, same interval: any coordinate may differ
            return has_rtid or has_rbid or t1[:n_occ] != t2[:n_occ]

        # address join: bucket guard-true rows by byte footprint
        same_size = a1.size == a2.size
        if not same_size:
            # the engine's byte-range overlap is mod-2^32; byte keys
            # match it only when neither footprint wraps
            m = (1 << 32) - a1.size
            if any(off1[i] > m for i in range(d1) if cond1[i]):
                raise StaticUnknown("wrapping byte footprint")
            m = (1 << 32) - a2.size
            if any(off2[j] > m for j in range(d2) if cond2[j]):
                raise StaticUnknown("wrapping byte footprint")

        b1 = self._buckets(a1, names1, cond1, off1, same_size, d1)
        b2 = self._buckets(a2, names2, cond2, off2, same_size, d2)

        hit: Optional[Tuple[int, int]] = None
        work = 0
        for addr, idxs1 in b1.items():
            idxs2 = b2.get(addr)
            if not idxs2:
                continue
            for i in idxs1:
                t1 = tuples1[i]
                for j in idxs2:
                    work += 1
                    if work > SCAN_CAP:
                        raise StaticUnknown("pair scan cap")
                    if valid(t1, tuples2[j]):
                        hit = (i, j)
                        break
                if hit:
                    break
            if hit:
                break
        if hit is None:
            return None

        benign = False
        if needs_values:
            v1, v2 = vals1[2], vals2[2]
            benign = True
            seen = set()
            work = 0
            for addr, idxs1 in b1.items():
                idxs2 = b2.get(addr)
                if not idxs2:
                    continue
                for i in idxs1:
                    t1 = tuples1[i]
                    for j in idxs2:
                        if (i, j) in seen:
                            continue  # byte buckets repeat pairs
                        seen.add((i, j))
                        work += 1
                        if work > SCAN_CAP:
                            raise StaticUnknown("benign scan cap")
                        if v1[i] != v2[j] and valid(t1, tuples2[j]):
                            benign = False
                            hit = (i, j)  # a witness with the conflict
                            break
                    if not benign:
                        break
                if not benign:
                    break

        i, j = hit
        values: Dict[str, int] = {}
        for n, v in zip(names1, tuples1[i]):
            values[f"{n}!1"] = v
        for n, v in zip(names2, tuples2[j]):
            values[f"{n}!2"] = v
        self._mark_residual(values, tuples1[i], tuples2[j], mode,
                            occ_tid, occ_bid, n_occ, occurring)
        return values, benign

    def _mark_residual(self, values: Dict[str, int], t1: tuple, t2: tuple,
                       mode: str, occ_tid: list, occ_bid: list,
                       n_occ: int, occurring: tuple) -> None:
        """When validity leaned on a non-occurring coordinate, pin it in
        the witness so the reported threads really are distinct
        (``_witness`` defaults unmentioned coordinates to 0)."""
        def first_residual(prefix: str) -> Optional[str]:
            for n in sorted(self._extents):
                if n.startswith(prefix) and n not in occurring:
                    return n
            return None

        if mode == "S":
            if not any(t1[i] != t2[i] for i in occ_tid):
                name = first_residual("tid")
                values[f"{name}!1"], values[f"{name}!2"] = 0, 1
        elif mode == "G":
            if t1[:n_occ] == t2[:n_occ]:
                name = first_residual("tid") or first_residual("bid")
                values[f"{name}!1"], values[f"{name}!2"] = 0, 1
        else:
            if not any(t1[i] != t2[i] for i in occ_bid):
                name = first_residual("bid")
                values[f"{name}!1"], values[f"{name}!2"] = 0, 1

    # -- out-of-bounds -------------------------------------------------

    def _oob(self) -> None:
        """Mirror of :meth:`RaceChecker._check_oob`: same dedup, same
        interval fast path, same report identity — the past-the-end
        query decided by single-side enumeration."""
        rc = self.checker
        seen: set = set()
        reported: set = set()
        for access in rc.result.all_accesses():
            if len(rc.oobs) >= rc.max_reports:
                return
            obj = access.obj
            if obj.size_bytes is None:
                continue
            if (obj.name, access.loc) in reported:
                continue
            key = (id(obj), id(access.offset), access.size,
                   id(access.cond))
            if key in seen:
                continue
            seen.add(key)
            if rc.pruning and obj.size_bytes >= access.size:
                iv = rc._ia.interval_of(access.offset)
                if iv.hi <= obj.size_bytes - access.size:
                    rc.stats.oob_pruned += 1
                    continue
            witness = self._enumerate_oob(access, obj)
            if witness is not None:
                reported.add((obj.name, access.loc))
                rc.oobs.append(OOBReport(
                    obj_name=obj.name, access=access,
                    size_bytes=obj.size_bytes,
                    witness=rc._witness(Model(witness),
                                        two_threads=False)))
                rc.stats.oob_found += 1

    def _enumerate_oob(self, access: Access, obj: MemoryObject
                       ) -> Optional[Dict[str, int]]:
        rc = self.checker
        fv = self._free_vars([access.cond, access.offset])
        for name in fv:
            if name not in self._extents \
                    and name not in rc._summary_bounds:
                raise StaticUnknown(f"free input {name}")
        names = tuple(sorted(
            n for n in self._extents if n in fv)) + tuple(sorted(
                n for n in fv if n in rc._summary_bounds))
        tuples, d = self._box(names)
        cond, off = self._eval_terms([access.cond, access.offset], names)
        limit = obj.size_bytes - access.size \
            if obj.size_bytes >= access.size else 0
        for i in range(d):
            if cond[i] and off[i] > limit:
                return {f"{n}!1": v for n, v in zip(names, tuples[i])}
        return None

    # -- enumeration machinery ----------------------------------------

    def _free_vars(self, roots: List[Term]) -> Dict[str, Term]:
        key = tuple(id(r) for r in roots)
        out = self._fv_cache.get(key)
        if out is None:
            out = free_vars(*roots)
            self._fv_cache[key] = out
        return out

    def _buckets(self, a: Access, names: tuple, cond: list, off: list,
                 same_size: bool, d: int) -> Dict[int, List[int]]:
        """Guard-true rows of one access keyed by byte footprint —
        exact address when both sides have equal sizes, byte-granular
        otherwise."""
        key = (id(a.cond), id(a.offset), a.size, same_size, names)
        out = self._bucket_cache.get(key)
        if out is not None:
            return out
        out = {}
        for i in range(d):
            if not cond[i]:
                continue
            if same_size:
                out.setdefault(off[i], []).append(i)
            else:
                for b in range(off[i], off[i] + a.size):
                    out.setdefault(b, []).append(i)
        self._bucket_cache[key] = out
        return out

    def _box(self, names: tuple) -> Tuple[list, int]:
        """All assignments to *names* (row-major tuples), capped."""
        cached = self._box_cache.get(names)
        if cached is not None:
            return cached
        rc = self.checker
        sizes = []
        for n in names:
            if n in self._extents:
                sizes.append(self._extents[n])
            else:
                iv = rc._summary_bounds[n]
                sizes.append(iv.hi - iv.lo + 1)
        d = 1
        for s in sizes:
            d *= s
        if d > ENUM_CAP:
            raise StaticUnknown(f"domain {d} exceeds enumeration cap")
        tuples = list(itertools.product(*[range(s) for s in sizes]))
        cached = (tuples, d)
        self._box_cache[names] = cached
        return cached

    def _eval_terms(self, terms: List[Term], names: tuple) -> List[list]:
        """Column vectors for *terms* over the box of *names*, with a
        per-box persistent node cache — the same guards and address
        arithmetic show up in many pairs."""
        tuples, d = self._box(names)
        columns = self._col_cache.get(names)
        if columns is None:
            columns = {n: [t[i] for t in tuples]
                       for i, n in enumerate(names)}
            self._col_cache[names] = columns
        cache = self._node_cache.setdefault(names, {})
        return _veval(terms, columns, d, cache)
