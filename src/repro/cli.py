"""Command-line interface.

::

    python -m repro check kernel.cu --block 64 --grid 4
    python -m repro repair kernel.cu --block 64 --diff
    python -m repro taint kernel.cu
    python -m repro ir kernel.cu
    python -m repro tests kernel.cu --block 32
    python -m repro batch examples/ --jobs 4

``check`` analyses a kernel for races/OOB (engine selectable),
``repair`` synthesizes a verified minimal barrier fix for reported
races, ``taint`` prints the §V input advisory, ``ir`` dumps the SSA
bytecode after the standard pipeline, ``tests`` emits concrete per-flow
test vectors, and ``batch`` fans a whole corpus out over the parallel
scheduler with result caching and telemetry (:mod:`repro.service`).

Exit codes are uniform across subcommands: 0 — analysis ran and found
nothing (or the repair verified), 1 — races/OOB found or the repair did
not converge, 2 — usage or input error (unreadable file, parse error,
unknown kernel, bad flag value).
"""
from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .core import GKLEE, GKLEEp, SESA, LaunchConfig
from .frontend import LexError, ParseError, SemaError


def _read_source(path: str) -> str:
    """Read a kernel source file, closing the handle; on failure print
    a clean one-line error and exit with code 2 (usage error)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"repro: cannot read {path!r}: {reason}", file=sys.stderr)
        raise SystemExit(2)


def _dim3(text: str) -> Tuple[int, int, int]:
    parts = [int(p) for p in text.split(",")]
    while len(parts) < 3:
        parts.append(1)
    if len(parts) != 3 or any(p < 1 for p in parts):
        raise argparse.ArgumentTypeError(f"bad dim3 {text!r}")
    return tuple(parts)  # type: ignore[return-value]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SESA: symbolic race checking for (Mini)CUDA kernels")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="MiniCUDA source file")
        p.add_argument("--kernel", help="kernel name (if several)")

    check = sub.add_parser("check", help="run the race/OOB analysis")
    common(check)
    check.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                       metavar="X[,Y[,Z]]")
    check.add_argument("--block", type=_dim3, default=(64, 1, 1),
                       metavar="X[,Y[,Z]]")
    check.add_argument("--engine", choices=["sesa", "gkleep", "gklee"],
                       default="sesa")
    check.add_argument("--warp-size", type=int, default=32)
    check.add_argument("--lockstep", action="store_true",
                       help="assume SIMD lock-step ordering within warps")
    check.add_argument("--no-oob", action="store_true",
                       help="disable out-of-bounds checking")
    check.add_argument("--symbolic", action="append", default=None,
                       metavar="PARAM",
                       help="force PARAM symbolic (repeatable; default: "
                            "taint-inferred)")
    check.add_argument("--set", action="append", default=[],
                       metavar="PARAM=VALUE",
                       help="concrete scalar value (repeatable)")
    check.add_argument("--array-size", action="append", default=[],
                       metavar="PARAM=COUNT",
                       help="element count for a pointer param")
    check.add_argument("--time-budget", type=float, default=None,
                       metavar="SECONDS")
    check.add_argument("--no-incremental", action="store_true",
                       help="solve every race query from scratch instead "
                            "of on incremental solver sessions")
    check.add_argument("--no-pruning", action="store_true",
                       help="disable the pre-solver pruning pipeline "
                            "(summarization, bucketing, pair memo)")
    check.add_argument("--json", action="store_true",
                       help="machine-readable output")

    rep = sub.add_parser(
        "repair", help="synthesize a verified, minimal barrier fix")
    common(rep)
    rep.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                     metavar="X[,Y[,Z]]")
    rep.add_argument("--block", type=_dim3, default=(64, 1, 1),
                     metavar="X[,Y[,Z]]")
    rep.add_argument("--warp-size", type=int, default=32)
    rep.add_argument("--lockstep", action="store_true",
                     help="assume SIMD lock-step ordering within warps")
    rep.add_argument("--no-oob", action="store_true",
                     help="disable out-of-bounds checking in the final "
                          "verification run")
    rep.add_argument("--symbolic", action="append", default=None,
                     metavar="PARAM",
                     help="force PARAM symbolic (repeatable; default: "
                          "taint-inferred)")
    rep.add_argument("--set", action="append", default=[],
                     metavar="PARAM=VALUE",
                     help="concrete scalar value (repeatable)")
    rep.add_argument("--array-size", action="append", default=[],
                     metavar="PARAM=COUNT",
                     help="element count for a pointer param")
    rep.add_argument("--time-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget for the whole repair loop")
    rep.add_argument("--max-iterations", type=int, default=8, metavar="N",
                     help="CEGIS iteration budget (default 8)")
    rep.add_argument("--remove-redundant", action="store_true",
                     help="also delete pre-existing barriers proven "
                          "redundant by re-checking")
    rep.add_argument("--no-incremental", action="store_true",
                     help="give every re-check its own cold solver "
                          "sessions instead of the shared warm pool")
    rep.add_argument("--diff", action="store_true",
                     help="print only the unified source diff of the fix")
    rep.add_argument("--json", action="store_true",
                     help="machine-readable output")

    taint = sub.add_parser("taint", help="print the §V input advisory")
    common(taint)
    taint.add_argument("--json", action="store_true",
                       help="machine-readable output")

    ir_cmd = sub.add_parser("ir", help="dump the SSA bytecode")
    common(ir_cmd)

    tests = sub.add_parser(
        "tests", help="emit concrete per-flow test vectors")
    common(tests)
    tests.add_argument("--grid", type=_dim3, default=(1, 1, 1))
    tests.add_argument("--block", type=_dim3, default=(64, 1, 1))
    tests.add_argument("--json", action="store_true",
                       help="machine-readable output")

    batch = sub.add_parser(
        "batch", help="analyse a whole corpus through the parallel "
                      "scheduler (with result cache + telemetry)")
    batch.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="'builtin', 'builtin:<suite>' (paper, sdk, reductions, "
             "divergent, lonestar, parboil), a directory of .cu files, "
             "or a single file; default: the full built-in corpus")
    batch.add_argument("--jobs", type=int, default=4, metavar="N",
                       help="concurrent worker processes (default 4)")
    batch.add_argument("--engine", choices=["sesa", "gkleep", "gklee"],
                       default="sesa")
    batch.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                       metavar="X[,Y[,Z]]",
                       help="launch grid for file/directory targets")
    batch.add_argument("--block", type=_dim3, default=(64, 1, 1),
                       metavar="X[,Y[,Z]]",
                       help="launch block for file/directory targets")
    batch.add_argument("--cache-dir", default=".repro-cache",
                       metavar="DIR",
                       help="verdict cache location (default .repro-cache)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    batch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="hard per-job wall-clock limit")
    batch.add_argument("--retries", type=int, default=1, metavar="N",
                       help="retries for crashed workers (default 1)")
    batch.add_argument("--trace", default=None, metavar="PATH",
                       help="JSONL telemetry trace "
                            "(default <cache-dir>/trace.jsonl)")
    batch.add_argument("--limit", type=int, default=None, metavar="N",
                       help="only run the first N jobs of the corpus")
    batch.add_argument("--no-incremental", action="store_true",
                       help="solve every race query from scratch instead "
                            "of on incremental solver sessions")
    batch.add_argument("--no-pruning", action="store_true",
                       help="disable the pre-solver pruning pipeline "
                            "(summarization, bucketing, pair memo)")
    batch.add_argument("--repair", action="store_true",
                       help="run the barrier-repair loop on every racy "
                            "sesa job and record the synthesized fix")
    batch.add_argument("--json", action="store_true",
                       help="machine-readable output")
    return parser


def _parse_kv(pairs: List[str], what: str) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            print(f"repro: bad {what} {pair!r}: expected PARAM=VALUE",
                  file=sys.stderr)
            raise SystemExit(2)
        key, value = pair.split("=", 1)
        try:
            out[key] = int(value, 0)
        except ValueError:
            print(f"repro: bad {what} {pair!r}: VALUE must be an integer",
                  file=sys.stderr)
            raise SystemExit(2)
    return out


def _config_from(args) -> LaunchConfig:
    return LaunchConfig(
        grid_dim=args.grid, block_dim=args.block,
        warp_size=args.warp_size, warp_lockstep=args.lockstep,
        check_oob=not args.no_oob,
        symbolic_inputs=set(args.symbolic) if args.symbolic is not None
        else None,
        scalar_values=_parse_kv(args.set, "--set"),
        array_sizes=_parse_kv(args.array_size, "--array-size"),
        time_budget_seconds=args.time_budget,
        incremental_solving=not args.no_incremental,
        pair_pruning=not args.no_pruning)


def cmd_check(args) -> int:
    """The ``check`` subcommand: analyse and report races/OOB."""
    source = _read_source(args.file)
    engine_cls = {"sesa": SESA, "gkleep": GKLEEp, "gklee": GKLEE}[args.engine]
    tool = engine_cls.from_source(source, args.kernel)
    report = tool.check(_config_from(args))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 1 if (report.has_races or report.has_oob) else 0


def cmd_repair(args) -> int:
    """The ``repair`` subcommand: CEGIS barrier synthesis.

    Exit 0 when the synthesized fix (or the unmodified kernel) verifies
    race-free; exit 1 when the loop fails to converge or the rendered
    fix fails re-verification.
    """
    from .repair import repair_source
    source = _read_source(args.file)
    config = LaunchConfig(
        grid_dim=args.grid, block_dim=args.block,
        warp_size=args.warp_size, warp_lockstep=args.lockstep,
        check_oob=not args.no_oob,
        symbolic_inputs=set(args.symbolic) if args.symbolic is not None
        else None,
        scalar_values=_parse_kv(args.set, "--set"),
        array_sizes=_parse_kv(args.array_size, "--array-size"))
    result = repair_source(
        source, config=config, kernel_name=args.kernel,
        max_iterations=args.max_iterations,
        share_sessions=not args.no_incremental,
        remove_redundant=args.remove_redundant,
        time_budget_seconds=args.time_budget)
    ok = result.converged and result.verified
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    elif args.diff:
        if result.diff:
            print(result.diff, end="")
        else:
            print(f"repro: no fix to print ({result.message or 'no edits'})",
                  file=sys.stderr)
    else:
        print(result.summary())
        if result.diff:
            print()
            print(result.diff, end="")
    return 0 if ok else 1


def cmd_taint(args) -> int:
    """The ``taint`` subcommand: per-input symbolisation advisory."""
    tool = SESA.from_source(_read_source(args.file), args.kernel)
    inferred = tool.inferred_symbolic_inputs()
    if args.json:
        print(json.dumps({
            "kernel": tool.kernel.name,
            "symbolic": sorted(inferred),
            "total_inputs": len(tool.taint.verdicts),
            "verdicts": {
                name: {"symbolic": name in inferred,
                       "is_pointer": v.is_pointer,
                       "flows_into_address": v.flows_into_address,
                       "reason": v.reason}
                for name, v in tool.taint.verdicts.items()},
        }, indent=2))
        return 0
    print(f"kernel {tool.kernel.name}: "
          f"{len(inferred)}/{len(tool.taint.verdicts)} inputs symbolic")
    for name, v in tool.taint.verdicts.items():
        marker = "SYMBOLIC " if name in inferred else "concrete "
        print(f"  {marker} {name:20s} {v.reason}")
    return 0


def cmd_ir(args) -> int:
    """The ``ir`` subcommand: dump the SSA bytecode with the §V
    flow-merging annotations (combine / combine_ite / split)."""
    from .ir import module_to_str
    from .passes import annotate_flow_merging
    tool = SESA.from_source(_read_source(args.file), args.kernel)
    annotate_flow_merging(tool.kernel, tool.taint)
    print(module_to_str(tool.module))
    return 0


def cmd_tests(args) -> int:
    """The ``tests`` subcommand: concrete per-flow test vectors."""
    tool = SESA.from_source(_read_source(args.file), args.kernel)
    config = LaunchConfig(grid_dim=args.grid, block_dim=args.block)
    vectors = tool.generate_tests(config)
    if args.json:
        print(json.dumps({"kernel": tool.kernel.name,
                          "vectors": [dict(sorted(v.items()))
                                      for v in vectors]}, indent=2))
        return 0
    if not vectors:
        print("no feasible flows (empty kernel?)")
        return 0
    for i, vec in enumerate(vectors):
        inner = ", ".join(f"{k}={v}" for k, v in sorted(vec.items()))
        print(f"test[{i}]: {inner}")
    return 0


def cmd_batch(args) -> int:
    """The ``batch`` subcommand: corpus-scale parallel analysis."""
    from .service import load_corpus, run_batch
    try:
        specs = load_corpus(args.targets, engine=args.engine,
                            grid_dim=args.grid, block_dim=args.block,
                            time_budget_seconds=args.timeout)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("repro: corpus is empty (no kernel sources found)",
              file=sys.stderr)
        return 2
    if args.limit is not None:
        specs = specs[:args.limit]
    if args.no_incremental:
        for spec in specs:
            spec.incremental_solving = False
    if args.no_pruning:
        for spec in specs:
            spec.pair_pruning = False
    if args.repair:
        for spec in specs:
            spec.repair = True
    cache_dir = None if args.no_cache else args.cache_dir
    trace_path = args.trace
    if trace_path is None:
        trace_dir = cache_dir or ".repro-cache"
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = os.path.join(trace_dir, "trace.jsonl")
    batch = run_batch(specs, max_workers=args.jobs,
                      timeout_seconds=args.timeout,
                      max_retries=args.retries,
                      cache_dir=cache_dir, trace_path=trace_path)
    if args.json:
        payload = batch.to_dict()
        payload["trace"] = trace_path
        print(json.dumps(payload, indent=2))
    else:
        from .service import Telemetry
        width = max(len(j.job_id) for j in batch.jobs)
        for job in batch.jobs:
            tags = ", ".join(job.issue_tags()) or "clean"
            if job.status in ("error", "timeout"):
                tags = (job.error or "").strip().splitlines()[-1] \
                    if job.error else "-"
            flag = " [cached]" if job.cached else ""
            if job.repair:
                flag += (" [repaired]" if job.repair.get("verified")
                         else " [repair failed]")
            print(f"{job.status.upper():8s} {job.job_id:{width}s} "
                  f"{job.elapsed_seconds:7.2f}s  {tags}{flag}")
        print()
        print(Telemetry.summary_table(batch.jobs))
        print(f"cache: {batch.cache_hits} hits, "
              f"{batch.cache_misses} misses"
              + ("" if cache_dir else " (disabled)"))
        print(f"wall clock: {batch.elapsed_seconds:.2f}s "
              f"({args.jobs} workers); trace: {trace_path}")
    return 0 if batch.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Input problems — unreadable files, lex/parse/sema failures, unknown
    kernel names, malformed flag values — exit 2 uniformly, keeping 1
    reserved for "the analysis ran and found defects".
    """
    args = build_parser().parse_args(argv)
    handler = {"check": cmd_check, "repair": cmd_repair,
               "taint": cmd_taint, "ir": cmd_ir, "tests": cmd_tests,
               "batch": cmd_batch}[args.command]
    try:
        return handler(args)
    except (LexError, ParseError, SemaError) as exc:
        target = getattr(args, "file", "<input>")
        print(f"repro: {target}: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        # bad --kernel name, ambiguous kernel, malformed PARAM=VALUE
        reason = exc.args[0] if exc.args else exc
        print(f"repro: {reason}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
