"""Command-line interface.

::

    python -m repro check kernel.cu --block 64 --grid 4
    python -m repro taint kernel.cu
    python -m repro ir kernel.cu
    python -m repro tests kernel.cu --block 32

``check`` analyses a kernel for races/OOB (engine selectable), ``taint``
prints the §V input advisory, ``ir`` dumps the SSA bytecode after the
standard pipeline, and ``tests`` emits concrete per-flow test vectors.
"""
from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from .core import GKLEE, GKLEEp, SESA, LaunchConfig


def _dim3(text: str) -> Tuple[int, int, int]:
    parts = [int(p) for p in text.split(",")]
    while len(parts) < 3:
        parts.append(1)
    if len(parts) != 3 or any(p < 1 for p in parts):
        raise argparse.ArgumentTypeError(f"bad dim3 {text!r}")
    return tuple(parts)  # type: ignore[return-value]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SESA: symbolic race checking for (Mini)CUDA kernels")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="MiniCUDA source file")
        p.add_argument("--kernel", help="kernel name (if several)")

    check = sub.add_parser("check", help="run the race/OOB analysis")
    common(check)
    check.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                       metavar="X[,Y[,Z]]")
    check.add_argument("--block", type=_dim3, default=(64, 1, 1),
                       metavar="X[,Y[,Z]]")
    check.add_argument("--engine", choices=["sesa", "gkleep", "gklee"],
                       default="sesa")
    check.add_argument("--warp-size", type=int, default=32)
    check.add_argument("--lockstep", action="store_true",
                       help="assume SIMD lock-step ordering within warps")
    check.add_argument("--no-oob", action="store_true",
                       help="disable out-of-bounds checking")
    check.add_argument("--symbolic", action="append", default=None,
                       metavar="PARAM",
                       help="force PARAM symbolic (repeatable; default: "
                            "taint-inferred)")
    check.add_argument("--set", action="append", default=[],
                       metavar="PARAM=VALUE",
                       help="concrete scalar value (repeatable)")
    check.add_argument("--array-size", action="append", default=[],
                       metavar="PARAM=COUNT",
                       help="element count for a pointer param")
    check.add_argument("--time-budget", type=float, default=None,
                       metavar="SECONDS")
    check.add_argument("--json", action="store_true",
                       help="machine-readable output")

    taint = sub.add_parser("taint", help="print the §V input advisory")
    common(taint)

    ir_cmd = sub.add_parser("ir", help="dump the SSA bytecode")
    common(ir_cmd)

    tests = sub.add_parser(
        "tests", help="emit concrete per-flow test vectors")
    common(tests)
    tests.add_argument("--grid", type=_dim3, default=(1, 1, 1))
    tests.add_argument("--block", type=_dim3, default=(64, 1, 1))
    return parser


def _parse_kv(pairs: List[str], what: str) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad {what} {pair!r}: expected PARAM=VALUE")
        key, value = pair.split("=", 1)
        out[key] = int(value, 0)
    return out


def _config_from(args) -> LaunchConfig:
    return LaunchConfig(
        grid_dim=args.grid, block_dim=args.block,
        warp_size=args.warp_size, warp_lockstep=args.lockstep,
        check_oob=not args.no_oob,
        symbolic_inputs=set(args.symbolic) if args.symbolic is not None
        else None,
        scalar_values=_parse_kv(args.set, "--set"),
        array_sizes=_parse_kv(args.array_size, "--array-size"),
        time_budget_seconds=args.time_budget)


def cmd_check(args) -> int:
    """The ``check`` subcommand: analyse and report races/OOB."""
    source = open(args.file).read()
    engine_cls = {"sesa": SESA, "gkleep": GKLEEp, "gklee": GKLEE}[args.engine]
    tool = engine_cls.from_source(source, args.kernel)
    report = tool.check(_config_from(args))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 1 if (report.has_races or report.has_oob) else 0


def cmd_taint(args) -> int:
    """The ``taint`` subcommand: per-input symbolisation advisory."""
    tool = SESA.from_source(open(args.file).read(), args.kernel)
    inferred = tool.inferred_symbolic_inputs()
    print(f"kernel {tool.kernel.name}: "
          f"{len(inferred)}/{len(tool.taint.verdicts)} inputs symbolic")
    for name, v in tool.taint.verdicts.items():
        marker = "SYMBOLIC " if name in inferred else "concrete "
        print(f"  {marker} {name:20s} {v.reason}")
    return 0


def cmd_ir(args) -> int:
    """The ``ir`` subcommand: dump the SSA bytecode with the §V
    flow-merging annotations (combine / combine_ite / split)."""
    from .ir import module_to_str
    from .passes import annotate_flow_merging
    tool = SESA.from_source(open(args.file).read(), args.kernel)
    annotate_flow_merging(tool.kernel, tool.taint)
    print(module_to_str(tool.module))
    return 0


def cmd_tests(args) -> int:
    """The ``tests`` subcommand: concrete per-flow test vectors."""
    tool = SESA.from_source(open(args.file).read(), args.kernel)
    config = LaunchConfig(grid_dim=args.grid, block_dim=args.block)
    vectors = tool.generate_tests(config)
    if not vectors:
        print("no feasible flows (empty kernel?)")
        return 0
    for i, vec in enumerate(vectors):
        inner = ", ".join(f"{k}={v}" for k, v in sorted(vec.items()))
        print(f"test[{i}]: {inner}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {"check": cmd_check, "taint": cmd_taint,
               "ir": cmd_ir, "tests": cmd_tests}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
