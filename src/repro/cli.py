"""Command-line interface.

::

    python -m repro check kernel.cu --block 64 --grid 4
    python -m repro repair kernel.cu --block 64 --diff
    python -m repro taint kernel.cu
    python -m repro ir kernel.cu
    python -m repro tests kernel.cu --block 32
    python -m repro batch examples/ --jobs 4
    python -m repro serve --port 8642 --workers 4
    python -m repro submit builtin:paper --wait
    python -m repro cache stats

``check`` analyses a kernel for races/OOB (engine selectable),
``repair`` synthesizes a verified minimal barrier fix for reported
races, ``taint`` prints the §V input advisory, ``ir`` dumps the SSA
bytecode after the standard pipeline, ``tests`` emits concrete per-flow
test vectors, and ``batch`` fans a whole corpus out over the parallel
scheduler with result caching and telemetry (:mod:`repro.service`).

The service family (:mod:`repro.service.daemon`): ``serve`` runs the
persistent daemon (HTTP/JSON API + durable SQLite queue + N leased
workers in one process group), ``submit``/``status``/``result``/
``queue`` are its HTTP clients, and ``cache`` inspects/prunes the
shared content-addressed verdict cache.

Exit codes are uniform across subcommands: 0 — analysis ran and found
nothing (or the repair verified), 1 — races/OOB found, the repair did
not converge, or submitted jobs ended failed/dead, 2 — usage or input
error (unreadable file, parse error, unknown kernel, bad flag value,
malformed job spec, unreachable daemon).
"""
from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from .core import GKLEE, GKLEEp, SESA, LaunchConfig
from .frontend import LexError, ParseError, SemaError


def _read_source(path: str) -> str:
    """Read a kernel source file, closing the handle; on failure print
    a clean one-line error and exit with code 2 (usage error)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"repro: cannot read {path!r}: {reason}", file=sys.stderr)
        raise SystemExit(2)


def _dim3(text: str) -> Tuple[int, int, int]:
    parts = [int(p) for p in text.split(",")]
    while len(parts) < 3:
        parts.append(1)
    if len(parts) != 3 or any(p < 1 for p in parts):
        raise argparse.ArgumentTypeError(f"bad dim3 {text!r}")
    return tuple(parts)  # type: ignore[return-value]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SESA: symbolic race checking for (Mini)CUDA kernels")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="MiniCUDA source file")
        p.add_argument("--kernel", help="kernel name (if several)")

    check = sub.add_parser("check", help="run the race/OOB analysis")
    common(check)
    check.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                       metavar="X[,Y[,Z]]")
    check.add_argument("--block", type=_dim3, default=(64, 1, 1),
                       metavar="X[,Y[,Z]]")
    check.add_argument("--engine", choices=["sesa", "gkleep", "gklee"],
                       default="sesa")
    check.add_argument("--warp-size", type=int, default=32)
    check.add_argument("--lockstep", action="store_true",
                       help="assume SIMD lock-step ordering within warps")
    check.add_argument("--no-oob", action="store_true",
                       help="disable out-of-bounds checking")
    check.add_argument("--symbolic", action="append", default=None,
                       metavar="PARAM",
                       help="force PARAM symbolic (repeatable; default: "
                            "taint-inferred)")
    check.add_argument("--set", action="append", default=[],
                       metavar="PARAM=VALUE",
                       help="concrete scalar value (repeatable)")
    check.add_argument("--array-size", action="append", default=[],
                       metavar="PARAM=COUNT",
                       help="element count for a pointer param")
    check.add_argument("--time-budget", type=float, default=None,
                       metavar="SECONDS")
    check.add_argument("--no-incremental", action="store_true",
                       help="solve every race query from scratch instead "
                            "of on incremental solver sessions")
    check.add_argument("--no-pruning", action="store_true",
                       help="disable the pre-solver pruning pipeline "
                            "(summarization, bucketing, pair memo)")
    check.add_argument("--no-static-tier", action="store_true",
                       help="skip the solver-less static pre-screening "
                            "tier and run the parametric engine "
                            "directly (the exact single-tier pipeline)")
    check.add_argument("--swarm", type=int, default=None, metavar="N",
                       help="split the race check into N shard jobs "
                            "run in parallel worker processes and "
                            "merge their verdicts (sesa only)")
    check.add_argument("--portfolio", action="store_true",
                       help="race every shard under several solver "
                            "configs; first definitive answer wins "
                            "(requires --swarm)")
    check.add_argument("--solver-cache", default=None, metavar="DIR",
                       help="warm-start solver artifact cache: adopt "
                            "persisted CNF snapshots / learned clauses "
                            "/ verdict memos from DIR and refresh them "
                            "after the run (a pure accelerator — never "
                            "changes a verdict)")
    check.add_argument("--solver-stack",
                       choices=["fast", "legacy"], default=None,
                       help="pin the solver stack: 'legacy' reproduces "
                            "the pre-arena pipeline (differential "
                            "baseline), default is the fast stack")
    check.add_argument("--profile", action="store_true",
                       help="append a per-phase wall-clock and solver "
                            "dispatch breakdown to the report")
    check.add_argument("--json", action="store_true",
                       help="machine-readable output")

    prof = sub.add_parser(
        "profile", help="profile one analysis run by pipeline layer")
    common(prof)
    prof.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                      metavar="X[,Y[,Z]]")
    prof.add_argument("--block", type=_dim3, default=(64, 1, 1),
                      metavar="X[,Y[,Z]]")
    prof.add_argument("--engine", choices=["sesa", "gkleep", "gklee"],
                      default="sesa")
    prof.add_argument("--warp-size", type=int, default=32)
    prof.add_argument("--lockstep", action="store_true",
                      help="assume SIMD lock-step ordering within warps")
    prof.add_argument("--no-oob", action="store_true",
                      help="disable out-of-bounds checking")
    prof.add_argument("--symbolic", action="append", default=None,
                      metavar="PARAM")
    prof.add_argument("--set", action="append", default=[],
                      metavar="PARAM=VALUE")
    prof.add_argument("--array-size", action="append", default=[],
                      metavar="PARAM=COUNT")
    prof.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS")
    prof.add_argument("--no-incremental", action="store_true")
    prof.add_argument("--no-pruning", action="store_true")
    prof.add_argument("--no-static-tier", action="store_true")
    prof.add_argument("--solver-cache", default=None, metavar="DIR",
                      help="profile with a warm-start artifact cache")
    prof.add_argument("--solver-stack",
                      choices=["fast", "legacy"], default=None,
                      help="profile the chosen stack (for fast-vs-"
                           "legacy comparisons)")
    prof.add_argument("--top", type=int, default=10, metavar="N",
                      help="also list the N most expensive functions "
                           "(default 10)")
    prof.add_argument("--json", action="store_true",
                      help="machine-readable output")

    rep = sub.add_parser(
        "repair", help="synthesize a verified, minimal barrier fix")
    common(rep)
    rep.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                     metavar="X[,Y[,Z]]")
    rep.add_argument("--block", type=_dim3, default=(64, 1, 1),
                     metavar="X[,Y[,Z]]")
    rep.add_argument("--warp-size", type=int, default=32)
    rep.add_argument("--lockstep", action="store_true",
                     help="assume SIMD lock-step ordering within warps")
    rep.add_argument("--no-oob", action="store_true",
                     help="disable out-of-bounds checking in the final "
                          "verification run")
    rep.add_argument("--symbolic", action="append", default=None,
                     metavar="PARAM",
                     help="force PARAM symbolic (repeatable; default: "
                          "taint-inferred)")
    rep.add_argument("--set", action="append", default=[],
                     metavar="PARAM=VALUE",
                     help="concrete scalar value (repeatable)")
    rep.add_argument("--array-size", action="append", default=[],
                     metavar="PARAM=COUNT",
                     help="element count for a pointer param")
    rep.add_argument("--time-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget for the whole repair loop")
    rep.add_argument("--max-iterations", type=int, default=8, metavar="N",
                     help="CEGIS iteration budget (default 8)")
    rep.add_argument("--remove-redundant", action="store_true",
                     help="also delete pre-existing barriers proven "
                          "redundant by re-checking")
    rep.add_argument("--no-incremental", action="store_true",
                     help="give every re-check its own cold solver "
                          "sessions instead of the shared warm pool")
    rep.add_argument("--diff", action="store_true",
                     help="print only the unified source diff of the fix")
    rep.add_argument("--json", action="store_true",
                     help="machine-readable output")

    taint = sub.add_parser("taint", help="print the §V input advisory")
    common(taint)
    taint.add_argument("--json", action="store_true",
                       help="machine-readable output")

    ir_cmd = sub.add_parser("ir", help="dump the SSA bytecode")
    common(ir_cmd)

    tests = sub.add_parser(
        "tests", help="emit concrete per-flow test vectors")
    common(tests)
    tests.add_argument("--grid", type=_dim3, default=(1, 1, 1))
    tests.add_argument("--block", type=_dim3, default=(64, 1, 1))
    tests.add_argument("--json", action="store_true",
                       help="machine-readable output")

    batch = sub.add_parser(
        "batch", help="analyse a whole corpus through the parallel "
                      "scheduler (with result cache + telemetry)")
    batch.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="'builtin', 'builtin:<suite>' (paper, sdk, reductions, "
             "divergent, lonestar, parboil), a directory of .cu files, "
             "or a single file; default: the full built-in corpus")
    batch.add_argument("--jobs", type=int, default=4, metavar="N",
                       help="concurrent worker processes (default 4)")
    batch.add_argument("--engine", choices=["sesa", "gkleep", "gklee"],
                       default="sesa")
    batch.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                       metavar="X[,Y[,Z]]",
                       help="launch grid for file/directory targets")
    batch.add_argument("--block", type=_dim3, default=(64, 1, 1),
                       metavar="X[,Y[,Z]]",
                       help="launch block for file/directory targets")
    batch.add_argument("--cache-dir", default=".repro-cache",
                       metavar="DIR",
                       help="verdict cache location (default .repro-cache)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    batch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="hard per-job wall-clock limit")
    batch.add_argument("--retries", type=int, default=1, metavar="N",
                       help="retries for crashed workers (default 1)")
    batch.add_argument("--trace", default=None, metavar="PATH",
                       help="JSONL telemetry trace "
                            "(default <cache-dir>/trace.jsonl)")
    batch.add_argument("--limit", type=int, default=None, metavar="N",
                       help="only run the first N jobs of the corpus")
    batch.add_argument("--no-incremental", action="store_true",
                       help="solve every race query from scratch instead "
                            "of on incremental solver sessions")
    batch.add_argument("--no-pruning", action="store_true",
                       help="disable the pre-solver pruning pipeline "
                            "(summarization, bucketing, pair memo)")
    batch.add_argument("--no-static-tier", action="store_true",
                       help="skip the solver-less static pre-screening "
                            "tier on every job")
    batch.add_argument("--repair", action="store_true",
                       help="run the barrier-repair loop on every racy "
                            "sesa job and record the synthesized fix")
    batch.add_argument("--swarm", type=int, default=None, metavar="N",
                       help="swarm mode: shard every kernel's check "
                            "into N partitions and merge per kernel "
                            "(non-sesa jobs fall back to monolithic)")
    batch.add_argument("--portfolio", action="store_true",
                       help="race every shard under several solver "
                            "configs (requires --swarm)")
    batch.add_argument("--json", action="store_true",
                       help="machine-readable output")

    serve = sub.add_parser(
        "serve", help="run the persistent race-check daemon "
                      "(HTTP API + durable queue + worker fleet)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="API port (default 8642; 0 picks a free "
                            "port)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker daemons in this process (default 2)")
    serve.add_argument("--db", default=".repro-daemon/queue.sqlite3",
                       metavar="PATH",
                       help="durable job queue database "
                            "(default .repro-daemon/queue.sqlite3)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       metavar="DIR",
                       help="shared verdict cache (default .repro-cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache (every duplicate "
                            "submission re-runs the solver)")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="SECONDS",
                       help="worker lease time-to-live (default 30); "
                            "a crashed worker's job is reclaimed "
                            "within ~1.5 TTL")
    serve.add_argument("--poll-interval", type=float, default=0.2,
                       metavar="SECONDS",
                       help="idle worker claim poll (default 0.2)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="hard per-job wall-clock limit")
    serve.add_argument("--retries", type=int, default=1, metavar="N",
                       help="retries for crashed/expired jobs "
                            "(default 1)")
    serve.add_argument("--sample-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="queue_sample telemetry period (default 5)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="JSONL telemetry trace, appended across "
                            "restarts (default <db dir>/trace.jsonl)")

    def client_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default="http://127.0.0.1:8642",
                       metavar="URL", help="daemon API base URL")
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    submit = sub.add_parser(
        "submit", help="submit kernels to a running daemon")
    submit.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="'builtin', 'builtin:<suite>', a directory of .cu files, "
             "or a single file; default: the full built-in corpus")
    submit.add_argument("--engine", choices=["sesa", "gkleep", "gklee"],
                        default="sesa")
    submit.add_argument("--grid", type=_dim3, default=(1, 1, 1),
                        metavar="X[,Y[,Z]]",
                        help="launch grid for file/directory targets")
    submit.add_argument("--block", type=_dim3, default=(64, 1, 1),
                        metavar="X[,Y[,Z]]",
                        help="launch block for file/directory targets")
    submit.add_argument("--swarm", type=int, default=None, metavar="N",
                        help="ask the daemon to expand each kernel "
                             "into N shard jobs server-side and merge "
                             "the verdicts")
    submit.add_argument("--wait", action="store_true",
                        help="poll until every submitted job is "
                             "terminal and print its verdict")
    submit.add_argument("--wait-timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="--wait polling budget (default 600)")
    client_common(submit)

    status = sub.add_parser(
        "status", help="query job state on a running daemon")
    status.add_argument("job_ids", nargs="+", metavar="JOB_ID")
    client_common(status)

    result = sub.add_parser(
        "result", help="fetch terminal job results from a daemon")
    result.add_argument("job_ids", nargs="+", metavar="JOB_ID")
    client_common(result)

    queue_cmd = sub.add_parser(
        "queue", help="queue depth, lease and worker health")
    client_common(queue_cmd)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or prune the verdict cache")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command",
                                         required=True)
    cstats = cache_sub.add_parser(
        "stats", help="entries, bytes, and telemetry hit-rate")
    cstats.add_argument("--cache-dir", default=".repro-cache",
                        metavar="DIR")
    cstats.add_argument("--trace", default=None, metavar="PATH",
                        help="JSONL trace to compute the lifetime "
                             "hit-rate from")
    cstats.add_argument("--json", action="store_true")
    cprune = cache_sub.add_parser(
        "prune", help="evict old entries / bound total size")
    cprune.add_argument("--cache-dir", default=".repro-cache",
                        metavar="DIR")
    cprune.add_argument("--max-age", type=float, default=None,
                        metavar="SECONDS",
                        help="evict entries older than this")
    cprune.add_argument("--max-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="evict oldest entries until the cache "
                             "fits in this many bytes")
    cprune.add_argument("--json", action="store_true")

    stream = sub.add_parser(
        "stream", help="check a multi-kernel stream program for "
                       "inter-launch races")
    stream.add_argument("script", metavar="SCRIPT",
                        help="JSON launch script, or builtin:<case> "
                             "from the built-in stream suite "
                             "(builtin: lists the cases)")
    stream.add_argument("--cache-dir", default=".repro-cache",
                        metavar="DIR",
                        help="per-launch verdict cache (re-checks "
                             "after editing one kernel replay every "
                             "untouched launch)")
    stream.add_argument("--no-cache", action="store_true",
                        help="run every launch from scratch")
    stream.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the whole program")
    stream.add_argument("--no-incremental", action="store_true",
                        help="solve every cross-launch query from "
                             "scratch instead of on incremental "
                             "solver sessions")
    stream.add_argument("--no-pruning", action="store_true",
                        help="disable footprint/stride pruning of "
                             "cross-launch access pairs")
    stream.add_argument("--no-static-tier", action="store_true",
                        help="skip the static pre-screening tier for "
                             "the per-launch checks")
    stream.add_argument("--solver-cache", default=None, metavar="DIR",
                        help="warm-start solver artifact cache "
                             "(a pure accelerator)")
    stream.add_argument("--trace", default=None, metavar="PATH",
                        help="append JSONL telemetry events "
                             "(stream_planned / launch_finished / "
                             "stream_merged) to PATH")
    stream.add_argument("--json", action="store_true",
                        help="machine-readable output")
    return parser


def _parse_kv(pairs: List[str], what: str) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            print(f"repro: bad {what} {pair!r}: expected PARAM=VALUE",
                  file=sys.stderr)
            raise SystemExit(2)
        key, value = pair.split("=", 1)
        try:
            out[key] = int(value, 0)
        except ValueError:
            print(f"repro: bad {what} {pair!r}: VALUE must be an integer",
                  file=sys.stderr)
            raise SystemExit(2)
    return out


def _config_from(args) -> LaunchConfig:
    return LaunchConfig(
        grid_dim=args.grid, block_dim=args.block,
        warp_size=args.warp_size, warp_lockstep=args.lockstep,
        check_oob=not args.no_oob,
        symbolic_inputs=set(args.symbolic) if args.symbolic is not None
        else None,
        scalar_values=_parse_kv(args.set, "--set"),
        array_sizes=_parse_kv(args.array_size, "--array-size"),
        time_budget_seconds=args.time_budget,
        incremental_solving=not args.no_incremental,
        pair_pruning=not args.no_pruning,
        static_tier=not getattr(args, "no_static_tier", False),
        solver_cache_dir=getattr(args, "solver_cache", None))


def _render_swarm_result(result) -> None:
    """Human-readable rendering of a merged swarm JobResult."""
    verdict = result.verdict or {}
    swarm = verdict.get("swarm") or {}
    races = verdict.get("races", [])
    oobs = verdict.get("oobs", [])
    print(f"kernel {verdict.get('kernel', result.job_id)} "
          f"[{verdict.get('engine', 'sesa')}, swarm "
          f"{swarm.get('shards', '?')} shards, "
          f"{swarm.get('total_pairs', '?')} pairs]")
    print(f"  swarm verdict: {swarm.get('verdict', '?')}"
          + (f" (unresolved: {', '.join(swarm['unresolved'])})"
             if swarm.get("unresolved") else ""))
    for race in races:
        benign = " (Benign)" if race.get("benign") else ""
        lines = "-".join(str(l) for l in race.get("lines", []))
        print(f"  RACE: {race.get('kind')}{benign} on "
              f"{race.get('object')} (lines {lines})")
    for oob in oobs:
        print(f"  OOB: {oob.get('object')} at line {oob.get('line')}")
    if not races and not oobs:
        print("  no races found")
    for warning in verdict.get("warnings", []):
        if warning.startswith("swarm:"):
            print(f"  WARNING: {warning}")


def cmd_check(args) -> int:
    """The ``check`` subcommand: analyse and report races/OOB."""
    source = _read_source(args.file)
    if getattr(args, "solver_stack", None):
        from .smt import set_solver_stack
        set_solver_stack(args.solver_stack)
    if args.portfolio and not args.swarm:
        print("repro: --portfolio requires --swarm", file=sys.stderr)
        return 2
    if args.swarm is not None:
        if args.swarm < 1:
            print("repro: --swarm must be >= 1", file=sys.stderr)
            return 2
        from .service import JobSpec, JobValidationError, \
            run_swarm_check
        spec = JobSpec(
            job_id=os.path.basename(args.file), source=source,
            kernel_name=args.kernel, engine=args.engine,
            grid_dim=args.grid, block_dim=args.block,
            warp_size=args.warp_size, warp_lockstep=args.lockstep,
            check_oob=not args.no_oob,
            symbolic_inputs=(list(args.symbolic)
                             if args.symbolic is not None else None),
            scalar_values=_parse_kv(args.set, "--set"),
            array_sizes=_parse_kv(args.array_size, "--array-size"),
            time_budget_seconds=args.time_budget,
            incremental_solving=not args.no_incremental,
            pair_pruning=not args.no_pruning,
            static_tier=not args.no_static_tier,
            solver_cache_dir=args.solver_cache)
        try:
            spec.validate()
        except JobValidationError as exc:
            print(f"repro: {exc}", file=sys.stderr)
            return 2
        result = run_swarm_check(spec, args.swarm,
                                 portfolio=args.portfolio)
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        elif result.status in ("done", "cached"):
            _render_swarm_result(result)
        if result.status not in ("done", "cached"):
            if not args.json:
                print(f"repro: swarm check failed: {result.error}",
                      file=sys.stderr)
            return 2
        verdict = result.verdict or {}
        found = any(not r.get("benign")
                    for r in verdict.get("races", [])) \
            or bool(verdict.get("oobs"))
        return 1 if found else 0
    engine_cls = {"sesa": SESA, "gkleep": GKLEEp, "gklee": GKLEE}[args.engine]
    tool = engine_cls.from_source(source, args.kernel)
    report = tool.check(_config_from(args))
    if args.json:
        payload = report.to_dict()
        if args.profile:
            payload["profile"] = _phase_breakdown(report.check_stats)
        print(json.dumps(payload, indent=2))
    else:
        print(report.summary())
        if args.profile:
            _print_phase_breakdown(report.check_stats)
    return 1 if (report.has_races or report.has_oob) else 0


def _phase_breakdown(cs) -> dict:
    """Per-phase wall clock and solver dispatch from a CheckStats."""
    if cs is None:
        return {}
    # static_seconds is additive by construction: adjudication time on
    # a statically resolved kernel (whose walk is execute_seconds), or
    # the abandoned tier attempt preceding the engine phases
    total = cs.static_seconds + cs.execute_seconds + \
        cs.pairgen_seconds + cs.solve_seconds
    return {
        "tier": cs.tier,
        "static_bail_reason": cs.static_bail_reason,
        "phases": {
            "static_seconds": round(cs.static_seconds, 6),
            "execute_seconds": round(cs.execute_seconds, 6),
            "pairgen_seconds": round(cs.pairgen_seconds, 6),
            "solve_seconds": round(cs.solve_seconds, 6),
            "total_seconds": round(total, 6),
        },
        "dispatch": {
            "static_pairs_checked": cs.static_pairs_checked,
            "static_pairs_discharged": cs.static_pairs_discharged,
            "pairs_considered": cs.pairs_considered,
            "queries": cs.queries,
            "by_affine": cs.by_affine,
            "by_memo": cs.by_memo,
            "pair_memo_hits": cs.pair_memo_hits,
            "by_simplifier": cs.solver.by_simplifier,
            "by_interval": cs.solver.by_interval,
            "by_session": cs.solver.by_session,
            "by_sat": cs.solver.by_sat,
            "sat_conflicts": cs.solver.sat_conflicts,
            "warm_starts": cs.warm_starts,
            "warm_memo_hits": cs.warm_memo_hits,
            "warm_pair_hits": cs.warm_pair_hits,
        },
    }


def _print_phase_breakdown(cs) -> None:
    data = _phase_breakdown(cs)
    if not data:
        return
    phases = data["phases"]
    total = max(phases["total_seconds"], 1e-9)
    tier_note = "resolved statically, no solver" \
        if data["tier"] == "static" else \
        (f"static tier escalated: {data['static_bail_reason']}"
         if data["static_bail_reason"] else "static tier off")
    print(f"tier: {data['tier']} ({tier_note})")
    print("profile (per-phase wall clock):")
    for name in ("static_seconds", "execute_seconds",
                 "pairgen_seconds", "solve_seconds"):
        label = name.replace("_seconds", "").replace("static",
                                                     "static-tier")
        print(f"  {label:<11} {phases[name]:8.4f}s "
              f"({phases[name] / total:5.1%})")
    print(f"  {'total':<11} {phases['total_seconds']:8.4f}s")
    disp = data["dispatch"]
    if disp["static_pairs_checked"]:
        print(f"static tier: {disp['static_pairs_checked']} pairs "
              f"checked, {disp['static_pairs_discharged']} discharged "
              f"without a solver")
    print("dispatch: "
          f"{disp['pairs_considered']} pairs, {disp['queries']} queries "
          f"(affine {disp['by_affine']}, memo {disp['by_memo']}, "
          f"pair-memo {disp['pair_memo_hits']}, "
          f"simplifier {disp['by_simplifier']}, "
          f"interval {disp['by_interval']}, "
          f"session {disp['by_session']}, sat {disp['by_sat']}; "
          f"{disp['sat_conflicts']} conflicts)")
    if disp["warm_starts"] or disp["warm_memo_hits"] \
            or disp["warm_pair_hits"]:
        print(f"warm start: {disp['warm_starts']} sessions adopted, "
              f"{disp['warm_memo_hits']} memo replays, "
              f"{disp['warm_pair_hits']} pair replays")


#: pipeline layer of a profiled function, from its source path — the
#: buckets the README's "solver stack" section talks about
_PROFILE_BUCKETS = (
    ("/static/", "static-tier"),
    ("/smt/sat", "sat-core"),
    ("/smt/cnf", "lowering"),
    ("/smt/bitblast", "lowering"),
    ("/smt/simplify", "simplify"),
    ("/smt/subst", "simplify"),
    ("/smt/", "smt-other"),
    ("/sym/races", "race-check"),
    ("/sym/", "symbolic-exec"),
    ("/frontend/", "frontend"),
    ("/ir", "frontend"),
)


def _profile_bucket(path: str) -> str:
    path = path.replace("\\", "/")
    for needle, bucket in _PROFILE_BUCKETS:
        if needle in path:
            return bucket
    return "other"


def cmd_profile(args) -> int:
    """The ``profile`` subcommand: one analysis run under cProfile,
    self-time bucketed by pipeline layer (frontend / symbolic exec /
    race check / simplify / lowering / SAT core) plus the per-phase
    wall clock — the measurement loop that drives solver work like the
    arena CDCL core and the batched lowering."""
    import cProfile
    source = _read_source(args.file)
    if args.solver_stack:
        from .smt import set_solver_stack
        set_solver_stack(args.solver_stack)
    engine_cls = {"sesa": SESA, "gkleep": GKLEEp, "gklee": GKLEE}[args.engine]
    tool = engine_cls.from_source(source, args.kernel)
    config = _config_from(args)
    prof = cProfile.Profile()
    prof.enable()
    report = tool.check(config)
    prof.disable()
    prof.create_stats()

    buckets: dict = {}
    rows = []
    for (path, _line, func), (cc, nc, tt, ct, _callers) \
            in prof.stats.items():  # type: ignore[attr-defined]
        bucket = _profile_bucket(path) if path else "other"
        buckets[bucket] = buckets.get(bucket, 0.0) + tt
        rows.append((tt, nc, f"{os.path.basename(path)}:{func}"
                     if path else func))
    total = sum(buckets.values()) or 1e-9
    rows.sort(reverse=True)

    payload = {
        "kernel": args.kernel or os.path.basename(args.file),
        "engine": args.engine,
        "solver_stack": args.solver_stack or "fast",
        "buckets": {k: round(v, 6) for k, v in sorted(
            buckets.items(), key=lambda kv: -kv[1])},
        "hotspots": [{"self_seconds": round(tt, 6), "calls": nc,
                      "where": where}
                     for tt, nc, where in rows[:max(args.top, 0)]],
        "races": len(report.races),
        "oobs": len(report.oobs),
    }
    payload.update(_phase_breakdown(report.check_stats))
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"profile of {payload['kernel']} "
          f"[{args.engine}, {payload['solver_stack']} stack]: "
          f"{len(report.races)} race(s), {len(report.oobs)} OOB")
    print("self-time by pipeline layer:")
    for bucket, seconds in payload["buckets"].items():
        print(f"  {bucket:<14} {seconds:8.4f}s ({seconds / total:5.1%})")
    _print_phase_breakdown(report.check_stats)
    if payload["hotspots"]:
        print(f"top {len(payload['hotspots'])} functions by self time:")
        for spot in payload["hotspots"]:
            print(f"  {spot['self_seconds']:8.4f}s "
                  f"x{spot['calls']:<6} {spot['where']}")
    return 0


def cmd_repair(args) -> int:
    """The ``repair`` subcommand: CEGIS barrier synthesis.

    Exit 0 when the synthesized fix (or the unmodified kernel) verifies
    race-free; exit 1 when the loop fails to converge or the rendered
    fix fails re-verification.
    """
    from .repair import repair_source
    source = _read_source(args.file)
    config = LaunchConfig(
        grid_dim=args.grid, block_dim=args.block,
        warp_size=args.warp_size, warp_lockstep=args.lockstep,
        check_oob=not args.no_oob,
        symbolic_inputs=set(args.symbolic) if args.symbolic is not None
        else None,
        scalar_values=_parse_kv(args.set, "--set"),
        array_sizes=_parse_kv(args.array_size, "--array-size"))
    result = repair_source(
        source, config=config, kernel_name=args.kernel,
        max_iterations=args.max_iterations,
        share_sessions=not args.no_incremental,
        remove_redundant=args.remove_redundant,
        time_budget_seconds=args.time_budget)
    ok = result.converged and result.verified
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    elif args.diff:
        if result.diff:
            print(result.diff, end="")
        else:
            print(f"repro: no fix to print ({result.message or 'no edits'})",
                  file=sys.stderr)
    else:
        print(result.summary())
        if result.diff:
            print()
            print(result.diff, end="")
    return 0 if ok else 1


def cmd_taint(args) -> int:
    """The ``taint`` subcommand: per-input symbolisation advisory."""
    tool = SESA.from_source(_read_source(args.file), args.kernel)
    inferred = tool.inferred_symbolic_inputs()
    if args.json:
        print(json.dumps({
            "kernel": tool.kernel.name,
            "symbolic": sorted(inferred),
            "total_inputs": len(tool.taint.verdicts),
            "verdicts": {
                name: {"symbolic": name in inferred,
                       "is_pointer": v.is_pointer,
                       "flows_into_address": v.flows_into_address,
                       "reason": v.reason}
                for name, v in tool.taint.verdicts.items()},
        }, indent=2))
        return 0
    print(f"kernel {tool.kernel.name}: "
          f"{len(inferred)}/{len(tool.taint.verdicts)} inputs symbolic")
    for name, v in tool.taint.verdicts.items():
        marker = "SYMBOLIC " if name in inferred else "concrete "
        print(f"  {marker} {name:20s} {v.reason}")
    return 0


def cmd_ir(args) -> int:
    """The ``ir`` subcommand: dump the SSA bytecode with the §V
    flow-merging annotations (combine / combine_ite / split)."""
    from .ir import module_to_str
    from .passes import annotate_flow_merging
    tool = SESA.from_source(_read_source(args.file), args.kernel)
    annotate_flow_merging(tool.kernel, tool.taint)
    print(module_to_str(tool.module))
    return 0


def cmd_tests(args) -> int:
    """The ``tests`` subcommand: concrete per-flow test vectors."""
    tool = SESA.from_source(_read_source(args.file), args.kernel)
    config = LaunchConfig(grid_dim=args.grid, block_dim=args.block)
    vectors = tool.generate_tests(config)
    if args.json:
        print(json.dumps({"kernel": tool.kernel.name,
                          "vectors": [dict(sorted(v.items()))
                                      for v in vectors]}, indent=2))
        return 0
    if not vectors:
        print("no feasible flows (empty kernel?)")
        return 0
    for i, vec in enumerate(vectors):
        inner = ", ".join(f"{k}={v}" for k, v in sorted(vec.items()))
        print(f"test[{i}]: {inner}")
    return 0


def cmd_batch(args) -> int:
    """The ``batch`` subcommand: corpus-scale parallel analysis."""
    from .service import load_corpus, run_batch
    try:
        specs = load_corpus(args.targets, engine=args.engine,
                            grid_dim=args.grid, block_dim=args.block,
                            time_budget_seconds=args.timeout)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("repro: corpus is empty (no kernel sources found)",
              file=sys.stderr)
        return 2
    if args.portfolio and not args.swarm:
        print("repro: --portfolio requires --swarm", file=sys.stderr)
        return 2
    if args.swarm is not None and args.swarm < 1:
        print("repro: --swarm must be >= 1", file=sys.stderr)
        return 2
    if args.limit is not None:
        # --limit 0 legitimately runs zero jobs (a dry-run of corpus
        # loading); a negative limit is a usage error, not a slice
        # from the end
        if args.limit < 0:
            print("repro: --limit must be >= 0", file=sys.stderr)
            return 2
        specs = specs[:args.limit]
    if args.no_incremental:
        for spec in specs:
            spec.incremental_solving = False
    if args.no_pruning:
        for spec in specs:
            spec.pair_pruning = False
    if args.no_static_tier:
        for spec in specs:
            spec.static_tier = False
    if args.repair:
        for spec in specs:
            spec.repair = True
    # malformed corpus entries are usage errors (exit 2), not worker
    # tracebacks: reject them before any process is forked
    from .service import JobValidationError
    try:
        for spec in specs:
            spec.validate()
    except JobValidationError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    trace_path = args.trace
    if trace_path is None:
        trace_dir = cache_dir or ".repro-cache"
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = os.path.join(trace_dir, "trace.jsonl")
    if args.swarm is not None:
        from .service import ResultCache, Telemetry, run_swarm_batch
        cache = ResultCache(cache_dir) if cache_dir else None
        with Telemetry(trace_path) as telemetry:
            batch = run_swarm_batch(
                specs, args.swarm, max_workers=args.jobs,
                timeout_seconds=args.timeout,
                max_retries=args.retries, cache=cache,
                telemetry=telemetry, portfolio=args.portfolio)
    else:
        batch = run_batch(specs, max_workers=args.jobs,
                          timeout_seconds=args.timeout,
                          max_retries=args.retries,
                          cache_dir=cache_dir, trace_path=trace_path)
    if args.json:
        payload = batch.to_dict()
        payload["trace"] = trace_path
        print(json.dumps(payload, indent=2))
    else:
        from .service import Telemetry
        width = max((len(j.job_id) for j in batch.jobs), default=0)
        for job in batch.jobs:
            tags = ", ".join(job.issue_tags()) or "clean"
            if job.status in ("error", "timeout"):
                tags = (job.error or "").strip().splitlines()[-1] \
                    if job.error else "-"
            flag = " [cached]" if job.cached else ""
            if job.repair:
                flag += (" [repaired]" if job.repair.get("verified")
                         else " [repair failed]")
            print(f"{job.status.upper():8s} {job.job_id:{width}s} "
                  f"{job.elapsed_seconds:7.2f}s  {tags}{flag}")
        print()
        print(Telemetry.summary_table(batch.jobs))
        print(f"cache: {batch.cache_hits} hits, "
              f"{batch.cache_misses} misses"
              + ("" if cache_dir else " (disabled)"))
        print(f"wall clock: {batch.elapsed_seconds:.2f}s "
              f"({args.jobs} workers); trace: {trace_path}")
    return 0 if batch.ok else 1


def cmd_serve(args) -> int:
    """The ``serve`` subcommand: run the persistent daemon until
    SIGINT/SIGTERM, then drain in-flight jobs and exit 0."""
    import signal
    import threading
    from .service.daemon import Daemon
    cache_dir = None if args.no_cache else args.cache_dir
    trace = args.trace
    if trace is None:
        db_dir = os.path.dirname(os.path.abspath(args.db))
        os.makedirs(db_dir, exist_ok=True)
        trace = os.path.join(db_dir, "trace.jsonl")
    daemon = Daemon(
        db_path=args.db, cache_dir=cache_dir, trace_path=trace,
        workers=args.workers, lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
        timeout_seconds=args.timeout,
        sample_interval=args.sample_interval,
        max_attempts=args.retries + 1,
        host=args.host, port=args.port)
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    try:
        daemon.start()
    except OSError as exc:
        print(f"repro: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"repro daemon listening on {daemon.url}  "
          f"[workers={args.workers} db={args.db} "
          f"cache={'off' if cache_dir is None else cache_dir} "
          f"lease-ttl={args.lease_ttl:g}s trace={trace}]", flush=True)
    stop.wait()
    print("repro daemon: draining in-flight jobs ...", flush=True)
    daemon.stop(drain=True)
    print("repro daemon: stopped cleanly", flush=True)
    return 0


def _client(args):
    from .service.daemon import DaemonClient
    return DaemonClient(args.url)


def _client_errors():
    from .service.daemon import DaemonError, DaemonUnavailable
    return DaemonError, DaemonUnavailable


def cmd_submit(args) -> int:
    """The ``submit`` subcommand: enqueue a corpus over HTTP."""
    from .service import JobValidationError, load_corpus
    DaemonError, DaemonUnavailable = _client_errors()
    try:
        specs = load_corpus(args.targets, engine=args.engine,
                            grid_dim=args.grid, block_dim=args.block)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("repro: corpus is empty (no kernel sources found)",
              file=sys.stderr)
        return 2
    if args.swarm is not None and args.swarm < 1:
        print("repro: --swarm must be >= 1", file=sys.stderr)
        return 2
    client = _client(args)
    submitted = []
    try:
        for spec in specs:
            body = spec.to_dict()
            body["label"] = body.pop("job_id")
            if args.swarm is not None:
                body["swarm"] = args.swarm
            submitted.append(client.submit(body)[0])
    except (DaemonError, DaemonUnavailable, JobValidationError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if not args.wait:
        if args.json:
            print(json.dumps({"jobs": submitted}, indent=2))
        else:
            for job in submitted:
                dedup = "  [deduped]" if job["deduped"] else ""
                print(f"{job['job_id']}  {job['label']}{dedup}")
        return 0
    # --wait: poll every submitted job to a terminal state
    job_ids = [job["job_id"] for job in submitted]
    try:
        results = client.wait(job_ids, timeout=args.wait_timeout)
    except (DaemonError, DaemonUnavailable) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(
            {"jobs": [results.get(job_id, {"job_id": job_id,
                                           "terminal": False})
                      for job_id in job_ids]}, indent=2))
    else:
        from .service.daemon import format_result_line
        width = max((len(r.get("label") or r["job_id"])
                     for r in results.values()), default=0)
        for job_id in job_ids:
            payload = results.get(job_id)
            if payload is None:
                print(f"PENDING  {job_id} (still running after "
                      f"{args.wait_timeout:g}s)")
            else:
                print(format_result_line(payload, width))
    from .service import JobState
    ok = len(results) == len(job_ids) and all(
        r.get("state") == JobState.DONE for r in results.values())
    return 0 if ok else 1


def cmd_status(args) -> int:
    """The ``status`` subcommand: job states over HTTP."""
    DaemonError, DaemonUnavailable = _client_errors()
    client = _client(args)
    payloads = []
    try:
        for job_id in args.job_ids:
            payloads.append(client.status(job_id))
    except (DaemonError, DaemonUnavailable) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"jobs": payloads}, indent=2))
    else:
        for p in payloads:
            lease = p.get("lease")
            extra = (f"  lease={lease['owner']} "
                     f"({lease['deadline_in_seconds']:+.1f}s)"
                     if lease else "")
            err = f"  {p['error']}" if p.get("error") else ""
            print(f"{p['state'].upper():8s} {p['job_id']}  "
                  f"{p.get('label') or ''}  "
                  f"attempts={p['attempts']}/{p['max_attempts']}"
                  f"{extra}{err}")
    return 0


def cmd_result(args) -> int:
    """The ``result`` subcommand: terminal verdicts over HTTP.

    Exit 0 when every job is terminal and ``done``; 1 when any job
    is still running, failed, or dead.
    """
    from .service import JobState
    from .service.daemon import format_result_line
    DaemonError, DaemonUnavailable = _client_errors()
    client = _client(args)
    payloads = []
    try:
        for job_id in args.job_ids:
            payloads.append(client.result(job_id))
    except (DaemonError, DaemonUnavailable) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"jobs": payloads}, indent=2))
    else:
        width = max(len(p.get("label") or p["job_id"])
                    for p in payloads)
        for p in payloads:
            if p.get("terminal"):
                print(format_result_line(p, width))
            else:
                print(f"{p['state'].upper():8s} "
                      f"{p.get('label') or p['job_id']:{width}s} "
                      f"   --.--s  not terminal yet")
    ok = all(p.get("terminal") and p.get("state") == JobState.DONE
             for p in payloads)
    return 0 if ok else 1


def cmd_queue(args) -> int:
    """The ``queue`` subcommand: daemon health snapshot."""
    DaemonError, DaemonUnavailable = _client_errors()
    try:
        stats = _client(args).queue()
    except (DaemonError, DaemonUnavailable) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    stats.pop("__code__", None)
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    by_state = ", ".join(f"{k} {v}" for k, v in
                         sorted(stats["by_state"].items())) or "empty"
    age = stats.get("oldest_age_seconds")
    print(f"queue: depth {stats['depth']}, leased {stats['leased']} "
          f"({by_state})")
    print(f"oldest waiting job: "
          f"{'-' if age is None else f'{age:.1f}s'}")
    for wid, w in sorted(stats.get("workers", {}).items()):
        mark = "up" if w.get("alive") else "DOWN"
        print(f"worker {wid}: {mark}, {w['jobs']} jobs, "
              f"{w['jobs_per_sec']:.2f} jobs/s")
    reaper = stats.get("reaper", {})
    print(f"reaper: {reaper.get('reclaimed', 0)} reclaimed, "
          f"{reaper.get('dead', 0)} dead")
    if "cache" in stats:
        c = stats["cache"]
        print(f"cache: {c['hits']} hits, {c['misses']} misses "
              f"({c['dir']})")
    return 0


def cmd_cache(args) -> int:
    """The ``cache`` subcommand: stats and pruning for the verdict
    cache a long-running daemon shares with batch runs, and for the
    solver warm-start artifacts living beside it (``solver/``) —
    reported separately, evicted under the same policy."""
    from .service import ResultCache, trace_hit_rate
    from .smt import SolverArtifactStore
    if not os.path.isdir(args.cache_dir):
        print(f"repro: no cache at {args.cache_dir!r}",
              file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    solver_store = SolverArtifactStore(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        stats["solver"] = solver_store.disk_stats()
        trace = args.trace or os.path.join(args.cache_dir,
                                           "trace.jsonl")
        rate = trace_hit_rate(trace)
        if rate is not None:
            stats["telemetry"] = rate
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(f"cache {stats['dir']}: {stats['entries']} entries, "
                  f"{stats['bytes']} bytes")
            solver = stats["solver"]
            print(f"solver artifacts {solver['dir']}: "
                  f"{solver['entries']} entries, "
                  f"{solver['bytes']} bytes")
            if stats["oldest_age_seconds"] is not None:
                print(f"age span: {stats['newest_age_seconds']:.0f}s "
                      f"- {stats['oldest_age_seconds']:.0f}s")
            if rate is not None and rate["lookups"]:
                print(f"hit-rate: {rate['hit_rate']:.1%} "
                      f"({rate['hits']} hits / {rate['lookups']} "
                      f"lookups, from {rate['trace']})")
        return 0
    # prune
    if args.max_age is None and args.max_bytes is None:
        print("repro: cache prune needs --max-age and/or --max-bytes",
              file=sys.stderr)
        return 2
    outcome = cache.prune(max_age_seconds=args.max_age,
                          max_bytes=args.max_bytes)
    outcome["solver"] = solver_store.prune(
        max_age_seconds=args.max_age, max_bytes=args.max_bytes)
    if args.json:
        print(json.dumps(outcome, indent=2))
    else:
        print(f"pruned {outcome['removed']} entries "
              f"({outcome['freed_bytes']} bytes) from "
              f"{outcome['dir']}; {outcome['kept']} kept")
        solver = outcome["solver"]
        print(f"pruned {solver['removed']} solver artifacts "
              f"({solver['freed_bytes']} bytes) from "
              f"{solver['dir']}; {solver['kept']} kept")
    return 0


def cmd_stream(args) -> int:
    """The ``stream`` subcommand: happens-before construction plus
    cross-launch race checking over a whole multi-kernel program."""
    from .service import ResultCache
    from .streams import StreamChecker, load_stream_script

    if args.script.startswith("builtin:"):
        from .kernels.streams import STREAM_CASES, get_stream_case
        name = args.script.split(":", 1)[1]
        if not name:
            for case in STREAM_CASES:
                tag = "racy" if case.expected_racy else "safe"
                print(f"builtin:{case.name:<32} [{tag}] {case.notes}")
            return 0
        program = get_stream_case(name).program
    else:
        if not os.path.isfile(args.script):
            print(f"repro: {args.script}: no such launch script",
                  file=sys.stderr)
            return 2
        program = load_stream_script(args.script)

    telemetry = None
    if args.trace:
        from .service import Telemetry
        telemetry = Telemetry(trace_path=args.trace, mode="a")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    checker = StreamChecker(
        program, cache=cache, telemetry=telemetry,
        time_budget_seconds=args.time_budget,
        incremental=not args.no_incremental,
        pruning=not args.no_pruning,
        static_tier=not args.no_static_tier,
        solver_cache_dir=args.solver_cache)
    report = checker.check()
    if telemetry is not None:
        telemetry.close()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 1 if report.has_issues else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Input problems — unreadable files, lex/parse/sema failures, unknown
    kernel names, malformed flag values — exit 2 uniformly, keeping 1
    reserved for "the analysis ran and found defects".
    """
    args = build_parser().parse_args(argv)
    handler = {"check": cmd_check, "profile": cmd_profile,
               "repair": cmd_repair,
               "taint": cmd_taint, "ir": cmd_ir, "tests": cmd_tests,
               "batch": cmd_batch, "serve": cmd_serve,
               "submit": cmd_submit, "status": cmd_status,
               "result": cmd_result, "queue": cmd_queue,
               "cache": cmd_cache, "stream": cmd_stream}[args.command]
    try:
        return handler(args)
    except (LexError, ParseError, SemaError) as exc:
        target = getattr(args, "file", "<input>")
        print(f"repro: {target}: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        # bad --kernel name, ambiguous kernel, malformed PARAM=VALUE
        reason = exc.args[0] if exc.args else exc
        print(f"repro: {reason}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
