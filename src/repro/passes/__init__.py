"""Static analysis passes (the paper's §V pipeline)."""
from .manager import PassManager, remove_unreachable_blocks, standard_pipeline
from .mem2reg import mem2reg
from .usedef import UseDef
from .liveness import Liveness
from .alias import (
    address_space, gep_chain, index_values, is_shared_or_global, root_object,
)
from .taint import (
    ControlDependence, InputVerdict, TaintAnalysis, TaintReport,
    analyze_taint,
)
from .uniform import UniformityAnalysis, check_barrier_uniformity
from .annotate import annotate_flow_merging

__all__ = [
    "PassManager", "remove_unreachable_blocks", "standard_pipeline",
    "mem2reg", "UseDef", "Liveness", "address_space", "gep_chain",
    "index_values", "is_shared_or_global", "root_object",
    "ControlDependence", "InputVerdict", "TaintAnalysis", "TaintReport",
    "analyze_taint", "annotate_flow_merging", "UniformityAnalysis",
    "check_barrier_uniformity",
]
