"""Thread-id uniformity: which values/branches are the same for every
thread in a block?

``__syncthreads()`` is only well-defined when every thread of the block
reaches it (or none does), so a barrier may only sit at a program point
whose guarding branches are *tid-uniform* — their conditions cannot
differ between threads.  The repair candidate generator uses this to
refuse insertion points that would trade a data race for barrier
divergence, and :func:`check_barrier_uniformity` audits existing
barriers the same way.

The analysis is a forward fixpoint over SSA values, conservative in the
usual direction (unknown ⇒ tid-dependent):

* seeds: ``threadIdx.*`` builtins, loads from thread-shared memory
  (another thread may have written a tid-dependent value there), and
  atomic results (the returned old value depends on interleaving);
* propagation: any instruction with a tid-dependent operand produces a
  tid-dependent result; a phi is additionally tid-dependent when the
  branch that selects between its incoming values is;
* private memory (allocas that survived mem2reg) carries taint through
  store→load: a slot written with a tid-dependent value — or written
  under a tid-dependent guard — makes subsequent loads tid-dependent.

``blockIdx``/``blockDim``/``gridDim``/``warpSize`` and kernel arguments
are uniform across a block, which is the scope that matters for
``__syncthreads``.
"""
from __future__ import annotations

from typing import List, Set

from ..ir import (
    Alloca, AtomicCAS, AtomicRMW, BasicBlock, Br, BuiltinValue, CFG,
    Call, Constant, Function, Instruction, Load, Phi, Store, Sync, Value,
)
from .alias import index_values, is_shared_or_global, root_object
from .taint import ControlDependence


class UniformityAnalysis:
    """Per-function tid-dependence facts with block/branch queries."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.cfg = CFG(fn)
        self.cd = ControlDependence(self.cfg)
        #: ids of values that may differ between threads of one block
        self.tid_value_ids: Set[int] = set()
        #: ids of private objects whose contents may differ
        self._tainted_objects: Set[int] = set()
        self._fixpoint()

    # ------------------------------------------------------------------

    def is_tid_dependent(self, value: Value) -> bool:
        if isinstance(value, BuiltinValue):
            # codegen names these tid.x/tid.y/tid.z; bid/ntid/nbid and
            # warpSize are block-uniform
            return value.name.startswith("tid")
        if isinstance(value, Constant):
            return False
        return id(value) in self.tid_value_ids

    def branch_is_uniform(self, br: Br) -> bool:
        return not self.is_tid_dependent(br.cond)

    def block_is_uniform(self, block: BasicBlock) -> bool:
        """Every thread of the block reaches this block the same number
        of times — all (transitive) guarding branches are uniform."""
        return all(self.branch_is_uniform(br) for br in self.cd.of(block))

    def nonuniform_guards(self, block: BasicBlock) -> List[Br]:
        return [br for br in self.cd.of(block)
                if not self.branch_is_uniform(br)]

    # ------------------------------------------------------------------

    def _fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for instr in self.fn.instructions():
                if isinstance(instr, Store):
                    changed |= self._visit_store(instr)
                elif instr.result is not None:
                    if id(instr.result) in self.tid_value_ids:
                        continue
                    if self._result_is_tid_dependent(instr):
                        self.tid_value_ids.add(id(instr.result))
                        changed = True

    def _visit_store(self, instr: Store) -> bool:
        root = root_object(instr.pointer)
        if not isinstance(root, Alloca) or id(root) in self._tainted_objects:
            return False
        tainted = (self.is_tid_dependent(instr.value)
                   or any(self.is_tid_dependent(ix)
                          for ix in index_values(instr.pointer)))
        if not tainted and instr.parent is not None:
            # a conditional store under a tid guard: whether the slot was
            # written at all differs between threads
            tainted = bool(self.nonuniform_guards(instr.parent))
        if tainted:
            self._tainted_objects.add(id(root))
            return True
        return False

    def _result_is_tid_dependent(self, instr: Instruction) -> bool:
        if isinstance(instr, (AtomicRMW, AtomicCAS)):
            return True
        if isinstance(instr, Load):
            if is_shared_or_global(instr.pointer):
                return True
            root = root_object(instr.pointer)
            if root is None or id(root) in self._tainted_objects:
                return True
            return any(self.is_tid_dependent(ix)
                       for ix in index_values(instr.pointer))
        if isinstance(instr, Phi):
            for pred, incoming in instr.incoming:
                if self.is_tid_dependent(incoming):
                    return True
                term = pred.terminator
                if isinstance(term, Br) and self.is_tid_dependent(term.cond):
                    return True
            return False
        if isinstance(instr, Call):
            return any(self.is_tid_dependent(op) for op in instr.operands())
        return any(self.is_tid_dependent(op) for op in instr.operands())


def check_barrier_uniformity(fn: Function) -> List[str]:
    """Warnings for barriers reachable under a tid-dependent guard.

    Empty list ⇔ no statically-detected barrier-divergence hazard.
    """
    ua = UniformityAnalysis(fn)
    warnings: List[str] = []
    for block in fn.blocks:
        for instr in block.instrs:
            if not isinstance(instr, Sync):
                continue
            for br in ua.nonuniform_guards(block):
                where = f"line {instr.loc}" if instr.loc else "unknown line"
                guard = f"line {br.loc}" if br.loc else "unknown line"
                warnings.append(
                    f"barrier at {where} is guarded by a thread-dependent "
                    f"branch at {guard}: possible barrier divergence")
    return warnings
