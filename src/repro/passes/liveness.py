"""Classic backward live-variable analysis over SSA registers.

§V describes SESA's LVS propagation as "similar to the live variable
calculation in compiler construction"; this module is that calculation.
The taint pass and the flow-merging advice both consult it: a value dead
at a barrier cannot affect later barrier intervals, so it never forces
two flows to stay split.
"""
from __future__ import annotations

from typing import Dict, List, Set

from ..ir import BasicBlock, CFG, Function, Instruction, Phi, Register


class Liveness:
    """Backward live-variable fixpoint over SSA registers."""
    def __init__(self, fn: Function) -> None:
        self.fn = fn
        cfg = CFG(fn)
        self.live_in: Dict[BasicBlock, Set[int]] = {}
        self.live_out: Dict[BasicBlock, Set[int]] = {}
        self._by_id: Dict[int, Register] = {}

        use: Dict[BasicBlock, Set[int]] = {}
        defs: Dict[BasicBlock, Set[int]] = {}
        # phi uses count as live-out of the predecessor, not live-in here
        phi_uses: Dict[BasicBlock, Set[int]] = {b: set() for b in fn.blocks}
        for block in fn.blocks:
            u: Set[int] = set()
            d: Set[int] = set()
            for instr in block.instrs:
                if isinstance(instr, Phi):
                    for pred, value in instr.incoming:
                        if isinstance(value, Register):
                            phi_uses[pred].add(id(value))
                            self._by_id[id(value)] = value
                else:
                    for op in instr.operands():
                        if isinstance(op, Register) and id(op) not in d:
                            u.add(id(op))
                            self._by_id[id(op)] = op
                if instr.result is not None:
                    d.add(id(instr.result))
                    self._by_id[id(instr.result)] = instr.result
            use[block] = u
            defs[block] = d
            self.live_in[block] = set()
            self.live_out[block] = set()

        changed = True
        while changed:
            changed = False
            for block in reversed(cfg.reverse_postorder()):
                out: Set[int] = set(phi_uses[block])
                for succ in cfg.succs[block]:
                    out |= self.live_in[succ]
                inn = use[block] | (out - defs[block])
                if out != self.live_out[block] or inn != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = inn
                    changed = True

    def live_at_entry(self, block: BasicBlock) -> List[Register]:
        return [self._by_id[i] for i in self.live_in[block]]

    def live_at_exit(self, block: BasicBlock) -> List[Register]:
        return [self._by_id[i] for i in self.live_out[block]]

    def is_live_out(self, reg: Register, block: BasicBlock) -> bool:
        return id(reg) in self.live_out.get(block, set())
