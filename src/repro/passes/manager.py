"""Pass manager: runs IR passes in order and records what ran.

The standard SESA pipeline (mirroring §V) is ``standard_pipeline``:
front-end inlining already happened, so the IR passes are CFG cleanup,
mem2reg (SSA construction), and the taint analysis that annotates the
module for the executor.
"""
from __future__ import annotations

from typing import Callable, List, Optional

from ..ir import Function, Module


class PassManager:
    """Runs registered passes over every kernel of a module."""
    def __init__(self) -> None:
        self.passes: List[Callable[[Function], object]] = []
        self.log: List[str] = []

    def add(self, pass_fn: Callable[[Function], object]) -> "PassManager":
        self.passes.append(pass_fn)
        return self

    def run(self, module: Module) -> None:
        for fn in module.kernels():
            for pass_fn in self.passes:
                pass_fn(fn)
                self.log.append(f"{pass_fn.__name__}:{fn.name}")


def remove_unreachable_blocks(fn: Function) -> int:
    """Drop blocks not reachable from the entry (codegen leaves a few
    behind after ``return``/``break``). Returns the number removed."""
    reachable = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        stack.extend(block.successors())
    removed = [b for b in fn.blocks if id(b) not in reachable]
    fn.blocks = [b for b in fn.blocks if id(b) in reachable]
    # drop phi incomings from removed predecessors
    removed_ids = {id(b) for b in removed}
    for block in fn.blocks:
        for phi in block.phis():
            phi.incoming = [(b, v) for b, v in phi.incoming
                            if id(b) not in removed_ids]
    return len(removed)


def standard_pipeline() -> PassManager:
    """The SESA IR pipeline: CFG cleanup then mem2reg."""
    from .mem2reg import mem2reg
    pm = PassManager()
    pm.add(remove_unreachable_blocks)
    pm.add(mem2reg)
    return pm
