"""Branch annotation (§V Example 1's "skip" flags).

The paper instruments LLVM branches with a flag telling the executor not
to fork a flow. In this implementation the executor consults the taint
sink set directly, so the annotations are *informational*: they are
written into ``br.meta`` so `python -m repro ir` dumps show exactly
which branches SESA will combine and why, and tools/tests can assert on
them without running the VM.

Tags written:

* ``combine``      — a diamond whose merged values feed no sensitive
  sink: merging is free (§V Ex. 2's "undef" case).
* ``combine_ite``  — a mergeable diamond whose merged values do feed
  sinks: merged with precise ``ite`` values.
* ``split``        — structural divergence (loop-exit branch, or a
  barrier/return inside the region): the executor forks parametric flows
  here.
"""
from __future__ import annotations

from typing import Dict, Optional

from ..ir import Br, CFG, Function, Phi, Ret, Sync
from .taint import TaintReport, analyze_taint


def annotate_flow_merging(fn: Function,
                          taint: Optional[TaintReport] = None) -> Dict[str, int]:
    """Annotate every conditional branch; returns tag counts."""
    if taint is None:
        taint = analyze_taint(fn)
    cfg = CFG(fn)
    ipdom = cfg.ipostdom()
    back_edges = {(id(t), id(h)) for t, h in cfg.back_edges()}
    counts = {"combine": 0, "combine_ite": 0, "split": 0}

    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, Br):
            continue
        tag = _classify(fn, cfg, ipdom, back_edges, block, term, taint)
        term.meta[tag] = True
        counts[tag] += 1
    return counts


def _region_blocks(block, ipdom_block):
    seen = {id(ipdom_block)}
    out = []
    stack = list(block.successors())
    while stack:
        b = stack.pop()
        if id(b) in seen:
            continue
        seen.add(id(b))
        out.append(b)
        stack.extend(b.successors())
    return out


def _classify(fn, cfg, ipdom, back_edges, block, term, taint) -> str:
    merge_point = ipdom.get(block)
    if merge_point is None:
        return "split"
    region = _region_blocks(block, merge_point)
    for rb in region:
        for instr in rb.instrs:
            if isinstance(instr, (Sync, Ret)):
                return "split"
        for succ in rb.successors():
            if (id(rb), id(succ)) in back_edges:
                return "split"
    for succ in block.successors():
        if (id(block), id(succ)) in back_edges:
            return "split"
    # mergeable: does any merged value feed a sink?
    for phi in merge_point.phis():
        if id(phi.result) in taint.sink_value_ids:
            return "combine_ite"
    return "combine"
