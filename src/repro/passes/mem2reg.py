"""mem2reg: promote scalar allocas to SSA registers.

Classic SSA construction (Cytron et al.): phi insertion at iterated
dominance frontiers of the stores, then renaming along the dominator
tree. Local arrays and address-taken slots stay in memory — those are
thread-private and irrelevant to race checking, but keeping them in the
memory model preserves their data-flow for the taint pass.

After this pass the IR matches the form the paper's Fig. 3/§V examples
are written in (``%3 = phi [loop,1] [if.end,%9]`` for the reduction loop
counter, etc.).
"""
from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (
    CFG, Alloca, BasicBlock, Constant, Function, Instruction, Load, Phi,
    Register, Store, Value,
)


def _promotable_allocas(fn: Function) -> List[Alloca]:
    """Scalar allocas whose address is only used by direct loads/stores."""
    allocas = [i for i in fn.instructions()
               if isinstance(i, Alloca) and i.count == 1
               and not i.allocated_type.is_array()]
    out = []
    for alloca in allocas:
        reg = alloca.result
        ok = True
        for instr in fn.instructions():
            if isinstance(instr, Load) and instr.pointer is reg:
                continue
            if isinstance(instr, Store) and instr.pointer is reg:
                if instr.value is reg:  # storing the address itself: escapes
                    ok = False
                    break
                continue
            if reg in instr.operands():
                ok = False  # address escapes (GEP, call, compare, ...)
                break
        if ok:
            out.append(alloca)
    return out


def mem2reg(fn: Function) -> int:
    """Promote allocas; returns the number promoted."""
    allocas = _promotable_allocas(fn)
    if not allocas:
        return 0
    cfg = CFG(fn)
    frontiers = cfg.dominance_frontiers()
    idom = cfg.idom()

    # dominator-tree children
    children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        parent = idom.get(block)
        if parent is not None and parent is not block:
            children[parent].append(block)

    alloca_set = {id(a.result): a for a in allocas}
    # phi placement must not depend on set iteration order (block sets
    # hash by object identity, which varies between interpreter runs) —
    # the printed IR is cache-key material, so renaming order has to be
    # a function of the program alone
    block_order = {id(b): i for i, b in enumerate(fn.blocks)}
    # blocks containing a store, per alloca
    def_blocks: Dict[int, Set[BasicBlock]] = {id(a.result): set()
                                              for a in allocas}
    for block in fn.blocks:
        for instr in block.instrs:
            if isinstance(instr, Store) and id(instr.pointer) in alloca_set:
                def_blocks[id(instr.pointer)].add(block)

    # phi insertion at iterated dominance frontiers
    phi_for: Dict[Tuple[int, int], Phi] = {}   # (alloca id, block id) -> phi
    for alloca in allocas:
        key = id(alloca.result)
        work = sorted(def_blocks[key],
                      key=lambda b: block_order[id(b)])
        placed: Set[int] = set()
        while work:
            block = work.pop()
            for frontier in sorted(frontiers.get(block, ()),
                                   key=lambda b: block_order[id(b)]):
                if id(frontier) in placed:
                    continue
                placed.add(id(frontier))
                phi = Phi(fn.new_register(alloca.allocated_type, "phi"))
                phi.parent = frontier
                frontier.instrs.insert(0, phi)
                phi_for[(key, id(frontier))] = phi
                if frontier not in def_blocks[key]:
                    work.append(frontier)

    # renaming
    replacements: Dict[int, Value] = {}   # load result id -> value
    stacks: Dict[int, List[Value]] = {id(a.result): [] for a in allocas}
    undef: Dict[int, Value] = {
        id(a.result): Constant(0, a.allocated_type) for a in allocas}

    def current(key: int) -> Value:
        stack = stacks[key]
        return stack[-1] if stack else undef[key]

    dead: Set[int] = set()

    def rename(block: BasicBlock) -> None:
        pushed: List[int] = []
        for instr in list(block.instrs):
            if isinstance(instr, Phi):
                for (key, bid), phi in phi_for.items():
                    if phi is instr:
                        stacks[key].append(phi.result)
                        pushed.append(key)
                        break
            elif isinstance(instr, Load) and id(instr.pointer) in alloca_set:
                replacements[id(instr.result)] = current(id(instr.pointer))
                dead.add(id(instr))
            elif isinstance(instr, Store) and id(instr.pointer) in alloca_set:
                stacks[id(instr.pointer)].append(instr.value)
                pushed.append(id(instr.pointer))
                dead.add(id(instr))
        for succ in block.successors():
            for (key, bid), phi in phi_for.items():
                if bid == id(succ):
                    phi.add_incoming(block, current(key))
        for child in children[block]:
            rename(child)
        for key in pushed:
            stacks[key].pop()

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        rename(fn.entry)
    finally:
        sys.setrecursionlimit(old_limit)

    # transitively resolve replacement chains (load of load)
    def resolve(value: Value) -> Value:
        seen = set()
        while id(value) in replacements and id(value) not in seen:
            seen.add(id(value))
            value = replacements[id(value)]
        return value

    for block in fn.blocks:
        new_instrs = []
        for instr in block.instrs:
            if id(instr) in dead:
                continue
            if isinstance(instr, Alloca) and id(instr.result) in alloca_set:
                continue
            if isinstance(instr, Phi):
                instr.incoming = [(b, resolve(v)) for b, v in instr.incoming]
            else:
                for op in instr.operands():
                    new = resolve(op)
                    if new is not op:
                        instr.replace_operand(op, new)
            new_instrs.append(instr)
        block.instrs = new_instrs

    _prune_trivial_phis(fn)
    return len(allocas)


def _prune_trivial_phis(fn: Function) -> None:
    """Remove phis whose incomings are all the same value (or self)."""
    changed = True
    while changed:
        changed = False
        replace: Dict[int, Value] = {}
        for block in fn.blocks:
            for phi in block.phis():
                values = {id(v) for _, v in phi.incoming
                          if v is not phi.result}
                if len(values) == 1:
                    only = next(v for _, v in phi.incoming
                                if v is not phi.result)
                    replace[id(phi.result)] = only
        if not replace:
            return
        changed = True
        for block in fn.blocks:
            new_instrs = []
            for instr in block.instrs:
                if isinstance(instr, Phi) and id(instr.result) in replace:
                    continue
                if isinstance(instr, Phi):
                    instr.incoming = [
                        (b, replace.get(id(v), v)) for b, v in instr.incoming]
                else:
                    for op in instr.operands():
                        if id(op) in replace:
                            instr.replace_operand(op, replace[id(op)])
                new_instrs.append(instr)
            block.instrs = new_instrs
