"""Pointer root analysis (the ``Tµ`` resolution helper of §V).

GPU kernels compute addresses as ``base + f(tid, inputs)`` where ``base``
is a kernel argument, a ``__shared__`` global, or an alloca. Chasing GEP
and bitcast chains to that root is a precise-enough points-to analysis
for both the taint pass and the executor's memory object resolution —
MiniCUDA has no pointer stores into memory that could obscure the root
(pointer-typed locals are promoted to SSA by mem2reg first).
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (
    GEP, Alloca, Argument, Cast, Function, GlobalVariable, Instruction,
    Load, MemSpace, Phi, PointerType, Register, Select, Value,
)


def root_object(value: Value) -> Optional[Value]:
    """The allocation a pointer value is derived from, or None if unknown.

    Returns an :class:`Argument` (kernel input buffer), a
    :class:`GlobalVariable` (``__shared__`` array), or the
    :class:`Register` defined by an :class:`Alloca` (local slot).
    Phi/select of pointers with a single common root resolves to it.
    """
    seen = set()
    stack = [value]
    roots: List[Value] = []
    while stack:
        v = stack.pop()
        if id(v) in seen:
            continue
        seen.add(id(v))
        if isinstance(v, (Argument, GlobalVariable)):
            roots.append(v)
            continue
        if isinstance(v, Register):
            d = v.defining
            if isinstance(d, Alloca):
                roots.append(v)
            elif isinstance(d, GEP):
                stack.append(d.base)
            elif isinstance(d, Cast):
                stack.append(d.value)
            elif isinstance(d, Phi):
                stack.extend(val for _, val in d.incoming)
            elif isinstance(d, Select):
                stack.extend(d.ops[1:])
            elif isinstance(d, Load):
                return None  # pointer loaded from memory: unknown
            else:
                return None
        else:
            return None
    uniq = {id(r): r for r in roots}
    if len(uniq) == 1:
        return next(iter(uniq.values()))
    return None


def address_space(value: Value) -> Optional[MemSpace]:
    """Memory space of the object a pointer refers to."""
    root = root_object(value)
    if isinstance(root, GlobalVariable):
        return root.space
    if isinstance(root, Argument):
        ty = root.type
        return ty.space if isinstance(ty, PointerType) else None
    if isinstance(root, Register):
        return MemSpace.LOCAL
    return None


def gep_chain(value: Value) -> List[GEP]:
    """All GEPs between a pointer value and its root (innermost first)."""
    chain: List[GEP] = []
    v = value
    while isinstance(v, Register) and v.defining is not None:
        d = v.defining
        if isinstance(d, GEP):
            chain.append(d)
            v = d.base
        elif isinstance(d, Cast):
            v = d.value
        else:
            break
    return chain


def index_values(value: Value) -> List[Value]:
    """The index operands contributing to a pointer's offset."""
    return [g.index for g in gep_chain(value)]


def is_shared_or_global(value: Value) -> bool:
    """Does this pointer target thread-shared memory?"""
    space = address_space(value)
    return space is not None and space.is_shared_between_threads()
