"""Use-def chains over a function in SSA form."""
from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import Function, Instruction, Register, Value


class UseDef:
    """Def site per register and user list per value (by identity)."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.def_of: Dict[int, Instruction] = {}
        self.users_of: Dict[int, List[Instruction]] = {}
        for instr in fn.instructions():
            if instr.result is not None:
                self.def_of[id(instr.result)] = instr
            for op in instr.operands():
                self.users_of.setdefault(id(op), []).append(instr)

    def definition(self, reg: Register) -> Optional[Instruction]:
        return self.def_of.get(id(reg))

    def users(self, value: Value) -> List[Instruction]:
        return self.users_of.get(id(value), [])

    def is_dead(self, reg: Register) -> bool:
        """Defined but never used (after DCE candidates)."""
        return id(reg) in self.def_of and not self.users_of.get(id(reg))
