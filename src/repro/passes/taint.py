"""Taint / data-flow analysis (paper §V).

Computes which values flow into *sensitive sinks* — the addresses of
shared/global memory accesses, either by data dependence (the value
appears in the address computation) or by control dependence (the value
appears in a flow condition governing the access).

Two products:

* :class:`TaintReport` — per kernel input: must it be kept symbolic for
  full race coverage, or can it safely be concretised? (Paper Tables
  I/III/IV, the ``#Inputs`` columns.) Inputs that only flow into loop
  bounds are classified separately (§III-C: these are concretised so the
  concolic search terminates, with a warning).
* The ``sink-feeding`` value set, which the executor's flow combining
  consults: a branch-merged value that never feeds a sink can be dropped
  instead of tracked precisely (§III-A/III-B, §V Example 2's "undef").

The analysis runs to a fixed point over use-def chains, memory objects
(via :mod:`repro.passes.alias` roots), and control dependence (via the
post-dominator tree).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import (
    GEP, Alloca, Argument, AtomicCAS, AtomicRMW, BasicBlock, Br,
    BuiltinValue, CFG, Call, Cast, Constant, Function, GlobalVariable,
    Instruction, Load, MemSpace, Phi, PointerType, Register, Select,
    Store, Value,
)
from .alias import address_space, index_values, is_shared_or_global, root_object


@dataclass
class InputVerdict:
    """Why an input must (or need not) be symbolic."""

    name: str
    must_be_symbolic: bool
    is_pointer: bool = False
    flows_into_address: bool = False
    flows_into_condition: bool = False
    flows_into_loop_bound: bool = False
    reason: str = ""


@dataclass
class TaintReport:
    kernel: str
    verdicts: Dict[str, InputVerdict] = field(default_factory=dict)
    #: values (by id) that feed sensitive sinks — the executor's merge hint
    sink_value_ids: Set[int] = field(default_factory=set)
    #: values feeding access *addresses* (data dependence, §V case 1)
    address_value_ids: Set[int] = field(default_factory=set)
    #: values feeding access *flow conditions* (control dep., §V case 2)
    condition_value_ids: Set[int] = field(default_factory=set)
    #: memory objects (by id) whose *contents* feed sinks
    sink_object_ids: Set[int] = field(default_factory=set)
    #: how many accesses were treated as sinks
    num_sinks: int = 0

    @property
    def symbolic_inputs(self) -> List[str]:
        return [v.name for v in self.verdicts.values() if v.must_be_symbolic]

    @property
    def concrete_inputs(self) -> List[str]:
        return [v.name for v in self.verdicts.values()
                if not v.must_be_symbolic]

    @property
    def loop_bound_inputs(self) -> List[str]:
        return [v.name for v in self.verdicts.values()
                if v.flows_into_loop_bound]

    def summary(self) -> str:
        total = len(self.verdicts)
        sym = len(self.symbolic_inputs)
        return f"{sym}/{total} inputs symbolic"


class ControlDependence:
    """block → conditional branches it is control-dependent on.

    B is control-dependent on branch A→S iff B post-dominates S but does
    not post-dominate A (Ferrante-Ottenstein-Warren, computed by walking
    the post-dominator tree from each successor up to ipostdom(A)).
    """

    def __init__(self, cfg: CFG) -> None:
        ipdom = cfg.ipostdom()
        self.deps: Dict[int, List[Br]] = {id(b): [] for b in cfg.blocks}
        br_block: Dict[int, BasicBlock] = {}
        for block in cfg.blocks:
            term = block.terminator
            if not isinstance(term, Br):
                continue
            br_block[id(term)] = block
            stop = ipdom.get(block)
            for succ in term.successors():
                runner: Optional[BasicBlock] = succ
                guard = 0
                while runner is not None and runner is not stop \
                        and guard <= len(cfg.blocks):
                    self.deps[id(runner)].append(term)
                    runner = ipdom.get(runner)
                    guard += 1
        # transitive closure: a block guarded by an inner branch is also
        # guarded by whatever guards that branch's own block — required
        # for the taint pass (an input feeding only an outer guard still
        # controls the access)
        changed = True
        while changed:
            changed = False
            for bid, brs in self.deps.items():
                have = {id(b) for b in brs}
                for br in list(brs):
                    owner = br_block.get(id(br))
                    if owner is None:
                        continue
                    for outer in self.deps.get(id(owner), ()):
                        if id(outer) not in have:
                            brs.append(outer)
                            have.add(id(outer))
                            changed = True

    def of(self, block: BasicBlock) -> List[Br]:
        """All branches (transitively) guarding this block."""
        return self.deps.get(id(block), [])


def _memory_accesses(fn: Function) -> List[Tuple[Instruction, Value, str]]:
    """(instruction, pointer, kind) for every memory access."""
    out = []
    for instr in fn.instructions():
        if isinstance(instr, Load):
            out.append((instr, instr.pointer, "read"))
        elif isinstance(instr, Store):
            out.append((instr, instr.pointer, "write"))
        elif isinstance(instr, AtomicRMW):
            out.append((instr, instr.pointer, "atomic"))
        elif isinstance(instr, AtomicCAS):
            out.append((instr, instr.pointer, "atomic"))
    return out


class TaintAnalysis:
    """One kernel's sink-flow fixed point."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.cfg = CFG(fn)
        self.cd = ControlDependence(self.cfg)
        self.accesses = _memory_accesses(fn)
        # S: values known to feed a sink; S_mem: objects whose contents do
        self.sink_values: Set[int] = set()
        self.sink_objects: Set[int] = set()
        self.reason_of: Dict[int, str] = {}
        self._by_id: Dict[int, Value] = {}
        self._worklist: List[Value] = []
        # writes per object id: (store instr, value operand, ptr)
        self._writes: Dict[int, List[Tuple[Instruction, Value, Value]]] = {}
        for instr, ptr, kind in self.accesses:
            if kind in ("write", "atomic"):
                root = root_object(ptr)
                if root is not None:
                    value = instr.value if isinstance(instr, (Store, AtomicRMW)) \
                        else instr.ops[2]
                    self._writes.setdefault(id(root), []).append(
                        (instr, value, ptr))

    # ------------------------------------------------------------------

    def run(self) -> TaintReport:
        # pass A: data flow into *addresses* (the paper's case 1)
        self._seed(addresses=True, conditions=False)
        self._fixpoint()
        addr_values = set(self.sink_values)
        addr_objects = set(self.sink_objects)
        addr_reasons = dict(self.reason_of)
        # pass B: flow into *conditions governing accesses* (case 2)
        self.sink_values = set()
        self.sink_objects = set()
        self.reason_of = {}
        self._worklist = []
        self._seed(addresses=False, conditions=True)
        self._fixpoint()
        cond_values = set(self.sink_values)

        report = TaintReport(kernel=self.fn.name)
        report.address_value_ids = addr_values
        report.condition_value_ids = cond_values
        report.sink_value_ids = addr_values | cond_values
        report.sink_object_ids = addr_objects | set(self.sink_objects)
        report.num_sinks = sum(
            1 for _, ptr, _ in self.accesses if is_shared_or_global(ptr))
        loop_bound_feeders = self._loop_bound_values()
        for arg in self.fn.args:
            verdict = self._verdict_for(arg, addr_values, cond_values,
                                        addr_reasons, loop_bound_feeders)
            report.verdicts[arg.name] = verdict
        return report

    # ------------------------------------------------------------------

    def _mark(self, value: Value, reason: str) -> None:
        if isinstance(value, Constant):
            return
        vid = id(value)
        if vid in self.sink_values:
            return
        self.sink_values.add(vid)
        self.reason_of.setdefault(vid, reason)
        self._by_id[vid] = value
        self._worklist.append(value)

    def _seed(self, addresses: bool = True, conditions: bool = True) -> None:
        """Sinks: address computations of shared/global accesses, and/or
        the conditions controlling those accesses."""
        for instr, ptr, kind in self.accesses:
            if not is_shared_or_global(ptr):
                continue
            where = f"{kind} at line {instr.loc}" if instr.loc else kind
            if addresses:
                for index in index_values(ptr):
                    self._mark(index, f"address of {where}")
            if conditions:
                block = instr.parent
                if block is not None:
                    for br in self.cd.of(block):
                        self._mark(br.cond, f"flow condition of {where}")

    def _fixpoint(self) -> None:
        while self._worklist:
            value = self._worklist.pop()
            if not isinstance(value, Register):
                continue  # Argument / BuiltinValue are terminals
            d = value.defining
            if d is None:
                continue
            reason = self.reason_of.get(id(value), "")
            # NOTE: whether the definition *executes* is condition flow
            # (handled by the pass-B seeds); path-dependent *values* are
            # covered by the phi rule and the conditional-store rule below.
            if isinstance(d, Load):
                self._taint_object_contents(d.pointer, reason)
                # which slot was loaded also influences the value
                for index in index_values(d.pointer):
                    self._mark(index, reason)
            elif isinstance(d, (AtomicRMW, AtomicCAS)):
                self._taint_object_contents(d.pointer, reason)
                for op in d.operands():
                    if not isinstance(op, Constant) and op is not d.pointer:
                        self._mark(op, reason)
            elif isinstance(d, Phi):
                for pred, incoming in d.incoming:
                    self._mark(incoming, reason)
                    term = pred.terminator if hasattr(pred, "terminator") \
                        else None
                    if isinstance(term, Br):
                        self._mark(term.cond, reason)
            elif isinstance(d, GEP):
                self._mark(d.index, reason)
                # base chase: loading through the pointer is handled above
            elif isinstance(d, Alloca):
                pass
            else:
                for op in d.operands():
                    self._mark(op, reason)

    def _taint_object_contents(self, ptr: Value, reason: str) -> None:
        root = root_object(ptr)
        if root is None:
            return
        rid = id(root)
        if rid not in self.sink_objects:
            self.sink_objects.add(rid)
        # contents come from (a) stores to the object, (b) for kernel
        # argument buffers, the input data itself
        for instr, stored, sptr in self._writes.get(rid, ()):
            self._mark(stored, reason)
            for index in index_values(sptr):
                self._mark(index, reason)
            if instr.parent is not None:
                for br in self.cd.of(instr.parent):
                    self._mark(br.cond, reason)
        if isinstance(root, Argument):
            self._mark(root, reason)

    # ------------------------------------------------------------------

    def _loop_bound_values(self) -> Set[int]:
        """Values feeding loop-exit branch conditions (backward closure)."""
        seeds: List[Value] = []
        for loop in self.cfg.natural_loops():
            for br in loop.exit_condition_branches():
                seeds.append(br.cond)
        for instr in self.fn.instructions():
            if isinstance(instr, Br) and instr.meta.get("loop_branch"):
                seeds.append(instr.cond)
        closure: Set[int] = set()
        work = list(seeds)
        while work:
            value = work.pop()
            if id(value) in closure or isinstance(value, Constant):
                continue
            closure.add(id(value))
            if isinstance(value, Register) and value.defining is not None:
                d = value.defining
                if isinstance(d, Load):
                    root = root_object(d.pointer)
                    if isinstance(root, Argument):
                        work.append(root)
                    for index in index_values(d.pointer):
                        work.append(index)
                elif isinstance(d, Phi):
                    work.extend(v for _, v in d.incoming)
                else:
                    work.extend(d.operands())
        return closure

    def _verdict_for(self, arg: Argument, addr_values: Set[int],
                     cond_values: Set[int], addr_reasons: Dict[int, str],
                     loop_bounds: Set[int]) -> InputVerdict:
        in_addr = id(arg) in addr_values
        in_cond = id(arg) in cond_values
        in_loop = id(arg) in loop_bounds
        is_pointer = isinstance(arg.type, PointerType)
        reason = addr_reasons.get(id(arg)) or self.reason_of.get(id(arg), "")
        # must_be_symbolic records the strict §V verdict: the input flows
        # into an address. The symbolisation *policy* on top of this
        # (pointer contents only; scalars and loop bounds concretised with
        # a note, matching Table I's counts) lives in
        # SESA.inferred_symbolic_inputs.
        verdict = InputVerdict(
            name=arg.name,
            must_be_symbolic=in_addr,
            is_pointer=is_pointer,
            flows_into_address=in_addr,
            flows_into_condition=in_cond,
            flows_into_loop_bound=in_loop,
            reason=reason or (
                "flows into access conditions only" if in_cond
                else "loop bound only" if in_loop
                else "does not reach any sensitive sink"),
        )
        if in_addr and in_loop:
            verdict.reason += " (also flows into a loop bound: keep the " \
                              "bound assumption concrete, §III-C)"
        return verdict


def analyze_taint(fn: Function) -> TaintReport:
    """Run the §V analysis on a kernel in SSA form."""
    return TaintAnalysis(fn).run()
