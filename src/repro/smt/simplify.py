"""Algebraic simplification over term DAGs.

The smart constructors already fold constants and identities; this module
adds the rewrites that matter for SESA's race queries:

* ``x urem 2**k``  →  ``x & (2**k - 1)`` and ``x udiv 2**k`` → ``x >> k``
  (the reduction/bitonic kernels are full of ``tid % (2*s)`` with concrete
  strides — turning them into masks makes both the interval layer and the
  bitblaster dramatically cheaper),
* ``x * 2**k`` → ``x << k``,
* offset normalisation for equalities (``x + c1 == c2`` → ``x == c2 - c1``),
* mask/constant contradiction (``(x & m) == c`` with ``c & ~m != 0`` →
  ``false``).

The pass runs bottom-up with memoisation; each rewritten node is re-run
through the rules until a local fixed point (with a small bound).
"""
from __future__ import annotations

from typing import Dict

from .sorts import BOOL, BVSort
from . import terms as T
from .subst import rebuild
from .terms import Op, Term


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _log2(value: int) -> int:
    return value.bit_length() - 1


def _rewrite_once(term: Term) -> Term:
    """One local rewrite step; returns the input if no rule applies."""
    op = term.op
    args = term.args

    if op == Op.UREM:
        x, c = args
        if c.is_const() and _is_pow2(c.value):
            return T.mk_bvand(x, T.mk_bv(c.value - 1, x.width))

    elif op == Op.UDIV:
        x, c = args
        if c.is_const() and _is_pow2(c.value):
            return T.mk_lshr(x, T.mk_bv(_log2(c.value), x.width))

    elif op == Op.MUL:
        x, c = args
        if c.is_const() and _is_pow2(c.value):
            return T.mk_shl(x, T.mk_bv(_log2(c.value), x.width))

    elif op == Op.EQ and isinstance(args[0].sort, BVSort):
        a, b = args
        width = a.width
        # (x + c1) == c2   ->   x == c2 - c1   (modular, hence exact)
        if b.is_const() and a.op == Op.ADD and a.args[1].is_const():
            return T.mk_eq(a.args[0], T.mk_bv(b.value - a.args[1].value, width))
        # (x + c1) == (y + c2)  ->  x == y + (c2 - c1)
        if (a.op == Op.ADD and a.args[1].is_const()
                and b.op == Op.ADD and b.args[1].is_const()):
            delta = b.args[1].value - a.args[1].value
            return T.mk_eq(a.args[0], T.mk_add(b.args[0], T.mk_bv(delta, width)))
        # (x & m) == c with c outside the mask is impossible
        if (b.is_const() and a.op == Op.AND and a.args[1].is_const()
                and (b.value & ~a.args[1].value) != 0):
            return T.FALSE
        # (x << k) == c: c must have k low zero bits
        if (b.is_const() and a.op == Op.SHL and a.args[1].is_const()
                and a.args[1].value < width):
            k = a.args[1].value
            if b.value & ((1 << k) - 1):
                return T.FALSE
        # x - y == 0  ->  x == y
        if b.is_const() and b.value == 0 and a.op == Op.SUB:
            return T.mk_eq(a.args[0], a.args[1])
        # x ^ y == 0  ->  x == y
        if b.is_const() and b.value == 0 and a.op == Op.XOR:
            return T.mk_eq(a.args[0], a.args[1])
        # zext(x) == c: high bits of c must be zero
        if b.is_const() and a.op == Op.ZEXT:
            inner = a.args[0]
            if b.value >> inner.width:
                return T.FALSE
            return T.mk_eq(inner, T.mk_bv(b.value, inner.width))

    elif op == Op.ULT:
        a, b = args
        # (x & m) < c with  m < c  is always true
        if (b.is_const() and a.op == Op.AND and a.args[1].is_const()
                and a.args[1].value < b.value):
            return T.TRUE
        # zext(x) < c
        if b.is_const() and a.op == Op.ZEXT:
            inner = a.args[0]
            if b.value > inner.sort.mask:  # type: ignore[union-attr]
                return T.TRUE
            return T.mk_ult(inner, T.mk_bv(b.value, inner.width))

    elif op == Op.AND:
        a, b = args
        # (x & c1) & c2  ->  x & (c1 & c2)
        if b.is_const() and a.op == Op.AND and a.args[1].is_const():
            return T.mk_bvand(a.args[0], T.mk_bv(a.args[1].value & b.value,
                                                 b.width))
        # (x << k) & m == 0 when mask only covers the low k bits
        if (b.is_const() and a.op == Op.SHL and a.args[1].is_const()
                and a.args[1].value < a.width
                and b.value < (1 << a.args[1].value)):
            return T.mk_bv(0, a.width)

    elif op == Op.LSHR:
        a, b = args
        # (x << k) >> k  ->  x & mask  when widths allow
        if (b.is_const() and a.op == Op.SHL and a.args[1].is_const()
                and a.args[1] is b and b.value < a.width):
            mask = (1 << (a.width - b.value)) - 1
            return T.mk_bvand(a.args[0], T.mk_bv(mask, a.width))

    elif op == Op.ZEXT:
        inner = args[0]
        # zext(zext(x)) -> zext(x)
        if inner.op == Op.ZEXT:
            return T.mk_zext(inner.args[0], term.payload)  # type: ignore[arg-type]

    elif op == Op.EXTRACT:
        hi, lo = term.payload  # type: ignore[misc]
        inner = args[0]
        if inner.op == Op.ZEXT:
            src = inner.args[0]
            if hi < src.width:
                return T.mk_extract(src, hi, lo)
            if lo >= src.width:
                return T.mk_bv(0, hi - lo + 1)
        if inner.op == Op.EXTRACT:
            ihi, ilo = inner.payload  # type: ignore[misc]
            return T.mk_extract(inner.args[0], ilo + hi, ilo + lo)

    return term


_MAX_LOCAL_STEPS = 8

# Interned terms never move or die (the constructor table holds strong
# references), so ``id`` is a stable global key and simplification can
# be memoised across *all* callers. The race checker leans on this: its
# thousands of per-pair queries share most of their subterm DAG.
_GLOBAL_CACHE: Dict[int, Term] = {}


def clear_simplify_cache() -> None:
    """Drop the process-wide simplification memo (tests, memory)."""
    _GLOBAL_CACHE.clear()


def simplify(term: Term, cache: Dict[int, Term] | None = None) -> Term:
    """Bottom-up simplification with memoisation over the DAG.

    With no explicit *cache* the process-wide memo is used, making
    repeated calls over shared subterms O(new nodes).
    """
    if cache is None:
        cache = _GLOBAL_CACHE
    # explicit post-order that skips already-simplified subDAGs
    stack = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        nid = id(node)
        if nid in cache:
            continue
        if not node.args:
            cache[nid] = node
            continue
        if not expanded:
            stack.append((node, True))
            for a in node.args:
                stack.append((a, False))
            continue
        new_args = tuple(cache[id(a)] for a in node.args)
        current = rebuild(node, new_args)
        for _ in range(_MAX_LOCAL_STEPS):
            after = _rewrite_once(current)
            if after is current:
                break
            current = after
            if not current.args:
                break
        cache[nid] = current
    return cache[id(term)]
