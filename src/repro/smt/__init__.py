"""Bitvector SMT substrate: terms, simplifier, interval filter, CDCL SAT.

This is the constraint-solving backend that SESA's race checker sits on
(the role STP played in the original KLEE-based implementation).
"""
from .sorts import BOOL, BV1, BV8, BV16, BV32, BV64, BoolSort, BVSort, bv_sort
from .terms import (
    FALSE, TRUE, Op, Term,
    fresh_var, free_vars, iter_dag, term_size,
    mk_add, mk_and, mk_ashr, mk_bool, mk_bool_var, mk_bv, mk_bv_var, mk_bvand,
    mk_bvnot, mk_bvor, mk_bvxor, mk_bxor, mk_concat, mk_eq, mk_extract,
    mk_implies, mk_ite, mk_lshr, mk_mul, mk_ne, mk_neg, mk_not, mk_or,
    mk_sdiv, mk_sext, mk_sge, mk_sgt, mk_shl, mk_sle, mk_slt, mk_srem,
    mk_sub, mk_truncate, mk_udiv, mk_uge, mk_ugt, mk_ule, mk_ult, mk_urem,
    mk_var, mk_zext,
)
from .subst import EvaluationError, Substitution, evaluate, substitute
from .simplify import clear_simplify_cache, simplify
from .interval import Interval, IntervalAnalysis, byte_footprint, \
    derive_bounds
from .affine import (
    affine_decompose, equality_forces_equal_components, injective_on_box,
    stride_separated,
)
from .cnf import get_solver_stack, set_solver_stack
from .sat import make_solver, set_solver_impl
from .solver import CheckResult, Model, Solver, SolverStats, get_model, is_sat
from .session import QueryMemo, SolverSession, TemplateCache
from .persist import (
    SolverArtifactStore, canonical_term, preamble_fingerprint,
)

__all__ = [
    "BOOL", "BV1", "BV8", "BV16", "BV32", "BV64", "BoolSort", "BVSort",
    "bv_sort", "FALSE", "TRUE", "Op", "Term", "fresh_var", "free_vars",
    "iter_dag", "term_size", "mk_add", "mk_and", "mk_ashr", "mk_bool",
    "mk_bool_var", "mk_bv", "mk_bv_var", "mk_bvand", "mk_bvnot", "mk_bvor",
    "mk_bvxor", "mk_bxor", "mk_concat", "mk_eq", "mk_extract", "mk_implies",
    "mk_ite", "mk_lshr", "mk_mul", "mk_ne", "mk_neg", "mk_not", "mk_or",
    "mk_sdiv", "mk_sext", "mk_sge", "mk_sgt", "mk_shl", "mk_sle", "mk_slt",
    "mk_srem", "mk_sub", "mk_truncate", "mk_udiv", "mk_uge", "mk_ugt",
    "mk_ule", "mk_ult", "mk_urem", "mk_var", "mk_zext",
    "EvaluationError", "Substitution", "evaluate", "substitute",
    "clear_simplify_cache", "simplify",
    "Interval", "IntervalAnalysis", "byte_footprint", "derive_bounds",
    "affine_decompose", "equality_forces_equal_components",
    "injective_on_box", "stride_separated",
    "CheckResult", "Model", "Solver", "SolverStats", "get_model", "is_sat",
    "QueryMemo", "SolverSession", "TemplateCache",
    "get_solver_stack", "set_solver_stack", "make_solver",
    "set_solver_impl",
    "SolverArtifactStore", "canonical_term", "preamble_fingerprint",
]
