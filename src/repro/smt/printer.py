"""Human-readable rendering of terms (SMT-LIB-flavoured, infix for brevity)."""
from __future__ import annotations

from .sorts import BOOL
from . import terms as T

_INFIX = {
    T.Op.ADD: "+", T.Op.SUB: "-", T.Op.MUL: "*",
    T.Op.UDIV: "/u", T.Op.UREM: "%u", T.Op.SDIV: "/s", T.Op.SREM: "%s",
    T.Op.AND: "&", T.Op.OR: "|", T.Op.XOR: "^",
    T.Op.SHL: "<<", T.Op.LSHR: ">>u", T.Op.ASHR: ">>s",
    T.Op.EQ: "==", T.Op.ULT: "<u", T.Op.ULE: "<=u",
    T.Op.SLT: "<s", T.Op.SLE: "<=s",
    T.Op.BXOR: "xor", T.Op.IMPLIES: "=>",
}


def term_to_str(term: "T.Term", max_depth: int = 40) -> str:
    """Render a term; deep sub-DAGs are elided with ``...``."""
    def go(t: "T.Term", depth: int) -> str:
        if depth > max_depth:
            return "..."
        if t.op == T.Op.CONST:
            if t.sort is BOOL:
                return "true" if t.payload else "false"
            return str(t.payload)
        if t.op == T.Op.VAR:
            return str(t.payload)
        if t.op in _INFIX and len(t.args) == 2:
            a, b = (go(x, depth + 1) for x in t.args)
            return f"({a} {_INFIX[t.op]} {b})"
        if t.op == T.Op.BAND:
            return "(" + " && ".join(go(x, depth + 1) for x in t.args) + ")"
        if t.op == T.Op.BOR:
            return "(" + " || ".join(go(x, depth + 1) for x in t.args) + ")"
        if t.op in (T.Op.BNOT, T.Op.NOT):
            return f"!{go(t.args[0], depth + 1)}"
        if t.op == T.Op.NEG:
            return f"-{go(t.args[0], depth + 1)}"
        if t.op == T.Op.ITE:
            c, a, b = (go(x, depth + 1) for x in t.args)
            return f"({c} ? {a} : {b})"
        if t.op == T.Op.EXTRACT:
            hi, lo = t.payload  # type: ignore[misc]
            return f"{go(t.args[0], depth + 1)}[{hi}:{lo}]"
        if t.op in (T.Op.ZEXT, T.Op.SEXT):
            return f"{t.op}({go(t.args[0], depth + 1)}, {t.payload})"
        if t.op == T.Op.CONCAT:
            return f"({go(t.args[0], depth + 1)} ++ {go(t.args[1], depth + 1)})"
        inner = " ".join(go(x, depth + 1) for x in t.args)
        return f"({t.op} {inner})"

    return go(term, 0)
