"""Layered satisfiability solver for QF_BV queries.

The pipeline mirrors what production concolic engines do in front of their
SAT core:

1. **Simplify** each assertion (constant folding + algebraic rewrites).
2. **Trivial** answers: an assertion simplified to ``false`` is UNSAT; all
   ``true`` is SAT with an arbitrary model.
3. **Interval pre-filter**: derive per-variable bounds from the conjuncts
   and abstractly evaluate — many race queries (disjoint strides) die here
   without bit-blasting.
4. **Bit-blast + CDCL SAT** with an optional conflict budget.

Models are validated against the concrete evaluator before being returned,
so a solver bug surfaces as a loud exception instead of a bogus witness.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .bitblast import BitBlaster
from .cnf import CNF
from .interval import IntervalAnalysis, derive_bounds
from .sat import SatResult, make_solver
from .simplify import simplify
from .sorts import BOOL, BVSort
from . import terms as T
from .subst import EvaluationError, evaluate
from .terms import Term


class CheckResult:
    """Result tags for the layered solver."""
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class Model:
    """A satisfying assignment, mapping variable names to values."""

    values: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.values.items()))
        return f"Model({inner})"


@dataclass
class SolverStats:
    """Where queries were dispatched; drives the solver ablation bench.

    ``by_sat`` counts queries that required a *fresh* bitblast + SAT
    instance (the one-shot path); ``by_session`` counts queries answered
    by assumption on a live incremental instance. ``sat_instances`` is
    the number of SAT solver constructions either way — the work the
    blast-once preamble amortises.
    """

    queries: int = 0
    by_simplifier: int = 0
    by_interval: int = 0
    by_sat: int = 0
    by_session: int = 0
    sat_instances: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    learned_clauses: int = 0
    #: goal lowerings answered by template instantiation instead of a
    #: gate-by-gate Tseitin walk (see repro.smt.bitblast.TemplateCache)
    template_hits: int = 0

    def merge(self, other: "SolverStats") -> None:
        self.queries += other.queries
        self.by_simplifier += other.by_simplifier
        self.by_interval += other.by_interval
        self.by_sat += other.by_sat
        self.by_session += other.by_session
        self.sat_instances += other.sat_instances
        self.sat_conflicts += other.sat_conflicts
        self.sat_decisions += other.sat_decisions
        self.sat_propagations += other.sat_propagations
        self.learned_clauses += other.learned_clauses
        self.template_hits += other.template_hits

    def copy(self) -> "SolverStats":
        from dataclasses import replace
        return replace(self)

    def delta_since(self, before: "SolverStats") -> "SolverStats":
        """Counter-wise ``self - before``: the work done since a
        snapshot, for callers attributing shared-session work."""
        out = SolverStats()
        for f in out.__dataclass_fields__:
            setattr(out, f, getattr(self, f) - getattr(before, f))
        return out


class Solver:
    """One-shot satisfiability checking with incremental assertion adding."""

    def __init__(self, *, use_simplifier: bool = True,
                 use_interval: bool = True,
                 conflict_budget: Optional[int] = 200_000,
                 deadline: Optional[float] = None,
                 validate_models: bool = True) -> None:
        self.assertions: List[Term] = []
        self.use_simplifier = use_simplifier
        self.use_interval = use_interval
        self.conflict_budget = conflict_budget
        self.deadline = deadline
        self.validate_models = validate_models
        self.stats = SolverStats()
        self._model: Optional[Model] = None

    # ------------------------------------------------------------------

    def add(self, *terms: Term) -> None:
        for t in terms:
            if t.sort is not BOOL:
                raise TypeError(f"assertions must be Bool, got {t.sort}")
            self.assertions.append(t)

    def push_scope(self) -> int:
        return len(self.assertions)

    def pop_scope(self, mark: int) -> None:
        del self.assertions[mark:]

    # ------------------------------------------------------------------

    def check(self, *extra: Term) -> str:
        """Check satisfiability of the conjunction of all assertions."""
        self.stats.queries += 1
        self._model = None
        goal = list(self.assertions) + list(extra)

        if self.use_simplifier:
            goal = [simplify(t) for t in goal]
        if any(t.is_false() for t in goal):
            self.stats.by_simplifier += 1
            return CheckResult.UNSAT
        goal = [t for t in goal if not t.is_true()]
        if not goal:
            self.stats.by_simplifier += 1
            self._model = Model({})
            return CheckResult.SAT

        if self.use_interval:
            bounds = derive_bounds(goal)
            analysis = IntervalAnalysis(bounds)
            if any(analysis.must_be_false(t) for t in goal):
                self.stats.by_interval += 1
                return CheckResult.UNSAT

        return self._check_sat(goal)

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("no model available (last check was not SAT)")
        return self._model

    # ------------------------------------------------------------------

    def _check_sat(self, goal: List[Term]) -> str:
        self.stats.by_sat += 1
        self.stats.sat_instances += 1
        blaster = BitBlaster()
        for t in goal:
            blaster.assert_term(t)
        sat = make_solver(blaster.cnf, conflict_budget=self.conflict_budget,
                          deadline=self.deadline)
        result = sat.solve()
        self.stats.sat_conflicts += sat.conflicts
        self.stats.sat_decisions += sat.decisions
        self.stats.sat_propagations += sat.propagations
        self.stats.learned_clauses += len(sat.learnts)
        if result == SatResult.UNKNOWN:
            return CheckResult.UNKNOWN
        if result == SatResult.UNSAT:
            return CheckResult.UNSAT

        values: Dict[str, int] = {}
        for name in blaster.var_bits:
            values[name] = blaster.extract_value(name, sat.model)
        for name in blaster.bool_vars:
            values[name] = int(blaster.extract_bool(name, sat.model))
        model = Model(values)

        if self.validate_models:
            self._validate(goal, model)
        self._model = model
        return CheckResult.SAT

    def _validate(self, goal: Iterable[Term], model: Model) -> None:
        assignment = dict(model.values)
        for t in goal:
            # fill variables the blaster never saw (eliminated by simplify)
            for name, var in T.free_vars(t).items():
                assignment.setdefault(name, 0)
            try:
                ok = evaluate(t, assignment)
            except EvaluationError:
                continue  # uninterpreted applications: nothing to validate
            if not ok:
                raise AssertionError(
                    f"solver produced an invalid model {model} for {t}")


def is_sat(*terms: Term, **kwargs) -> bool:
    """Convenience: one-shot satisfiability of a conjunction."""
    solver = Solver(**kwargs)
    solver.add(*terms)
    return solver.check() == CheckResult.SAT


def get_model(*terms: Term, **kwargs) -> Optional[Model]:
    """Convenience: model of a conjunction, or None if UNSAT/unknown."""
    solver = Solver(**kwargs)
    solver.add(*terms)
    if solver.check() == CheckResult.SAT:
        return solver.model()
    return None
