"""Unsigned-interval abstract interpretation over terms.

A cheap, sound pre-filter in front of bit-blasting: if the interval of an
asserted boolean is "must be false", the query is UNSAT without touching
the SAT solver. Race queries frequently die here — e.g. two accesses whose
address intervals are disjoint because the flow conditions pin ``tid`` to
disjoint strided ranges.

The domain is the classic unsigned interval lattice per width; operations
that may wrap return ⊤ rather than a wrapped interval, which keeps the
analysis sound (never claims UNSAT for a satisfiable query).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .sorts import BOOL, BVSort
from . import terms as T
from .terms import Op, Term


@dataclass(frozen=True)
class Interval:
    """Closed unsigned interval ``[lo, hi]`` of a given bit width."""

    lo: int
    hi: int
    width: int

    def __post_init__(self) -> None:
        assert 0 <= self.lo <= self.hi < (1 << self.width), self

    @staticmethod
    def top(width: int) -> "Interval":
        return Interval(0, (1 << width) - 1, width)

    @staticmethod
    def point(value: int, width: int) -> "Interval":
        value &= (1 << width) - 1
        return Interval(value, value, width)

    def is_point(self) -> bool:
        return self.lo == self.hi

    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == (1 << self.width) - 1

    def join(self, other: "Interval") -> "Interval":
        assert self.width == other.width
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi), self.width)

    def meet(self, other: "Interval") -> Optional["Interval"]:
        assert self.width == other.width
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi, self.width)

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi


def byte_footprint(iv: Interval, size: int) -> Optional[Tuple[int, int]]:
    """Closed byte range ``[lo, hi]`` touched by a ``size``-byte access
    whose start offset lies in ``iv``, or None when the end could wrap
    the bit width (a wrapped range is not an interval, so no sound
    footprint exists)."""
    hi = iv.hi + size - 1
    if hi >= (1 << iv.width):
        return None
    return (iv.lo, hi)


# Boolean abstract values: (can_be_true, can_be_false)
BoolAbs = Tuple[bool, bool]
B_TRUE: BoolAbs = (True, False)
B_FALSE: BoolAbs = (False, True)
B_TOP: BoolAbs = (True, True)


def _binop_interval(op: str, a: Interval, b: Interval, width: int) -> Interval:
    mask = (1 << width) - 1
    if op == Op.ADD:
        if a.hi + b.hi <= mask:
            return Interval(a.lo + b.lo, a.hi + b.hi, width)
        return Interval.top(width)
    if op == Op.SUB:
        if a.lo >= b.hi:
            return Interval(a.lo - b.hi, a.hi - b.lo, width)
        return Interval.top(width)
    if op == Op.MUL:
        if a.hi * b.hi <= mask:
            return Interval(a.lo * b.lo, a.hi * b.hi, width)
        return Interval.top(width)
    if op == Op.UDIV:
        if b.lo > 0:
            return Interval(a.lo // b.hi, a.hi // b.lo, width)
        return Interval.top(width)
    if op == Op.UREM:
        if b.lo > 0:
            hi = min(a.hi, b.hi - 1)
            if a.hi < b.lo:  # no reduction ever happens
                return Interval(a.lo, a.hi, width)
            return Interval(0, hi, width)
        return Interval.top(width)
    if op == Op.AND:
        return Interval(0, min(a.hi, b.hi), width)
    if op == Op.OR:
        # result >= max(lo) and < 2**bits(max(hi))
        hi_bits = max(a.hi, b.hi).bit_length()
        both = a.hi | b.hi
        bound = min(mask, (1 << max(hi_bits, both.bit_length())) - 1)
        return Interval(max(a.lo, b.lo), bound, width)
    if op == Op.XOR:
        bits = max(a.hi, b.hi).bit_length()
        return Interval(0, min(mask, (1 << bits) - 1), width)
    if op == Op.SHL:
        if b.is_point() and b.lo < width and a.hi << b.lo <= mask:
            return Interval(a.lo << b.lo, a.hi << b.lo, width)
        return Interval.top(width)
    if op == Op.LSHR:
        if b.is_point():
            s = min(b.lo, width)
            return Interval(a.lo >> s, a.hi >> s, width)
        return Interval(0, a.hi, width)
    return Interval.top(width)


def _pred_abs(op: str, a: Interval, b: Interval) -> BoolAbs:
    if op == Op.ULT:
        if a.hi < b.lo:
            return B_TRUE
        if a.lo >= b.hi:
            return B_FALSE
        return B_TOP
    if op == Op.ULE:
        if a.hi <= b.lo:
            return B_TRUE
        if a.lo > b.hi:
            return B_FALSE
        return B_TOP
    if op == Op.EQ:
        if a.is_point() and b.is_point():
            return B_TRUE if a.lo == b.lo else B_FALSE
        if a.meet(b) is None:
            return B_FALSE
        return B_TOP
    return B_TOP


class IntervalAnalysis:
    """Evaluates terms to intervals / abstract booleans with memoisation."""

    def __init__(self, var_bounds: Mapping[str, Interval] | None = None) -> None:
        self.var_bounds: Dict[str, Interval] = dict(var_bounds or {})
        self._bv_cache: Dict[int, Interval] = {}
        self._bool_cache: Dict[int, BoolAbs] = {}

    def interval_of(self, term: Term) -> Interval:
        assert isinstance(term.sort, BVSort)
        self._run([term])
        return self._bv_cache[id(term)]

    def bool_of(self, term: Term) -> BoolAbs:
        assert term.sort is BOOL
        self._run([term])
        return self._bool_cache[id(term)]

    def must_be_false(self, term: Term) -> bool:
        return self.bool_of(term) == B_FALSE

    def must_be_true(self, term: Term) -> bool:
        return self.bool_of(term) == B_TRUE

    # -- core ----------------------------------------------------------

    def _run(self, roots: Iterable[Term]) -> None:
        for node in T.iter_dag(roots):
            nid = id(node)
            if node.sort is BOOL:
                if nid not in self._bool_cache:
                    self._bool_cache[nid] = self._abs_bool(node)
            else:
                if nid not in self._bv_cache:
                    self._bv_cache[nid] = self._abs_bv(node)

    def _abs_bv(self, node: Term) -> Interval:
        width = node.width
        op = node.op
        if op == Op.CONST:
            return Interval.point(node.value, width)
        if op == Op.VAR:
            bound = self.var_bounds.get(node.name)
            if bound is not None and bound.width == width:
                return bound
            return Interval.top(width)
        if op in (Op.ADD, Op.SUB, Op.MUL, Op.UDIV, Op.UREM,
                  Op.AND, Op.OR, Op.XOR, Op.SHL, Op.LSHR):
            a = self._bv_cache[id(node.args[0])]
            b = self._bv_cache[id(node.args[1])]
            return _binop_interval(op, a, b, width)
        if op == Op.ZEXT:
            a = self._bv_cache[id(node.args[0])]
            return Interval(a.lo, a.hi, width)
        if op == Op.EXTRACT:
            hi, lo = node.payload  # type: ignore[misc]
            a = self._bv_cache[id(node.args[0])]
            if lo == 0 and a.hi < (1 << (hi + 1)):
                return Interval(a.lo, a.hi, width)
            return Interval.top(width)
        if op == Op.ITE:
            a = self._bv_cache[id(node.args[1])]
            b = self._bv_cache[id(node.args[2])]
            cond = self._bool_cache[id(node.args[0])]
            if cond == B_TRUE:
                return a
            if cond == B_FALSE:
                return b
            return a.join(b)
        return Interval.top(width)

    def _abs_bool(self, node: Term) -> BoolAbs:
        op = node.op
        if op == Op.CONST:
            return B_TRUE if node.payload else B_FALSE
        if op == Op.VAR:
            return B_TOP
        if op in (Op.ULT, Op.ULE, Op.EQ):
            if op == Op.EQ and node.args[0].sort is BOOL:
                a0 = self._bool_cache[id(node.args[0])]
                b0 = self._bool_cache[id(node.args[1])]
                if a0 != B_TOP and b0 != B_TOP:
                    return B_TRUE if a0 == b0 else B_FALSE
                return B_TOP
            a = self._bv_cache[id(node.args[0])]
            b = self._bv_cache[id(node.args[1])]
            return _pred_abs(op, a, b)
        if op == Op.BNOT:
            t, f = self._bool_cache[id(node.args[0])]
            return (f, t)
        if op == Op.BAND:
            kids = [self._bool_cache[id(a)] for a in node.args]
            if any(k == B_FALSE for k in kids):
                return B_FALSE
            if all(k == B_TRUE for k in kids):
                return B_TRUE
            return B_TOP
        if op == Op.BOR:
            kids = [self._bool_cache[id(a)] for a in node.args]
            if any(k == B_TRUE for k in kids):
                return B_TRUE
            if all(k == B_FALSE for k in kids):
                return B_FALSE
            return B_TOP
        return B_TOP


def derive_bounds(assertions: Iterable[Term]) -> Dict[str, Interval]:
    """Extract simple per-variable bounds from top-level conjuncts.

    Recognises ``v < c``, ``v <= c``, ``c <= v``, ``v == c`` patterns (and
    within ``and`` nests). These arise constantly from SESA: ``tid.x <
    bdim.x`` with a concrete ``bdim``.
    """
    bounds: Dict[str, Interval] = {}

    def note(name: str, iv: Interval) -> None:
        cur = bounds.get(name)
        met = iv if cur is None else (cur.meet(iv) or cur)
        bounds[name] = met

    def visit(t: Term) -> None:
        if t.op == Op.BAND:
            for a in t.args:
                visit(a)
            return
        if t.op == Op.ULT:
            a, b = t.args
            if a.is_var() and b.is_const() and b.value > 0:
                note(a.name, Interval(0, b.value - 1, a.width))
            elif b.is_var() and a.is_const():
                mask = (1 << b.width) - 1
                if a.value < mask:
                    note(b.name, Interval(a.value + 1, mask, b.width))
        elif t.op == Op.ULE:
            a, b = t.args
            if a.is_var() and b.is_const():
                note(a.name, Interval(0, b.value, a.width))
            elif b.is_var() and a.is_const():
                note(b.name, Interval(a.value, (1 << b.width) - 1, b.width))
        elif t.op == Op.EQ:
            a, b = t.args
            if a.is_var() and b.is_const() and isinstance(a.sort, BVSort):
                note(a.name, Interval.point(b.value, a.width))
            elif b.is_var() and a.is_const() and isinstance(b.sort, BVSort):
                note(b.name, Interval.point(a.value, b.width))

    for t in assertions:
        visit(t)
    return bounds
