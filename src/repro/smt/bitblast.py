"""Bit-blasting: lowering bitvector terms to CNF circuits.

Every BV term maps to a list of CNF literals (LSB first); every Bool term
maps to a single literal. Standard circuits: ripple-carry adders,
shift-add multipliers, restoring dividers, barrel shifters, borrow-chain
comparators. Division follows SMT-LIB semantics (``x udiv 0 = all-ones``,
``x urem 0 = x``) so the solver agrees with the concrete evaluator in
:mod:`repro.smt.subst` bit for bit — a property the test suite checks with
hypothesis.
"""
from __future__ import annotations

from typing import Dict, List

from .cnf import CNF
from .sorts import BOOL, BVSort
from . import terms as T
from .terms import Op, Term

Bits = List[int]


class BitBlaster:
    """Lowers a set of boolean terms into a shared :class:`CNF`."""

    def __init__(self, cnf: CNF | None = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self._bv_map: Dict[int, Bits] = {}
        self._bool_map: Dict[int, int] = {}
        self.var_bits: Dict[str, Bits] = {}   # BV variable name -> bit literals
        self.bool_vars: Dict[str, int] = {}   # Bool variable name -> literal

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Constrain a Bool term to be true."""
        if term.sort is not BOOL:
            raise TypeError(f"can only assert Bool terms, got {term.sort}")
        lit = self.blast_bool(term)
        self.cnf.add([lit])

    def blast_bool(self, term: Term) -> int:
        self._lower([term])
        return self._bool_map[id(term)]

    def blast_bv(self, term: Term) -> Bits:
        self._lower([term])
        return self._bv_map[id(term)]

    def extract_value(self, name: str, model: Dict[int, bool]) -> int:
        """Read a BV variable's value out of a SAT model."""
        bits = self.var_bits.get(name)
        if bits is None:
            return 0
        value = 0
        for i, lit in enumerate(bits):
            if self._lit_value(lit, model):
                value |= 1 << i
        return value

    def extract_bool(self, name: str, model: Dict[int, bool]) -> bool:
        lit = self.bool_vars.get(name)
        if lit is None:
            return False
        return self._lit_value(lit, model)

    @staticmethod
    def _lit_value(lit: int, model: Dict[int, bool]) -> bool:
        val = model.get(abs(lit), False)
        return val if lit > 0 else not val

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------

    def _lower(self, roots: List[Term]) -> None:
        # explicit post-order that does NOT descend into already-lowered
        # subterms — repeated blasts against a long-lived instance (the
        # incremental session) cost O(new nodes), not O(whole DAG)
        stack = [(node, False) for node in roots]
        while stack:
            node, expanded = stack.pop()
            nid = id(node)
            mapped = self._bool_map if node.sort is BOOL else self._bv_map
            if nid in mapped:
                continue
            if not expanded:
                stack.append((node, True))
                for a in node.args:
                    stack.append((a, False))
            elif node.sort is BOOL:
                self._bool_map[nid] = self._lower_bool(node)
            else:
                self._bv_map[nid] = self._lower_bv(node)

    # -- bitvector nodes -------------------------------------------------

    def _lower_bv(self, node: Term) -> Bits:
        op = node.op
        width = node.width
        cnf = self.cnf
        if op == Op.CONST:
            return [self._const_bit((node.value >> i) & 1) for i in range(width)]
        if op == Op.VAR:
            bits = self.var_bits.get(node.name)
            if bits is None:
                bits = cnf.new_vars(width)
                self.var_bits[node.name] = bits
            return bits

        args = [self._bv_map[id(a)] for a in node.args
                if isinstance(a.sort, BVSort)]

        if op == Op.ADD:
            return self._adder(args[0], args[1])[0]
        if op == Op.SUB:
            return self._subtract(args[0], args[1])
        if op == Op.NEG:
            return self._subtract([self._const_bit(0)] * width, args[0])
        if op == Op.MUL:
            return self._multiplier(args[0], args[1])
        if op == Op.UDIV:
            q, _ = self._divider(args[0], args[1])
            return q
        if op == Op.UREM:
            _, r = self._divider(args[0], args[1])
            return r
        if op == Op.SDIV:
            return self._signed_divrem(args[0], args[1], want_quotient=True)
        if op == Op.SREM:
            return self._signed_divrem(args[0], args[1], want_quotient=False)
        if op == Op.AND:
            return [cnf.gate_and(a, b) for a, b in zip(args[0], args[1])]
        if op == Op.OR:
            return [cnf.gate_or(a, b) for a, b in zip(args[0], args[1])]
        if op == Op.XOR:
            return [cnf.gate_xor(a, b) for a, b in zip(args[0], args[1])]
        if op == Op.NOT:
            return [-b for b in args[0]]
        if op == Op.SHL:
            return self._barrel_shift(args[0], args[1], kind="shl")
        if op == Op.LSHR:
            return self._barrel_shift(args[0], args[1], kind="lshr")
        if op == Op.ASHR:
            return self._barrel_shift(args[0], args[1], kind="ashr")
        if op == Op.CONCAT:
            hi, lo = args[0], args[1]
            return lo + hi
        if op == Op.EXTRACT:
            h, l = node.payload  # type: ignore[misc]
            return args[0][l:h + 1]
        if op == Op.ZEXT:
            pad = width - len(args[0])
            return args[0] + [self._const_bit(0)] * pad
        if op == Op.SEXT:
            pad = width - len(args[0])
            return args[0] + [args[0][-1]] * pad
        if op == Op.ITE:
            cond = self._bool_map[id(node.args[0])]
            t_bits = self._bv_map[id(node.args[1])]
            e_bits = self._bv_map[id(node.args[2])]
            return [cnf.gate_mux(cond, t, e) for t, e in zip(t_bits, e_bits)]
        if op == Op.UF:
            # fresh unconstrained bits per application node (Ackermann-lite:
            # identical applications share a node via hash-consing)
            return cnf.new_vars(width)
        raise NotImplementedError(f"bitblast: unsupported BV op {op}")

    # -- boolean nodes ----------------------------------------------------

    def _lower_bool(self, node: Term) -> int:
        op = node.op
        cnf = self.cnf
        if op == Op.CONST:
            return cnf.const_true() if node.payload else cnf.const_false()
        if op == Op.VAR:
            lit = self.bool_vars.get(node.name)
            if lit is None:
                lit = cnf.new_var()
                self.bool_vars[node.name] = lit
            return lit
        if op == Op.EQ:
            a, b = node.args
            if a.sort is BOOL:
                la, lb = self._bool_map[id(a)], self._bool_map[id(b)]
                return -cnf.gate_xor(la, lb)
            return self._equal(self._bv_map[id(a)], self._bv_map[id(b)])
        if op in (Op.ULT, Op.ULE, Op.SLT, Op.SLE):
            a_bits = list(self._bv_map[id(node.args[0])])
            b_bits = list(self._bv_map[id(node.args[1])])
            if op in (Op.SLT, Op.SLE):
                # flip sign bits: signed compare == unsigned on biased values
                a_bits[-1] = -a_bits[-1]
                b_bits[-1] = -b_bits[-1]
            lt = self._less_than(a_bits, b_bits)
            if op in (Op.ULE, Op.SLE):
                eq = self._equal(a_bits, b_bits)
                return cnf.gate_or(lt, eq)
            return lt
        if op == Op.BNOT:
            return -self._bool_map[id(node.args[0])]
        if op == Op.BAND:
            return cnf.gate_and_many([self._bool_map[id(a)] for a in node.args])
        if op == Op.BOR:
            return cnf.gate_or_many([self._bool_map[id(a)] for a in node.args])
        if op == Op.BXOR:
            la = self._bool_map[id(node.args[0])]
            lb = self._bool_map[id(node.args[1])]
            return cnf.gate_xor(la, lb)
        raise NotImplementedError(f"bitblast: unsupported Bool op {op}")

    # ------------------------------------------------------------------
    # circuits
    # ------------------------------------------------------------------

    def _const_bit(self, bit: int) -> int:
        return self.cnf.const_true() if bit else self.cnf.const_false()

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        cnf = self.cnf
        s1 = cnf.gate_xor(a, b)
        total = cnf.gate_xor(s1, cin)
        c1 = cnf.gate_and(a, b)
        c2 = cnf.gate_and(s1, cin)
        cout = cnf.gate_or(c1, c2)
        return total, cout

    def _adder(self, a: Bits, b: Bits, cin: int | None = None) -> tuple[Bits, int]:
        carry = cin if cin is not None else self._const_bit(0)
        out: Bits = []
        for ai, bi in zip(a, b):
            s, carry = self._full_adder(ai, bi, carry)
            out.append(s)
        return out, carry

    def _subtract(self, a: Bits, b: Bits) -> Bits:
        out, _ = self._adder(a, [-x for x in b], cin=self._const_bit(1))
        return out

    def _multiplier(self, a: Bits, b: Bits) -> Bits:
        width = len(a)
        zero = self._const_bit(0)
        acc: Bits = [zero] * width
        for i in range(width):
            partial = ([zero] * i +
                       [self.cnf.gate_and(b[i], a[j]) for j in range(width - i)])
            acc, _ = self._adder(acc, partial)
        return acc

    def _less_than(self, a: Bits, b: Bits) -> int:
        """Unsigned a < b via MSB-down chain."""
        cnf = self.cnf
        lt = self._const_bit(0)
        eq_so_far = self._const_bit(1)
        for ai, bi in zip(reversed(a), reversed(b)):
            bit_lt = cnf.gate_and(-ai, bi)
            lt = cnf.gate_or(lt, cnf.gate_and(eq_so_far, bit_lt))
            eq_so_far = cnf.gate_and(eq_so_far, -cnf.gate_xor(ai, bi))
        return lt

    def _equal(self, a: Bits, b: Bits) -> int:
        cnf = self.cnf
        xnors = [-cnf.gate_xor(x, y) for x, y in zip(a, b)]
        return cnf.gate_and_many(xnors)

    def _barrel_shift(self, a: Bits, amount: Bits, kind: str) -> Bits:
        """Logarithmic shifter; shift >= width saturates to 0 / sign fill."""
        cnf = self.cnf
        width = len(a)
        fill = a[-1] if kind == "ashr" else self._const_bit(0)
        stages = max(1, (width - 1).bit_length())
        cur = list(a)
        for s in range(stages):
            sel = amount[s] if s < len(amount) else self._const_bit(0)
            step = 1 << s
            shifted: Bits = []
            for i in range(width):
                if kind == "shl":
                    src = cur[i - step] if i - step >= 0 else self._const_bit(0)
                else:
                    src = cur[i + step] if i + step < width else fill
                shifted.append(cnf.gate_mux(sel, src, cur[i]))
            cur = shifted
        # amount >= width (any high bit set beyond the stage range)?
        high = [amount[s] for s in range(stages, len(amount))]
        # also handle non-power-of-two widths: amount in [width, 2**stages)
        if (1 << stages) > width:
            low_part = amount[:stages] + [self._const_bit(0)]
            width_bits = [self._const_bit((width >> i) & 1)
                          for i in range(stages + 1)]
            ge_width = -self._less_than(low_part, width_bits)
            high.append(ge_width)
        if high:
            overflow = cnf.gate_or_many(high)
            cur = [cnf.gate_mux(overflow, fill, bit) for bit in cur]
        return cur

    def _divider(self, a: Bits, b: Bits) -> tuple[Bits, Bits]:
        """Restoring division. SMT-LIB: x/0 = all-ones, x%0 = x."""
        cnf = self.cnf
        width = len(a)
        zero = self._const_bit(0)
        # work in width+1 bits so (r << 1 | a_i) never wraps
        rem: Bits = [zero] * (width + 1)
        b_ext = list(b) + [zero]
        q: Bits = [zero] * width
        for i in range(width - 1, -1, -1):
            rem = [a[i]] + rem[:width]
            ge = -self._less_than(rem, b_ext)
            sub = self._subtract(rem, b_ext)
            rem = [cnf.gate_mux(ge, s, r) for s, r in zip(sub, rem)]
            q[i] = ge
        b_is_zero = self._equal(b, [zero] * width)
        ones = self._const_bit(1)
        q = [cnf.gate_mux(b_is_zero, ones, qi) for qi in q]
        r = [cnf.gate_mux(b_is_zero, ai, ri) for ai, ri in zip(a, rem[:width])]
        return q, r

    def _signed_divrem(self, a: Bits, b: Bits, want_quotient: bool) -> Bits:
        """Signed division by sign-abs-unsigned-divide-fix-signs.

        SMT-LIB semantics: truncating division, remainder follows dividend's
        sign; division by zero handled in the unsigned core then sign-fixed
        to match :func:`repro.smt.terms._c_sdiv` / ``_c_srem``.
        """
        cnf = self.cnf
        width = len(a)
        zero_bits = [self._const_bit(0)] * width
        sa, sb = a[-1], b[-1]
        abs_a = [cnf.gate_mux(sa, n, x)
                 for n, x in zip(self._subtract(zero_bits, a), a)]
        abs_b = [cnf.gate_mux(sb, n, x)
                 for n, x in zip(self._subtract(zero_bits, b), b)]
        q, r = self._divider(abs_a, abs_b)
        q_neg = cnf.gate_xor(sa, sb)
        q_fixed = [cnf.gate_mux(q_neg, n, x)
                   for n, x in zip(self._subtract(zero_bits, q), q)]
        r_fixed = [cnf.gate_mux(sa, n, x)
                   for n, x in zip(self._subtract(zero_bits, r), r)]
        b_is_zero = self._equal(b, zero_bits)
        if want_quotient:
            # SMT-LIB: sdiv by 0 is 1 if a < 0 else all-ones
            one = [self._const_bit(1)] + [self._const_bit(0)] * (width - 1)
            ones = [self._const_bit(1)] * width
            dz = [cnf.gate_mux(sa, o, m) for o, m in zip(one, ones)]
            return [cnf.gate_mux(b_is_zero, d, x) for d, x in zip(dz, q_fixed)]
        # srem by 0 is a
        return [cnf.gate_mux(b_is_zero, ai, x) for ai, x in zip(a, r_fixed)]
