"""Bit-blasting: lowering bitvector terms to CNF circuits.

Every BV term maps to a list of CNF literals (LSB first); every Bool term
maps to a single literal. Standard circuits: ripple-carry adders,
shift-add multipliers, restoring dividers, barrel shifters, borrow-chain
comparators. Division follows SMT-LIB semantics (``x udiv 0 = all-ones``,
``x urem 0 = x``) so the solver agrees with the concrete evaluator in
:mod:`repro.smt.subst` bit for bit — a property the test suite checks with
hypothesis.

Batched lowering: race-pair goals are massively isomorphic — the same
access-offset skeleton instantiated with different constants (loop
ordinals, element sizes, summary strides). A :class:`TemplateCache`
recognises repeated skeletons (same interned DAG shape modulo BV
constant leaves), lowers the constant-abstracted skeleton ONCE into a
template CNF, and instantiates later queries by literal substitution —
a tight translate loop plus one batched clause import instead of a full
gate-by-gate Tseitin walk.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .cnf import CNF, get_solver_stack
from .sorts import BOOL, BVSort
from . import terms as T
from .terms import Op, Term

Bits = List[int]

#: sentinel for "this scratch literal is compile-time true" in template
#: literal maps (its negation marks compile-time false). Large enough to
#: never collide with a real DIMACS literal.
_TRUE_SENT = 1 << 60


class _Template:
    """One compiled skeleton: a scratch CNF plus a variable binding plan.

    ``binding[v]`` (scratch var ``v`` in 1..nvars) says how to map that
    variable when instantiating into a target blaster:

    * ``("c", slot, bit)`` — bit *bit* of constant slot *slot*: resolved
      to compile-time true/false from the instance's constant value;
    * ``("v", name, bit)`` — bit *bit* of the BV leaf variable *name*:
      mapped to the target blaster's ``var_bits[name]``;
    * ``("b", name)`` — the Bool leaf variable *name*;
    * ``("t",)`` — the scratch CNF's const-true variable;
    * ``("i", k)`` — internal Tseitin gate *k*: a fresh target variable.
    """

    __slots__ = ("nvars", "clauses", "out", "binding", "var_widths",
                 "n_internal")

    def __init__(self, nvars: int, clauses: List[List[int]], out: int,
                 binding: List[Optional[tuple]],
                 var_widths: Dict[str, int], n_internal: int) -> None:
        self.nvars = nvars
        self.clauses = clauses
        self.out = out
        self.binding = binding
        self.var_widths = var_widths
        self.n_internal = n_internal


class _Entry:
    __slots__ = ("count", "template")

    def __init__(self) -> None:
        self.count = 0
        self.template: Optional[_Template] = None


class TemplateCache:
    """Skeleton-keyed cache of compiled lowering templates.

    Keyed purely on term structure (leaf variables by name, each
    distinct BV constant node abstracted to a positional slot), so one
    cache is safely shared across sessions and preambles: a template
    carries no target-CNF state. Terms containing uninterpreted
    functions are never templated — UF applications get fresh bits per
    *node*, and re-instantiating them per query would sever the
    Ackermann-style sharing that makes ``f(x) = f(x)`` valid.
    """

    def __init__(self, min_sightings: int = 2, min_nodes: int = 8,
                 max_nodes: int = 600, max_templates: int = 256) -> None:
        self.min_sightings = min_sightings
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.max_templates = max_templates
        # id(root) -> (root pin, key, const nodes) — the pin keeps the
        # term alive so the id key cannot be recycled under us
        self._skel: Dict[int, tuple] = {}
        self._entries: Dict[str, _Entry] = {}
        self.hits = 0
        self.builds = 0

    # -- skeleton ------------------------------------------------------

    def skeleton_of(self, root: Term) -> Tuple[Optional[str], Optional[list]]:
        """Structural key of *root* with BV constants slotted out.

        Returns ``(key, const_nodes)`` — const nodes in deterministic
        first-visit order, so slot *i* of any two terms with equal keys
        corresponds positionally — or ``(None, None)`` when the term is
        not templatable (contains UF, too small, too large, or has no
        constant to abstract).
        """
        cached = self._skel.get(id(root))
        if cached is not None:
            return cached[1], cached[2]
        index: Dict[int, int] = {}
        parts: List[str] = []
        consts: List[Term] = []
        bad = False
        count = 0
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            nid = id(node)
            if nid in index:
                continue
            if not expanded:
                stack.append((node, True))
                for a in node.args:
                    stack.append((a, False))
                continue
            if nid in index:
                continue
            index[nid] = count
            count += 1
            op = node.op
            if op == Op.UF or count > self.max_nodes:
                bad = True
                break
            if op == Op.CONST and node.sort is not BOOL:
                slot = len(consts)
                consts.append(node)
                parts.append(f"k{slot}.{node.width}")
            elif op == Op.VAR:
                parts.append(f"v.{node.name}.{node.sort}")
            else:
                child = ",".join(str(index[id(a)]) for a in node.args)
                parts.append(f"{op}.{node.payload}.{child}")
        if bad or count < self.min_nodes or not consts:
            entry = (root, None, None)
        else:
            entry = (root, "|".join(parts), consts)
        if len(self._skel) > 200_000:
            self._skel.clear()
        self._skel[id(root)] = entry
        return entry[1], entry[2]

    # -- template construction ----------------------------------------

    def lookup(self, root: Term) -> Tuple[Optional[_Template], Optional[list]]:
        """Return ``(template, const_nodes)`` if *root* should go through
        the template path; build the template on the Nth sighting of its
        skeleton."""
        key, consts = self.skeleton_of(root)
        if key is None:
            return None, None
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self.max_templates:
                # drop the older half (insertion order ~ first-seen order)
                for k in list(self._entries)[:self.max_templates // 2]:
                    del self._entries[k]
            entry = _Entry()
            self._entries[key] = entry
        entry.count += 1
        if entry.template is None:
            if entry.count < self.min_sightings:
                return None, None
            entry.template = self._build(root, consts)
            if entry.template is None:
                return None, None
            self.builds += 1
        self.hits += 1
        return entry.template, consts

    def _build(self, root: Term, consts: List[Term]) -> Optional[_Template]:
        from .subst import substitute
        repl = {c: T.mk_bv_var(f"~tmpl{i}", c.width)
                for i, c in enumerate(consts)}
        abstract = substitute(root, repl)
        if abstract.sort is not BOOL:
            return None
        scratch = CNF()
        blaster = BitBlaster(scratch)
        out = blaster.blast_bool(abstract)
        nvars = scratch.num_vars
        binding: List[Optional[tuple]] = [None] * (nvars + 1)
        var_widths: Dict[str, int] = {}
        for i in range(len(consts)):
            bits = blaster.var_bits.get(f"~tmpl{i}")
            if bits is None:
                continue  # the slot folded away in the abstract term
            for b_i, lit in enumerate(bits):
                binding[lit] = ("c", i, b_i)
        for name, bits in blaster.var_bits.items():
            if name.startswith("~tmpl"):
                continue
            var_widths[name] = len(bits)
            for b_i, lit in enumerate(bits):
                binding[lit] = ("v", name, b_i)
        for name, lit in blaster.bool_vars.items():
            binding[lit] = ("b", name)
        if scratch._true_lit is not None:
            binding[scratch._true_lit] = ("t",)
        n_internal = 0
        for v in range(1, nvars + 1):
            if binding[v] is None:
                binding[v] = ("i", n_internal)
                n_internal += 1
        return _Template(nvars, [list(c) for c in scratch.clauses], out,
                         binding, var_widths, n_internal)


class BitBlaster:
    """Lowers a set of boolean terms into a shared :class:`CNF`."""

    def __init__(self, cnf: CNF | None = None,
                 templates: "TemplateCache | None" = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self._bv_map: Dict[int, Bits] = {}
        self._bool_map: Dict[int, int] = {}
        self.var_bits: Dict[str, Bits] = {}   # BV variable name -> bit literals
        self.bool_vars: Dict[str, int] = {}   # Bool variable name -> literal
        self.templates = templates
        self.template_hits = 0
        #: positive-polarity (Plaisted–Greenbaum) literals, keyed by
        #: id(term). NEVER merged into ``_bool_map``: these literals
        #: only *imply* their term, so they are sound as assumptions or
        #: positive assertions but not under negation.
        self._pos_map: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Constrain a Bool term to be true.

        Uses the positive-polarity path: an asserted term is only ever
        used positively, so the one-directional encoding suffices (and
        emits a fraction of the clauses for (dis)equalities).
        """
        if term.sort is not BOOL:
            raise TypeError(f"can only assert Bool terms, got {term.sort}")
        lit = self.blast_assume(term)
        self.cnf.add([lit])

    def blast_assume(self, term: Term) -> int:
        """A literal L with ``L -> term`` — sound wherever *term* is
        only used positively: assumption conjuncts and assertions.

        ``sat(preamble AND L AND (L -> term)) == sat(preamble AND term)``
        in both directions, so verdicts are unchanged; but a positive
        (dis)equality needs only 2 clauses per bit instead of a full
        Tseitin equivalence circuit. Falls back to :meth:`blast_bool`
        (full equivalence) for shapes without a cheap positive form.
        """
        if get_solver_stack() == "legacy":
            return self.blast_bool(term)
        nid = id(term)
        lit = self._bool_map.get(nid)
        if lit is not None:
            return lit  # a full encoding exists: reuse it for free
        lit = self._pos_map.get(nid)
        if lit is not None:
            return lit
        op = term.op
        cnf = self.cnf
        out: Optional[int] = None
        if op == Op.EQ and isinstance(term.args[0].sort, BVSort):
            a = self.blast_bv(term.args[0])
            b = self.blast_bv(term.args[1])
            out = cnf.new_var()
            clauses = []
            for ai, bi in zip(a, b):
                clauses.append([-out, ai, -bi])
                clauses.append([-out, -ai, bi])
            cnf.add_batch(clauses)
        elif op == Op.BNOT and term.args[0].op == Op.EQ and \
                isinstance(term.args[0].args[0].sort, BVSort):
            a = self.blast_bv(term.args[0].args[0])
            b = self.blast_bv(term.args[0].args[1])
            out = cnf.new_var()
            diffs = []
            clauses = []
            for ai, bi in zip(a, b):
                d = cnf.new_var()
                clauses.append([-d, ai, bi])
                clauses.append([-d, -ai, -bi])
                diffs.append(d)
            clauses.append([-out] + diffs)
            cnf.add_batch(clauses)
        elif op == Op.BAND:
            lits = [self.blast_assume(a) for a in term.args]
            out = cnf.new_var()
            cnf.add_batch([[-out, l] for l in lits])
        elif op == Op.BOR:
            lits = [self.blast_assume(a) for a in term.args]
            out = cnf.new_var()
            cnf.add([-out] + lits)
        if out is None:
            return self.blast_bool(term)
        self._pos_map[nid] = out
        return out

    def blast_bool(self, term: Term) -> int:
        lit = self._bool_map.get(id(term))
        if lit is not None:
            return lit
        if self.templates is not None and term.sort is BOOL:
            lit = self._instantiate_template(term)
            if lit is not None:
                self._bool_map[id(term)] = lit
                self.template_hits += 1
                return lit
        self._lower([term])
        return self._bool_map[id(term)]

    def _instantiate_template(self, term: Term) -> Optional[int]:
        """Lower *term* by literal-substituting a cached template.

        Returns the output literal, or ``None`` to fall back to the
        gate-by-gate path (no template yet, or the instance degenerated).
        """
        template, consts = self.templates.lookup(term)
        if template is None:
            return None
        cnf = self.cnf
        binding = template.binding
        lit_map = [0] * (template.nvars + 1)
        # resolve leaf-variable blocks up front (allocating as needed)
        blocks: Dict[str, Bits] = {}
        for name, width in template.var_widths.items():
            bits = self.var_bits.get(name)
            if bits is None:
                bits = cnf.new_vars(width)
                self.var_bits[name] = bits
            blocks[name] = bits
        base = cnf.num_vars
        cnf.num_vars = base + template.n_internal
        true_lit = None
        for v in range(1, template.nvars + 1):
            b = binding[v]
            kind = b[0]
            if kind == "i":
                lit_map[v] = base + 1 + b[1]
            elif kind == "c":
                bit = (consts[b[1]].value >> b[2]) & 1
                lit_map[v] = _TRUE_SENT if bit else -_TRUE_SENT
            elif kind == "v":
                lit_map[v] = blocks[b[1]][b[2]]
            elif kind == "b":
                name = b[1]
                lit = self.bool_vars.get(name)
                if lit is None:
                    lit = cnf.new_var()
                    self.bool_vars[name] = lit
                lit_map[v] = lit
            else:  # ("t",)
                if true_lit is None:
                    true_lit = cnf.const_true()
                lit_map[v] = true_lit
        out_clauses: List[List[int]] = []
        for cl in template.clauses:
            nc: List[int] = []
            satisfied = False
            for lit in cl:
                m = lit_map[lit] if lit > 0 else -lit_map[-lit]
                if m == _TRUE_SENT:
                    satisfied = True
                    break
                if m == -_TRUE_SENT:
                    continue
                nc.append(m)
            if satisfied:
                continue
            if not nc:
                # the instance degenerated to a contradiction inside the
                # circuit — cannot happen for Tseitin output (every
                # clause mentions its gate var), but never guess: fall
                # back to the reference lowering
                return None
            out_clauses.append(nc)
        ol = template.out
        out = lit_map[ol] if ol > 0 else -lit_map[-ol]
        if out == _TRUE_SENT:
            out = self.cnf.const_true()
        elif out == -_TRUE_SENT:
            out = self.cnf.const_false()
        cnf.add_batch(out_clauses)
        return out

    def blast_bv(self, term: Term) -> Bits:
        self._lower([term])
        return self._bv_map[id(term)]

    def extract_value(self, name: str, model: Dict[int, bool]) -> int:
        """Read a BV variable's value out of a SAT model."""
        bits = self.var_bits.get(name)
        if bits is None:
            return 0
        value = 0
        for i, lit in enumerate(bits):
            if self._lit_value(lit, model):
                value |= 1 << i
        return value

    def extract_bool(self, name: str, model: Dict[int, bool]) -> bool:
        lit = self.bool_vars.get(name)
        if lit is None:
            return False
        return self._lit_value(lit, model)

    @staticmethod
    def _lit_value(lit: int, model: Dict[int, bool]) -> bool:
        val = model.get(abs(lit), False)
        return val if lit > 0 else not val

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------

    def _lower(self, roots: List[Term]) -> None:
        # explicit post-order that does NOT descend into already-lowered
        # subterms — repeated blasts against a long-lived instance (the
        # incremental session) cost O(new nodes), not O(whole DAG)
        stack = [(node, False) for node in roots]
        while stack:
            node, expanded = stack.pop()
            nid = id(node)
            mapped = self._bool_map if node.sort is BOOL else self._bv_map
            if nid in mapped:
                continue
            if not expanded:
                stack.append((node, True))
                for a in node.args:
                    stack.append((a, False))
            elif node.sort is BOOL:
                self._bool_map[nid] = self._lower_bool(node)
            else:
                self._bv_map[nid] = self._lower_bv(node)

    # -- bitvector nodes -------------------------------------------------

    def _lower_bv(self, node: Term) -> Bits:
        op = node.op
        width = node.width
        cnf = self.cnf
        if op == Op.CONST:
            return [self._const_bit((node.value >> i) & 1) for i in range(width)]
        if op == Op.VAR:
            bits = self.var_bits.get(node.name)
            if bits is None:
                bits = cnf.new_vars(width)
                self.var_bits[node.name] = bits
            return bits

        args = [self._bv_map[id(a)] for a in node.args
                if isinstance(a.sort, BVSort)]

        if op == Op.ADD:
            return self._adder(args[0], args[1])[0]
        if op == Op.SUB:
            return self._subtract(args[0], args[1])
        if op == Op.NEG:
            return self._subtract([self._const_bit(0)] * width, args[0])
        if op == Op.MUL:
            return self._multiplier(args[0], args[1])
        if op == Op.UDIV:
            q, _ = self._divider(args[0], args[1])
            return q
        if op == Op.UREM:
            _, r = self._divider(args[0], args[1])
            return r
        if op == Op.SDIV:
            return self._signed_divrem(args[0], args[1], want_quotient=True)
        if op == Op.SREM:
            return self._signed_divrem(args[0], args[1], want_quotient=False)
        if op == Op.AND:
            return [cnf.gate_and(a, b) for a, b in zip(args[0], args[1])]
        if op == Op.OR:
            return [cnf.gate_or(a, b) for a, b in zip(args[0], args[1])]
        if op == Op.XOR:
            return [cnf.gate_xor(a, b) for a, b in zip(args[0], args[1])]
        if op == Op.NOT:
            return [-b for b in args[0]]
        if op == Op.SHL:
            return self._barrel_shift(args[0], args[1], kind="shl")
        if op == Op.LSHR:
            return self._barrel_shift(args[0], args[1], kind="lshr")
        if op == Op.ASHR:
            return self._barrel_shift(args[0], args[1], kind="ashr")
        if op == Op.CONCAT:
            hi, lo = args[0], args[1]
            return lo + hi
        if op == Op.EXTRACT:
            h, l = node.payload  # type: ignore[misc]
            return args[0][l:h + 1]
        if op == Op.ZEXT:
            pad = width - len(args[0])
            return args[0] + [self._const_bit(0)] * pad
        if op == Op.SEXT:
            pad = width - len(args[0])
            return args[0] + [args[0][-1]] * pad
        if op == Op.ITE:
            cond = self._bool_map[id(node.args[0])]
            t_bits = self._bv_map[id(node.args[1])]
            e_bits = self._bv_map[id(node.args[2])]
            return [cnf.gate_mux(cond, t, e) for t, e in zip(t_bits, e_bits)]
        if op == Op.UF:
            # fresh unconstrained bits per application node (Ackermann-lite:
            # identical applications share a node via hash-consing)
            return cnf.new_vars(width)
        raise NotImplementedError(f"bitblast: unsupported BV op {op}")

    # -- boolean nodes ----------------------------------------------------

    def _lower_bool(self, node: Term) -> int:
        op = node.op
        cnf = self.cnf
        if op == Op.CONST:
            return cnf.const_true() if node.payload else cnf.const_false()
        if op == Op.VAR:
            lit = self.bool_vars.get(node.name)
            if lit is None:
                lit = cnf.new_var()
                self.bool_vars[node.name] = lit
            return lit
        if op == Op.EQ:
            a, b = node.args
            if a.sort is BOOL:
                la, lb = self._bool_map[id(a)], self._bool_map[id(b)]
                return -cnf.gate_xor(la, lb)
            return self._equal(self._bv_map[id(a)], self._bv_map[id(b)])
        if op in (Op.ULT, Op.ULE, Op.SLT, Op.SLE):
            a_bits = list(self._bv_map[id(node.args[0])])
            b_bits = list(self._bv_map[id(node.args[1])])
            if op in (Op.SLT, Op.SLE):
                # flip sign bits: signed compare == unsigned on biased values
                a_bits[-1] = -a_bits[-1]
                b_bits[-1] = -b_bits[-1]
            lt = self._less_than(a_bits, b_bits)
            if op in (Op.ULE, Op.SLE):
                eq = self._equal(a_bits, b_bits)
                return cnf.gate_or(lt, eq)
            return lt
        if op == Op.BNOT:
            return -self._bool_map[id(node.args[0])]
        if op == Op.BAND:
            return cnf.gate_and_many([self._bool_map[id(a)] for a in node.args])
        if op == Op.BOR:
            return cnf.gate_or_many([self._bool_map[id(a)] for a in node.args])
        if op == Op.BXOR:
            la = self._bool_map[id(node.args[0])]
            lb = self._bool_map[id(node.args[1])]
            return cnf.gate_xor(la, lb)
        raise NotImplementedError(f"bitblast: unsupported Bool op {op}")

    # ------------------------------------------------------------------
    # circuits
    # ------------------------------------------------------------------

    def _const_bit(self, bit: int) -> int:
        return self.cnf.const_true() if bit else self.cnf.const_false()

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        cnf = self.cnf
        s1 = cnf.gate_xor(a, b)
        total = cnf.gate_xor(s1, cin)
        c1 = cnf.gate_and(a, b)
        c2 = cnf.gate_and(s1, cin)
        cout = cnf.gate_or(c1, c2)
        return total, cout

    def _adder(self, a: Bits, b: Bits, cin: int | None = None) -> tuple[Bits, int]:
        carry = cin if cin is not None else self._const_bit(0)
        out: Bits = []
        for ai, bi in zip(a, b):
            s, carry = self._full_adder(ai, bi, carry)
            out.append(s)
        return out, carry

    def _subtract(self, a: Bits, b: Bits) -> Bits:
        out, _ = self._adder(a, [-x for x in b], cin=self._const_bit(1))
        return out

    def _multiplier(self, a: Bits, b: Bits) -> Bits:
        width = len(a)
        zero = self._const_bit(0)
        acc: Bits = [zero] * width
        for i in range(width):
            partial = ([zero] * i +
                       [self.cnf.gate_and(b[i], a[j]) for j in range(width - i)])
            acc, _ = self._adder(acc, partial)
        return acc

    def _less_than(self, a: Bits, b: Bits) -> int:
        """Unsigned a < b via MSB-down chain."""
        cnf = self.cnf
        lt = self._const_bit(0)
        eq_so_far = self._const_bit(1)
        for ai, bi in zip(reversed(a), reversed(b)):
            bit_lt = cnf.gate_and(-ai, bi)
            lt = cnf.gate_or(lt, cnf.gate_and(eq_so_far, bit_lt))
            eq_so_far = cnf.gate_and(eq_so_far, -cnf.gate_xor(ai, bi))
        return lt

    def _equal(self, a: Bits, b: Bits) -> int:
        cnf = self.cnf
        xnors = [-cnf.gate_xor(x, y) for x, y in zip(a, b)]
        return cnf.gate_and_many(xnors)

    def _barrel_shift(self, a: Bits, amount: Bits, kind: str) -> Bits:
        """Logarithmic shifter; shift >= width saturates to 0 / sign fill."""
        cnf = self.cnf
        width = len(a)
        fill = a[-1] if kind == "ashr" else self._const_bit(0)
        stages = max(1, (width - 1).bit_length())
        cur = list(a)
        for s in range(stages):
            sel = amount[s] if s < len(amount) else self._const_bit(0)
            step = 1 << s
            shifted: Bits = []
            for i in range(width):
                if kind == "shl":
                    src = cur[i - step] if i - step >= 0 else self._const_bit(0)
                else:
                    src = cur[i + step] if i + step < width else fill
                shifted.append(cnf.gate_mux(sel, src, cur[i]))
            cur = shifted
        # amount >= width (any high bit set beyond the stage range)?
        high = [amount[s] for s in range(stages, len(amount))]
        # also handle non-power-of-two widths: amount in [width, 2**stages)
        if (1 << stages) > width:
            low_part = amount[:stages] + [self._const_bit(0)]
            width_bits = [self._const_bit((width >> i) & 1)
                          for i in range(stages + 1)]
            ge_width = -self._less_than(low_part, width_bits)
            high.append(ge_width)
        if high:
            overflow = cnf.gate_or_many(high)
            cur = [cnf.gate_mux(overflow, fill, bit) for bit in cur]
        return cur

    def _divider(self, a: Bits, b: Bits) -> tuple[Bits, Bits]:
        """Restoring division. SMT-LIB: x/0 = all-ones, x%0 = x."""
        cnf = self.cnf
        width = len(a)
        zero = self._const_bit(0)
        # work in width+1 bits so (r << 1 | a_i) never wraps
        rem: Bits = [zero] * (width + 1)
        b_ext = list(b) + [zero]
        q: Bits = [zero] * width
        for i in range(width - 1, -1, -1):
            rem = [a[i]] + rem[:width]
            ge = -self._less_than(rem, b_ext)
            sub = self._subtract(rem, b_ext)
            rem = [cnf.gate_mux(ge, s, r) for s, r in zip(sub, rem)]
            q[i] = ge
        b_is_zero = self._equal(b, [zero] * width)
        ones = self._const_bit(1)
        q = [cnf.gate_mux(b_is_zero, ones, qi) for qi in q]
        r = [cnf.gate_mux(b_is_zero, ai, ri) for ai, ri in zip(a, rem[:width])]
        return q, r

    def _signed_divrem(self, a: Bits, b: Bits, want_quotient: bool) -> Bits:
        """Signed division by sign-abs-unsigned-divide-fix-signs.

        SMT-LIB semantics: truncating division, remainder follows dividend's
        sign; division by zero handled in the unsigned core then sign-fixed
        to match :func:`repro.smt.terms._c_sdiv` / ``_c_srem``.
        """
        cnf = self.cnf
        width = len(a)
        zero_bits = [self._const_bit(0)] * width
        sa, sb = a[-1], b[-1]
        abs_a = [cnf.gate_mux(sa, n, x)
                 for n, x in zip(self._subtract(zero_bits, a), a)]
        abs_b = [cnf.gate_mux(sb, n, x)
                 for n, x in zip(self._subtract(zero_bits, b), b)]
        q, r = self._divider(abs_a, abs_b)
        q_neg = cnf.gate_xor(sa, sb)
        q_fixed = [cnf.gate_mux(q_neg, n, x)
                   for n, x in zip(self._subtract(zero_bits, q), q)]
        r_fixed = [cnf.gate_mux(sa, n, x)
                   for n, x in zip(self._subtract(zero_bits, r), r)]
        b_is_zero = self._equal(b, zero_bits)
        if want_quotient:
            # SMT-LIB: sdiv by 0 is 1 if a < 0 else all-ones
            one = [self._const_bit(1)] + [self._const_bit(0)] * (width - 1)
            ones = [self._const_bit(1)] * width
            dz = [cnf.gate_mux(sa, o, m) for o, m in zip(one, ones)]
            return [cnf.gate_mux(b_is_zero, d, x) for d, x in zip(dz, q_fixed)]
        # srem by 0 is a
        return [cnf.gate_mux(b_is_zero, ai, x) for ai, x in zip(a, r_fixed)]
