"""Affine decomposition of address terms, and injectivity reasoning.

GPU addresses are overwhelmingly affine in the thread coordinates:
``tid.x + bid.x * blockDim.x`` scaled by an element size. For two
parametric threads, the race query asks whether

    f(t1) = f(t2)   with   t1 != t2  (componentwise, within bounds)

can hold. When ``f`` is affine with a *mixed-radix* coefficient pattern
(each coefficient at least covers the span of the smaller-coefficient
components — e.g. 1·tid + 512·bid with tid < 512), ``f`` is injective on
the bounded box and the query is UNSAT without touching the SAT core.
This mirrors the array-index simplifications production concolic tools
perform and is the single biggest win for disjoint-per-thread kernels
(every Table I entry).

Soundness: the fast path only ever answers "definitely UNSAT"; anything
it cannot prove falls through to the solver.
"""
from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from .interval import Interval
from .sorts import BVSort
from .terms import Op, Term

#: affine form: (coefficients by variable name, constant), all mod 2^width
AffineForm = Tuple[Dict[str, int], int]


def _merge(left: Optional[AffineForm], right: Optional[AffineForm],
           modulus: int) -> Optional[AffineForm]:
    if left is None or right is None:
        return None
    coefs = dict(left[0])
    for name, coef in right[0].items():
        coefs[name] = (coefs.get(name, 0) + coef) % modulus
    return coefs, (left[1] + right[1]) % modulus


def affine_decompose(term: Term, max_nodes: int = 200
                     ) -> Optional[AffineForm]:
    """Write ``term`` as ``sum(coef_v * v) + c`` over its variables.

    Handles ADD/SUB/NEG, MUL and SHL by constants, and ZEXT of an affine
    subterm (sound because the widened value equals the original for
    unsigned semantics). Returns None for anything else (ITE, AND, UF,
    loads, ...). All arithmetic is modulo ``2**term.width``.
    """
    if not isinstance(term.sort, BVSort):
        return None
    modulus = 1 << term.width

    def go(t: Term, scale: int, budget: list) -> Optional[AffineForm]:
        budget[0] -= 1
        if budget[0] < 0:
            return None
        if t.op == Op.CONST:
            return ({}, (t.value * scale) % modulus)
        if t.op == Op.VAR:
            return ({t.name: scale % modulus}, 0)
        if t.op == Op.ADD:
            left = go(t.args[0], scale, budget)
            right = go(t.args[1], scale, budget)
            return _merge(left, right, modulus)
        if t.op == Op.SUB:
            left = go(t.args[0], scale, budget)
            right = go(t.args[1], (-scale) % modulus, budget)
            return _merge(left, right, modulus)
        if t.op == Op.NEG:
            return go(t.args[0], (-scale) % modulus, budget)
        if t.op == Op.MUL:
            a, b = t.args
            if b.is_const():
                return go(a, (scale * b.value) % modulus, budget)
            if a.is_const():
                return go(b, (scale * a.value) % modulus, budget)
            return None
        if t.op == Op.SHL:
            a, b = t.args
            if b.is_const() and b.value < t.width:
                return go(a, (scale << b.value) % modulus, budget)
            return None
        if t.op == Op.ZEXT:
            # the widened value equals the narrow one; coefficients carry
            return go(t.args[0], scale, budget)
        return None

    result = go(term, 1, [max_nodes])
    if result is None:
        return None
    coefs, const = result
    coefs = {v: c for v, c in coefs.items() if c != 0}
    return coefs, const % modulus


def injective_on_box(coefs: Dict[str, int],
                     bounds: Dict[str, Interval],
                     width: int) -> bool:
    """Is ``v -> sum(coef_v * v)`` injective for v in the bounded box?

    Sufficient mixed-radix criterion (no wrap-around): order components
    by coefficient; each coefficient must exceed the maximum total span
    of all smaller components, and the overall maximum must not wrap.
    """
    if not coefs:
        return False
    items = []
    for name, coef in coefs.items():
        bound = bounds.get(name)
        if bound is None or bound.lo != 0:
            return False
        items.append((coef, bound.hi))
    items.sort()
    total_span = 0
    for coef, hi in items:
        if coef <= total_span:
            return False
        total_span += coef * hi
    return total_span < (1 << width)


def stride_separated(form1: AffineForm, form2: AffineForm,
                     width: int) -> bool:
    """Can ``f1(t1) = f2(t2)`` *never* hold, by residue separation?

    Every variable contribution on either side is a multiple of
    ``g = gcd(all coefficients, 2**width)``, so ``f1(t1) - f2(t2)`` is
    congruent to ``c1 - c2`` modulo ``g`` for *any* valuations of the
    two (independent) variable sets. A nonzero residue therefore rules
    out address equality outright — no bounds needed, and exact under
    modular arithmetic because ``g`` divides the modulus.

    Classic instance: two stride-4 accesses with bases 0 and 2 can
    never touch the same word. Only ever answers "definitely disjoint";
    False means "cannot tell".
    """
    coefs1, c1 = form1
    coefs2, c2 = form2
    g = 1 << width
    for coef in coefs1.values():
        g = math.gcd(g, coef)
    for coef in coefs2.values():
        g = math.gcd(g, coef)
    if g <= 1:
        return False
    return (c1 - c2) % g != 0


def equality_forces_equal_components(
        form1: AffineForm, form2: AffineForm,
        bounds: Dict[str, Interval],
        pairing: Dict[str, str],
        width: int) -> bool:
    """Does ``f1(t1) = f2(t2)`` force every paired coordinate equal?

    ``pairing`` maps each thread-1 variable to its thread-2 counterpart
    (``tid.x!1 → tid.x!2``). True is returned only when both sides are
    the *same* affine map over paired variables (equal coefficients and
    constants) and that map is injective on the bounded box — then equal
    addresses force the mapped coordinates equal. The *caller* must
    check that the forced set covers every coordinate that could make
    the two threads distinct before concluding UNSAT.
    """
    coefs1, const1 = form1
    coefs2, const2 = form2
    if const1 != const2:
        return False
    if not set(coefs1.keys()) <= set(pairing.keys()):
        return False  # a non-thread variable participates: no fast path
    if {pairing[v] for v in coefs1} != set(coefs2.keys()):
        return False
    for v1, coef in coefs1.items():
        if coefs2.get(pairing[v1]) != coef:
            return False
    shared_bounds = {}
    for v1 in coefs1:
        b1 = bounds.get(v1)
        b2 = bounds.get(pairing[v1])
        if b1 is None or b2 is None or b1 != b2:
            return False
        shared_bounds[v1] = b1
    return injective_on_box(coefs1, shared_bounds, width)
