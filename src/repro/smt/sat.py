"""CDCL SAT solver on a flat clause arena.

A from-scratch conflict-driven clause-learning solver with the standard
modern ingredients: two-watched-literal propagation with blocker
literals, 1UIP conflict analysis with learned-clause minimisation,
VSIDS-style activity decay, phase saving, and Luby restarts.

The hot-path data layout is flat integers rather than Python objects:

* every clause lives in one shared ``array('i')`` arena as
  ``[size, lit0, lit1, ...]`` and is referred to by its index (a
  *cref*), so there is no per-clause list object and no pointer chase;
* literals are encoded as ``2*var + sign`` so a literal's value is one
  list index (``lit_val[el]``) — no ``abs()`` in the inner loop;
* watcher lists are flat ``[cref, blocker, cref, blocker, ...]`` lists
  indexed by encoded literal; a clause whose blocker literal is already
  true is skipped without touching the arena at all.

The solver is *incremental*: clauses can be appended between ``solve``
calls (:meth:`add_clause` for one, :meth:`add_clauses` for a batch that
backtracks to the root only once), queries can be posed under
assumption literals, and learned clauses are retained across queries —
they are derived by resolution from real clauses only, so they stay
valid whatever the assumptions. This is what lets the
:class:`~repro.smt.session.SolverSession` blast a race-check preamble
once and answer thousands of per-pair queries against the same
instance.

The solver accepts a conflict budget so callers can bound worst-case
work and receive ``"unknown"`` instead of hanging. The budget is
per-``solve``-call (a delta, not a lifetime total), so a long-lived
incremental instance gives every query the same allowance.

The previous list-of-lists implementation survives verbatim in
:mod:`repro.smt.sat_legacy` as the differential oracle; select it with
``REPRO_SAT_IMPL=legacy`` or :func:`set_solver_impl`.
"""
from __future__ import annotations

import heapq
import os
import time
from array import array
from typing import Dict, Iterable, List, Optional, Sequence

from .cnf import CNF


class SatResult:
    """Result tags for the SAT core."""
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """Solve a growable CNF instance.

    Build from a :class:`CNF`, call :meth:`solve` (optionally under
    assumptions), read :attr:`model`. Between calls, append clauses
    with :meth:`add_clause` / :meth:`add_clauses`; ``cnf.attach(solver)``
    forwards later ``cnf.add`` calls automatically.

    :attr:`clauses` and :attr:`learnts` hold arena indices (crefs), not
    literal lists — use :meth:`clause_lits` to decode one.
    """

    def __init__(self, cnf: CNF, conflict_budget: Optional[int] = None,
                 deadline: Optional[float] = None) -> None:
        self.nvars = 0
        self.conflict_budget = conflict_budget
        self.deadline = deadline  # time.monotonic() timestamp

        # indexed by encoded literal 2*var + (1 if negative)
        self.lit_val: List[int] = [0, 0]   # +1 true, -1 false, 0 unassigned
        self.watches: List[List[int]] = [[], []]  # flat [cref, blocker, ...]
        # indexed by var
        self.levels: List[int] = [-1]
        self.reasons: List[int] = [-1]     # cref, or -1 (decision/unit)
        self.activity: List[float] = [0.0]
        self.saved_lit: List[int] = [1]    # preferred decision literal (encoded)

        self.arena = array("i")
        self.trail: List[int] = []         # encoded literals
        self.trail_lim: List[int] = []
        self.qhead = 0

        # decision order: a lazy max-heap of (-activity, var). Stale
        # entries (var already assigned) are skipped at pop time; every
        # unassigned variable always has at least one fresh entry.
        self._heap: List[tuple] = []

        self.clauses: List[int] = []       # crefs of problem clauses
        self.learnts: List[int] = []       # crefs of learned clauses
        self.ok = True
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.backtracks = 0
        self.model: Dict[int, bool] = {}

        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            self._add_root(clause)
            if not self.ok:
                break

    # ------------------------------------------------------------------
    # clause management
    # ------------------------------------------------------------------

    def ensure_vars(self, n: int) -> None:
        """Grow the variable arrays to cover variables 1..n."""
        if n <= self.nvars:
            return
        grow = n - self.nvars
        self.lit_val.extend([0] * (2 * grow))
        self.levels.extend([-1] * grow)
        self.reasons.extend([-1] * grow)
        self.activity.extend([0.0] * grow)
        heap = self._heap
        for var in range(self.nvars + 1, n + 1):
            self.watches.append([])
            self.watches.append([])
            self.saved_lit.append((var << 1) | 1)  # default polarity: false
            heapq.heappush(heap, (0.0, var))
        self.nvars = n

    def add_clause(self, lits: Sequence[int]) -> None:
        """Append one clause to the live instance (incremental API).

        Backtracks to the root level first so the new clause's watches
        are consistent; literals already decided at level 0 are
        simplified away.
        """
        if not self.ok:
            return
        if self.trail_lim:
            self._backtrack(0)
        self._add_root(lits)

    def add_clauses(self, clause_list: Iterable[Sequence[int]]) -> None:
        """Batched import: one backtrack, then append every clause.

        Equivalent to ``add_clause`` per element but pays the
        backtrack-to-root cost once for the whole batch — the fast path
        for learned-clause re-import and template instantiation.
        """
        if not self.ok:
            return
        if self.trail_lim:
            self._backtrack(0)
        add = self._add_root
        for lits in clause_list:
            add(lits)
            if not self.ok:
                return

    def _add_root(self, lits: Sequence[int]) -> None:
        """Append one clause; the solver must be at the root level."""
        lit_val = self.lit_val
        nv = self.nvars
        enc: List[int] = []
        for lit in lits:
            if lit > 0:
                v = lit
                el = lit << 1
            else:
                v = -lit
                el = (v << 1) | 1
            if v > nv:
                self.ensure_vars(v)
                lit_val = self.lit_val
                nv = self.nvars
            val = lit_val[el]
            if val == 1:
                return  # root-satisfied: drop the clause
            if val == -1:
                continue  # root-falsified literal: drop the literal
            # dedupe / tautology check (clauses are tiny: linear scan)
            if el in enc:
                continue
            if el ^ 1 in enc:
                return  # tautology: always satisfied
            enc.append(el)
        if not enc:
            self.ok = False
            return
        if len(enc) == 1:
            el = enc[0]
            lit_val[el] = 1
            lit_val[el ^ 1] = -1
            v = el >> 1
            self.levels[v] = 0
            self.reasons[v] = -1
            self.trail.append(el)
            return
        cref = self._alloc(enc)
        self.clauses.append(cref)

    def _alloc(self, enc: List[int]) -> int:
        """Store an encoded clause in the arena and watch lits 0 and 1."""
        arena = self.arena
        cref = len(arena)
        arena.append(len(enc))
        arena.extend(enc)
        w0 = self.watches[enc[0]]
        w0.append(cref)
        w0.append(enc[1])
        w1 = self.watches[enc[1]]
        w1.append(cref)
        w1.append(enc[0])
        return cref

    def clause_lits(self, cref: int) -> List[int]:
        """Decode one arena clause back to external (signed) literals."""
        arena = self.arena
        size = arena[cref]
        out = []
        for i in range(cref + 1, cref + 1 + size):
            el = arena[i]
            v = el >> 1
            out.append(-v if el & 1 else v)
        return out

    # ------------------------------------------------------------------
    # assignment / propagation
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> int:
        """External-literal value (kept for tests and slow paths)."""
        el = (lit << 1) if lit > 0 else (((-lit) << 1) | 1)
        return self.lit_val[el]

    def _enqueue_root(self, el: int) -> bool:
        """Assign an encoded literal at the current level, no reason."""
        val = self.lit_val[el]
        if val == 1:
            return True
        if val == -1:
            return False
        self.lit_val[el] = 1
        self.lit_val[el ^ 1] = -1
        v = el >> 1
        self.levels[v] = len(self.trail_lim)
        self.reasons[v] = -1
        self.trail.append(el)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting cref or -1."""
        trail = self.trail
        lit_val = self.lit_val
        arena = self.arena
        watches = self.watches
        levels = self.levels
        reasons = self.reasons
        lvl = len(self.trail_lim)
        qhead = self.qhead
        props = 0
        conflict = -1
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            props += 1
            neg = p ^ 1  # the literal falsified by this assignment
            ws = watches[neg]
            if not ws:
                continue
            i = j = 0
            n = len(ws)
            while i < n:
                cref = ws[i]
                blocker = ws[i + 1]
                i += 2
                if lit_val[blocker] == 1:
                    ws[j] = cref
                    ws[j + 1] = blocker
                    j += 2
                    continue
                base = cref + 1
                l0 = arena[base]
                if l0 == neg:
                    first = arena[base + 1]
                    arena[base] = first
                    arena[base + 1] = neg
                else:
                    first = l0
                fv = lit_val[first]
                if fv == 1:
                    ws[j] = cref
                    ws[j + 1] = first
                    j += 2
                    continue
                # search a replacement watch among the tail literals
                end = base + arena[cref]
                found = False
                for k in range(base + 2, end):
                    lk = arena[k]
                    if lit_val[lk] != -1:
                        arena[base + 1] = lk
                        arena[k] = neg
                        wk = watches[lk]
                        wk.append(cref)
                        wk.append(first)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                ws[j] = cref
                ws[j + 1] = first
                j += 2
                if fv == -1:
                    # conflict: keep remaining watchers
                    while i < n:
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        j += 2
                        i += 2
                    conflict = cref
                    break
                # enqueue the implied literal with this clause as reason
                lit_val[first] = 1
                lit_val[first ^ 1] = -1
                v = first >> 1
                levels[v] = lvl
                reasons[v] = cref
                trail.append(first)
            del ws[j:]
            if conflict >= 0:
                break
        self.qhead = qhead
        self.propagations += props
        return conflict

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for i in range(1, self.nvars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100
            # every heap key is now wrong: rebuild for the unassigned
            # vars (assigned ones re-enter on backtrack)
            self._heap = [(-self.activity[v], v)
                          for v in range(1, self.nvars + 1)
                          if self.lit_val[v << 1] == 0]
            heapq.heapify(self._heap)

    def _analyze(self, conflict: int) -> tuple[List[int], int]:
        """Derive the 1UIP clause (encoded literals) from a conflict."""
        arena = self.arena
        levels = self.levels
        reasons = self.reasons
        trail = self.trail
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = bytearray(self.nvars + 1)
        counter = 0
        lit = -1  # sentinel: no literal is skipped on the first pass
        reason = conflict
        index = len(trail) - 1
        cur_level = len(self.trail_lim)

        while True:
            for k in range(reason + 1, reason + 1 + arena[reason]):
                q = arena[k]
                if q == lit:
                    continue
                var = q >> 1
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if levels[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next literal from trail
            while not seen[trail[index] >> 1]:
                index -= 1
            lit = trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learnt[0] = lit ^ 1
                break
            reason = reasons[var]

        # clause minimisation: drop literals implied by the rest
        marked = set(q >> 1 for q in learnt)
        minimized = [learnt[0]]
        for q in learnt[1:]:
            r = reasons[q >> 1]
            if r < 0:
                minimized.append(q)
                continue
            redundant = True
            for k in range(r + 1, r + 1 + arena[r]):
                p = arena[k]
                if p == q ^ 1:
                    continue
                if (p >> 1) not in marked and levels[p >> 1] != 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(q)
        learnt = minimized

        # backtrack level = max level among learnt[1:]; put one literal
        # of that level in the second watch position
        if len(learnt) == 1:
            back = 0
        else:
            mi = 1
            back = levels[learnt[1] >> 1]
            for idx in range(2, len(learnt)):
                l = levels[learnt[idx] >> 1]
                if l > back:
                    back = l
                    mi = idx
            learnt[1], learnt[mi] = learnt[mi], learnt[1]
        return learnt, back

    def _backtrack(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        self.backtracks += 1
        limit = self.trail_lim[level]
        heap = self._heap
        lit_val = self.lit_val
        levels = self.levels
        reasons = self.reasons
        saved_lit = self.saved_lit
        activity = self.activity
        trail = self.trail
        for idx in range(len(trail) - 1, limit - 1, -1):
            el = trail[idx]
            var = el >> 1
            saved_lit[var] = el
            lit_val[el] = 0
            lit_val[el ^ 1] = 0
            reasons[var] = -1
            levels[var] = -1
            heapq.heappush(heap, (-activity[var], var))
        del trail[limit:]
        del self.trail_lim[level:]
        self.qhead = limit

    # ------------------------------------------------------------------
    # decision
    # ------------------------------------------------------------------

    def _decide(self) -> int:
        # pop until a live entry surfaces. Keys are (-activity, var), so
        # this picks the highest-activity unassigned variable, lowest
        # index on ties. Returns the saved-phase encoded literal, or -1
        # when every variable is assigned.
        heap = self._heap
        lit_val = self.lit_val
        while heap:
            _, var = heapq.heappop(heap)
            if lit_val[var << 1] == 0:
                return self.saved_lit[var]
        return -1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> str:
        if self.trail_lim:
            self._backtrack(0)
        self.model = {}
        if not self.ok:
            return SatResult.UNSAT
        if self._propagate() >= 0:
            self.ok = False
            return SatResult.UNSAT

        # assumptions as level-1.. decisions
        lit_val = self.lit_val
        for lit in assumptions:
            el = (lit << 1) if lit > 0 else (((-lit) << 1) | 1)
            if el >> 1 > self.nvars:
                self.ensure_vars(el >> 1)
                lit_val = self.lit_val
            val = lit_val[el]
            if val == 1:
                continue
            if val == -1:
                return SatResult.UNSAT
            self.trail_lim.append(len(self.trail))
            self._enqueue_root(el)
            if self._propagate() >= 0:
                return SatResult.UNSAT
        root_level = len(self.trail_lim)

        # the conflict budget is per call: a fresh allowance for every
        # query on a long-lived incremental instance
        budget_limit = None if self.conflict_budget is None \
            else self.conflicts + self.conflict_budget

        restart_idx = 1
        restart_budget = 100 * _luby(restart_idx)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.conflicts += 1
                conflicts_since_restart += 1
                if budget_limit is not None and self.conflicts > budget_limit:
                    return SatResult.UNKNOWN
                if self.deadline is not None and (self.conflicts & 0x3F) == 0 \
                        and time.monotonic() > self.deadline:
                    return SatResult.UNKNOWN
                if len(self.trail_lim) == root_level:
                    if root_level == 0:
                        self.ok = False
                    return SatResult.UNSAT
                learnt, back = self._analyze(conflict)
                self._backtrack(max(back, root_level))
                if len(learnt) == 1:
                    if not self._enqueue_root(learnt[0]):
                        if len(self.trail_lim) == 0:
                            self.ok = False
                        return SatResult.UNSAT
                else:
                    cref = self._alloc(learnt)
                    self.learnts.append(cref)
                    el = learnt[0]
                    self.lit_val[el] = 1
                    self.lit_val[el ^ 1] = -1
                    v = el >> 1
                    self.levels[v] = len(self.trail_lim)
                    self.reasons[v] = cref
                    self.trail.append(el)
                self.var_inc /= self.var_decay
            else:
                if conflicts_since_restart >= restart_budget and \
                        len(self.trail_lim) > root_level:
                    restart_idx += 1
                    restart_budget = 100 * _luby(restart_idx)
                    conflicts_since_restart = 0
                    self.restarts += 1
                    self._backtrack(root_level)
                    continue
                el = self._decide()
                if el < 0:
                    lit_val = self.lit_val
                    self.model = {v: lit_val[v << 1] == 1
                                  for v in range(1, self.nvars + 1)}
                    return SatResult.SAT
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue_root(el)


# ----------------------------------------------------------------------
# implementation selection (arena vs. legacy differential oracle)
# ----------------------------------------------------------------------

_IMPL = os.environ.get("REPRO_SAT_IMPL", "arena")


def set_solver_impl(name: str) -> str:
    """Select the SAT core: ``"arena"`` (default) or ``"legacy"``.

    Returns the previous selection so callers can restore it. The
    legacy solver is the pre-arena reference implementation; benches
    use this switch for same-process relative speedup gates.
    """
    global _IMPL
    if name not in ("arena", "legacy"):
        raise ValueError(f"unknown SAT implementation: {name!r}")
    prev = _IMPL
    _IMPL = name
    return prev


def get_solver_impl() -> str:
    return _IMPL


def make_solver(cnf: CNF, conflict_budget: Optional[int] = None,
                deadline: Optional[float] = None):
    """Construct a solver honouring the active implementation switch.

    Both the fine-grained ``set_solver_impl`` knob and the stack-wide
    ``repro.smt.cnf.set_solver_stack("legacy")`` select the reference
    core.
    """
    from .cnf import get_solver_stack
    if _IMPL == "legacy" or get_solver_stack() == "legacy":
        from .sat_legacy import LegacySatSolver
        return LegacySatSolver(cnf, conflict_budget=conflict_budget,
                               deadline=deadline)
    return SatSolver(cnf, conflict_budget=conflict_budget, deadline=deadline)


def solve_cnf(cnf: CNF, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None) -> tuple[str, Dict[int, bool]]:
    """Convenience wrapper: returns (result, model)."""
    solver = make_solver(cnf, conflict_budget=conflict_budget)
    result = solver.solve(assumptions)
    return result, solver.model
