"""Hash-consed bitvector/boolean term DAG.

Every term is interned: structurally identical terms are the *same* Python
object, so equality is identity and common subexpressions are shared across
the whole analysis (the symbolic executor builds heavily shared DAGs, e.g.
the same ``tid`` subterm appears in thousands of access conditions).

Smart constructors perform constant folding and cheap local normalisation
at build time; the deeper rewriting lives in :mod:`repro.smt.simplify`.
"""
from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from .sorts import BOOL, BVSort, Sort, bv_sort


class Op:
    """Operator tags. Grouped by arity/theory for the bitblaster."""

    # nullary
    CONST = "const"          # payload: int (unsigned) for BV, bool for Bool
    VAR = "var"              # payload: name

    # bitvector arithmetic
    ADD = "bvadd"
    SUB = "bvsub"
    MUL = "bvmul"
    UDIV = "bvudiv"
    UREM = "bvurem"
    SDIV = "bvsdiv"
    SREM = "bvsrem"
    NEG = "bvneg"

    # bitwise
    AND = "bvand"
    OR = "bvor"
    XOR = "bvxor"
    NOT = "bvnot"
    SHL = "bvshl"
    LSHR = "bvlshr"
    ASHR = "bvashr"

    # structural
    CONCAT = "concat"
    EXTRACT = "extract"      # payload: (hi, lo)
    ZEXT = "zext"            # payload: new width
    SEXT = "sext"            # payload: new width

    # predicates (Bool-sorted)
    EQ = "eq"
    ULT = "bvult"
    ULE = "bvule"
    SLT = "bvslt"
    SLE = "bvsle"

    # boolean connectives
    BNOT = "not"
    BAND = "and"
    BOR = "or"
    BXOR = "bxor"
    IMPLIES = "implies"

    # polymorphic if-then-else (cond: Bool, branches of equal sort)
    ITE = "ite"

    # uninterpreted function application (payload: function name).
    # Used to model operations whose theory we do not decide (floating
    # point arithmetic): the bitblaster treats each distinct application
    # node as fresh bits, which over-approximates satisfiability — sound
    # for race *detection* (never misses a race), mirroring the paper's
    # treatment of unresolvable values.
    UF = "uf"


_COMMUTATIVE = frozenset({Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.EQ,
                          Op.BAND, Op.BOR, Op.BXOR})


class Term:
    """An immutable, interned term.

    Do not construct directly — use the ``mk_*`` constructors below, which
    intern and constant-fold.
    """

    __slots__ = ("op", "args", "sort", "payload", "_hash", "__weakref__")

    op: str
    args: Tuple["Term", ...]
    sort: Sort
    payload: object

    def __init__(self, op: str, args: Tuple["Term", ...], sort: Sort,
                 payload: object) -> None:
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "sort", sort)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(self, "_hash",
                           hash((op, sort, payload, tuple(map(id, args)))))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Term is immutable")

    def __hash__(self) -> int:
        return self._hash

    # identity equality: interning makes structural == identity
    def __eq__(self, other: object) -> bool:
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    # -- inspection ---------------------------------------------------

    def is_const(self) -> bool:
        return self.op == Op.CONST

    def is_var(self) -> bool:
        return self.op == Op.VAR

    def is_true(self) -> bool:
        return self.op == Op.CONST and self.sort is BOOL and self.payload is True

    def is_false(self) -> bool:
        return self.op == Op.CONST and self.sort is BOOL and self.payload is False

    @property
    def value(self) -> int:
        """Constant value (unsigned int for BV, bool for Bool)."""
        if self.op != Op.CONST:
            raise ValueError(f"not a constant: {self}")
        return self.payload  # type: ignore[return-value]

    @property
    def name(self) -> str:
        if self.op != Op.VAR:
            raise ValueError(f"not a variable: {self}")
        return self.payload  # type: ignore[return-value]

    @property
    def width(self) -> int:
        if not isinstance(self.sort, BVSort):
            raise ValueError(f"not a bitvector: {self}")
        return self.sort.width

    def __repr__(self) -> str:
        from .printer import term_to_str
        return term_to_str(self)

    # -- convenience operators (unsigned semantics) --------------------

    def __add__(self, other: "Term | int") -> "Term":
        return mk_add(self, _coerce(other, self.sort))

    def __sub__(self, other: "Term | int") -> "Term":
        return mk_sub(self, _coerce(other, self.sort))

    def __mul__(self, other: "Term | int") -> "Term":
        return mk_mul(self, _coerce(other, self.sort))

    def __and__(self, other: "Term | int") -> "Term":
        if self.sort is BOOL:
            return mk_and(self, _coerce(other, BOOL))
        return mk_bvand(self, _coerce(other, self.sort))

    def __or__(self, other: "Term | int") -> "Term":
        if self.sort is BOOL:
            return mk_or(self, _coerce(other, BOOL))
        return mk_bvor(self, _coerce(other, self.sort))

    def __xor__(self, other: "Term | int") -> "Term":
        if self.sort is BOOL:
            return mk_bxor(self, _coerce(other, BOOL))
        return mk_bvxor(self, _coerce(other, self.sort))

    def __invert__(self) -> "Term":
        if self.sort is BOOL:
            return mk_not(self)
        return mk_bvnot(self)

    def __mod__(self, other: "Term | int") -> "Term":
        return mk_urem(self, _coerce(other, self.sort))

    def __lshift__(self, other: "Term | int") -> "Term":
        return mk_shl(self, _coerce(other, self.sort))

    def __rshift__(self, other: "Term | int") -> "Term":
        return mk_lshr(self, _coerce(other, self.sort))


# ---------------------------------------------------------------------------
# interning table
# ---------------------------------------------------------------------------

_TABLE: Dict[tuple, Term] = {}
_fresh_counter = itertools.count()


def _intern(op: str, args: Tuple[Term, ...], sort: Sort, payload: object) -> Term:
    key = (op, sort, payload, tuple(map(id, args)))
    term = _TABLE.get(key)
    if term is None:
        term = Term(op, args, sort, payload)
        _TABLE[key] = term
    return term


def interned_count() -> int:
    """Number of distinct live terms (diagnostics)."""
    return len(_TABLE)


def _coerce(value: "Term | int | bool", sort: Sort) -> Term:
    if isinstance(value, Term):
        return value
    if sort is BOOL:
        return mk_bool(bool(value))
    assert isinstance(sort, BVSort)
    return mk_bv(value, sort.width)


# ---------------------------------------------------------------------------
# leaf constructors
# ---------------------------------------------------------------------------

TRUE: Term
FALSE: Term


def mk_bool(value: bool) -> Term:
    """Boolean constant."""
    return _intern(Op.CONST, (), BOOL, bool(value))


def mk_bv(value: int, width: int) -> Term:
    """Bitvector constant (wrapped to ``width`` bits, unsigned)."""
    sort = bv_sort(width)
    return _intern(Op.CONST, (), sort, sort.wrap(int(value)))


def mk_var(name: str, sort: Sort) -> Term:
    """Variable of the given sort."""
    return _intern(Op.VAR, (), sort, name)


def mk_bv_var(name: str, width: int = 32) -> Term:
    """Bitvector variable (default 32 bits)."""
    return mk_var(name, bv_sort(width))


def mk_bool_var(name: str) -> Term:
    """Boolean variable."""
    return mk_var(name, BOOL)


def fresh_var(prefix: str, sort: Sort) -> Term:
    """A variable with a globally unique name."""
    return mk_var(f"{prefix}!{next(_fresh_counter)}", sort)


TRUE = mk_bool(True)
FALSE = mk_bool(False)


# ---------------------------------------------------------------------------
# concrete operator semantics (shared with the evaluator)
# ---------------------------------------------------------------------------

def _c_udiv(a: int, b: int, s: BVSort) -> int:
    # SMT-LIB semantics: x udiv 0 = all-ones
    return s.mask if b == 0 else a // b


def _c_urem(a: int, b: int, s: BVSort) -> int:
    return a if b == 0 else a % b


def _c_sdiv(a: int, b: int, s: BVSort) -> int:
    sa, sb = s.to_signed(a), s.to_signed(b)
    if sb == 0:
        return 1 if sa < 0 else s.mask
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return s.wrap(q)


def _c_srem(a: int, b: int, s: BVSort) -> int:
    sa, sb = s.to_signed(a), s.to_signed(b)
    if sb == 0:
        return a
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return s.wrap(r)


def _c_shl(a: int, b: int, s: BVSort) -> int:
    return 0 if b >= s.width else s.wrap(a << b)


def _c_lshr(a: int, b: int, s: BVSort) -> int:
    return 0 if b >= s.width else a >> b


def _c_ashr(a: int, b: int, s: BVSort) -> int:
    sa = s.to_signed(a)
    shift = min(b, s.width - 1) if b < s.width else s.width - 1
    if b >= s.width:
        return s.mask if sa < 0 else 0
    return s.wrap(sa >> b)


CONCRETE_BV_OPS: Dict[str, Callable[[int, int, BVSort], int]] = {
    Op.ADD: lambda a, b, s: s.wrap(a + b),
    Op.SUB: lambda a, b, s: s.wrap(a - b),
    Op.MUL: lambda a, b, s: s.wrap(a * b),
    Op.UDIV: _c_udiv,
    Op.UREM: _c_urem,
    Op.SDIV: _c_sdiv,
    Op.SREM: _c_srem,
    Op.AND: lambda a, b, s: a & b,
    Op.OR: lambda a, b, s: a | b,
    Op.XOR: lambda a, b, s: a ^ b,
    Op.SHL: _c_shl,
    Op.LSHR: _c_lshr,
    Op.ASHR: _c_ashr,
}

CONCRETE_PRED_OPS: Dict[str, Callable[[int, int, BVSort], bool]] = {
    Op.ULT: lambda a, b, s: a < b,
    Op.ULE: lambda a, b, s: a <= b,
    Op.SLT: lambda a, b, s: s.to_signed(a) < s.to_signed(b),
    Op.SLE: lambda a, b, s: s.to_signed(a) <= s.to_signed(b),
}


# ---------------------------------------------------------------------------
# bitvector smart constructors
# ---------------------------------------------------------------------------

def _bv_binop(op: str, a: Term, b: Term) -> Term:
    if a.sort != b.sort:
        raise TypeError(f"sort mismatch in {op}: {a.sort} vs {b.sort}")
    sort = a.sort
    assert isinstance(sort, BVSort)
    if a.is_const() and b.is_const():
        return mk_bv(CONCRETE_BV_OPS[op](a.value, b.value, sort), sort.width)
    if op in _COMMUTATIVE and a.is_const():
        a, b = b, a  # canonical: constant on the right
    return _intern(op, (a, b), sort, None)


def mk_add(a: Term, b: Term) -> Term:
    """Modular addition (folds constants, normalises offsets)."""
    if b.is_const() and b.value == 0:
        return a
    if a.is_const() and a.value == 0:
        return b
    # (x + c1) + c2  ->  x + (c1 + c2)
    if b.is_const() and a.op == Op.ADD and a.args[1].is_const():
        return mk_add(a.args[0], mk_bv(a.args[1].value + b.value, b.width))
    return _bv_binop(Op.ADD, a, b)


def mk_sub(a: Term, b: Term) -> Term:
    """Modular subtraction (x - c becomes x + (-c))."""
    if b.is_const() and b.value == 0:
        return a
    if a is b:
        return mk_bv(0, a.width)
    if b.is_const():
        return mk_add(a, mk_bv(-b.value, b.width))
    return _bv_binop(Op.SUB, a, b)


def mk_mul(a: Term, b: Term) -> Term:
    """Modular multiplication."""
    for x, y in ((a, b), (b, a)):
        if x.is_const():
            if x.value == 0:
                return mk_bv(0, x.width)
            if x.value == 1:
                return y
    return _bv_binop(Op.MUL, a, b)


def mk_udiv(a: Term, b: Term) -> Term:
    """Unsigned division (SMT-LIB: x/0 = all-ones)."""
    if b.is_const() and b.value == 1:
        return a
    return _bv_binop(Op.UDIV, a, b)


def mk_urem(a: Term, b: Term) -> Term:
    """Unsigned remainder (SMT-LIB: x%0 = x)."""
    if b.is_const() and b.value == 1:
        return mk_bv(0, a.width)
    return _bv_binop(Op.UREM, a, b)


def mk_sdiv(a: Term, b: Term) -> Term:
    """Signed (truncating) division."""
    if b.is_const() and b.value == 1:
        return a
    return _bv_binop(Op.SDIV, a, b)


def mk_srem(a: Term, b: Term) -> Term:
    """Signed remainder (follows the dividend sign)."""
    return _bv_binop(Op.SREM, a, b)


def mk_neg(a: Term) -> Term:
    """Two's-complement negation."""
    if a.is_const():
        return mk_bv(-a.value, a.width)
    if a.op == Op.NEG:
        return a.args[0]
    return _intern(Op.NEG, (a,), a.sort, None)


def mk_bvand(a: Term, b: Term) -> Term:
    """Bitwise AND."""
    assert isinstance(a.sort, BVSort)
    for x, y in ((a, b), (b, a)):
        if x.is_const():
            if x.value == 0:
                return mk_bv(0, x.width)
            if x.value == x.sort.mask:  # type: ignore[union-attr]
                return y
    if a is b:
        return a
    return _bv_binop(Op.AND, a, b)


def mk_bvor(a: Term, b: Term) -> Term:
    """Bitwise OR."""
    assert isinstance(a.sort, BVSort)
    for x, y in ((a, b), (b, a)):
        if x.is_const():
            if x.value == 0:
                return y
            if x.value == x.sort.mask:  # type: ignore[union-attr]
                return x
    if a is b:
        return a
    return _bv_binop(Op.OR, a, b)


def mk_bvxor(a: Term, b: Term) -> Term:
    """Bitwise XOR."""
    if a is b:
        return mk_bv(0, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const() and x.value == 0:
            return y
    return _bv_binop(Op.XOR, a, b)


def mk_bvnot(a: Term) -> Term:
    """Bitwise complement."""
    if a.is_const():
        assert isinstance(a.sort, BVSort)
        return mk_bv(~a.value, a.width)
    if a.op == Op.NOT:
        return a.args[0]
    return _intern(Op.NOT, (a,), a.sort, None)


def mk_shl(a: Term, b: Term) -> Term:
    """Left shift (shift >= width yields 0)."""
    if b.is_const() and b.value == 0:
        return a
    return _bv_binop(Op.SHL, a, b)


def mk_lshr(a: Term, b: Term) -> Term:
    """Logical right shift."""
    if b.is_const() and b.value == 0:
        return a
    return _bv_binop(Op.LSHR, a, b)


def mk_ashr(a: Term, b: Term) -> Term:
    """Arithmetic right shift."""
    if b.is_const() and b.value == 0:
        return a
    return _bv_binop(Op.ASHR, a, b)


def mk_concat(a: Term, b: Term) -> Term:
    """``a`` becomes the high bits, ``b`` the low bits."""
    assert isinstance(a.sort, BVSort) and isinstance(b.sort, BVSort)
    width = a.width + b.width
    if a.is_const() and b.is_const():
        return mk_bv((a.value << b.width) | b.value, width)
    return _intern(Op.CONCAT, (a, b), bv_sort(width), None)


def mk_extract(a: Term, hi: int, lo: int) -> Term:
    """Bit slice ``[hi:lo]`` (inclusive)."""
    assert isinstance(a.sort, BVSort)
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"bad extract [{hi}:{lo}] of width {a.width}")
    width = hi - lo + 1
    if width == a.width:
        return a
    if a.is_const():
        return mk_bv(a.value >> lo, width)
    return _intern(Op.EXTRACT, (a,), bv_sort(width), (hi, lo))


def mk_zext(a: Term, width: int) -> Term:
    """Zero extension to ``width`` bits."""
    assert isinstance(a.sort, BVSort)
    if width == a.width:
        return a
    if width < a.width:
        raise ValueError(f"zext to smaller width {width} < {a.width}")
    if a.is_const():
        return mk_bv(a.value, width)
    return _intern(Op.ZEXT, (a,), bv_sort(width), width)


def mk_sext(a: Term, width: int) -> Term:
    """Sign extension to ``width`` bits."""
    assert isinstance(a.sort, BVSort)
    if width == a.width:
        return a
    if width < a.width:
        raise ValueError(f"sext to smaller width {width} < {a.width}")
    if a.is_const():
        assert isinstance(a.sort, BVSort)
        return mk_bv(a.sort.to_signed(a.value), width)
    return _intern(Op.SEXT, (a,), bv_sort(width), width)


def mk_truncate(a: Term, width: int) -> Term:
    """Keep the low ``width`` bits (no-op if already that width)."""
    if width == a.width:
        return a
    return mk_extract(a, width - 1, 0)


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------

def mk_eq(a: Term, b: Term) -> Term:
    """Equality (BV or Bool operands)."""
    if a.sort != b.sort:
        raise TypeError(f"sort mismatch in eq: {a.sort} vs {b.sort}")
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return mk_bool(a.value == b.value)
    if a.sort is BOOL:
        if a.is_true():
            return b
        if b.is_true():
            return a
        if a.is_false():
            return mk_not(b)
        if b.is_false():
            return mk_not(a)
    if a.is_const():
        a, b = b, a
    return _intern(Op.EQ, (a, b), BOOL, None)


def mk_ne(a: Term, b: Term) -> Term:
    """Disequality (``not eq``)."""
    return mk_not(mk_eq(a, b))


def _pred(op: str, a: Term, b: Term) -> Term:
    if a.sort != b.sort:
        raise TypeError(f"sort mismatch in {op}: {a.sort} vs {b.sort}")
    assert isinstance(a.sort, BVSort)
    if a.is_const() and b.is_const():
        return mk_bool(CONCRETE_PRED_OPS[op](a.value, b.value, a.sort))
    if a is b:
        return mk_bool(op in (Op.ULE, Op.SLE))
    return _intern(op, (a, b), BOOL, None)


def mk_ult(a: Term, b: Term) -> Term:
    """Unsigned less-than."""
    if b.is_const() and b.value == 0:
        return FALSE
    if a.is_const() and a.value == 0:
        return mk_ne(b, mk_bv(0, b.width))
    return _pred(Op.ULT, a, b)


def mk_ule(a: Term, b: Term) -> Term:
    """Unsigned less-or-equal."""
    if a.is_const() and a.value == 0:
        return TRUE
    assert isinstance(b.sort, BVSort)
    if b.is_const() and b.value == b.sort.mask:
        return TRUE
    return _pred(Op.ULE, a, b)


def mk_ugt(a: Term, b: Term) -> Term:
    """Unsigned greater-than."""
    return mk_ult(b, a)


def mk_uge(a: Term, b: Term) -> Term:
    """Unsigned greater-or-equal."""
    return mk_ule(b, a)


def mk_slt(a: Term, b: Term) -> Term:
    """Signed less-than."""
    return _pred(Op.SLT, a, b)


def mk_sle(a: Term, b: Term) -> Term:
    """Signed less-or-equal."""
    return _pred(Op.SLE, a, b)


def mk_sgt(a: Term, b: Term) -> Term:
    """Signed greater-than."""
    return mk_slt(b, a)


def mk_sge(a: Term, b: Term) -> Term:
    """Signed greater-or-equal."""
    return mk_sle(b, a)


# ---------------------------------------------------------------------------
# boolean connectives
# ---------------------------------------------------------------------------

def mk_not(a: Term) -> Term:
    """Boolean negation (involution folded)."""
    if a.sort is not BOOL:
        raise TypeError(f"not expects Bool, got {a.sort}")
    if a.is_true():
        return FALSE
    if a.is_false():
        return TRUE
    if a.op == Op.BNOT:
        return a.args[0]
    return _intern(Op.BNOT, (a,), BOOL, None)


def mk_and(*terms: Term) -> Term:
    """N-ary conjunction: flattens, dedups, detects p and not-p."""
    flat: list[Term] = []
    seen: set[int] = set()
    for t in terms:
        if t.sort is not BOOL:
            raise TypeError(f"and expects Bool, got {t.sort}")
        if t.is_false():
            return FALSE
        if t.is_true():
            continue
        stack = [t]
        while stack:
            u = stack.pop()
            if u.op == Op.BAND:
                stack.extend(reversed(u.args))
            elif id(u) not in seen:
                seen.add(id(u))
                flat.append(u)
    for t in flat:
        if t.op == Op.BNOT and id(t.args[0]) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return _intern(Op.BAND, tuple(flat), BOOL, None)


def mk_or(*terms: Term) -> Term:
    """N-ary disjunction: flattens, dedups, detects p or not-p."""
    flat: list[Term] = []
    seen: set[int] = set()
    for t in terms:
        if t.sort is not BOOL:
            raise TypeError(f"or expects Bool, got {t.sort}")
        if t.is_true():
            return TRUE
        if t.is_false():
            continue
        stack = [t]
        while stack:
            u = stack.pop()
            if u.op == Op.BOR:
                stack.extend(reversed(u.args))
            elif id(u) not in seen:
                seen.add(id(u))
                flat.append(u)
    for t in flat:
        if t.op == Op.BNOT and id(t.args[0]) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return _intern(Op.BOR, tuple(flat), BOOL, None)


def mk_bxor(a: Term, b: Term) -> Term:
    """Boolean exclusive-or."""
    if a is b:
        return FALSE
    if a.is_const() and b.is_const():
        return mk_bool(a.value != b.value)
    if a.is_true():
        return mk_not(b)
    if b.is_true():
        return mk_not(a)
    if a.is_false():
        return b
    if b.is_false():
        return a
    return _intern(Op.BXOR, (a, b), BOOL, None)


def mk_implies(a: Term, b: Term) -> Term:
    """Implication as ``!a || b``."""
    return mk_or(mk_not(a), b)


def mk_ite(cond: Term, then: Term, other: Term) -> Term:
    """If-then-else (Bool ites lower to connectives)."""
    if cond.sort is not BOOL:
        raise TypeError(f"ite condition must be Bool, got {cond.sort}")
    if then.sort != other.sort:
        raise TypeError(f"ite branch sorts differ: {then.sort} vs {other.sort}")
    if cond.is_true():
        return then
    if cond.is_false():
        return other
    if then is other:
        return then
    if then.sort is BOOL:
        if then.is_true() and other.is_false():
            return cond
        if then.is_false() and other.is_true():
            return mk_not(cond)
        # lower boolean ite into connectives so downstream reasoning is uniform
        return mk_or(mk_and(cond, then), mk_and(mk_not(cond), other))
    if cond.op == Op.BNOT:
        return mk_ite(cond.args[0], other, then)
    return _intern(Op.ITE, (cond, then, other), then.sort, None)


def mk_uf(name: str, args: Sequence["Term"], width: int) -> Term:
    """Uninterpreted function application returning a bitvector.

    Hash-consing gives functional consistency for syntactically identical
    applications; distinct applications are unconstrained.
    """
    return _intern(Op.UF, tuple(args), bv_sort(width), name)


# ---------------------------------------------------------------------------
# traversal helpers
# ---------------------------------------------------------------------------

def iter_dag(roots: Iterable[Term]) -> Iterator[Term]:
    """Post-order traversal of the term DAG, each node yielded once."""
    seen: set[int] = set()
    stack: list[tuple[Term, bool]] = [(r, False) for r in roots]
    while stack:
        term, expanded = stack.pop()
        if id(term) in seen:
            continue
        if expanded:
            seen.add(id(term))
            yield term
        else:
            stack.append((term, True))
            for arg in term.args:
                if id(arg) not in seen:
                    stack.append((arg, False))


def free_vars(*roots: Term) -> Dict[str, Term]:
    """All variables appearing in the given terms, by name."""
    out: Dict[str, Term] = {}
    for t in iter_dag(roots):
        if t.is_var():
            out[t.name] = t
    return out


def term_size(term: Term) -> int:
    """Number of distinct DAG nodes reachable from ``term``."""
    return sum(1 for _ in iter_dag([term]))
