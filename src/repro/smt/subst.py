"""Substitution and concrete evaluation over term DAGs.

Both walk the DAG bottom-up with memoisation so shared subterms are
processed once — essential because the executor's access conditions share
large prefixes (the flow condition of the enclosing barrier interval).
"""
from __future__ import annotations

from typing import Dict, Mapping

from .sorts import BOOL, BVSort
from . import terms as T
from .terms import Op, Term


_REBUILD_BINARY = {
    Op.ADD: T.mk_add, Op.SUB: T.mk_sub, Op.MUL: T.mk_mul,
    Op.UDIV: T.mk_udiv, Op.UREM: T.mk_urem,
    Op.SDIV: T.mk_sdiv, Op.SREM: T.mk_srem,
    Op.AND: T.mk_bvand, Op.OR: T.mk_bvor, Op.XOR: T.mk_bvxor,
    Op.SHL: T.mk_shl, Op.LSHR: T.mk_lshr, Op.ASHR: T.mk_ashr,
    Op.EQ: T.mk_eq, Op.ULT: T.mk_ult, Op.ULE: T.mk_ule,
    Op.SLT: T.mk_slt, Op.SLE: T.mk_sle,
    Op.BXOR: T.mk_bxor, Op.CONCAT: T.mk_concat,
}


def rebuild(term: Term, new_args: tuple) -> Term:
    """Re-create ``term`` with new arguments via the smart constructors."""
    op = term.op
    if all(a is b for a, b in zip(new_args, term.args)):
        return term
    if op in _REBUILD_BINARY:
        return _REBUILD_BINARY[op](*new_args)
    if op == Op.NEG:
        return T.mk_neg(new_args[0])
    if op == Op.NOT:
        return T.mk_bvnot(new_args[0])
    if op == Op.BNOT:
        return T.mk_not(new_args[0])
    if op == Op.BAND:
        return T.mk_and(*new_args)
    if op == Op.BOR:
        return T.mk_or(*new_args)
    if op == Op.ITE:
        return T.mk_ite(*new_args)
    if op == Op.EXTRACT:
        hi, lo = term.payload  # type: ignore[misc]
        return T.mk_extract(new_args[0], hi, lo)
    if op == Op.ZEXT:
        return T.mk_zext(new_args[0], term.payload)  # type: ignore[arg-type]
    if op == Op.SEXT:
        return T.mk_sext(new_args[0], term.payload)  # type: ignore[arg-type]
    if op == Op.UF:
        return T.mk_uf(term.payload, new_args, term.width)  # type: ignore[arg-type]
    raise ValueError(f"cannot rebuild op {op}")


def substitute(term: Term, mapping: Mapping[Term, Term],
               cache: Dict[int, Term] | None = None) -> Term:
    """Replace occurrences of keys (typically variables) by their images.

    The mapping is applied in a single parallel pass: images are not
    themselves rewritten. This is exactly what parametric race checking
    needs — instantiating ``tid`` with ``t1`` and ``t2``.
    """
    if not mapping:
        return term
    if cache is None:
        cache = {}
    by_id = {id(k): v for k, v in mapping.items()}

    # explicit post-order that skips subDAGs already in the cache, so a
    # persistent cache (see :class:`Substitution`) makes repeated
    # instantiation O(new nodes)
    stack = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        nid = id(node)
        if nid in cache:
            continue
        hit = by_id.get(nid)
        if hit is not None:
            cache[nid] = hit
        elif not node.args:
            cache[nid] = node
        elif not expanded:
            stack.append((node, True))
            for a in node.args:
                stack.append((a, False))
        else:
            cache[nid] = rebuild(node, tuple(cache[id(a)] for a in node.args))
    return cache[id(term)]


class Substitution:
    """A reusable parallel substitution with a persistent DAG cache.

    The race checker instantiates every access condition and offset
    under the same two thread substitutions; keeping the cache alive
    across calls means shared prefixes (the flow condition of the
    enclosing barrier interval) are rewritten once, ever.
    """

    def __init__(self, mapping: Mapping[Term, Term]) -> None:
        self.mapping: Dict[Term, Term] = dict(mapping)
        self._cache: Dict[int, Term] = {}

    def __call__(self, term: Term) -> Term:
        return substitute(term, self.mapping, self._cache)


class EvaluationError(Exception):
    """Raised when a term cannot be fully evaluated (unbound variable)."""


def evaluate(term: Term, assignment: Mapping[str, int],
             cache: Dict[int, int] | None = None) -> int:
    """Concretely evaluate ``term`` under a variable assignment.

    Bitvector results are unsigned ints; boolean results are ``bool``.
    Used by the solver for model validation and by property-based tests
    as the ground-truth semantics.
    """
    if cache is None:
        cache = {}

    for node in T.iter_dag([term]):
        nid = id(node)
        if nid in cache:
            continue
        op = node.op
        if op == Op.CONST:
            cache[nid] = node.payload  # type: ignore[assignment]
        elif op == Op.VAR:
            try:
                raw = assignment[node.name]
            except KeyError:
                raise EvaluationError(f"unbound variable {node.name}") from None
            if node.sort is BOOL:
                cache[nid] = bool(raw)
            else:
                assert isinstance(node.sort, BVSort)
                cache[nid] = node.sort.wrap(int(raw))
        else:
            args = [cache[id(a)] for a in node.args]
            cache[nid] = _eval_node(node, args)
    return cache[id(term)]


def _eval_node(node: Term, args: list) -> int:
    op = node.op
    if op in T.CONCRETE_BV_OPS:
        sort = node.sort
        assert isinstance(sort, BVSort)
        return T.CONCRETE_BV_OPS[op](args[0], args[1], sort)
    if op in T.CONCRETE_PRED_OPS:
        arg_sort = node.args[0].sort
        assert isinstance(arg_sort, BVSort)
        return T.CONCRETE_PRED_OPS[op](args[0], args[1], arg_sort)
    if op == Op.EQ:
        return args[0] == args[1]
    if op == Op.NEG:
        sort = node.sort
        assert isinstance(sort, BVSort)
        return sort.wrap(-args[0])
    if op == Op.NOT:
        sort = node.sort
        assert isinstance(sort, BVSort)
        return sort.wrap(~args[0])
    if op == Op.BNOT:
        return not args[0]
    if op == Op.BAND:
        return all(args)
    if op == Op.BOR:
        return any(args)
    if op == Op.BXOR:
        return bool(args[0]) != bool(args[1])
    if op == Op.ITE:
        return args[1] if args[0] else args[2]
    if op == Op.EXTRACT:
        hi, lo = node.payload  # type: ignore[misc]
        return (args[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op == Op.ZEXT:
        return args[0]
    if op == Op.SEXT:
        src_sort = node.args[0].sort
        dst_sort = node.sort
        assert isinstance(src_sort, BVSort) and isinstance(dst_sort, BVSort)
        return dst_sort.wrap(src_sort.to_signed(args[0]))
    if op == Op.CONCAT:
        low = node.args[1]
        return (args[0] << low.width) | args[1]
    if op == Op.UF:
        raise EvaluationError(
            f"uninterpreted application {node.payload} has no concrete value")
    raise EvaluationError(f"cannot evaluate op {op}")
