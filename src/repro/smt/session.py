"""Incremental solver sessions: blast-once preambles, assumption SAT.

The race checker's queries share a large fixed prefix — thread bounds,
``t1 != t2``, launch assumptions — and differ only in a small per-pair
goal (guards + address overlap). A :class:`SolverSession` is the
layered :class:`~repro.smt.solver.Solver` pipeline rebuilt around that
shape:

* the preamble is simplified and bit-blasted **once** into a live
  :class:`~repro.smt.sat.SatSolver`;
* each :meth:`check` blasts only the goal conjuncts (the blaster skips
  subterms it has lowered before) and solves under their literals as
  *assumptions* — sound because the Tseitin gates are full
  equivalences, so a goal literal being true forces exactly the goal;
* learned clauses are retained across queries — they are resolvents of
  real clauses only, hence valid whatever the assumptions.

Unbounded growth is the classic failure mode of a pure-Python CDCL
instance that lives for thousands of queries (clause DB, stale heap
entries, full-assignment models), so a session *rotates*: after
``max_live_queries`` checks or ``max_live_clauses`` clauses it drops
the SAT instance and re-blasts the preamble on the next query.

:class:`QueryMemo` is the cross-query cache above the session: interned
canonical goal term -> verdict (+ model values), so structurally
identical pairs — rampant in unrolled kernels — never touch the SAT
core at all. UNKNOWN is never memoized.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .bitblast import BitBlaster
from .cnf import CNF
from .interval import Interval, IntervalAnalysis, derive_bounds
from .sat import SatResult, SatSolver
from .simplify import simplify
from .solver import CheckResult, Model, SolverStats
from . import terms as T
from .subst import EvaluationError, evaluate
from .terms import Term


class QueryMemo:
    """Canonical-query result cache (term identity -> verdict + model).

    Keys are ``(context_key, id(canonical_goal))``: interning makes
    ``id`` a stable global identity for a term, and the context key
    distinguishes preambles. SAT entries carry the witness values so a
    hit reproduces the one-shot answer; UNKNOWN is never stored (a
    bigger budget might decide it later).
    """

    def __init__(self) -> None:
        self._table: Dict[tuple, Tuple[str, Optional[Dict[str, int]]]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[Tuple[str, Optional[Dict[str, int]]]]:
        entry = self._table.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: tuple, result: str,
            values: Optional[Dict[str, int]] = None) -> None:
        if result == CheckResult.UNKNOWN:
            return
        self._table[key] = (result, values)

    def __len__(self) -> int:
        return len(self._table)


class SolverSession:
    """A persistent solving context for one fixed preamble.

    Mirrors the :class:`~repro.smt.solver.Solver` layering (simplify ->
    trivial -> interval -> SAT) per query, but the SAT layer is a live
    incremental instance holding the blasted preamble, answered under
    assumption literals.
    """

    def __init__(self, preamble: Sequence[Term], *,
                 conflict_budget: Optional[int] = 200_000,
                 deadline: Optional[float] = None,
                 use_simplifier: bool = True,
                 use_interval: bool = True,
                 validate_models: bool = True,
                 stats: Optional[SolverStats] = None,
                 max_live_queries: int = 256,
                 max_live_clauses: int = 400_000) -> None:
        self.conflict_budget = conflict_budget
        self.deadline = deadline
        self.use_simplifier = use_simplifier
        self.use_interval = use_interval
        self.validate_models = validate_models
        self.stats = stats if stats is not None else SolverStats()
        self.max_live_queries = max_live_queries
        self.max_live_clauses = max_live_clauses

        terms = [simplify(t) for t in preamble] if use_simplifier \
            else list(preamble)
        #: the preamble alone is contradictory: every query is UNSAT
        self._failed = any(t.is_false() for t in terms)
        self.preamble: List[Term] = [t for t in terms if not t.is_true()]
        self._preamble_bounds: Dict[str, Interval] = \
            derive_bounds(self.preamble) if use_interval else {}

        self._cnf: Optional[CNF] = None
        self._blaster: Optional[BitBlaster] = None
        self._sat: Optional[SatSolver] = None
        self._live_queries = 0
        self._model: Optional[Model] = None

    # ------------------------------------------------------------------

    def check(self, goal: Sequence[Term]) -> str:
        """Satisfiability of ``preamble AND goal`` (layered)."""
        self.stats.queries += 1
        self._model = None
        if self._failed:
            self.stats.by_simplifier += 1
            return CheckResult.UNSAT

        if self.use_simplifier:
            goal = [simplify(t) for t in goal]
        else:
            goal = list(goal)
        if any(t.is_false() for t in goal):
            self.stats.by_simplifier += 1
            return CheckResult.UNSAT
        goal = [t for t in goal if not t.is_true()]
        if not goal and not self.preamble:
            self.stats.by_simplifier += 1
            self._model = Model({})
            return CheckResult.SAT

        if self.use_interval:
            bounds = dict(self._preamble_bounds)
            for name, iv in derive_bounds(goal).items():
                cur = bounds.get(name)
                bounds[name] = iv if cur is None else (cur.meet(iv) or cur)
            analysis = IntervalAnalysis(bounds)
            if any(analysis.must_be_false(t)
                   for t in self.preamble + goal):
                self.stats.by_interval += 1
                return CheckResult.UNSAT

        return self._check_sat(goal)

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("no model available (last check was not SAT)")
        return self._model

    # ------------------------------------------------------------------
    # SAT layer
    # ------------------------------------------------------------------

    def _ensure_sat(self) -> None:
        if self._sat is not None:
            return
        self._cnf = CNF()
        self._blaster = BitBlaster(self._cnf)
        for t in self.preamble:
            self._blaster.assert_term(t)
        self._sat = SatSolver(self._cnf, conflict_budget=self.conflict_budget,
                              deadline=self.deadline)
        self._cnf.attach(self._sat)
        self._live_queries = 0
        self.stats.sat_instances += 1

    def _retire(self) -> None:
        """Drop the live SAT instance; the next query re-blasts."""
        if self._cnf is not None and self._sat is not None:
            self._cnf.detach(self._sat)
        self._cnf = None
        self._blaster = None
        self._sat = None
        self._live_queries = 0

    def _check_sat(self, goal: List[Term]) -> str:
        self._ensure_sat()
        blaster, sat = self._blaster, self._sat
        assert blaster is not None and sat is not None
        sat.deadline = self.deadline
        sat.conflict_budget = self.conflict_budget

        assumptions = [blaster.blast_bool(t) for t in goal]
        sat.ensure_vars(self._cnf.num_vars)

        c0, d0 = sat.conflicts, sat.decisions
        p0, l0 = sat.propagations, len(sat.learnts)
        result = sat.solve(assumptions)
        self.stats.by_session += 1
        self.stats.sat_conflicts += sat.conflicts - c0
        self.stats.sat_decisions += sat.decisions - d0
        self.stats.sat_propagations += sat.propagations - p0
        self.stats.learned_clauses += len(sat.learnts) - l0
        self._live_queries += 1

        outcome = CheckResult.UNKNOWN
        if result == SatResult.UNSAT:
            outcome = CheckResult.UNSAT
        elif result == SatResult.SAT:
            model = self._extract_model(goal, sat.model)
            if self.validate_models:
                self._validate(goal, model)
            self._model = model
            outcome = CheckResult.SAT

        if self._live_queries >= self.max_live_queries or \
                len(sat.clauses) + len(sat.learnts) >= self.max_live_clauses:
            self._retire()
        return outcome

    def _extract_model(self, goal: List[Term],
                       sat_model: Dict[int, bool]) -> Model:
        # restrict to the variables of THIS query: the blaster knows
        # every variable any query ever mentioned, and values for the
        # others would leak junk into race witnesses
        blaster = self._blaster
        assert blaster is not None
        values: Dict[str, int] = {}
        for name in T.free_vars(*self.preamble, *goal):
            if name in blaster.var_bits:
                values[name] = blaster.extract_value(name, sat_model)
            elif name in blaster.bool_vars:
                values[name] = int(blaster.extract_bool(name, sat_model))
        return Model(values)

    def _validate(self, goal: List[Term], model: Model) -> None:
        assignment = dict(model.values)
        for t in self.preamble + goal:
            for name in T.free_vars(t):
                assignment.setdefault(name, 0)
            try:
                ok = evaluate(t, assignment)
            except EvaluationError:
                continue  # uninterpreted applications: nothing to validate
            if not ok:
                raise AssertionError(
                    f"session produced an invalid model {model} for {t}")
