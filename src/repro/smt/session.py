"""Incremental solver sessions: blast-once preambles, assumption SAT.

The race checker's queries share a large fixed prefix — thread bounds,
``t1 != t2``, launch assumptions — and differ only in a small per-pair
goal (guards + address overlap). A :class:`SolverSession` is the
layered :class:`~repro.smt.solver.Solver` pipeline rebuilt around that
shape:

* the preamble is simplified and bit-blasted **once** into a live
  :class:`~repro.smt.sat.SatSolver`;
* each :meth:`check` blasts only the goal conjuncts (the blaster skips
  subterms it has lowered before) and solves under their literals as
  *assumptions* — sound because the Tseitin gates are full
  equivalences, so a goal literal being true forces exactly the goal;
* learned clauses are retained across queries — they are resolvents of
  real clauses only, hence valid whatever the assumptions.

Unbounded growth is the classic failure mode of a pure-Python CDCL
instance that lives for thousands of queries (clause DB, stale heap
entries, full-assignment models), so a session *rotates*: after
``max_live_queries`` checks or ``max_live_clauses`` clauses it drops
the SAT instance. Rotation is cheap: the preamble CNF is *snapshotted*
after the first blast, so the next query restores the snapshot (no
re-lowering) and re-imports the short preamble-only learned clauses
harvested at retirement in ONE batched ``add_clauses`` call — they are
resolvents of preamble clauses and total Tseitin definitions, so they
stay valid for the restored instance. The same snapshot + learnts
bundle is what :mod:`repro.smt.persist` serialises for cross-run warm
starts (:meth:`SolverSession.export_state` /
:meth:`SolverSession.adopt_state`).

:class:`QueryMemo` is the cross-query cache above the session: interned
canonical goal term -> verdict (+ model values), so structurally
identical pairs — rampant in unrolled kernels — never touch the SAT
core at all. UNKNOWN is never memoized.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .bitblast import BitBlaster, TemplateCache
from .cnf import CNF, get_solver_stack
from .interval import Interval, IntervalAnalysis, derive_bounds
from .sat import SatResult, make_solver
from .simplify import simplify
from .solver import CheckResult, Model, SolverStats
from . import terms as T
from .subst import EvaluationError, evaluate
from .terms import Term


class QueryMemo:
    """Canonical-query result cache (term identity -> verdict + model).

    Keys are ``(context_key, id(canonical_goal))``: interning makes
    ``id`` a stable global identity for a term, and the context key
    distinguishes preambles. SAT entries carry the witness values so a
    hit reproduces the one-shot answer; UNKNOWN is never stored (a
    bigger budget might decide it later).
    """

    def __init__(self) -> None:
        self._table: Dict[tuple, Tuple[str, Optional[Dict[str, int]]]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[Tuple[str, Optional[Dict[str, int]]]]:
        entry = self._table.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: tuple, result: str,
            values: Optional[Dict[str, int]] = None) -> None:
        if result == CheckResult.UNKNOWN:
            return
        self._table[key] = (result, values)

    def __len__(self) -> int:
        return len(self._table)


#: process-wide template cache: keyed purely on term structure, so it is
#: sound to share across sessions, preambles, and checkers (see
#: :class:`~repro.smt.bitblast.TemplateCache`); capped in size.
_SHARED_TEMPLATES = TemplateCache()

#: retention policy for learned clauses carried across rotations and
#: persisted for warm starts: short clauses only (long ones rarely pay
#: for their propagation cost), bounded total
_MAX_RETAINED_LEN = 24
_MAX_RETAINED = 4096


class SolverSession:
    """A persistent solving context for one fixed preamble.

    Mirrors the :class:`~repro.smt.solver.Solver` layering (simplify ->
    trivial -> interval -> SAT) per query, but the SAT layer is a live
    incremental instance holding the blasted preamble, answered under
    assumption literals.
    """

    def __init__(self, preamble: Sequence[Term], *,
                 conflict_budget: Optional[int] = 200_000,
                 deadline: Optional[float] = None,
                 use_simplifier: bool = True,
                 use_interval: bool = True,
                 validate_models: bool = True,
                 stats: Optional[SolverStats] = None,
                 max_live_queries: int = 256,
                 max_live_clauses: int = 400_000,
                 templates: Optional[TemplateCache] = _SHARED_TEMPLATES
                 ) -> None:
        self.conflict_budget = conflict_budget
        self.deadline = deadline
        self.use_simplifier = use_simplifier
        self.use_interval = use_interval
        self.validate_models = validate_models
        self.stats = stats if stats is not None else SolverStats()
        self.max_live_queries = max_live_queries
        self.max_live_clauses = max_live_clauses

        terms = [simplify(t) for t in preamble] if use_simplifier \
            else list(preamble)
        #: the preamble alone is contradictory: every query is UNSAT
        self._failed = any(t.is_false() for t in terms)
        self.preamble: List[Term] = [t for t in terms if not t.is_true()]
        self._preamble_bounds: Dict[str, Interval] = \
            derive_bounds(self.preamble) if use_interval else {}

        self._cnf: Optional[CNF] = None
        self._blaster: Optional[BitBlaster] = None
        self._sat = None
        self._live_queries = 0
        self._model: Optional[Model] = None
        self._templates = templates

        #: preamble CNF snapshot taken after the first blast (or adopted
        #: from a persisted artifact); rotation restores it instead of
        #: re-lowering the preamble
        self._snapshot: Optional[dict] = None
        #: preamble-only learned clauses retained across rotations
        #: (external signed literals, all vars <= snapshot num_vars)
        self._retained: List[List[int]] = []
        self._retained_keys: set = set()

    # ------------------------------------------------------------------

    def check(self, goal: Sequence[Term]) -> str:
        """Satisfiability of ``preamble AND goal`` (layered)."""
        self.stats.queries += 1
        self._model = None
        if self._failed:
            self.stats.by_simplifier += 1
            return CheckResult.UNSAT

        if self.use_simplifier:
            goal = [simplify(t) for t in goal]
        else:
            goal = list(goal)
        if any(t.is_false() for t in goal):
            self.stats.by_simplifier += 1
            return CheckResult.UNSAT
        goal = [t for t in goal if not t.is_true()]
        if not goal and not self.preamble:
            self.stats.by_simplifier += 1
            self._model = Model({})
            return CheckResult.SAT

        if self.use_interval:
            bounds = dict(self._preamble_bounds)
            for name, iv in derive_bounds(goal).items():
                cur = bounds.get(name)
                bounds[name] = iv if cur is None else (cur.meet(iv) or cur)
            analysis = IntervalAnalysis(bounds)
            if any(analysis.must_be_false(t)
                   for t in self.preamble + goal):
                self.stats.by_interval += 1
                return CheckResult.UNSAT

        return self._check_sat(goal)

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("no model available (last check was not SAT)")
        return self._model

    # ------------------------------------------------------------------
    # SAT layer
    # ------------------------------------------------------------------

    def _ensure_sat(self) -> None:
        if self._sat is not None:
            return
        cnf = CNF()
        templates = self._templates if get_solver_stack() == "fast" else None
        blaster = BitBlaster(cnf, templates=templates)
        snap = self._snapshot
        if snap is None:
            for t in self.preamble:
                blaster.assert_term(t)
            self._snapshot = {
                "num_vars": cnf.num_vars,
                "clauses": cnf.clauses,       # frozen below via record=False
                "true_lit": cnf._true_lit,
                "var_bits": {n: list(b) for n, b in blaster.var_bits.items()},
                "bool_vars": dict(blaster.bool_vars),
            }
        else:
            # restore: no re-lowering — the snapshot IS the preamble CNF
            cnf.num_vars = snap["num_vars"]
            cnf.clauses = snap["clauses"]
            cnf._true_lit = snap["true_lit"]
            blaster.var_bits.update(
                {n: list(b) for n, b in snap["var_bits"].items()})
            blaster.bool_vars.update(snap["bool_vars"])
        cnf.record = False  # goal clauses die with the instance
        self._cnf = cnf
        self._blaster = blaster
        sat = make_solver(cnf, conflict_budget=self.conflict_budget,
                          deadline=self.deadline)
        if self._retained:
            sat.add_clauses(self._retained)
        cnf.attach(sat)
        self._sat = sat
        self._live_queries = 0
        self.stats.sat_instances += 1

    def _retire(self) -> None:
        """Drop the live SAT instance, harvesting its learned clauses;
        the next query restores the preamble snapshot."""
        if self._sat is not None:
            self._harvest_learnts()
            if self._cnf is not None:
                self._cnf.detach(self._sat)
        self._cnf = None
        self._blaster = None
        self._sat = None
        self._live_queries = 0

    def _harvest_learnts(self) -> None:
        """Keep short learned clauses mentioning only preamble variables.

        Such a clause is a resolvent of the preamble clauses plus goal
        Tseitin *definitions*; the definitions are total (any preamble
        model extends over the gate variables), so a preamble-only
        resolvent is entailed by the preamble alone and stays valid in
        every restored instance — whatever goals come next.
        """
        sat, snap = self._sat, self._snapshot
        if sat is None or snap is None or not sat.learnts:
            return
        watermark = snap["num_vars"]
        fresh: List[List[int]] = []
        decode = getattr(sat, "clause_lits", None)
        for entry in sat.learnts:
            lits = decode(entry) if decode is not None else entry
            if len(lits) > _MAX_RETAINED_LEN:
                continue
            ok = True
            for lit in lits:
                if (lit if lit > 0 else -lit) > watermark:
                    ok = False
                    break
            if not ok:
                continue
            key = frozenset(lits)
            if key in self._retained_keys:
                continue
            self._retained_keys.add(key)
            fresh.append(list(lits))
        if fresh:
            fresh.sort(key=len)
            room = _MAX_RETAINED - len(self._retained)
            self._retained.extend(fresh[:max(0, room)])

    # ------------------------------------------------------------------
    # warm-start state (see repro.smt.persist)
    # ------------------------------------------------------------------

    def export_state(self) -> Optional[dict]:
        """The preamble CNF snapshot + retained learnts, or ``None`` if
        this session never reached the SAT layer."""
        if self._sat is not None:
            self._harvest_learnts()
        if self._snapshot is None:
            return None
        return {"snapshot": self._snapshot, "learnts": self._retained}

    def adopt_state(self, state: dict) -> bool:
        """Warm-start from a previously exported state.

        Only valid before the first SAT query (the caller matches the
        preamble by canonical fingerprint; see
        :func:`repro.smt.persist.preamble_fingerprint`). Returns False
        if the session already has live state.
        """
        if self._snapshot is not None or self._sat is not None:
            return False
        snap = state["snapshot"]
        self._snapshot = snap
        learnts = [list(c) for c in state.get("learnts", ())]
        self._retained = learnts[:_MAX_RETAINED]
        self._retained_keys = {frozenset(c) for c in self._retained}
        return True

    def _check_sat(self, goal: List[Term]) -> str:
        self._ensure_sat()
        blaster, sat = self._blaster, self._sat
        assert blaster is not None and sat is not None
        sat.deadline = self.deadline
        sat.conflict_budget = self.conflict_budget

        # Blast top-level conjuncts separately: the big shared ones
        # (flow conditions) stay on the incremental sharing path (the
        # blaster's node map answers them for free on later queries),
        # while the small per-pair ones (offset equations) are exactly
        # what the template cache instantiates.
        if get_solver_stack() == "legacy":
            assumptions = [blaster.blast_bool(t) for t in goal]
            th0 = blaster.template_hits
        else:
            conjuncts: List[Term] = []
            seen_ids = set()
            stack = list(reversed(goal))
            while stack:
                t = stack.pop()
                if t.op == T.Op.BAND:
                    stack.extend(reversed(t.args))
                    continue
                if id(t) not in seen_ids:
                    seen_ids.add(id(t))
                    conjuncts.append(t)
            th0 = blaster.template_hits
            assumptions = [blaster.blast_assume(t) for t in conjuncts]
        self.stats.template_hits += blaster.template_hits - th0
        sat.ensure_vars(self._cnf.num_vars)

        c0, d0 = sat.conflicts, sat.decisions
        p0, l0 = sat.propagations, len(sat.learnts)
        result = sat.solve(assumptions)
        self.stats.by_session += 1
        self.stats.sat_conflicts += sat.conflicts - c0
        self.stats.sat_decisions += sat.decisions - d0
        self.stats.sat_propagations += sat.propagations - p0
        self.stats.learned_clauses += len(sat.learnts) - l0
        self._live_queries += 1

        outcome = CheckResult.UNKNOWN
        if result == SatResult.UNSAT:
            outcome = CheckResult.UNSAT
        elif result == SatResult.SAT:
            model = self._extract_model(goal, sat.model)
            if self.validate_models:
                self._validate(goal, model)
            self._model = model
            outcome = CheckResult.SAT

        if self._live_queries >= self.max_live_queries or \
                len(sat.clauses) + len(sat.learnts) >= self.max_live_clauses:
            self._retire()
        return outcome

    def _extract_model(self, goal: List[Term],
                       sat_model: Dict[int, bool]) -> Model:
        # restrict to the variables of THIS query: the blaster knows
        # every variable any query ever mentioned, and values for the
        # others would leak junk into race witnesses
        blaster = self._blaster
        assert blaster is not None
        values: Dict[str, int] = {}
        for name in T.free_vars(*self.preamble, *goal):
            if name in blaster.var_bits:
                values[name] = blaster.extract_value(name, sat_model)
            elif name in blaster.bool_vars:
                values[name] = int(blaster.extract_bool(name, sat_model))
        return Model(values)

    def _validate(self, goal: List[Term], model: Model) -> None:
        assignment = dict(model.values)
        for t in self.preamble + goal:
            for name in T.free_vars(t):
                assignment.setdefault(name, 0)
            try:
                ok = evaluate(t, assignment)
            except EvaluationError:
                continue  # uninterpreted applications: nothing to validate
            if not ok:
                raise AssertionError(
                    f"session produced an invalid model {model} for {t}")
