"""Sorts (types) for the SMT term language.

The solver decides quantifier-free fixed-width bitvector logic (QF_BV),
which is the theory SESA's race queries live in: thread identifiers,
array indices and kernel inputs are machine integers, and race conditions
are boolean combinations of (in)equalities over them.
"""
from __future__ import annotations

from functools import lru_cache


class Sort:
    """Base class for term sorts."""

    __slots__ = ()

    def is_bool(self) -> bool:
        return isinstance(self, BoolSort)

    def is_bv(self) -> bool:
        return isinstance(self, BVSort)


class BoolSort(Sort):
    """The two-valued boolean sort."""

    __slots__ = ()
    _instance: "BoolSort | None" = None

    def __new__(cls) -> "BoolSort":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Bool"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolSort)

    def __hash__(self) -> int:
        return hash("BoolSort")


class BVSort(Sort):
    """Fixed-width bitvector sort.

    Values are represented as unsigned Python integers in ``[0, 2**width)``.
    Signed operations reinterpret them in two's complement.
    """

    __slots__ = ("width",)

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError(f"bitvector width must be positive, got {width}")
        self.width = width

    def __repr__(self) -> str:
        return f"BV{self.width}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BVSort) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("BVSort", self.width))

    @property
    def mask(self) -> int:
        """All-ones value of this width."""
        return (1 << self.width) - 1

    @property
    def modulus(self) -> int:
        """``2 ** width``."""
        return 1 << self.width

    @property
    def min_signed(self) -> int:
        return -(1 << (self.width - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.width - 1)) - 1

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer to this width (unsigned)."""
        return value & self.mask

    def to_signed(self, value: int) -> int:
        """Reinterpret an unsigned value of this width as two's complement."""
        value &= self.mask
        if value >= (1 << (self.width - 1)):
            value -= 1 << self.width
        return value


BOOL = BoolSort()


@lru_cache(maxsize=None)
def bv_sort(width: int) -> BVSort:
    """Interned constructor for :class:`BVSort`."""
    return BVSort(width)


BV1 = bv_sort(1)
BV8 = bv_sort(8)
BV16 = bv_sort(16)
BV32 = bv_sort(32)
BV64 = bv_sort(64)
