"""Legacy CDCL SAT solver (reference implementation).

The original list-of-lists solver, kept verbatim as the differential
oracle for the arena solver in :mod:`repro.smt.sat`: same algorithm
(two-watched-literal propagation, 1UIP analysis with minimisation,
VSIDS activity, phase saving, Luby restarts), same incremental API,
but clauses are Python lists and watcher lists are a dict — easy to
audit, slow at the metal. Select it at runtime with
``REPRO_SAT_IMPL=legacy`` or :func:`repro.smt.sat.set_solver_impl`;
the hypothesis differential suite and the arena-vs-legacy benchmark
gate both drive it.
"""
from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence

from .cnf import CNF


class SatResult:
    """Result tags for the SAT core."""
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class LegacySatSolver:
    """Solve a growable CNF instance.

    Build from a :class:`CNF`, call :meth:`solve` (optionally under
    assumptions), read :attr:`model`. Between calls, append clauses
    with :meth:`add_clause`; ``cnf.attach(solver)`` forwards later
    ``cnf.add`` calls automatically.
    """

    def __init__(self, cnf: CNF, conflict_budget: Optional[int] = None,
                 deadline: Optional[float] = None) -> None:
        self.nvars = 0
        self.conflict_budget = conflict_budget
        self.deadline = deadline  # time.monotonic() timestamp

        self.values: List[int] = [0]          # 0 unassigned, +1 true, -1 false
        self.levels: List[int] = [-1]
        self.reasons: List[Optional[List[int]]] = [None]
        self.activity: List[float] = [0.0]
        self.saved_phase: List[int] = [-1]    # default polarity: false
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0

        # decision order: a lazy max-heap of (-activity, var). Stale
        # entries (var already assigned) are skipped at pop time; every
        # unassigned variable always has at least one fresh entry.
        self._heap: List[tuple] = []

        # watches[lit] = clauses in which lit is one of the two watched literals
        self.watches: Dict[int, List[List[int]]] = {}
        self.clauses: List[List[int]] = []
        self.learnts: List[List[int]] = []
        self.ok = True
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.model: Dict[int, bool] = {}

        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)
            if not self.ok:
                break

    # ------------------------------------------------------------------
    # clause management
    # ------------------------------------------------------------------

    def ensure_vars(self, n: int) -> None:
        """Grow the variable arrays to cover variables 1..n."""
        if n <= self.nvars:
            return
        for var in range(self.nvars + 1, n + 1):
            self.values.append(0)
            self.levels.append(-1)
            self.reasons.append(None)
            self.activity.append(0.0)
            self.saved_phase.append(-1)
            heapq.heappush(self._heap, (0.0, var))
        self.nvars = n

    def add_clause(self, lits: Sequence[int]) -> None:
        """Append one clause to the live instance (incremental API).

        Backtracks to the root level first so the new clause's watches
        are consistent; literals already decided at level 0 are
        simplified away.
        """
        if not self.ok:
            return
        self._backtrack(0)
        self._add_root(lits)

    def add_clauses(self, clause_list: Sequence[Sequence[int]]) -> None:
        """Batched import: one backtrack, then append every clause."""
        if not self.ok:
            return
        self._backtrack(0)
        for lits in clause_list:
            if not self.ok:
                return
            self._add_root(lits)

    def _add_root(self, lits: Sequence[int]) -> None:
        mx = 0
        for lit in lits:
            v = abs(lit)
            if v > mx:
                mx = v
        if mx > self.nvars:
            self.ensure_vars(mx)
        # drop root-falsified literals; a root-satisfied literal kills
        # the whole clause (everything assigned now is at level 0)
        out: List[int] = []
        for lit in lits:
            v = self._value(lit)
            if v == 1:
                return
            if v == -1:
                continue
            out.append(lit)
        if not self._add_clause(out):
            self.ok = False

    def _add_clause(self, lits: List[int]) -> bool:
        # normalise: dedupe, detect tautology
        seen = set()
        out = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology: always satisfied
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        lits = out
        if not lits:
            return False
        if len(lits) == 1:
            return self._enqueue(lits[0], None)
        self.clauses.append(lits)
        self._watch(lits)
        return True

    def _watch(self, clause: List[int]) -> None:
        self.watches.setdefault(clause[0], []).append(clause)
        self.watches.setdefault(clause[1], []).append(clause)

    # ------------------------------------------------------------------
    # assignment / propagation
    # ------------------------------------------------------------------

    def _value(self, lit: int) -> int:
        v = self.values[abs(lit)]
        return v if lit > 0 else -v

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        val = self._value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        var = abs(lit)
        self.values[var] = 1 if lit > 0 else -1
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            neg = -lit
            watchers = self.watches.get(neg)
            if not watchers:
                continue
            new_watchers: List[List[int]] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                # ensure clause[1] is the falsified watcher
                if clause[0] == neg:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_watchers.append(clause)
                    continue
                # search replacement watch
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause)
                        found = True
                        break
                if found:
                    continue
                # clause is unit or conflicting
                new_watchers.append(clause)
                if not self._enqueue(first, clause):
                    # conflict: keep remaining watchers
                    new_watchers.extend(watchers[i:])
                    self.watches[neg] = new_watchers
                    return clause
            self.watches[neg] = new_watchers
        return None

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for i in range(1, self.nvars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100
            # every heap key is now wrong: rebuild for the unassigned
            # vars (assigned ones re-enter on backtrack)
            self._heap = [(-self.activity[v], v)
                          for v in range(1, self.nvars + 1)
                          if self.values[v] == 0]
            heapq.heapify(self._heap)

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.nvars + 1)
        counter = 0
        lit = 0
        reason: Optional[List[int]] = conflict
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)

        while True:
            assert reason is not None
            for q in reason:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.levels[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next literal from trail
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            reason = self.reasons[var]

        # clause minimisation: drop literals implied by the rest
        marked = set(abs(l) for l in learnt)
        minimized = [learnt[0]]
        for q in learnt[1:]:
            r = self.reasons[abs(q)]
            if r is None:
                minimized.append(q)
                continue
            if all(abs(p) in marked or self.levels[abs(p)] == 0
                   for p in r if p != -q):
                continue  # q is redundant
            minimized.append(q)
        learnt = minimized

        # backtrack level = max level among learnt[1:]
        if len(learnt) == 1:
            back = 0
        else:
            back = max(self.levels[abs(q)] for q in learnt[1:])
        return learnt, back

    def _backtrack(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        limit = self.trail_lim[level]
        heap = self._heap
        for lit in reversed(self.trail[limit:]):
            var = abs(lit)
            self.saved_phase[var] = self.values[var]
            self.values[var] = 0
            self.reasons[var] = None
            self.levels[var] = -1
            heapq.heappush(heap, (-self.activity[var], var))
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------
    # decision
    # ------------------------------------------------------------------

    def _decide(self) -> int:
        # pop until a live entry surfaces. Keys are (-activity, var), so
        # this picks the highest-activity unassigned variable, lowest
        # index on ties — the same choice the old linear scan made.
        heap = self._heap
        while heap:
            _, var = heapq.heappop(heap)
            if self.values[var] == 0:
                phase = self.saved_phase[var]
                return var if phase == 1 else -var
        return 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> str:
        self._backtrack(0)
        self.model = {}
        if not self.ok:
            return SatResult.UNSAT
        if self._propagate() is not None:
            self.ok = False
            return SatResult.UNSAT

        # assumptions as level-1.. decisions
        for lit in assumptions:
            if self._value(lit) == 1:
                continue
            if self._value(lit) == -1:
                return SatResult.UNSAT
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)
            if self._propagate() is not None:
                return SatResult.UNSAT
        root_level = len(self.trail_lim)

        # the conflict budget is per call: a fresh allowance for every
        # query on a long-lived incremental instance
        budget_limit = None if self.conflict_budget is None \
            else self.conflicts + self.conflict_budget

        restart_idx = 1
        restart_budget = 100 * _luby(restart_idx)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                if budget_limit is not None and self.conflicts > budget_limit:
                    return SatResult.UNKNOWN
                if self.deadline is not None and (self.conflicts & 0x3F) == 0 \
                        and time.monotonic() > self.deadline:
                    return SatResult.UNKNOWN
                if len(self.trail_lim) == root_level:
                    if root_level == 0:
                        self.ok = False
                    return SatResult.UNSAT
                learnt, back = self._analyze(conflict)
                self._backtrack(max(back, root_level))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        if len(self.trail_lim) == 0:
                            self.ok = False
                        return SatResult.UNSAT
                else:
                    self.learnts.append(learnt)
                    self._watch(learnt)
                    self._enqueue(learnt[0], learnt)
                self.var_inc /= self.var_decay
            else:
                if conflicts_since_restart >= restart_budget and \
                        len(self.trail_lim) > root_level:
                    restart_idx += 1
                    restart_budget = 100 * _luby(restart_idx)
                    conflicts_since_restart = 0
                    self.restarts += 1
                    self._backtrack(root_level)
                    continue
                lit = self._decide()
                if lit == 0:
                    self.model = {v: self.values[v] == 1
                                  for v in range(1, self.nvars + 1)}
                    return SatResult.SAT
                self.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)


def solve_cnf_legacy(cnf: CNF, assumptions: Sequence[int] = (),
                     conflict_budget: Optional[int] = None
                     ) -> tuple[str, Dict[int, bool]]:
    """Convenience wrapper: returns (result, model)."""
    solver = LegacySatSolver(cnf, conflict_budget=conflict_budget)
    result = solver.solve(assumptions)
    return result, solver.model
