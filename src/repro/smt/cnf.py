"""CNF formula container with Tseitin helpers.

Literals are non-zero ints: ``+v`` / ``-v`` for variable ``v >= 1``
(DIMACS convention). The bitblaster emits into a :class:`CNF`, which the
SAT solver consumes.
"""
from __future__ import annotations

import os
from typing import Iterable, List, Sequence

#: "fast" (default) or "legacy": selects the whole solver stack — the
#: arena vs. reference SAT core, constant folding in the Tseitin gates,
#: template instantiation and polarity-aware goal lowering in the
#: session. The legacy stack reproduces the pre-arena pipeline and is
#: the oracle for differential tests and relative benchmark gates.
_STACK = os.environ.get("REPRO_SOLVER_STACK", "fast")


def set_solver_stack(name: str) -> str:
    """Select "fast" or "legacy"; returns the previous selection."""
    global _STACK
    if name not in ("fast", "legacy"):
        raise ValueError(f"unknown solver stack: {name!r}")
    prev = _STACK
    _STACK = name
    return prev


def get_solver_stack() -> str:
    return _STACK


class CNF:
    """A growable CNF formula plus fresh-variable allocation.

    A live :class:`~repro.smt.sat.SatSolver` can be *attached*: every
    clause added afterwards is forwarded to it, which is how the
    incremental session keeps blasting new terms into an instance that
    has already answered queries.
    """

    def __init__(self) -> None:
        self.num_vars: int = 0
        self.clauses: List[List[int]] = []
        self._listeners: List = []
        #: when False, ``add`` stops recording clauses in :attr:`clauses`
        #: and only forwards them to attached solvers. The session flips
        #: this off once the preamble snapshot is taken — goal clauses
        #: are transient (they die with the solver at rotation), so
        #: recording them would only burn memory.
        self.record: bool = True
        #: fold gates whose inputs are the constant true/false literal.
        #: Constant-heavy circuits (multiply/add by a literal constant —
        #: the common shape of address expressions) collapse to a few
        #: clauses instead of a full word-width netlist.
        self.fold: bool = _STACK == "fast"

    def attach(self, solver) -> None:
        """Forward every future clause to *solver* (incremental mode)."""
        self._listeners.append(solver)

    def detach(self, solver) -> None:
        self._listeners.remove(solver)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        start = self.num_vars + 1
        self.num_vars += count
        return list(range(start, start + count))

    def add(self, clause: Sequence[int]) -> None:
        lits = list(clause)
        for lit in lits:
            v = abs(lit)
            if v == 0:
                raise ValueError("literal 0 is not allowed")
            if v > self.num_vars:
                self.num_vars = v
        if self.record:
            self.clauses.append(lits)
        for solver in self._listeners:
            solver.add_clause(lits)

    def add_all(self, clauses: Iterable[Sequence[int]]) -> None:
        for c in clauses:
            self.add(c)

    def add_batch(self, clauses: Sequence[Sequence[int]]) -> None:
        """Append many clauses, forwarding them in ONE solver call.

        The template instantiator and the learned-clause re-import go
        through here: attached solvers receive the whole batch via
        ``add_clauses`` (a single backtrack-to-root) instead of one
        ``add_clause`` call per clause.
        """
        num_vars = self.num_vars
        for lits in clauses:
            for lit in lits:
                v = lit if lit > 0 else -lit
                if v > num_vars:
                    num_vars = v
        self.num_vars = num_vars
        if self.record:
            self.clauses.extend(list(c) for c in clauses)
        for solver in self._listeners:
            solver.add_clauses(clauses)

    # -- Tseitin gates --------------------------------------------------
    # Each returns the output literal.

    def gate_and(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == -b:
            return self.const_false()
        if self.fold and self._true_lit is not None:
            t = self._true_lit
            if a == t:
                return b
            if b == t:
                return a
            if a == -t or b == -t:
                return -t
        out = self.new_var()
        self.add([-out, a])
        self.add([-out, b])
        self.add([out, -a, -b])
        return out

    def gate_or(self, a: int, b: int) -> int:
        return -self.gate_and(-a, -b)

    def gate_xor(self, a: int, b: int) -> int:
        if a == b:
            return self.const_false()
        if a == -b:
            return self.const_true()
        if self.fold and self._true_lit is not None:
            t = self._true_lit
            if a == t:
                return -b
            if b == t:
                return -a
            if a == -t:
                return b
            if b == -t:
                return a
        out = self.new_var()
        self.add([-out, a, b])
        self.add([-out, -a, -b])
        self.add([out, a, -b])
        self.add([out, -a, b])
        return out

    def gate_and_many(self, lits: Sequence[int]) -> int:
        if not lits:
            return self.const_true()
        out = lits[0]
        for lit in lits[1:]:
            out = self.gate_and(out, lit)
        return out

    def gate_or_many(self, lits: Sequence[int]) -> int:
        return -self.gate_and_many([-l for l in lits])

    def gate_mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        """``sel ? then_lit : else_lit``."""
        if then_lit == else_lit:
            return then_lit
        if sel == then_lit:
            # sel ? sel : e  ==  sel | e
            return self.gate_or(sel, else_lit)
        if sel == else_lit:
            # sel ? t : sel  ==  sel & t
            return self.gate_and(sel, then_lit)
        if sel == -then_lit:
            # sel ? !sel : e  ==  !sel & e
            return self.gate_and(-sel, else_lit)
        if sel == -else_lit:
            # sel ? t : !sel  ==  !sel | t
            return self.gate_or(-sel, then_lit)
        if self.fold and self._true_lit is not None:
            t = self._true_lit
            if sel == t:
                return then_lit
            if sel == -t:
                return else_lit
            if then_lit == t and else_lit == -t:
                return sel
            if then_lit == -t and else_lit == t:
                return -sel
            if then_lit == t:
                return self.gate_or(sel, else_lit)
            if then_lit == -t:
                return self.gate_and(-sel, else_lit)
            if else_lit == t:
                return self.gate_or(-sel, then_lit)
            if else_lit == -t:
                return self.gate_and(sel, then_lit)
        out = self.new_var()
        self.add([-out, -sel, then_lit])
        self.add([-out, sel, else_lit])
        self.add([out, -sel, -then_lit])
        self.add([out, sel, -else_lit])
        return out

    # -- constants ------------------------------------------------------

    _true_lit: int | None = None

    def const_true(self) -> int:
        if self._true_lit is None:
            self._true_lit = self.new_var()
            self.add([self._true_lit])
        return self._true_lit

    def const_false(self) -> int:
        return -self.const_true()

    def __len__(self) -> int:
        return len(self.clauses)
