"""CNF formula container with Tseitin helpers.

Literals are non-zero ints: ``+v`` / ``-v`` for variable ``v >= 1``
(DIMACS convention). The bitblaster emits into a :class:`CNF`, which the
SAT solver consumes.
"""
from __future__ import annotations

from typing import Iterable, List, Sequence


class CNF:
    """A growable CNF formula plus fresh-variable allocation.

    A live :class:`~repro.smt.sat.SatSolver` can be *attached*: every
    clause added afterwards is forwarded to it, which is how the
    incremental session keeps blasting new terms into an instance that
    has already answered queries.
    """

    def __init__(self) -> None:
        self.num_vars: int = 0
        self.clauses: List[List[int]] = []
        self._listeners: List = []

    def attach(self, solver) -> None:
        """Forward every future clause to *solver* (incremental mode)."""
        self._listeners.append(solver)

    def detach(self, solver) -> None:
        self._listeners.remove(solver)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        start = self.num_vars + 1
        self.num_vars += count
        return list(range(start, start + count))

    def add(self, clause: Sequence[int]) -> None:
        lits = list(clause)
        for lit in lits:
            v = abs(lit)
            if v == 0:
                raise ValueError("literal 0 is not allowed")
            if v > self.num_vars:
                self.num_vars = v
        self.clauses.append(lits)
        for solver in self._listeners:
            solver.add_clause(lits)

    def add_all(self, clauses: Iterable[Sequence[int]]) -> None:
        for c in clauses:
            self.add(c)

    # -- Tseitin gates --------------------------------------------------
    # Each returns the output literal.

    def gate_and(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == -b:
            return self.const_false()
        out = self.new_var()
        self.add([-out, a])
        self.add([-out, b])
        self.add([out, -a, -b])
        return out

    def gate_or(self, a: int, b: int) -> int:
        return -self.gate_and(-a, -b)

    def gate_xor(self, a: int, b: int) -> int:
        out = self.new_var()
        self.add([-out, a, b])
        self.add([-out, -a, -b])
        self.add([out, a, -b])
        self.add([out, -a, b])
        return out

    def gate_and_many(self, lits: Sequence[int]) -> int:
        if not lits:
            return self.const_true()
        out = lits[0]
        for lit in lits[1:]:
            out = self.gate_and(out, lit)
        return out

    def gate_or_many(self, lits: Sequence[int]) -> int:
        return -self.gate_and_many([-l for l in lits])

    def gate_mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        """``sel ? then_lit : else_lit``."""
        if then_lit == else_lit:
            return then_lit
        out = self.new_var()
        self.add([-out, -sel, then_lit])
        self.add([-out, sel, else_lit])
        self.add([out, -sel, -then_lit])
        self.add([out, sel, -else_lit])
        return out

    # -- constants ------------------------------------------------------

    _true_lit: int | None = None

    def const_true(self) -> int:
        if self._true_lit is None:
            self._true_lit = self.new_var()
            self.add([self._true_lit])
        return self._true_lit

    def const_false(self) -> int:
        return -self.const_true()

    def __len__(self) -> int:
        return len(self.clauses)
