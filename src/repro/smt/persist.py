"""Cross-run warm-start persistence for incremental solver sessions.

A :class:`~repro.smt.session.SolverSession` owns three artifacts that
are expensive to rebuild and pure functions of the preamble:

* the blasted preamble CNF snapshot (clauses + variable maps),
* the retained preamble-only learned clauses,
* the query memo (canonical goal -> verdict, with SAT witness values),
* the pair memo (canonical access-pair digest -> race verdict), which
  lets a warm re-check skip even the pre-solver pruning pipeline for
  pairs whose inputs are unchanged.

All three survive a process boundary: this module serialises them into
a content-addressed on-disk store keyed by a *canonical fingerprint* of
the preamble terms plus the blaster/tool version. A later run with the
same preamble adopts the artifact instead of re-lowering, and replays
memoized verdicts without touching the SAT core.

Safety model: a warm start must NEVER change a verdict.

* The fingerprint is a full-depth canonical serialisation — any
  preamble difference, however deep, misses the cache.
* The artifact embeds the format and tool versions; any mismatch (old
  artifact, different encoder) cold-starts with a warning.
* Corrupted or truncated artifacts (torn writes, disk faults) fail
  JSON/structural validation and cold-start with a warning.
* Replayed SAT verdicts carry their witness values, which the caller
  re-validates by evaluation before trusting them (see
  ``RaceChecker._solve``); an UNSAT replay is backed by the fingerprint
  match — the artifact's memo was recorded under the identical
  preamble by the identical encoder.
"""
from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from .. import __version__ as TOOL_VERSION
from .terms import Term

#: bump when the artifact layout or the CNF encoding changes in any way
#: that makes old snapshots meaningless (gate folding, template layout,
#: variable numbering). Version-skewed artifacts are ignored, not
#: migrated — they are a cache, the cold path recomputes everything.
FORMAT_VERSION = 1

#: canonical-string memo: Terms are interned and identity-hashed, so a
#: weak-keyed map gives every term a stable canonical string computed
#: once per process without pinning the term alive.
_canon_cache: "weakref.WeakKeyDictionary[Term, str]" = \
    weakref.WeakKeyDictionary()


def canonical_term(term: Term) -> str:
    """A full-depth canonical digest of *term* (64 hex chars).

    Unlike ``str(term)`` (the printer elides deep subterms), this never
    truncates: two terms share a digest iff they are structurally
    identical (up to SHA-256 collisions). Digests compose bottom-up —
    ``digest(node) = H(op | sort | payload | child digests)`` — and are
    memoized per node in a weak map, so across many queries each term
    node is hashed exactly once per process.
    """
    hit = _canon_cache.get(term)
    if hit is not None:
        return hit
    cache = _canon_cache
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node in cache:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.args:
                if child not in cache:
                    stack.append((child, False))
            continue
        kids = ",".join(cache[c] for c in node.args)
        material = f"{node.op}|{node.sort}|{node.payload!r}|{kids}"
        cache[node] = hashlib.sha256(
            material.encode("utf-8")).hexdigest()
    return cache[term]


def preamble_fingerprint(preamble: Sequence[Term]) -> str:
    """Content hash identifying a preamble up to conjunct order."""
    digest = hashlib.sha256()
    for canon in sorted(canonical_term(t) for t in preamble):
        digest.update(canon.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _validate_artifact(artifact: object) -> Optional[str]:
    """Structural/version check; returns a reason string if unusable."""
    if not isinstance(artifact, dict):
        return "artifact is not an object"
    if artifact.get("format") != FORMAT_VERSION:
        return (f"format version skew "
                f"(artifact {artifact.get('format')!r}, "
                f"expected {FORMAT_VERSION})")
    if artifact.get("tool") != TOOL_VERSION:
        return (f"tool version skew (artifact {artifact.get('tool')!r}, "
                f"running {TOOL_VERSION})")
    snap = artifact.get("snapshot")
    if not isinstance(snap, dict):
        return "missing snapshot"
    if not isinstance(snap.get("num_vars"), int) \
            or not isinstance(snap.get("clauses"), list) \
            or not isinstance(snap.get("var_bits"), dict) \
            or not isinstance(snap.get("bool_vars"), dict):
        return "malformed snapshot"
    if not isinstance(artifact.get("learnts"), list):
        return "malformed learnts"
    memo = artifact.get("memo")
    if not isinstance(memo, list):
        return "malformed memo"
    for entry in memo:
        if (not isinstance(entry, list) or len(entry) != 3
                or not isinstance(entry[0], str)
                or entry[1] not in ("sat", "unsat")
                or not (entry[2] is None or isinstance(entry[2], dict))):
            return "malformed memo entry"
    pairs = artifact.get("pairs", {})
    if not isinstance(pairs, dict):
        return "malformed pairs"
    for digest, verdict in pairs.items():
        if not isinstance(digest, str):
            return "malformed pair digest"
        if verdict is None:
            continue
        if (not isinstance(verdict, list) or len(verdict) != 2
                or not isinstance(verdict[0], dict)
                or not isinstance(verdict[1], bool)):
            return "malformed pair verdict"
    return None


class SolverArtifactStore:
    """Content-addressed solver artifacts under ``<cache_dir>/solver/``.

    Lives beside the verdict cache (:class:`repro.service.cache.
    ResultCache`) in the same directory tree, but in its own ``solver/``
    namespace — the verdict cache's two-hex-char fan-out walk never sees
    it, and ``repro cache stats``/``prune`` account for it separately.
    """

    SUBDIR = "solver"

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.root = os.path.join(cache_dir, self.SUBDIR)
        self.loads = 0
        self.load_hits = 0
        self.saves = 0

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2],
                            fingerprint + ".json")

    # ------------------------------------------------------------------

    def load(self, fingerprint: str
             ) -> Tuple[Optional[dict], Optional[str]]:
        """``(artifact, warning)`` — exactly one is non-None, except a
        plain miss which is ``(None, None)``."""
        self.loads += 1
        path = self._path(fingerprint)
        if not os.path.exists(path):
            return None, None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                artifact = json.load(fh)
        except (OSError, ValueError) as exc:
            return None, (f"solver artifact {fingerprint[:12]} unreadable "
                          f"({exc}); cold-starting")
        reason = _validate_artifact(artifact)
        if reason is not None:
            return None, (f"solver artifact {fingerprint[:12]} ignored: "
                          f"{reason}; cold-starting")
        self.load_hits += 1
        return artifact, None

    def save(self, fingerprint: str, state: dict,
             memo: Sequence[Tuple[str, str, Optional[dict]]] = (),
             pairs: Optional[Dict[str, Optional[list]]] = None) -> str:
        """Persist a session's exported state (atomic rename)."""
        artifact = {
            "format": FORMAT_VERSION,
            "tool": TOOL_VERSION,
            "snapshot": {
                "num_vars": state["snapshot"]["num_vars"],
                "clauses": state["snapshot"]["clauses"],
                "true_lit": state["snapshot"]["true_lit"],
                "var_bits": state["snapshot"]["var_bits"],
                "bool_vars": state["snapshot"]["bool_vars"],
            },
            "learnts": state.get("learnts", []),
            "memo": [list(entry) for entry in memo],
            "pairs": dict(pairs or {}),
        }
        path = self._path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh)
        os.replace(tmp, path)
        self.saves += 1
        return path

    # ------------------------------------------------------------------
    # maintenance (``repro cache stats`` / ``prune``)
    # ------------------------------------------------------------------

    def _iter_entries(self):
        if not os.path.isdir(self.root):
            return
        for fanout in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, fanout)
            if len(fanout) != 2 or not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(subdir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                yield path, st.st_size, st.st_mtime

    def disk_stats(self) -> dict:
        entries = bytes_total = 0
        for _path, size, _mtime in self._iter_entries():
            entries += 1
            bytes_total += size
        return {"dir": self.root, "entries": entries,
                "bytes": bytes_total}

    def prune(self, max_age_seconds: Optional[float] = None,
              max_bytes: Optional[int] = None) -> dict:
        """Same eviction policy as the verdict cache: age first, then
        LRU-by-mtime down to the byte budget."""
        now = time.time()
        survivors = []
        removed = freed = 0
        for path, size, mtime in self._iter_entries():
            if max_age_seconds is not None \
                    and now - mtime > max_age_seconds:
                removed += 1
                freed += size
                _remove(path)
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            survivors.sort()
            total = sum(size for _mtime, size, _path in survivors)
            while survivors and total > max_bytes:
                _mtime, size, path = survivors.pop(0)
                removed += 1
                freed += size
                total -= size
                _remove(path)
        return {"removed": removed, "freed_bytes": freed,
                "kept": len(survivors), "dir": self.root}


def _remove(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass
