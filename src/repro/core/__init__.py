"""Public API: the SESA tool, launch configuration, comparators, and
the barrier-repair engine."""
from ..sym.config import LaunchConfig
from .report import AnalysisReport
from .sesa import SESA, check_source
from .baselines import GKLEE, GKLEEp
from ..repair import RepairEngine, RepairResult, repair_source

__all__ = ["LaunchConfig", "AnalysisReport", "SESA", "check_source",
           "GKLEE", "GKLEEp", "RepairEngine", "RepairResult",
           "repair_source"]
