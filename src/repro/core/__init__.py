"""Public API: the SESA tool, launch configuration, and comparators."""
from ..sym.config import LaunchConfig
from .report import AnalysisReport
from .sesa import SESA, check_source
from .baselines import GKLEE, GKLEEp

__all__ = ["LaunchConfig", "AnalysisReport", "SESA", "check_source",
           "GKLEE", "GKLEEp"]
