"""Comparator engines: GKLEEp and GKLEE as the paper describes them.

* :class:`GKLEEp` — parametric flows *without* flow combining and
  *without* taint-guided input selection: every symbolic branch forks a
  flow, and the user must name the symbolic inputs (defaults to "all of
  them", the cautious choice the paper says users make). This is the
  engine SESA beats in Tables I-III / Figs. 6-7.
* :class:`GKLEE` — explicit-thread execution: every thread of the block
  is enumerated concretely (thread IDs concrete, inputs symbolic). Exact
  but exponentially slower; usable only for tiny configurations — which
  is precisely the paper's motivation. Implemented by running the
  parametric engine once per concrete thread pair assignment domain and
  reusing the race checker with pinned thread variables; it serves as
  the ground-truth oracle for the soundness test-suite.
"""
from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Set, Tuple

from .. import ir
from ..frontend import compile_source
from ..passes import standard_pipeline
from ..smt import mk_and, mk_bv, mk_bv_var, mk_eq
from ..sym import (
    Executor, LaunchConfig, RaceChecker, analyze_resolvability,
)
from .report import AnalysisReport


class GKLEEp:
    """Parametric engine without SESA's two innovations."""

    def __init__(self, module: ir.Module,
                 kernel_name: Optional[str] = None) -> None:
        self.module = module
        self.kernel = module.get_kernel(kernel_name)

    @classmethod
    def from_source(cls, source: str,
                    kernel_name: Optional[str] = None) -> "GKLEEp":
        module = compile_source(source)
        standard_pipeline().run(module)
        return cls(module, kernel_name)

    def default_symbolic_inputs(self) -> Set[str]:
        """A typical GKLEEp user symbolises every data input (the paper:
        'picking excessively burdens the symbolic analysis engine')."""
        return {arg.name for arg in self.kernel.args}

    def check(self, config: Optional[LaunchConfig] = None,
              solver_budget: Optional[int] = 200_000,
              max_reports: int = 16) -> AnalysisReport:
        config = config or LaunchConfig()
        start = time.perf_counter()
        if config.symbolic_inputs is None:
            config.symbolic_inputs = self.default_symbolic_inputs()
        config.flow_combining = False
        executor = Executor(self.module, self.kernel, config,
                            mode="gkleep", sink_value_ids=None)
        result = executor.run()
        checker = RaceChecker(result, solver_budget=solver_budget,
                              max_reports=max_reports).check()
        if checker.timed_out:
            result.timed_out = True
        return AnalysisReport(
            kernel=self.kernel.name, mode="gkleep",
            races=checker.races, oobs=checker.oobs,
            assertion_failures=checker.assertion_failures,
            taint=None, resolvability=analyze_resolvability(result),
            execution=result, check_stats=checker.stats,
            elapsed_seconds=time.perf_counter() - start)


class GKLEE:
    """Explicit-thread oracle for small configurations.

    Enumerates all ordered pairs of concrete threads and re-checks the
    parametric access sets with both thread identities pinned. For the
    resolvable kernels of §IV-B this agrees with SESA by the Proposition;
    the property-based soundness suite exercises exactly that.
    """

    def __init__(self, module: ir.Module,
                 kernel_name: Optional[str] = None) -> None:
        self.module = module
        self.kernel = module.get_kernel(kernel_name)

    @classmethod
    def from_source(cls, source: str,
                    kernel_name: Optional[str] = None) -> "GKLEE":
        module = compile_source(source)
        standard_pipeline().run(module)
        return cls(module, kernel_name)

    def check(self, config: Optional[LaunchConfig] = None,
              solver_budget: Optional[int] = 100_000,
              max_reports: int = 4) -> AnalysisReport:
        config = config or LaunchConfig()
        start = time.perf_counter()
        if config.symbolic_inputs is None:
            config.symbolic_inputs = {arg.name for arg in self.kernel.args}
        config.flow_combining = False
        executor = Executor(self.module, self.kernel, config,
                            mode="gkleep", sink_value_ids=None)
        result = executor.run()

        races = []
        oobs = []
        stats = None
        # pin every ordered pair of distinct thread coordinates
        bx, by, bz = config.block_dim
        gx, gy, gz = config.grid_dim
        coords = [(t, b)
                  for t in itertools.product(range(bx), range(by), range(bz))
                  for b in itertools.product(range(gx), range(gy), range(gz))]
        # ordered pairs: with both threads pinned, the symmetry argument
        # of §IV-B no longer applies, so each orientation is checked
        for (t1, b1), (t2, b2) in itertools.permutations(coords, 2):
            checker = RaceChecker(result, solver_budget=solver_budget,
                                  max_reports=max_reports)
            pins = []
            for which, (t, b) in ((1, (t1, b1)), (2, (t2, b2))):
                for axis, i in (("x", 0), ("y", 1), ("z", 2)):
                    for prefix, vec in (("tid", t), ("bid", b)):
                        var = (checker._vars1 if which == 1
                               else checker._vars2).get(f"{prefix}.{axis}")
                        if var is not None:
                            pins.append(mk_eq(var, mk_bv(vec[i], 32)))
            checker.extra_assumptions = pins
            checker.check()
            races.extend(checker.races)
            oobs.extend(checker.oobs)
            stats = checker.stats
            if len(races) >= max_reports:
                break
        return AnalysisReport(
            kernel=self.kernel.name, mode="gklee",
            races=races[:max_reports], oobs=oobs[:max_reports],
            taint=None, resolvability=analyze_resolvability(result),
            execution=result, check_stats=stats,
            elapsed_seconds=time.perf_counter() - start)
