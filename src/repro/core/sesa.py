"""SESA — the tool's front door.

Pipeline (Fig. 2 of the paper): MiniCUDA source → front-end (with device
function inlining) → mem2reg/CFG cleanup → static taint analysis →
parametric symbolic execution with flow combining → race / OOB checking →
report with concrete witnesses.

Typical use::

    from repro.core import SESA, LaunchConfig

    tool = SESA.from_source(KERNEL_SOURCE)
    report = tool.check(LaunchConfig(grid_dim=1, block_dim=64))
    print(report.summary())
"""
from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from .. import ir
from ..frontend import compile_source
from ..passes import analyze_taint, standard_pipeline
from ..passes.taint import TaintReport
from ..smt import CheckResult, Solver, mk_and
from ..sym import (
    Executor, LaunchConfig, RaceChecker, analyze_resolvability,
)
from .report import AnalysisReport


class SESA:
    """Symbolic Executor with Static Analysis."""

    def __init__(self, module: ir.Module,
                 kernel_name: Optional[str] = None) -> None:
        self.module = module
        self.kernel = module.get_kernel(kernel_name)
        self._taint: Optional[TaintReport] = None

    @classmethod
    def from_source(cls, source: str,
                    kernel_name: Optional[str] = None) -> "SESA":
        """Compile MiniCUDA source and run the static pipeline."""
        module = compile_source(source)
        standard_pipeline().run(module)
        return cls(module, kernel_name)

    # ------------------------------------------------------------------

    @property
    def taint(self) -> TaintReport:
        """The §V taint analysis (computed once, cached)."""
        if self._taint is None:
            self._taint = analyze_taint(self.kernel)
        return self._taint

    def inferred_symbolic_inputs(self,
                                 exclude_loop_bounds: bool = True) -> Set[str]:
        """Inputs SESA decides to symbolise.

        Policy (matching the paper's Table I/III/IV counts): pointer
        inputs whose *contents* flow into access addresses are kept
        symbolic; dimension scalars are concretised even when they appear
        in address arithmetic (they are launch-configuration-like, and
        the verdict records the address flow as an advisory); inputs that
        only bound loops are concretised so the concolic search
        terminates (§III-C).
        """
        out = {name for name, v in self.taint.verdicts.items()
               if v.is_pointer and v.flows_into_address}
        if exclude_loop_bounds:
            out -= {name for name in self.taint.loop_bound_inputs
                    if name in out
                    and not self.taint.verdicts[name].flows_into_address}
        return out

    # ------------------------------------------------------------------

    def check(self, config: Optional[LaunchConfig] = None,
              solver_budget: Optional[int] = 200_000,
              max_reports: int = 16) -> AnalysisReport:
        """Full SESA analysis: taint-guided symbolisation, parametric
        execution with flow combining, race + OOB checking."""
        config = config or LaunchConfig()
        start = time.perf_counter()
        if config.symbolic_inputs is None:
            config.symbolic_inputs = self.inferred_symbolic_inputs()
        # tier 0: solver-less static verdict for the easy majority; an
        # escalation falls through to the exact single-tier pipeline
        static_seconds = 0.0
        static_reason: Optional[str] = None
        if getattr(config, "static_tier", True) and solver_budget != 200_000:
            # a caller overriding the per-query conflict budget is
            # studying solver behaviour; a solver-less verdict would
            # defeat that (mirrors the config-level prescreen check)
            static_reason = "solver budget override"
        elif getattr(config, "static_tier", True):
            from ..static import run_static_tier
            outcome = run_static_tier(
                self.module, self.kernel, config,
                sink_value_ids=self.taint.sink_value_ids,
                max_reports=max_reports)
            if outcome.resolved:
                checker = outcome.checker
                result = outcome.result
                stats = checker.stats
                stats.tier = "static"
                stats.static_resolved = 1
                stats.static_pairs_checked = outcome.pairs_checked
                stats.static_pairs_discharged = outcome.pairs_discharged
                stats.static_seconds = max(
                    0.0, outcome.seconds - result.elapsed_seconds)
                return AnalysisReport(
                    kernel=self.kernel.name, mode="sesa",
                    races=checker.races, oobs=checker.oobs,
                    assertion_failures=checker.assertion_failures,
                    taint=self.taint,
                    resolvability=analyze_resolvability(result),
                    execution=result, check_stats=stats,
                    elapsed_seconds=time.perf_counter() - start)
            static_seconds = outcome.seconds
            static_reason = outcome.reason
        executor = Executor(
            self.module, self.kernel, config, mode="sesa",
            sink_value_ids=self.taint.sink_value_ids)
        result = executor.run()
        if config.solver_conflict_budget is not None:
            solver_budget = config.solver_conflict_budget
        checker = RaceChecker(result, solver_budget=solver_budget,
                              max_reports=max_reports).check()
        checker.stats.static_seconds = static_seconds
        checker.stats.static_bail_reason = static_reason
        if checker.timed_out:
            result.timed_out = True
            result.warnings.append(
                "race checking diverged from the shard plan"
                if checker.plan_mismatch else
                "race checking hit the wall-clock budget")
        report = AnalysisReport(
            kernel=self.kernel.name, mode="sesa",
            races=checker.races, oobs=checker.oobs,
            assertion_failures=checker.assertion_failures,
            taint=self.taint,
            resolvability=analyze_resolvability(result),
            execution=result, check_stats=checker.stats,
            elapsed_seconds=time.perf_counter() - start)
        return report


    def plan_check_groups(self, config: Optional[LaunchConfig] = None):
        """Enumerate the canonical pair groups without any solving.

        This is the swarm planner's front half: run the executor, walk
        the candidate-pair enumeration, and return
        ``(group_key, size)`` tuples in enumeration order (see
        :meth:`RaceChecker.plan_groups`). Costs execution +
        pair generation only — no SAT queries.
        """
        config = config or LaunchConfig()
        if config.symbolic_inputs is None:
            config.symbolic_inputs = self.inferred_symbolic_inputs()
        executor = Executor(
            self.module, self.kernel, config, mode="sesa",
            sink_value_ids=self.taint.sink_value_ids)
        result = executor.run()
        return RaceChecker(result).plan_groups()

    def generate_tests(self, config: Optional[LaunchConfig] = None
                       ) -> List[Dict[str, int]]:
        """Concrete test vectors, one per final parametric flow.

        Concolic tools "can also generate concrete tests" (§I): each
        flow condition is solved for a representative thread coordinate
        and input assignment. Flow coverage — every group of threads
        that behaves distinctly gets one vector.
        """
        config = config or LaunchConfig()
        if config.symbolic_inputs is None:
            config.symbolic_inputs = self.inferred_symbolic_inputs()
        executor = Executor(self.module, self.kernel, config, mode="sesa",
                            sink_value_ids=self.taint.sink_value_ids)
        result = executor.run()
        vectors: List[Dict[str, int]] = []
        for cond in result.final_flow_conds:
            solver = Solver(conflict_budget=50_000)
            solver.add(*result.env.bounds(), *config.assumptions, cond)
            if solver.check() == CheckResult.SAT:
                model = solver.model()
                vectors.append({k: v for k, v in
                                sorted(model.values.items())})
        return vectors


def check_source(source: str, config: Optional[LaunchConfig] = None,
                 kernel_name: Optional[str] = None,
                 **kwargs) -> AnalysisReport:
    """One-shot convenience: compile, analyse, and check a kernel."""
    return SESA.from_source(source, kernel_name).check(config, **kwargs)
