"""Analysis report: the user-facing result of one SESA run."""
from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..passes.taint import TaintReport
from ..sym.executor import ExecutionResult
from ..sym.races import AssertionReport, CheckStats, OOBReport, RaceReport
from ..sym.resolvable import ResolvabilityReport


def _loc_json(loc) -> Optional[List[int]]:
    """``[line, col]`` for a SourceLoc (or plain line int); None if unknown."""
    if loc is None:
        return None
    return [int(loc), getattr(loc, "col", 0)]


def _witness_json(witness) -> Optional[dict]:
    """Structured witness coordinates (machine-replayable, unlike the
    human-readable ``witness`` string)."""
    if witness is None:
        return None
    return {
        "thread1": list(witness.thread1), "block1": list(witness.block1),
        "thread2": (list(witness.thread2)
                    if witness.thread2 is not None else None),
        "block2": (list(witness.block2)
                   if witness.block2 is not None else None),
        "inputs": dict(witness.inputs),
    }


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    kernel: str
    mode: str
    races: List[RaceReport] = field(default_factory=list)
    oobs: List[OOBReport] = field(default_factory=list)
    assertion_failures: List[AssertionReport] = field(default_factory=list)
    taint: Optional[TaintReport] = None
    resolvability: Optional[ResolvabilityReport] = None
    execution: Optional[ExecutionResult] = None
    check_stats: Optional[CheckStats] = None
    elapsed_seconds: float = 0.0
    #: result of an automated-repair run, when one was requested
    #: (duck-typed to avoid a core -> repair import cycle; anything
    #: with ``to_dict()`` and ``summary()`` works)
    repair: Optional[object] = None

    def to_dict(self) -> dict:
        """JSON-ready summary (used by ``python -m repro check --json``)."""
        return {
            "kernel": self.kernel,
            "engine": self.mode,
            "races": [
                {"kind": r.kind, "object": r.obj_name, "benign": r.benign,
                 "unresolvable": r.unresolvable,
                 "lines": [r.access1.loc, r.access2.loc],
                 "locs": [_loc_json(r.access1.loc), _loc_json(r.access2.loc)],
                 "ordinal": r.ordinal,
                 "witness": str(r.witness),
                 "witness_data": _witness_json(r.witness)}
                for r in self.races],
            "oobs": [
                {"object": o.obj_name, "line": o.access.loc,
                 "loc": _loc_json(o.access.loc),
                 "witness": str(o.witness)} for o in self.oobs],
            "assertion_failures": [
                {"line": a.loc, "loc": _loc_json(a.loc),
                 "witness": str(a.witness)}
                for a in self.assertion_failures],
            "flows": self.max_flows,
            "resolvable": self.resolvable,
            "timed_out": self.timed_out,
            "warnings": (list(self.execution.warnings)
                         if self.execution else []),
            "symbolic_inputs": (sorted(self.taint.symbolic_inputs)
                                if self.taint else None),
            "check_stats": (asdict(self.check_stats)
                            if self.check_stats is not None else None),
            "repair": (self.repair.to_dict()
                       if self.repair is not None else None),
            "elapsed_seconds": self.elapsed_seconds,
        }

    # -- convenience ----------------------------------------------------

    @property
    def has_races(self) -> bool:
        return any(not r.benign for r in self.races)

    @property
    def has_benign_races(self) -> bool:
        return any(r.benign for r in self.races)

    @property
    def has_oob(self) -> bool:
        return bool(self.oobs)

    @property
    def max_flows(self) -> int:
        return self.execution.max_flows if self.execution else 0

    @property
    def timed_out(self) -> bool:
        return bool(self.execution and self.execution.timed_out)

    @property
    def resolvable(self) -> str:
        return self.resolvability.verdict if self.resolvability else "?"

    def race_kinds(self) -> List[str]:
        out = []
        for r in self.races:
            tag = f"{r.kind}{' (Benign)' if r.benign else ''}"
            if tag not in out:
                out.append(tag)
        return out

    def summary(self) -> str:
        lines = [f"kernel {self.kernel} [{self.mode}]"]
        if self.taint is not None:
            lines.append(f"  inputs: {self.taint.summary()}")
        if self.execution is not None:
            lines.append(
                f"  flows: {self.execution.max_flows} "
                f"(splits {self.execution.num_splits}, "
                f"barriers {self.execution.num_barriers}, "
                f"steps {self.execution.steps})"
                + (" [TIMED OUT]" if self.execution.timed_out else ""))
        lines.append(f"  resolvable: {self.resolvable}")
        if self.check_stats is not None:
            cs = self.check_stats
            tier = getattr(cs, "tier", "parametric")
            if tier == "static":
                lines.append(
                    f"  tier: static ({cs.static_pairs_checked} pairs, "
                    f"{cs.static_pairs_discharged} discharged, "
                    f"{(cs.execute_seconds + cs.static_seconds) * 1e3:.2f}"
                    f" ms, no solver)")
            elif cs.static_bail_reason is not None:
                lines.append(
                    f"  tier: parametric (static tier escalated: "
                    f"{cs.static_bail_reason}, "
                    f"{cs.static_seconds * 1e3:.2f} ms)")
            lines.append(
                f"  solver: {cs.queries} queries (affine {cs.by_affine}, "
                f"memo {cs.by_memo}, sessions {cs.sessions_created}, "
                f"sat {cs.solver.by_sat} fresh + "
                f"{cs.solver.by_session} incremental)")
            pruned = (cs.dedup_skipped + cs.summarized_accesses +
                      cs.bucketed_out + cs.pair_memo_hits + cs.oob_pruned)
            if pruned:
                lines.append(
                    f"  pruning: dedup {cs.dedup_skipped}, summarized "
                    f"{cs.summarized_accesses}, bucketed {cs.bucketed_out}, "
                    f"pair-memo {cs.pair_memo_hits}, "
                    f"oob-pruned {cs.oob_pruned}")
            lines.append(
                f"  phases: execute {cs.execute_seconds * 1e3:.1f} ms, "
                f"pair-gen {cs.pairgen_seconds * 1e3:.1f} ms, "
                f"solve {cs.solve_seconds * 1e3:.1f} ms")
        if self.races:
            for race in self.races:
                lines.append(f"  RACE: {race.describe()}")
        else:
            lines.append("  no races found")
        for oob in self.oobs:
            lines.append(f"  OOB: {oob.describe()}")
        for failure in self.assertion_failures:
            lines.append(f"  ASSERT: {failure.describe()}")
        if self.execution:
            for err in self.execution.errors:
                lines.append(f"  ERROR: {err}")
        if self.repair is not None:
            lines.append(self.repair.summary())
        return "\n".join(lines)
