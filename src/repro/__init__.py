"""repro — a Python reproduction of SESA (SC'14).

SESA: practical symbolic race checking of GPU programs via parametric
symbolic execution plus static (taint / data-flow) analysis.

Public entry points:

* :class:`repro.core.SESA` — compile a MiniCUDA kernel, run the static
  analyses, execute parametrically, and report races / OOBs with witnesses.
* :mod:`repro.core.baselines` — GKLEE- and GKLEEp-style comparators.
* :mod:`repro.kernels` — the benchmark kernel suite from the paper.
"""

__version__ = "1.0.0"
