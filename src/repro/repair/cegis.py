"""The CEGIS repair loop: propose → re-check → refine → minimize.

Each iteration takes the current race reports as counterexamples,
generates legal barrier placements, applies one to the IR, and re-runs
the executor + race checker.  Re-checks share one :class:`SolverSession`
pool and :class:`QueryMemo` across the whole loop — the preambles
(thread bounds, ``t1 != t2``) are interned terms, so iteration *N*'s
queries land on the CDCL instances iteration 1 warmed up.

After the loop converges, delta-debugging removes each inserted barrier
in turn and re-verifies, so no removable barrier survives (the fix is
minimal by construction).  The accepted edits are rendered as a source
diff, and the *patched source* is recompiled and checked from scratch —
the ``verified`` flag comes from that independent run, never from the
in-place IR state.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..frontend import compile_source
from ..passes import (
    analyze_taint, check_barrier_uniformity, standard_pipeline,
)
from ..smt import QueryMemo
from ..sym import Executor, LaunchConfig, RaceChecker
from .candidates import CandidateGenerator, InsertionPoint, barrier_removals
from .diff import RenderError, SourceEdit, apply_edits, render_diff
from .rewriter import IRRewriter, RewriteError

_DIVERGENCE_MARKER = "barrier divergence"


@dataclass
class RepairEdit:
    """One accepted source-level barrier edit."""

    action: str          # "insert" | "remove"
    line: int            # insert: after this line; remove: this line
    note: str = ""

    def source_edit(self) -> SourceEdit:
        kind = "insert_after" if self.action == "insert" else "remove_line"
        return SourceEdit(kind, self.line)

    def describe(self) -> str:
        where = f"after line {self.line}" if self.action == "insert" \
            else f"at line {self.line}"
        out = f"{self.action} __syncthreads() {where}"
        if self.note:
            out += f" [{self.note}]"
        return out

    def to_dict(self) -> dict:
        return {"action": self.action, "line": self.line, "note": self.note}


@dataclass
class IterationStats:
    """Solver work done by one CEGIS iteration's re-checks."""

    iteration: int
    races_remaining: int
    candidates_tried: int
    queries: int
    preamble_reuse: int
    memo_hits: int
    sessions_created: int
    elapsed_seconds: float
    accepted: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "races_remaining": self.races_remaining,
            "candidates_tried": self.candidates_tried,
            "queries": self.queries,
            "preamble_reuse": self.preamble_reuse,
            "memo_hits": self.memo_hits,
            "sessions_created": self.sessions_created,
            "elapsed_seconds": self.elapsed_seconds,
            "accepted": self.accepted,
        }


@dataclass
class RepairResult:
    """Outcome of one repair run (attach to ``AnalysisReport.repair``)."""

    kernel: str
    converged: bool = False
    #: the patched *source* re-verified race-free from scratch
    verified: bool = False
    #: every surviving barrier was proven necessary by re-checking
    minimal: bool = False
    edits: List[RepairEdit] = field(default_factory=list)
    iterations: int = 0
    candidates_tried: int = 0
    initial_races: int = 0
    residual_races: int = 0
    minimized_out: int = 0
    rechecks: int = 0
    recheck_queries: int = 0
    preamble_reuse: int = 0
    memo_hits: int = 0
    sessions_created: int = 0
    iteration_stats: List[IterationStats] = field(default_factory=list)
    diff: str = ""
    patched_source: Optional[str] = None
    verification: Optional[dict] = None
    warnings: List[str] = field(default_factory=list)
    message: str = ""
    elapsed_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "converged": self.converged,
            "verified": self.verified,
            "minimal": self.minimal,
            "edits": [e.to_dict() for e in self.edits],
            "iterations": self.iterations,
            "candidates_tried": self.candidates_tried,
            "initial_races": self.initial_races,
            "residual_races": self.residual_races,
            "minimized_out": self.minimized_out,
            "rechecks": self.rechecks,
            "recheck_queries": self.recheck_queries,
            "preamble_reuse": self.preamble_reuse,
            "memo_hits": self.memo_hits,
            "sessions_created": self.sessions_created,
            "iteration_stats": [s.to_dict() for s in self.iteration_stats],
            "diff": self.diff,
            "patched_source": self.patched_source,
            "verification": self.verification,
            "warnings": list(self.warnings),
            "message": self.message,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def summary(self) -> str:
        if self.initial_races == 0 and not self.edits:
            status = "nothing to repair (kernel already race-free)"
        elif self.converged:
            n = len(self.edits)
            status = (f"{n} edit{'s' if n != 1 else ''} in "
                      f"{self.iterations} iteration"
                      f"{'s' if self.iterations != 1 else ''}")
            status += ", verified race-free" if self.verified \
                else ", NOT verified"
            if self.minimal:
                status += " (minimal)"
        else:
            status = (f"FAILED to converge after {self.iterations} "
                      f"iteration{'s' if self.iterations != 1 else ''} "
                      f"({self.residual_races} race(s) remain)")
        lines = [f"  repair: {status}"]
        for edit in self.edits:
            lines.append(f"    edit: {edit.describe()}")
        lines.append(
            f"    solver: {self.rechecks} re-checks, "
            f"{self.recheck_queries} queries, "
            f"preamble reuse {self.preamble_reuse}, "
            f"memo hits {self.memo_hits}, "
            f"sessions created {self.sessions_created}")
        if self.message:
            lines.append(f"    note: {self.message}")
        for warning in self.warnings:
            lines.append(f"    warning: {warning}")
        return "\n".join(lines)


class RepairEngine:
    """Drives the repair loop for one kernel."""

    def __init__(self, source: str, kernel_name: Optional[str] = None,
                 config: Optional[LaunchConfig] = None,
                 max_iterations: int = 8,
                 max_candidates: int = 24,
                 solver_budget: Optional[int] = 200_000,
                 max_reports: int = 16,
                 share_sessions: bool = True,
                 remove_redundant: bool = False,
                 time_budget_seconds: Optional[float] = None) -> None:
        self.source = source
        self.kernel_name = kernel_name
        self.user_config = config or LaunchConfig()
        self.max_iterations = max_iterations
        self.max_candidates = max_candidates
        self.solver_budget = solver_budget
        self.max_reports = max_reports
        self.share_sessions = share_sessions
        self.remove_redundant = remove_redundant
        self.time_budget_seconds = time_budget_seconds

        self.module = compile_source(source)
        standard_pipeline().run(self.module)
        self.kernel = self.module.get_kernel(kernel_name)
        self.taint = analyze_taint(self.kernel)
        self.rewriter = IRRewriter(self.kernel)
        # the warm re-check machinery the whole loop shares
        self._sessions: Dict[tuple, object] = {}
        self._memo = QueryMemo()
        # repair iterations target races; OOB checking (not fixable by
        # barriers) is deferred to the final from-source verification,
        # which runs the user's config unmodified
        self.check_config = self._copy_config(self.user_config,
                                              check_oob=False)
        if self.check_config.symbolic_inputs is None:
            self.check_config.symbolic_inputs = {
                name for name, v in self.taint.verdicts.items()
                if v.is_pointer and v.flows_into_address}

    # ------------------------------------------------------------------

    @staticmethod
    def _copy_config(config: LaunchConfig, **overrides) -> LaunchConfig:
        return replace(
            config,
            symbolic_inputs=(set(config.symbolic_inputs)
                             if config.symbolic_inputs is not None else None),
            scalar_values=dict(config.scalar_values),
            array_sizes=dict(config.array_sizes),
            array_values={k: list(v) for k, v in config.array_values.items()},
            assumptions=list(config.assumptions),
            **overrides)

    def _recheck(self, res: RepairResult):
        """Execute + race-check the current IR on the shared sessions."""
        executor = Executor(self.module, self.kernel, self.check_config,
                            mode="sesa",
                            sink_value_ids=self.taint.sink_value_ids)
        result = executor.run()
        checker = RaceChecker(
            result, solver_budget=self.solver_budget,
            max_reports=self.max_reports,
            sessions=self._sessions if self.share_sessions else None,
            memo=self._memo if self.share_sessions else None)
        checker.check()
        res.rechecks += 1
        res.recheck_queries += checker.stats.queries
        res.preamble_reuse += checker.stats.preamble_reuse
        res.memo_hits += checker.stats.by_memo
        res.sessions_created += checker.stats.sessions_created
        return result, checker

    @staticmethod
    def _nonbenign(checker) -> list:
        return [r for r in checker.races if not r.benign]

    @staticmethod
    def _diverged(result) -> bool:
        return any(_DIVERGENCE_MARKER in err for err in result.errors)

    # ------------------------------------------------------------------

    def run(self) -> RepairResult:
        start = time.perf_counter()
        deadline = (start + self.time_budget_seconds
                    if self.time_budget_seconds else None)
        res = RepairResult(kernel=self.kernel.name)

        result, checker = self._recheck(res)
        races = self._nonbenign(checker)
        res.initial_races = len(races)
        res.iteration_stats.append(IterationStats(
            iteration=0, races_remaining=len(races), candidates_tried=0,
            queries=checker.stats.queries,
            preamble_reuse=checker.stats.preamble_reuse,
            memo_hits=checker.stats.by_memo,
            sessions_created=checker.stats.sessions_created,
            elapsed_seconds=time.perf_counter() - start))
        if self._diverged(result):
            res.warnings.append(
                "input kernel already exhibits barrier divergence")

        inserted: List[Tuple[RepairEdit, object]] = []
        out_of_budget = False
        while races and res.iterations < self.max_iterations:
            res.iterations += 1
            iter_start = time.perf_counter()
            stats = IterationStats(
                iteration=res.iterations, races_remaining=len(races),
                candidates_tried=0, queries=0, preamble_reuse=0,
                memo_hits=0, sessions_created=0, elapsed_seconds=0.0)
            generator = CandidateGenerator(self.kernel)
            accepted: Optional[RepairEdit] = None
            for cand in generator.for_races(races)[:self.max_candidates]:
                if deadline is not None and time.perf_counter() > deadline:
                    out_of_budget = True
                    break
                stats.candidates_tried += 1
                try:
                    sync = self.rewriter.insert_sync(cand)
                except RewriteError:
                    continue
                before = (res.recheck_queries, res.preamble_reuse,
                          res.memo_hits, res.sessions_created)
                r2, c2 = self._recheck(res)
                stats.queries += res.recheck_queries - before[0]
                stats.preamble_reuse += res.preamble_reuse - before[1]
                stats.memo_hits += res.memo_hits - before[2]
                stats.sessions_created += res.sessions_created - before[3]
                remaining = self._nonbenign(c2)
                if self._diverged(r2) or len(remaining) >= len(races):
                    self.rewriter.remove_sync(sync)
                    continue
                accepted = RepairEdit("insert", cand.source_line,
                                      note=cand.note)
                inserted.append((accepted, sync))
                races = remaining
                break
            stats.races_remaining = len(races)
            stats.accepted = accepted.describe() if accepted else None
            stats.elapsed_seconds = time.perf_counter() - iter_start
            res.iteration_stats.append(stats)
            res.candidates_tried += stats.candidates_tried
            if accepted is None:
                break

        res.residual_races = len(races)
        res.converged = not races

        # delta-debugging: shrink the fix — every inserted barrier must
        # still be necessary under re-verification
        if res.converged and inserted:
            for pair in list(inserted):
                edit, sync = pair
                removed = self.rewriter.remove_sync(sync)
                r3, c3 = self._recheck(res)
                if self._nonbenign(c3) or self._diverged(r3):
                    removed.restore()
                else:
                    inserted.remove(pair)
                    res.minimized_out += 1
            res.minimal = True

        removal_edits: List[RepairEdit] = []
        if res.converged and self.remove_redundant:
            inserted_ids = {id(sync) for _, sync in inserted}
            for sync in barrier_removals(self.kernel):
                if id(sync) in inserted_ids or sync.loc is None:
                    continue
                removed = self.rewriter.remove_sync(sync)
                r4, c4 = self._recheck(res)
                if self._nonbenign(c4) or self._diverged(r4):
                    removed.restore()
                else:
                    removal_edits.append(RepairEdit(
                        "remove", int(sync.loc),
                        note="provably redundant barrier"))

        res.edits = sorted([e for e, _ in inserted] + removal_edits,
                           key=lambda e: (e.line, e.action))

        if out_of_budget:
            res.message = "wall-clock budget exhausted"
        if res.converged and res.edits:
            self._render_and_verify(res)
        elif res.converged:
            res.verified = res.initial_races == 0
            if res.initial_races == 0:
                res.message = res.message or \
                    "kernel is already race-free; no edits needed"
        else:
            res.message = res.message or (
                f"no barrier placement reduced the race count "
                f"({res.residual_races} race(s) remain) — likely a true "
                f"data race needing atomics or an algorithm change")
        res.elapsed_seconds = time.perf_counter() - start
        return res

    # ------------------------------------------------------------------

    def _render_and_verify(self, res: RepairResult) -> None:
        try:
            patched = apply_edits(
                self.source, [e.source_edit() for e in res.edits])
        except RenderError as exc:
            res.message = f"could not render the fix as source: {exc}"
            return
        res.patched_source = patched
        res.diff = render_diff(self.source, patched,
                               name=f"{self.kernel.name}.cu")
        # ground truth: recompile the patched source and check it from
        # scratch at the user's launch config (lazy import — repro.core
        # re-exports this package)
        from ..core.sesa import check_source
        report = check_source(patched, config=self._copy_config(
            self.user_config), kernel_name=self.kernel_name)
        res.verification = report.to_dict()
        diverged = bool(report.execution
                        and self._diverged(report.execution))
        patched_mod = compile_source(patched)
        standard_pipeline().run(patched_mod)
        audit = check_barrier_uniformity(
            patched_mod.get_kernel(self.kernel_name))
        res.warnings.extend(audit)
        if report.has_oob:
            res.warnings.append(
                "out-of-bounds reports remain (not repairable by "
                "barrier insertion)")
        res.verified = (not report.has_races and not diverged
                        and not audit)
        if not res.verified and not res.message:
            res.message = "patched source failed re-verification"


def repair_source(source: str, config: Optional[LaunchConfig] = None,
                  kernel_name: Optional[str] = None,
                  **kwargs) -> RepairResult:
    """One-shot convenience: build the engine and run the repair loop."""
    return RepairEngine(source, kernel_name=kernel_name, config=config,
                        **kwargs).run()
