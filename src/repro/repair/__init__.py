"""Counterexample-guided kernel repair: barrier synthesis.

Takes a kernel with reported races and synthesizes a verified, minimal
set of ``__syncthreads()`` edits:

* :mod:`candidates` — legal insertion points between the conflicting
  accesses of each race (loop-latch and block-boundary placements,
  restricted to tid-uniform program points), plus removals of provably
  redundant barriers;
* :mod:`rewriter` — splices barrier instructions into basic blocks,
  splitting critical edges where needed;
* :mod:`diff` — renders accepted edits as a unified source-level diff
  using the source locations threaded through the frontend;
* :mod:`cegis` — the propose → re-check → refine loop (re-checks reuse
  the warm incremental solver sessions), followed by delta-debugging
  minimization and a from-source verification of the rendered fix.
"""
from .candidates import CandidateGenerator, InsertionPoint, barrier_removals
from .cegis import RepairEdit, RepairEngine, RepairResult, repair_source
from .diff import BARRIER_STMT, SourceEdit, apply_edits, render_diff
from .rewriter import IRRewriter, RemovedSync, RewriteError

__all__ = [
    "CandidateGenerator", "InsertionPoint", "barrier_removals",
    "RepairEdit", "RepairEngine", "RepairResult", "repair_source",
    "BARRIER_STMT", "SourceEdit", "apply_edits", "render_diff",
    "IRRewriter", "RemovedSync", "RewriteError",
]
