"""IR rewriting for barrier repair.

Splices :class:`Sync` instructions into basic blocks at the points the
candidate generator proposes.  Placements on a CFG edge (a loop
back-edge ending in a conditional branch) are realised by *splitting*
the edge: a fresh block holding the barrier and a jump is interposed,
the predecessor's terminator is retargeted, and phi incoming edges in
the successor are rewritten.  Split blocks are cached per edge and kept
once created — an empty pass-through block is semantically inert, so
reverting a rejected candidate only removes its ``Sync``.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir import (
    BasicBlock, Br, Function, Instruction, Jump, SourceLoc, Sync,
)
from .candidates import InsertionPoint


class RewriteError(Exception):
    """An edit could not be applied to the IR."""


class RemovedSync:
    """Undo record for a barrier removal: reinsert exactly where it was."""

    def __init__(self, sync: Sync, block: BasicBlock,
                 anchor: Optional[Instruction]) -> None:
        self.sync = sync
        self.block = block
        self.anchor = anchor   # reinsert before this instruction

    def restore(self) -> None:
        idx = len(self.block.instrs)
        if self.anchor is not None:
            idx = _index_of(self.block, self.anchor)
        self.block.instrs.insert(idx, self.sync)
        self.sync.parent = self.block


def _index_of(block: BasicBlock, instr: Instruction) -> int:
    for pos, cur in enumerate(block.instrs):
        if cur is instr:
            return pos
    raise RewriteError(
        f"instruction {instr!r} not found in block {block.name}")


class IRRewriter:
    """Applies and reverts barrier edits on one function."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self._edge_blocks: Dict[Tuple[int, int], BasicBlock] = {}

    # ------------------------------------------------------------------

    def insert_sync(self, point: InsertionPoint) -> Sync:
        """Place a barrier at an insertion point; returns the new Sync
        (remove it with :meth:`remove_sync` to revert)."""
        if point.edge is not None:
            pred, succ = point.edge
            block = self._edge_blocks.get((id(pred), id(succ)))
            if block is None:
                block = self.split_edge(pred, succ)
            anchor: Optional[Instruction] = block.terminator
        else:
            block, anchor = point.block, point.anchor
        sync = Sync()
        sync.loc = SourceLoc(point.source_line)
        idx = len(block.instrs) if anchor is None \
            else _index_of(block, anchor)
        block.instrs.insert(idx, sync)
        sync.parent = block
        self.fn.verify()
        return sync

    def remove_sync(self, sync: Sync) -> RemovedSync:
        """Take a barrier out (restorable via the returned record)."""
        block = sync.parent
        if block is None:
            raise RewriteError("sync has no parent block")
        idx = _index_of(block, sync)
        del block.instrs[idx]
        sync.parent = None
        anchor = block.instrs[idx] if idx < len(block.instrs) else None
        return RemovedSync(sync, block, anchor)

    # ------------------------------------------------------------------

    def split_edge(self, pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
        """Interpose a fresh block on the edge pred→succ."""
        term = pred.terminator
        if term is None:
            raise RewriteError(f"block {pred.name} has no terminator")
        new = self.fn.new_block(f"{pred.name}.sync")
        if isinstance(term, Jump):
            if term.target is not succ:
                raise RewriteError(
                    f"no edge {pred.name} -> {succ.name}")
            term.target = new
        elif isinstance(term, Br):
            hit = False
            if term.then_block is succ:
                term.then_block = new
                hit = True
            if term.else_block is succ:
                term.else_block = new
                hit = True
            if not hit:
                raise RewriteError(
                    f"no edge {pred.name} -> {succ.name}")
        else:
            raise RewriteError(
                f"cannot split edge out of terminator {term!r}")
        jump = Jump(succ)
        jump.parent = new
        new.instrs.append(jump)
        for phi in succ.phis():
            phi.incoming = [(new if p is pred else p, v)
                            for p, v in phi.incoming]
        self._edge_blocks[(id(pred), id(succ))] = new
        self.fn.verify()
        return new
