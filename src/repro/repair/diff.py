"""Source-level rendering of barrier edits.

The IR carries :class:`~repro.ir.SourceLoc` positions threaded from the
frontend, so an accepted IR edit maps back to a textual one: *insert a
``__syncthreads();`` line after line N* (indented like its anchor) or
*remove the barrier statement on line N*.  Whether the textual fix means
what the IR fix meant is not assumed — the repair engine recompiles the
patched source and re-verifies it from scratch.
"""
from __future__ import annotations

import difflib
import re
from dataclasses import dataclass
from typing import Iterable, List

BARRIER_STMT = "__syncthreads();"


class RenderError(Exception):
    """An edit does not map cleanly onto the source text."""


@dataclass(frozen=True)
class SourceEdit:
    """One textual edit. ``insert_after``: add a barrier line after the
    1-based ``line``; ``remove_line``: delete the barrier statement on
    ``line``."""

    action: str    # "insert_after" | "remove_line"
    line: int

    def describe(self) -> str:
        if self.action == "insert_after":
            return f"insert {BARRIER_STMT} after line {self.line}"
        return f"remove {BARRIER_STMT} at line {self.line}"


def _indent_of(line: str) -> str:
    return line[:len(line) - len(line.lstrip())]


_UNBRACED_HEADER = re.compile(r"^(if|for|while)\b.*[^{]\s*$|^else\s*$")


def _insert_indent(lines: List[str], line: int) -> str:
    """Indent for a barrier inserted after 1-based ``line``.

    A statement inserted after the body of an unbraced ``if``/``else``/
    loop header sits *outside* that header; indenting it like the body
    would mislead the reader, so use the header's own indent instead.
    """
    indent = _indent_of(lines[line - 1])
    if line >= 2:
        prev = lines[line - 2]
        if _UNBRACED_HEADER.match(prev.strip()):
            return _indent_of(prev)
    return indent


def apply_edits(source: str, edits: Iterable[SourceEdit]) -> str:
    """Apply textual edits bottom-up so earlier line numbers stay valid."""
    lines = source.split("\n")
    ordered = sorted(edits, key=lambda e: (-e.line, e.action))
    for edit in ordered:
        if edit.action == "insert_after":
            if not 1 <= edit.line <= len(lines):
                raise RenderError(
                    f"insertion line {edit.line} outside source "
                    f"(1..{len(lines)})")
            indent = _insert_indent(lines, edit.line)
            lines.insert(edit.line, indent + BARRIER_STMT)
        elif edit.action == "remove_line":
            if not 1 <= edit.line <= len(lines) \
                    or lines[edit.line - 1].strip() != BARRIER_STMT:
                raise RenderError(
                    f"line {edit.line} is not a bare {BARRIER_STMT} "
                    f"statement")
            del lines[edit.line - 1]
        else:
            raise RenderError(f"unknown edit action {edit.action!r}")
    return "\n".join(lines)


def render_diff(original: str, patched: str,
                name: str = "kernel.cu") -> str:
    """Unified diff between the original and the repaired source."""
    return "".join(difflib.unified_diff(
        original.splitlines(keepends=True),
        patched.splitlines(keepends=True),
        fromfile=f"a/{name}", tofile=f"b/{name}"))
