"""Barrier placement candidates derived from race reports.

For each reported race the generator walks from the two conflicting
access instructions to the program points where a ``__syncthreads()``
could order them:

* **loop-latch placements** — when both accesses sit in one loop, a
  barrier at the latch separates iteration *i*'s accesses from
  iteration *i+1*'s (the classic parallel-reduction fix);
* **access-local placements** — immediately after the first access /
  immediately before the second, splitting the barrier interval between
  them;
* **block boundaries** — the start of each access's block.

Every candidate is filtered through :class:`UniformityAnalysis`: a
barrier may only go where *all* guarding branches are tid-uniform, so
no proposed fix can introduce barrier divergence.  Candidates carry the
source line after which the textual ``__syncthreads();`` goes, so the
accepted fix can be rendered as a source diff.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import (
    BasicBlock, Br, CFG, Function, Instruction, Jump, Loop, Phi, Sync,
)
from ..passes.uniform import UniformityAnalysis


@dataclass
class InsertionPoint:
    """One legal place for a new barrier.

    ``edge`` set: the barrier goes on that CFG edge (the rewriter splits
    it); otherwise it goes immediately before ``anchor`` in ``block``.
    ``source_line`` is the 1-based line *after which* the textual
    ``__syncthreads();`` is inserted when rendering the fix.
    """

    block: BasicBlock
    anchor: Optional[Instruction]
    source_line: int
    note: str = ""
    edge: Optional[Tuple[BasicBlock, BasicBlock]] = None

    def key(self) -> tuple:
        if self.edge is not None:
            return ("edge", id(self.edge[0]), id(self.edge[1]))
        return ("at", id(self.block), id(self.anchor))

    def describe(self) -> str:
        return f"after line {self.source_line} ({self.note})"


def barrier_removals(fn: Function) -> List[Sync]:
    """Existing barriers, as removal candidates (redundancy is proved by
    re-checking without them, not statically)."""
    return [i for b in fn.blocks for i in b.instrs if isinstance(i, Sync)]


class CandidateGenerator:
    """Enumerates insertion points for the current shape of a kernel.

    Build a fresh generator after every IR mutation — it snapshots the
    CFG, the loop forest, the uniformity facts, and the instruction
    identity map that race reports' ``instr_id`` fields key into.
    """

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.cfg = CFG(fn)
        self.ua = UniformityAnalysis(fn)
        self.loops = self.cfg.natural_loops()
        self._where: Dict[int, Tuple[BasicBlock, Instruction]] = {
            id(i): (b, i) for b in fn.blocks for i in b.instrs}
        #: deterministic program order (block position, instr position)
        self._pos: Dict[int, Tuple[int, int]] = {
            id(i): (bi, ii)
            for bi, b in enumerate(fn.blocks)
            for ii, i in enumerate(b.instrs)}

    # ------------------------------------------------------------------

    def for_races(self, races: Sequence) -> List[InsertionPoint]:
        """Deduplicated, deterministically-ordered candidates for a batch
        of :class:`RaceReport`-like objects (need ``access1``/``access2``
        with ``instr_id``)."""
        out: List[InsertionPoint] = []
        seen: Set[tuple] = set()

        def push(point: Optional[InsertionPoint]) -> None:
            if point is None or point.source_line < 1:
                return
            if point.key() in seen:
                return
            seen.add(point.key())
            out.append(point)

        pairs = []
        for race in races:
            w1 = self._where.get(race.access1.instr_id)
            w2 = self._where.get(race.access2.instr_id)
            if w1 is None or w2 is None:
                continue
            pairs.append((w1, w2))

        # family 1: loop latches (strongest fix for unrolled-loop races)
        for (b1, i1), (b2, i2) in pairs:
            for point in self._latch_points(b1, b2):
                push(point)
        # family 2: between the two accesses
        for (b1, i1), (b2, i2) in pairs:
            for point in self._access_points((b1, i1), (b2, i2)):
                push(point)
        # family 3: block boundaries
        for (b1, i1), (b2, i2) in pairs:
            push(self._block_start(b1))
            push(self._block_start(b2))
        return out

    # ------------------------------------------------------------------

    def _innermost_loop(self, b1: BasicBlock,
                        b2: BasicBlock) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.loops:
            if b1 in loop.blocks and b2 in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def _loop_body_line(self, loop: Loop) -> int:
        """The last source line of the loop body — where an end-of-body
        barrier lands textually.  Lines holding a loop-*exit* branch
        (the ``for``/``while`` header, a do-while's trailing
        ``while (cond)``) are excluded: inserting after them would put
        the barrier outside the loop."""
        exit_lines = set()
        for block in loop.blocks:
            term = block.terminator
            if isinstance(term, Br) and \
                    any(s not in loop.blocks for s in term.successors()):
                # the whole block computes the exit condition (a for/
                # while header or a do-while's trailing ``while (cond)``)
                exit_lines.update(int(i.loc) for i in block.instrs
                                  if i.loc is not None)
        lines = [int(i.loc) for b in loop.blocks for i in b.instrs
                 if i.loc is not None and int(i.loc) not in exit_lines]
        if lines:
            return max(lines)
        return max(exit_lines) - 1 if exit_lines else 0

    def _latch_points(self, b1: BasicBlock,
                      b2: BasicBlock) -> List[InsertionPoint]:
        loop = self._innermost_loop(b1, b2)
        if loop is None:
            return []
        body_line = self._loop_body_line(loop)
        points: List[InsertionPoint] = []
        for tail, header in self.cfg.back_edges():
            if header is not loop.header or tail not in loop.blocks:
                continue
            if not self.ua.block_is_uniform(tail):
                continue
            term = tail.terminator
            if isinstance(term, Jump):
                points.append(InsertionPoint(
                    block=tail, anchor=term, source_line=body_line,
                    note=f"loop latch, line {int(term.loc)}"
                         if term.loc else "loop latch"))
            elif isinstance(term, Br):
                if not self.ua.branch_is_uniform(term):
                    continue
                points.append(InsertionPoint(
                    block=tail, anchor=None, source_line=body_line,
                    note="loop back-edge", edge=(tail, header)))
        return points

    def _access_points(self, w1: Tuple[BasicBlock, Instruction],
                       w2: Tuple[BasicBlock, Instruction]
                       ) -> List[InsertionPoint]:
        (b1, i1), (b2, i2) = w1, w2
        # order by source position (program order breaks line ties) so
        # "after the first / before the second" is meaningful
        if (int(i2.loc or 0), self._pos[id(i2)]) < \
                (int(i1.loc or 0), self._pos[id(i1)]):
            (b1, i1), (b2, i2) = (b2, i2), (b1, i1)
        if i1.loc is not None and i2.loc is not None \
                and int(i1.loc) == int(i2.loc) and i1 is not i2:
            # both accesses share one source line (one statement): a
            # barrier between them exists in the IR but cannot be
            # rendered as a textual edit, so don't propose one the
            # final from-source verification is guaranteed to reject
            return []
        points: List[InsertionPoint] = []
        if self.ua.block_is_uniform(b2) and i2.loc is not None:
            points.append(InsertionPoint(
                block=b2, anchor=i2, source_line=int(i2.loc) - 1,
                note=f"before access at line {int(i2.loc)}"))
        if self.ua.block_is_uniform(b1) and i1.loc is not None:
            nxt = self._next_instr(b1, i1)
            if nxt is not None:
                points.append(InsertionPoint(
                    block=b1, anchor=nxt, source_line=int(i1.loc),
                    note=f"after access at line {int(i1.loc)}"))
        return points

    def _block_start(self, block: BasicBlock) -> Optional[InsertionPoint]:
        if not self.ua.block_is_uniform(block):
            return None
        anchor = next((i for i in block.instrs if not isinstance(i, Phi)),
                      None)
        if anchor is None or anchor.loc is None:
            return None
        return InsertionPoint(
            block=block, anchor=anchor, source_line=int(anchor.loc) - 1,
            note=f"start of block {block.name}")

    @staticmethod
    def _next_instr(block: BasicBlock,
                    instr: Instruction) -> Optional[Instruction]:
        for pos, cur in enumerate(block.instrs):
            if cur is instr:
                if pos + 1 < len(block.instrs):
                    return block.instrs[pos + 1]
                return None
        return None
