"""Runtime values of the symbolic VM.

Scalars are SMT terms (bitvectors — floats travel as opaque bit
patterns). Pointers are (memory object, symbolic byte offset) pairs; they
never convert to integers in MiniCUDA, which keeps the memory model
object-precise (no pointer forging).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .. import ir
from ..smt import Term, bv_sort, mk_bv, mk_bv_var
from ..smt.terms import mk_add, mk_extract, mk_mul, mk_sext, mk_truncate, mk_zext


def width_of(type_: ir.Type) -> int:
    """Bit width a value of this IR type occupies at runtime."""
    if isinstance(type_, ir.IntType):
        return type_.width
    if isinstance(type_, ir.FloatType):
        return type_.width
    if isinstance(type_, ir.PointerType):
        return 64
    raise TypeError(f"no runtime width for {type_!r}")


@dataclass(frozen=True)
class Pointer:
    """A pointer value: an object plus a 32-bit byte offset term."""

    obj: "MemoryObject"           # forward ref to repro.sym.memory
    offset: Term                  # byte offset, 32-bit

    def advanced(self, index: Term, elem_size: int) -> "Pointer":
        """GEP semantics: ``self + index * elem_size`` (byte-scaled)."""
        idx = fit_width(index, 32, signed=True)
        delta = mk_mul(idx, mk_bv(elem_size, 32))
        return Pointer(self.obj, mk_add(self.offset, delta))

    def __repr__(self) -> str:
        return f"&{self.obj.name}[{self.offset!r}]"


SymValue = Union[Term, Pointer]


def fit_width(term: Term, width: int, signed: bool = False) -> Term:
    """Resize a term to ``width`` bits (trunc / zext / sext)."""
    if term.width == width:
        return term
    if term.width > width:
        return mk_extract(term, width - 1, 0)
    return mk_sext(term, width) if signed else mk_zext(term, width)
