"""Rendering of the parametric flow tree (the paper's Fig. 4).

Each flow split refines the parent's flow condition; the tree of
refinements is recorded by the executor and rendered here as ASCII —
GKLEEp's reduction tree (F0 → F1/F2 → F3..F5 → ...) prints exactly like
the figure, while SESA's merged run is a single node.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .executor import ExecutionResult


def render_flow_tree(result: ExecutionResult, max_cond_len: int = 48) -> str:
    """ASCII tree of flow splits; ``F<id>`` nodes with their refinements."""
    children: Dict[Optional[int], List[Tuple[int, object]]] = {}
    roots: List[int] = []
    seen = set()
    for parent, child, cond in result.flow_events:
        children.setdefault(parent, []).append((child, cond))
        seen.add(child)
        if parent not in seen:
            if parent not in roots:
                roots.append(parent)
    if not result.flow_events:
        return "F0 (single flow — all splits combined)"

    lines: List[str] = []

    def fmt_cond(cond: object) -> str:
        text = repr(cond)
        if len(text) > max_cond_len:
            text = text[:max_cond_len - 3] + "..."
        return text

    def walk(node: int, prefix: str, is_last: bool, cond: object,
             depth: int) -> None:
        connector = "" if depth == 0 else ("`-- " if is_last else "|-- ")
        label = f"F{node}"
        if cond is not None:
            label += f"  [{fmt_cond(cond)}]"
        lines.append(prefix + connector + label)
        kids = children.get(node, [])
        if depth == 0:
            child_prefix = prefix
        else:
            child_prefix = prefix + ("    " if is_last else "|   ")
        for i, (kid, kcond) in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1, kcond, depth + 1)

    for root in roots:
        walk(root, "", True, None, 0)
    leaf_count = len(result.final_flow_conds)
    lines.append(f"({len(result.flow_events)} splits, "
                 f"{leaf_count} final flows, "
                 f"max concurrent {result.max_flows})")
    return "\n".join(lines)
