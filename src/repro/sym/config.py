"""Kernel launch configuration and symbolic environment construction.

Builds the parametric thread's view of the CUDA built-ins: ``tid``/``bid``
components are symbolic variables constrained by the (concrete)
``blockDim``/``gridDim`` — the key trick that lets two parametric threads
stand in for hundreds of thousands (paper §IV-A).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..smt import TRUE, Term, mk_and, mk_bv, mk_bv_var, mk_ult

Dim3 = Tuple[int, int, int]


def _dim3(value) -> Dim3:
    if isinstance(value, int):
        return (value, 1, 1)
    t = tuple(value)
    while len(t) < 3:
        t += (1,)
    return t  # type: ignore[return-value]


@dataclass
class LaunchConfig:
    """Everything the analyser needs about one kernel launch."""

    grid_dim: Dim3 = (1, 1, 1)
    block_dim: Dim3 = (64, 1, 1)
    warp_size: int = 32
    #: assume SIMD lock-step ordering within a warp. Off by default: the
    #: paper's §II warns that compilers may legally treat the warp size
    #: as 1, so the safe default checks races under that view (this is
    #: how the Fig. 8 histo_prescan race — threads 1 and 17, same warp —
    #: is reportable at all).
    warp_lockstep: bool = False

    #: which kernel parameters to treat as symbolic. ``None`` means
    #: "the engine decides" (SESA: taint analysis; GKLEEp: caller must set)
    symbolic_inputs: Optional[Set[str]] = None
    #: concrete values for non-symbolic scalar parameters
    scalar_values: Dict[str, int] = field(default_factory=dict)
    #: element counts for pointer parameters (default: total threads)
    array_sizes: Dict[str, int] = field(default_factory=dict)
    #: concrete contents for non-symbolic pointer parameters
    array_values: Dict[str, List[int]] = field(default_factory=dict)
    #: extra user assumptions over input variables (terms)
    assumptions: List[Term] = field(default_factory=list)

    #: execution budgets
    max_flows: int = 512
    max_loop_splits: int = 64
    max_steps: int = 2_000_000
    #: wall-clock cap for execution + checking combined (None: unlimited).
    #: Plays the role of the paper's 3,600 s timeout.
    time_budget_seconds: float = None
    check_oob: bool = True
    #: SESA flow combining: drop merged values that feed no sink
    flow_combining: bool = True
    #: solve race queries on incremental sessions (blast-once preambles,
    #: assumption literals, cross-query memo). The one-shot escape hatch
    #: (``--no-incremental``) exists for differential testing.
    incremental_solving: bool = True
    #: pre-solver pruning pipeline: record-time access summarization,
    #: disjointness-bucketed pair generation, canonical pair memoization
    #: and the interval OOB fast path. The escape hatch
    #: (``--no-pruning``) exists for differential testing.
    pair_pruning: bool = True
    #: tier 0 of the tiered checker (:mod:`repro.static`): try a
    #: solver-less static verdict first and escalate to the parametric
    #: engine only when the kernel leaves the decidable fragment. The
    #: escape hatch (``--no-static-tier``) restores the exact prior
    #: single-tier pipeline.
    static_tier: bool = True
    #: swarm mode: a serialised :class:`repro.sym.swarm.ShardSelector`
    #: (or the selector itself) restricting the race check to one
    #: shard's ordinal ranges. ``None`` checks the whole pair space.
    shard: Optional[object] = None
    #: per-query SAT conflict budget override (portfolio variants run
    #: the same shard under different budgets). ``None``: caller's
    #: default (200k conflicts).
    solver_conflict_budget: Optional[int] = None
    #: directory for cross-run solver warm-start artifacts (preamble
    #: CNF snapshots, learned clauses, memoized verdicts — see
    #: :mod:`repro.smt.persist`). ``None`` disables persistence. This
    #: is a pure accelerator: it is deliberately NOT part of any cache
    #: fingerprint, because it must never change a verdict.
    solver_cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        self.grid_dim = _dim3(self.grid_dim)
        self.block_dim = _dim3(self.block_dim)

    @property
    def threads_per_block(self) -> int:
        x, y, z = self.block_dim
        return x * y * z

    @property
    def num_blocks(self) -> int:
        x, y, z = self.grid_dim
        return x * y * z

    @property
    def total_threads(self) -> int:
        return self.threads_per_block * self.num_blocks

    def default_array_size(self) -> int:
        # headroom above the thread count: kernels commonly read a
        # neighbourhood or two elements per thread
        return max(4 * self.total_threads, 256)

    def default_scalar(self, name: str) -> int:
        return self.scalar_values.get(name, self.total_threads)


class SymbolicEnv:
    """The built-in variables of one parametric thread.

    Components whose dimension is 1 collapse to the constant 0; the rest
    are fresh variables bounded by the configuration. ``bounds()`` yields
    the standing assumptions ``tid.* < bdim.*`` / ``bid.* < gdim.*``.
    """

    AXES = ("x", "y", "z")

    def __init__(self, config: LaunchConfig, suffix: str = "") -> None:
        self.config = config
        self.suffix = suffix
        self.builtins: Dict[str, Term] = {}
        self._bounds: List[Term] = []
        for i, axis in enumerate(self.AXES):
            bdim = config.block_dim[i]
            gdim = config.grid_dim[i]
            self.builtins[f"bdim.{axis}"] = mk_bv(bdim, 32)
            self.builtins[f"gdim.{axis}"] = mk_bv(gdim, 32)
            self.builtins[f"tid.{axis}"] = self._coord(
                f"tid.{axis}", bdim)
            self.builtins[f"bid.{axis}"] = self._coord(
                f"bid.{axis}", gdim)
        self.builtins["warpSize"] = mk_bv(config.warp_size, 32)

    def _coord(self, name: str, extent: int) -> Term:
        if extent <= 1:
            return mk_bv(0, 32)
        var = mk_bv_var(f"{name}{self.suffix}", 32)
        self._bounds.append(mk_ult(var, mk_bv(extent, 32)))
        return var

    def lookup(self, name: str) -> Term:
        try:
            return self.builtins[name]
        except KeyError:
            raise KeyError(f"unknown builtin {name}") from None

    def bounds(self) -> List[Term]:
        return list(self._bounds)

    def thread_vars(self) -> Dict[str, Term]:
        """The symbolic tid/bid components (non-collapsed only)."""
        out = {}
        for name, term in self.builtins.items():
            if term.is_var():
                out[name] = term
        return out
